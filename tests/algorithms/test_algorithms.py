"""Unit tests for the extension algorithms (BFS, triangles, k-truss, CC)."""

import numpy as np
import pytest

from repro.algorithms import (
    bfs_levels,
    bfs_parents,
    connected_components,
    ktruss,
    triangle_count,
)
from repro.graphs import datasets, generators as gen
from repro.graphs.graph import Graph
from repro.graphs.stats import bfs_levels as bfs_oracle
from repro.graphs.stats import connected_components as cc_oracle


class TestBFS:
    def test_levels_match_oracle_grid(self, grid_graph):
        assert np.array_equal(bfs_levels(grid_graph, 0), bfs_oracle(grid_graph, 0))

    def test_levels_match_oracle_random(self):
        g = gen.erdos_renyi(300, avg_degree=5, seed=11)
        for src in (0, 17, 123):
            assert np.array_equal(bfs_levels(g, src), bfs_oracle(g, src))

    def test_unreachable_minus_one(self):
        g = Graph.from_edges([0], [1], n=4)
        assert bfs_levels(g, 0).tolist() == [0, 1, -1, -1]

    def test_parents_consistent_with_levels(self):
        g = gen.watts_strogatz(120, k=4, beta=0.2, seed=4)
        lv = bfs_levels(g, 5)
        par = bfs_parents(g, 5)
        assert par[5] == -1
        for v in range(g.num_vertices):
            if v == 5 or par[v] < 0:
                continue
            p = int(par[v])
            assert lv[p] == lv[v] - 1
            nbrs, _ = g.neighbors(p)
            assert v in nbrs

    def test_bad_source(self, grid_graph):
        with pytest.raises(IndexError):
            bfs_levels(grid_graph, 64)
        with pytest.raises(IndexError):
            bfs_parents(grid_graph, -1)


class TestTriangles:
    def test_triangle_of_three(self):
        g = gen.complete_graph(3)
        assert triangle_count(g) == 1

    def test_k4_has_four_triangles(self):
        assert triangle_count(gen.complete_graph(4)) == 4

    def test_triangle_free(self):
        assert triangle_count(gen.cycle_graph(8)) == 0
        assert triangle_count(gen.grid_2d(4, 4)) == 0

    def test_matches_networkx(self):
        import networkx as nx

        g = gen.erdos_renyi(150, avg_degree=10, seed=9)
        src, dst, _ = g.to_edges()
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        assert triangle_count(g) == sum(nx.triangles(G).values()) // 3


class TestKTruss:
    def test_k3_keeps_triangle_edges_only(self):
        # a triangle with a pendant edge: pendant drops out of the 3-truss
        g = Graph.from_edges(
            [0, 1, 2, 2], [1, 2, 0, 3], n=4, directed=False
        )
        C = ktruss(g, 3)
        rows, cols, _ = C.to_coo()
        kept = set(zip(rows.tolist(), cols.tolist()))
        assert (2, 3) not in kept and (3, 2) not in kept
        assert (0, 1) in kept

    def test_k4_of_k4_is_everything(self):
        g = gen.complete_graph(4)
        C = ktruss(g, 4)
        assert C.nvals == g.num_edges

    def test_k5_of_k4_is_empty(self):
        g = gen.complete_graph(4)
        assert ktruss(g, 5).nvals == 0

    def test_matches_networkx(self):
        import networkx as nx

        g = gen.erdos_renyi(100, avg_degree=12, seed=13)
        src, dst, _ = g.to_edges()
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        for k in (3, 4):
            C = ktruss(g, k)
            expected = nx.k_truss(G, k)
            assert C.nvals == 2 * expected.number_of_edges()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ktruss(gen.complete_graph(4), 2)


class TestConnectedComponents:
    def test_partition_matches_oracle(self):
        g = datasets.load("ci-rmat")
        got = connected_components(g)
        expected = cc_oracle(g)
        # same partition up to label renaming
        mapping = {}
        for a, b in zip(got.tolist(), expected.tolist()):
            assert mapping.setdefault(a, b) == b

    def test_single_component(self, grid_graph):
        labels = connected_components(grid_graph)
        assert len(set(labels.tolist())) == 1

    def test_isolated_vertices(self):
        g = Graph.empty(4)
        labels = connected_components(g)
        assert sorted(labels.tolist()) == [0, 1, 2, 3]

    def test_labels_are_component_minima(self):
        g = Graph.from_edges([1, 3], [2, 4], n=5, directed=False)
        labels = connected_components(g)
        assert labels[1] == labels[2] == 1
        assert labels[3] == labels[4] == 3
        assert labels[0] == 0

"""Unit tests for PageRank (validated against networkx)."""

import numpy as np
import pytest

from repro.algorithms import pagerank
from repro.graphs import generators as gen
from repro.graphs.graph import Graph


class TestPageRank:
    def test_sums_to_one(self):
        g = gen.erdos_renyi(200, avg_degree=6, seed=3)
        pr = pagerank(g)
        assert np.isclose(pr.sum(), 1.0)
        assert np.all(pr > 0)

    def test_uniform_on_cycle(self):
        g = gen.cycle_graph(10)
        pr = pagerank(g)
        assert np.allclose(pr, 0.1, atol=1e-6)

    def test_hub_ranks_highest(self):
        g = gen.star_graph(50)
        pr = pagerank(g)
        assert pr.argmax() == 0

    def test_matches_networkx(self):
        import networkx as nx

        g = gen.barabasi_albert(150, m_per_node=3, seed=5)
        src, dst, _ = g.to_edges()
        G = nx.DiGraph()
        G.add_nodes_from(range(g.num_vertices))
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = nx.pagerank(G, alpha=0.85, tol=1e-10)
        got = pagerank(g, damping=0.85, tol=1e-12)
        exp = np.array([expected[v] for v in range(g.num_vertices)])
        assert np.allclose(got, exp, atol=1e-6)

    def test_dangling_vertices_handled(self):
        # 0 -> 1, 1 dangles
        g = Graph.from_edges([0], [1], n=3)
        pr = pagerank(g)
        assert np.isclose(pr.sum(), 1.0)
        assert pr[1] > pr[2]

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            pagerank(gen.cycle_graph(4), damping=1.5)

    def test_empty_graph(self):
        assert len(pagerank(Graph.empty(0))) == 0

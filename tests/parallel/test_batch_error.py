"""BatchError aggregation: every failed task named, siblings preserved."""

import pytest

from repro.parallel.pool import BatchError, WorkerPool


def boom(kind, msg):
    def fn():
        raise kind(msg)

    return fn


def ok(value):
    return lambda: value


@pytest.fixture(params=[1, 3], ids=["serial", "pooled"])
def pool(request):
    p = WorkerPool(request.param)
    yield p
    p.shutdown()


class TestAggregation:
    def test_two_simultaneous_failures_both_named(self, pool):
        """The regression: one batch, two failing tasks — raising the
        first exception blind would hide the second."""
        with pytest.raises(BatchError) as ei:
            pool.run_batch([
                boom(ValueError, "left"), ok("mid"), boom(KeyError, "right"),
            ])
        err = ei.value
        assert err.failed_indices == [0, 2]
        assert "[0] ValueError: left" in str(err)
        assert "[2] KeyError: 'right'" in str(err)
        assert str(err).startswith("2/3 tasks failed")

    def test_completed_siblings_results_are_kept(self, pool):
        with pytest.raises(BatchError) as ei:
            pool.run_batch([ok("a"), boom(RuntimeError, "x"), ok("c")])
        assert ei.value.results == ["a", None, "c"]
        assert [type(e) for _, e in ei.value.failures] == [RuntimeError]

    def test_all_tasks_run_to_the_barrier(self, pool):
        ran = []
        with pytest.raises(BatchError):
            pool.run_batch([
                lambda: ran.append(0),
                boom(ValueError, "x"),
                lambda: ran.append(2),
            ])
        assert sorted(ran) == [0, 2]

    def test_failures_ascend_by_index(self, pool):
        with pytest.raises(BatchError) as ei:
            pool.run_batch([boom(ValueError, str(i)) for i in range(6)])
        assert ei.value.failed_indices == list(range(6))

    def test_long_failure_lists_elide(self, pool):
        with pytest.raises(BatchError) as ei:
            pool.run_batch([boom(ValueError, str(i)) for i in range(6)])
        msg = str(ei.value)
        assert msg.startswith("6/6 tasks failed")
        assert "… 2 more" in msg

    def test_clean_batch_raises_nothing(self, pool):
        assert pool.run_batch([ok(1), ok(2)]) == [1, 2]

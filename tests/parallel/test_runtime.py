"""Unit tests for the parallel runtime: partitioning, pool, task graph,
simulator."""

import threading
import time

import numpy as np
import pytest

from repro.parallel.partition import balanced_partition, chunk_by_cost, chunk_ranges
from repro.parallel.pool import WorkerPool, get_pool, parallel_map, shutdown_all_pools
from repro.parallel.simulate import SimulatedExecutor, simulate_makespan
from repro.parallel.tasks import Task, TaskGraph, run_task_graph


class TestChunkRanges:
    def test_covers_exactly(self):
        chunks = chunk_ranges(10, 3)
        covered = [i for lo, hi in chunks for i in range(lo, hi)]
        assert covered == list(range(10))

    def test_even_sizes(self):
        sizes = [hi - lo for lo, hi in chunk_ranges(100, 4)]
        assert sizes == [25, 25, 25, 25]

    def test_more_chunks_than_items(self):
        chunks = chunk_ranges(3, 8)
        assert len(chunks) == 3

    def test_degenerate(self):
        assert chunk_ranges(0, 4) == []
        assert chunk_ranges(5, 0) == []


class TestChunkByCost:
    def test_balances_skewed_costs(self):
        costs = np.array([100, 1, 1, 1, 1, 1, 1, 100])
        chunks = chunk_by_cost(costs, 2)
        covered = [i for lo, hi in chunks for i in range(lo, hi)]
        assert covered == list(range(8))
        loads = [costs[lo:hi].sum() for lo, hi in chunks]
        assert max(loads) <= 0.8 * costs.sum()

    def test_uniform_costs_behave_like_even_chunks(self):
        chunks = chunk_by_cost(np.ones(12), 3)
        assert len(chunks) == 3

    def test_zero_costs(self):
        chunks = chunk_by_cost(np.zeros(6), 2)
        covered = [i for lo, hi in chunks for i in range(lo, hi)]
        assert covered == list(range(6))

    def test_zero_cost_tail_folds_into_last_chunk(self):
        """A run of zero-cost items at the tail must not become its own
        zero-work chunk (it would waste a worker/shard slot)."""
        chunks = chunk_by_cost(np.array([5.0, 5.0, 0.0, 0.0]), 2)
        covered = [i for lo, hi in chunks for i in range(lo, hi)]
        assert covered == list(range(4))
        loads = [float(np.array([5.0, 5.0, 0.0, 0.0])[lo:hi].sum()) for lo, hi in chunks]
        assert all(load > 0 for load in loads)

    def test_zero_cost_tail_single_positive_item(self):
        chunks = chunk_by_cost(np.array([5.0, 0.0]), 2)
        assert chunks == [(0, 2)]  # one chunk, nothing empty

    def test_interior_zero_runs_never_make_empty_chunks(self):
        costs = np.array([10.0, 0.0, 0.0, 0.0, 10.0, 0.0, 0.0])
        for k in (2, 3, 5):
            chunks = chunk_by_cost(costs, k)
            covered = [i for lo, hi in chunks for i in range(lo, hi)]
            assert covered == list(range(len(costs))), k
            assert all(costs[lo:hi].sum() > 0 for lo, hi in chunks), k

    def test_single_item_cost_array(self):
        assert chunk_by_cost(np.array([3.0]), 4) == [(0, 1)]
        assert chunk_by_cost(np.array([0.0]), 4) == [(0, 1)]


class TestBalancedPartition:
    def test_all_assigned_once(self):
        costs = [5.0, 3.0, 2.0, 2.0]
        bins = balanced_partition(costs, 2)
        flat = sorted(i for b in bins for i in b)
        assert flat == [0, 1, 2, 3]

    def test_lpt_quality(self):
        costs = [4.0, 3.0, 3.0, 2.0]
        bins = balanced_partition(costs, 2)
        loads = [sum(costs[i] for i in b) for b in bins]
        assert max(loads) == 6.0  # optimal here

    def test_zero_bins(self):
        assert balanced_partition([1.0], 0) == []

    def test_all_zero_costs_round_robin(self):
        """Zero-cost tasks must spread across bins (the load tie-break
        used to pile everything onto bin 0)."""
        bins = balanced_partition([0.0] * 7, 3)
        counts = sorted(len(b) for b in bins)
        assert sum(counts) == 7
        assert counts[-1] - counts[0] <= 1

    def test_single_item(self):
        bins = balanced_partition([2.5], 3)
        assert sorted(i for b in bins for i in b) == [0]
        assert sum(1 for b in bins if b) == 1


class TestWorkerPool:
    def test_single_thread_inline(self):
        pool = WorkerPool(1)
        assert pool.run_batch([lambda: 1, lambda: 2]) == [1, 2]

    def test_parallel_results_ordered(self):
        pool = get_pool(2)
        fns = [lambda k=k: k * k for k in range(8)]
        assert pool.run_batch(fns) == [k * k for k in range(8)]

    def test_actually_uses_worker_threads(self):
        pool = get_pool(2)
        names = pool.run_batch(
            [lambda: threading.current_thread().name for _ in range(4)]
        )
        assert any("repro-worker" in n for n in names)

    def test_map_chunks(self):
        pool = get_pool(2)
        out = pool.map_chunks(lambda lo, hi: hi - lo, [(0, 3), (3, 10)])
        assert out == [3, 7]

    def test_parallel_map_helper(self):
        assert parallel_map(lambda lo, hi: lo, [(0, 1), (5, 6)], 2) == [0, 5]

    def test_get_pool_caches(self):
        assert get_pool(3) is get_pool(3)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_exceptions_propagate(self):
        pool = get_pool(2)

        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            pool.run_batch([boom, lambda: 1])


class TestPoolLifecycle:
    """The shutdown path runs twice in real life: explicitly from tests or
    embedders, then again via the ``atexit`` hook."""

    def test_pool_shutdown_idempotent(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()  # second call is a no-op, not an error
        assert pool.closed

    def test_run_batch_after_shutdown_raises(self):
        pool = WorkerPool(2)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run_batch([lambda: 1])

    def test_shutdown_all_pools_idempotent(self):
        get_pool(2)
        shutdown_all_pools()
        shutdown_all_pools()  # the atexit double-fire

    def test_get_pool_after_shutdown_returns_fresh_pool(self):
        stale = get_pool(2)
        shutdown_all_pools()
        fresh = get_pool(2)
        assert fresh is not stale
        assert fresh.run_batch([lambda: 40, lambda: 2]) == [40, 2]

    def test_directly_shut_down_pool_is_replaced(self):
        pool = get_pool(3)
        pool.shutdown()
        assert get_pool(3) is not pool

    def test_concurrent_shutdown_single_teardown(self):
        pool = WorkerPool(4)
        barrier = threading.Barrier(4)

        def race():
            barrier.wait()
            pool.shutdown()

        threads = [threading.Thread(target=race) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pool.closed


class TestTaskGraph:
    def test_waves_respect_dependencies(self):
        g = TaskGraph()
        g.spawn("a", lambda: "a")
        g.spawn("b", lambda: "b", after=["a"])
        g.spawn("c", lambda: "c", after=["a"])
        g.spawn("d", lambda: "d", after=["b", "c"])
        waves = g.waves()
        assert [sorted(t.name for t in w) for w in waves] == [["a"], ["b", "c"], ["d"]]

    def test_run_collects_results(self):
        g = TaskGraph()
        g.spawn("x", lambda: 41)
        g.spawn("y", lambda: 1, after=["x"])
        results = run_task_graph(g, num_threads=2)
        assert results == {"x": 41, "y": 1}

    def test_duplicate_name_rejected(self):
        g = TaskGraph()
        g.spawn("a", lambda: 1)
        with pytest.raises(ValueError):
            g.spawn("a", lambda: 2)

    def test_unknown_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.spawn("b", lambda: 1, after=["ghost"])

    def test_task_measures_duration(self):
        t = Task("sleepy", lambda: time.sleep(0.01))
        t.run()
        assert t.measured >= 0.005


class TestSimulator:
    def test_single_thread_sums(self):
        assert np.isclose(simulate_makespan([1.0, 2.0], 1, overhead=0.0), 3.0)

    def test_two_threads_balance(self):
        assert np.isclose(simulate_makespan([1.0, 1.0], 2, overhead=0.0), 1.0)

    def test_imbalanced_task_dominates(self):
        assert np.isclose(simulate_makespan([10.0, 1.0, 1.0], 4, overhead=0.0), 10.0)

    def test_overhead_charged_per_task(self):
        assert np.isclose(simulate_makespan([1.0], 1, overhead=0.5), 1.5)

    def test_empty(self):
        assert simulate_makespan([], 4) == 0.0

    def test_executor_accumulates_speedup(self):
        sim = SimulatedExecutor(threads=2, overhead=0.0)
        sim.sequential(1.0)
        sim.batch([2.0, 2.0])  # perfectly parallel
        rep = sim.report
        assert np.isclose(rep.serial_seconds, 5.0)
        assert np.isclose(rep.simulated_seconds, 3.0)
        assert np.isclose(rep.speedup, 5.0 / 3.0)

    def test_coarse_matrix_tasks_cap_scaling(self):
        """The Fig. 4 plateau: two coarse tasks can't use four threads."""
        two = SimulatedExecutor(threads=2, overhead=0.0)
        four = SimulatedExecutor(threads=4, overhead=0.0)
        for sim in (two, four):
            sim.batch([1.0, 1.0])  # A_L and A_H builds
        assert two.report.simulated_seconds == four.report.simulated_seconds

    def test_amdahl_effect(self):
        sim = SimulatedExecutor(threads=16, overhead=0.0)
        sim.sequential(1.0)
        sim.batch([0.1] * 16)
        assert sim.report.speedup < 16 / 6  # sequential part dominates

"""Unit tests for the lazy-batched priority frontier."""

import numpy as np
import pytest

from repro.stepping import LazyFrontier


def make(dists, active=None):
    d = np.asarray(dists, dtype=np.float64)
    mask = None
    if active is not None:
        mask = np.zeros(len(d), dtype=bool)
        mask[active] = True
    return LazyFrontier(d, mask)


class TestLazyFrontier:
    def test_starts_empty(self):
        f = make([1.0, 2.0, 3.0])
        assert not f
        assert len(f) == 0
        assert f.peek_min() == np.inf

    def test_push_and_peek(self):
        f = make([5.0, 2.0, 9.0])
        f.push(np.array([0, 2]))
        assert len(f) == 2
        assert f.peek_min() == 5.0
        f.push(np.array([1]))
        assert f.peek_min() == 2.0

    def test_push_is_idempotent(self):
        f = make([1.0, 2.0])
        f.push(np.array([0, 0, 0]))
        assert len(f) == 1

    def test_pop_nearest_extracts_smallest(self):
        f = make([4.0, 1.0, 3.0, 2.0], active=[0, 1, 2, 3])
        batch = f.pop_nearest(2)
        assert sorted(batch.tolist()) == [1, 3]  # the two smallest distances
        assert len(f) == 2

    def test_pop_nearest_includes_ties(self):
        """The batch is closed under equal priority: ties at the ρ-th
        distance all come out together."""
        f = make([1.0, 1.0, 1.0, 5.0], active=[0, 1, 2, 3])
        batch = f.pop_nearest(2)
        assert sorted(batch.tolist()) == [0, 1, 2]

    def test_pop_nearest_small_frontier_takes_all(self):
        f = make([3.0, 1.0], active=[0, 1])
        assert sorted(f.pop_nearest(10).tolist()) == [0, 1]
        assert not f

    def test_pop_nearest_rejects_bad_rho(self):
        f = make([1.0], active=[0])
        with pytest.raises(ValueError):
            f.pop_nearest(0)

    def test_pop_below_inclusive(self):
        f = make([1.0, 2.0, 3.0], active=[0, 1, 2])
        batch = f.pop_below(2.0)
        assert sorted(batch.tolist()) == [0, 1]
        assert f.vertices().tolist() == [2]

    def test_decrease_key_free_update(self):
        """An improvement is just overwrite + re-push: the frontier ranks
        by the live distance array, so there is no stale priority."""
        d = np.array([5.0, 2.0, 9.0])
        f = LazyFrontier(d)
        f.push(np.array([0, 2]))
        d[2] = 1.0  # the solver improved vertex 2
        f.push(np.array([2]))
        assert f.peek_min() == 1.0
        assert f.pop_nearest(1).tolist() == [2]

    def test_mismatched_mask_rejected(self):
        with pytest.raises(ValueError):
            LazyFrontier(np.zeros(3), np.zeros(4, dtype=bool))

    def test_popped_vertices_leave(self):
        f = make([1.0, 2.0], active=[0, 1])
        f.pop_below(10.0)
        assert not f
        assert f.pop_below(10.0).size == 0

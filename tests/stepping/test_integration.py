"""Stepping × service × dynamic integration: the portfolio behind every door."""

import numpy as np
import pytest

from repro.bench.mutate_bench import build_update_batch
from repro.dynamic import apply_edge_updates, repair_sssp
from repro.graphs import datasets
from repro.service import Query, QueryPlanner, QueryService, batch_delta_stepping
from repro.service.batch import batch_stepper_loop
from repro.sssp import dijkstra
from repro.sssp.fused import fused_delta_stepping
from repro.stepping import AutoTuner


@pytest.fixture(scope="module")
def ws_graph():
    return datasets.load("ci-ws")


class TestBatchDispatch:
    @pytest.mark.parametrize("method", ["rho", "radius", "delta-star", "bellman-ford"])
    def test_batch_via_stepper_matches_dijkstra(self, ws_graph, method):
        sources = [0, 7, 42]
        res = batch_delta_stepping(ws_graph, sources, method=method)
        assert res.method == f"batch-loop:{method}"
        for k, s in enumerate(sources):
            assert np.array_equal(res.distances[k], dijkstra(ws_graph, s).distances)

    def test_delta_aliases_to_native_engine(self, ws_graph):
        """"delta" IS batched delta-stepping: it routes to the shared-wave
        fused engine, not the per-source loop."""
        res = batch_delta_stepping(ws_graph, [0, 7], method="delta")
        assert res.method == "batch-fused"

    def test_unknown_method_enumerates_both_registries(self, ws_graph):
        with pytest.raises(ValueError) as excinfo:
            batch_delta_stepping(ws_graph, [0], method="warp-drive")
        message = str(excinfo.value)
        assert "fused" in message and "rho" in message and "radius" in message

    def test_stepper_loop_counters_aggregate(self, ws_graph):
        res = batch_stepper_loop(ws_graph, [0, 7], stepper="rho")
        single = sum(
            __import__("repro.stepping", fromlist=["solve_with"]).solve_with(
                "rho", ws_graph, s
            ).updates
            for s in (0, 7)
        )
        assert res.updates == single


class TestPlannerRouting:
    def test_pinned_stepper_stamped_on_plan(self):
        planner = QueryPlanner(stepper="rho")
        plan = planner.plan([Query(source=0)])
        assert plan.stepper == "rho"

    def test_tuned_stepper_used_when_unpinned(self):
        planner = QueryPlanner()
        planner.set_tuned_stepper("radius")
        assert planner.plan([Query(source=0)]).stepper == "radius"

    def test_pinned_beats_tuned(self):
        planner = QueryPlanner(stepper="rho")
        planner.set_tuned_stepper("radius")
        assert planner.stepper == "rho"

    def test_mutation_clears_tuned_keeps_pinned(self):
        planner = QueryPlanner(stepper="rho")
        planner.set_tuned_stepper("radius")
        planner.note_mutation()
        assert planner.stepper == "rho"
        planner = QueryPlanner()
        planner.set_tuned_stepper("radius")
        planner.note_mutation()
        assert planner.stepper is None


class TestServiceStepping:
    def test_pinned_stepper_answers_exactly(self, ws_graph):
        svc = QueryService(ws_graph, stepper="rho")
        resp = svc.query(0)
        assert np.array_equal(resp.distances, dijkstra(ws_graph, 0).distances)

    def test_autotune_service_answers_exactly(self, ws_graph):
        svc = QueryService(ws_graph, tuner=AutoTuner(num_sources=1, repeats=1))
        resp = svc.query(3)
        assert np.array_equal(resp.distances, dijkstra(ws_graph, 3).distances)
        # the tuned pick landed on the planner
        assert svc.planner.stepper in AutoTuner().candidates

    def test_autotune_retunes_after_mutation(self):
        g = datasets.load("ci-ws").copy()
        svc = QueryService(g, tuner=AutoTuner(num_sources=1, repeats=1))
        svc.query(0)
        assert svc.planner.stepper is not None
        svc.mutate(reweights=[(0, int(g.indices[0]), 0.5)])
        assert svc.planner.stepper is None  # cleared; re-tunes lazily
        # source 0 was repaired in place: a cache-only drain must answer
        # exactly WITHOUT paying a re-probe
        resp = svc.query(0)
        assert resp.from_cache
        assert svc.planner.stepper is None
        assert np.array_equal(resp.distances, dijkstra(g, 0).distances)
        # the next cold source needs an exact solve -> the probe runs
        resp = svc.query(9)
        assert svc.planner.stepper is not None
        assert np.array_equal(resp.distances, dijkstra(g, 9).distances)

    def test_autotune_probe_skipped_on_cached_drain(self, ws_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        svc = QueryService(ws_graph, tuner=tuner)
        svc.query(0)  # cold: probes + solves
        probed = dict(tuner._reports)
        resp = svc.query(0)  # warm: cache hit, no batches
        assert resp.from_cache
        assert dict(tuner._reports) == probed  # no new probe happened

    def test_stepper_param_installs_on_custom_planner(self, ws_graph):
        planner = QueryPlanner(max_batch_size=4)
        svc = QueryService(ws_graph, planner=planner, stepper="delta-star")
        assert planner.stepper == "delta-star"
        resp = svc.query(1)
        assert np.array_equal(resp.distances, dijkstra(ws_graph, 1).distances)


class TestSteppedRepair:
    @pytest.mark.parametrize("stepper", ["rho", "radius", "delta-star"])
    def test_repair_on_stepper_bit_identical(self, stepper):
        g = datasets.load("ci-ws", weights="uniform", seed=3).copy()
        d0 = fused_delta_stepping(g, 0, 1.0).distances
        rng = np.random.default_rng(11)
        inserts, deletes, reweights = build_update_batch(g, 0.02, rng)
        applied = apply_edge_updates(
            g, inserts=inserts, deletes=deletes, reweights=reweights
        )
        repaired = repair_sssp(g, 0, d0, applied, stepper=stepper)
        oracle = fused_delta_stepping(g, 0, 1.0).distances
        assert np.array_equal(repaired.distances, oracle)

    def test_repair_rejects_resolve_free_stepper(self, diamond_graph):
        g = diamond_graph.copy()
        d0 = fused_delta_stepping(g, 0, 1.0).distances
        applied = apply_edge_updates(g, reweights=[(0, 1, 1.0)])
        with pytest.raises(ValueError, match="resolve"):
            repair_sssp(g, 0, d0, applied, stepper="dijkstra")


class TestStepBench:
    def test_smoke_series_and_render(self):
        from repro.bench.step_bench import (
            render_stepping_portfolio,
            stepping_portfolio_series,
        )
        from repro.bench.workloads import suite_workloads

        rows = stepping_portfolio_series(
            suite_workloads("ci")[:1], steppers=("rho", "delta-star"), repeats=1
        )
        assert len(rows) == 2
        assert sum(1 for r in rows if r["picked"]) == 1
        panel = render_stepping_portfolio(rows)
        assert "Auto-tuner pick vs best measured" in panel

    def test_step_experiment_registered(self):
        from repro.bench.registry import EXPERIMENTS

        assert "STEP" in EXPERIMENTS
        assert "auto-tuner" in EXPERIMENTS["STEP"].claim.lower()

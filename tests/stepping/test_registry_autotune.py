"""Registry discovery and the per-graph auto-tuner."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.sssp.delta import DELTA_STRATEGIES, choose_delta
from repro.stepping import (
    DEFAULT_CANDIDATES,
    STEPPERS,
    AutoTuner,
    FunctionStepper,
    best_stepper,
    get_stepper,
    parse_stepper_spec,
    register_stepper,
    resolve_stepper_spec,
    stepper_names,
)


class TestRegistry:
    def test_all_expected_members(self):
        assert {"rho", "radius", "delta-star", "delta", "graphblas",
                "dijkstra", "bellman-ford", "sharded"} <= set(STEPPERS)

    def test_kind_filter(self):
        assert set(stepper_names(kind="stepping")) == {"rho", "radius", "delta-star"}
        assert "delta" in stepper_names(kind="legacy")
        assert stepper_names(kind="sharded") == ["sharded"]

    def test_unknown_stepper_error_enumerates_registry(self):
        """The ValueError names every registered algorithm — the same
        discovery contract as ``choose_delta``'s strategy error."""
        with pytest.raises(ValueError) as excinfo:
            get_stepper("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        for name in STEPPERS:
            assert name in message

    def test_choose_delta_error_enumerates_its_registry(self):
        """Companion check: the Δ-strategy registry keeps the same
        one-registry enumeration contract the steppers adopted."""
        with pytest.raises(ValueError) as excinfo:
            choose_delta(gen.grid_2d(2, 2), "warp-drive")
        message = str(excinfo.value)
        for name in ("auto", *DELTA_STRATEGIES):
            assert name in message

    def test_register_stepper_roundtrip(self):
        probe = FunctionStepper("test-probe", lambda g, s, **kw: None, description="x")
        register_stepper(probe)
        try:
            assert get_stepper("test-probe") is probe
            assert "test-probe" in stepper_names()
        finally:
            del STEPPERS["test-probe"]

    def test_default_candidates_are_registered(self):
        for spec in DEFAULT_CANDIDATES:
            assert parse_stepper_spec(spec)[0] in STEPPERS


class TestStepperSpecs:
    """Parameterized candidate specs: ``name(k=v, ...)``."""

    def test_bare_name_passes_through(self):
        assert parse_stepper_spec("rho") == ("rho", {})

    def test_params_parse_with_types(self):
        name, params = parse_stepper_spec("sharded(shards=4, partitioner=bfs)")
        assert name == "sharded"
        assert params == {"shards": 4, "partitioner": "bfs"}
        assert isinstance(params["shards"], int)

    def test_float_param(self):
        assert parse_stepper_spec("delta-star(delta=2.5)")[1] == {"delta": 2.5}

    def test_resolve_normalizes_aliases(self):
        stepper, params = resolve_stepper_spec("sharded(shards=2)")
        assert stepper.name == "sharded"
        assert params == {"num_shards": 2}

    def test_aliases_are_per_stepper(self):
        """Alias tables live on the stepper: another member's ``shards=``
        must pass through unrenamed (its solve() will reject it itself)."""
        _, params = resolve_stepper_spec("rho(shards=3)")
        assert params == {"shards": 3}

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            resolve_stepper_spec("warp-drive(x=1)")

    @pytest.mark.parametrize("bad", ["rho(", "rho(x)", "rho(=1)", "rho(x=)"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_stepper_spec(bad)

    def test_spec_solve_matches_explicit_params(self, grid_graph):
        from repro.stepping import solve_with

        a = solve_with("sharded(shards=3)", grid_graph, 0)
        b = solve_with("sharded", grid_graph, 0, num_shards=3)
        assert np.array_equal(a.distances, b.distances)
        assert a.extra["shards"] == 3


class TestAutoTuner:
    def test_probe_races_all_candidates(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        report = tuner.probe(grid_graph)
        assert {r.stepper for r in report.rows} == set(DEFAULT_CANDIDATES)
        assert all(r.ms_per_source > 0 for r in report.rows)
        assert report.best in DEFAULT_CANDIDATES

    def test_report_cached_per_epoch(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        first = tuner.report_for(grid_graph)
        assert tuner.report_for(grid_graph) is first  # cache hit, no re-probe
        grid_graph.epoch += 1  # what apply_edge_updates does
        assert tuner.report_for(grid_graph) is not first

    def test_stale_epochs_evicted_on_reprobe(self, grid_graph):
        """Epochs are monotone: probing epoch e+1 drops the epoch-e report,
        so a long-lived tuner doesn't accumulate one entry per mutation."""
        tuner = AutoTuner(num_sources=1, repeats=1)
        tuner.report_for(grid_graph)
        grid_graph.epoch += 1
        tuner.report_for(grid_graph)
        assert len(tuner._reports) == 1

    def test_dead_graph_reports_purged(self):
        """A collected graph's reports are retired (the id-reuse guard)."""
        import gc

        tuner = AutoTuner(num_sources=1, repeats=1)
        g = gen.grid_2d(4, 4)
        tuner.report_for(g)
        assert len(tuner._reports) == 1
        del g
        gc.collect()
        tuner._purge_dead()
        assert len(tuner._reports) == 0
        assert not tuner._tracked_gids

    def test_best_stepper_deterministic_given_report(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        assert tuner.best_stepper(grid_graph) == tuner.report_for(grid_graph).best

    def test_explicit_sources_respected(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        report = tuner.probe(grid_graph, sources=(5,))
        assert report.sources == (5,)

    def test_predict_scales_linearly(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        name = DEFAULT_CANDIDATES[0]
        one = tuner.predict_ms(grid_graph, name, 1)
        assert tuner.predict_ms(grid_graph, name, 10) == pytest.approx(10 * one)

    def test_unknown_candidate_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(candidates=("rho", "warp-drive"))

    def test_unknown_spec_candidate_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(candidates=("rho", "warp-drive(x=1)"))

    def test_probe_executes_specs_verbatim(self, grid_graph, monkeypatch):
        """A probe run gets exactly the spec's params — the same call a
        consumer resolving the winning pick makes later, so measured and
        served configurations cannot drift apart."""
        seen = []
        sharded = STEPPERS["sharded"]
        real_solve = sharded.solve

        def spying_solve(graph, source, **kw):
            seen.append(kw)
            return real_solve(graph, source, **kw)

        monkeypatch.setattr(sharded, "solve", spying_solve)
        AutoTuner(
            candidates=("sharded(shards=2,transport=threads)",),
            num_sources=1, repeats=1,
        ).probe(grid_graph)
        assert seen
        assert all(kw == {"num_shards": 2, "transport": "threads"} for kw in seen)

    def test_pooled_probes_reuse_one_worker_pool(self, grid_graph, monkeypatch):
        """Every threaded probe run resolves to the same get_pool()-managed
        worker pool: no per-probe worker spawning."""
        from repro.parallel import pool as pool_mod

        handed_out = []
        real_get_pool = pool_mod.get_pool

        def counting_get_pool(num_threads):
            p = real_get_pool(num_threads)
            handed_out.append(p)
            return p

        monkeypatch.setattr("repro.shard.exchange.get_pool", counting_get_pool)
        tuner = AutoTuner(
            candidates=(
                "sharded(shards=2,transport=threads)",
                "sharded(shards=3,transport=threads)",
            ),
            num_sources=2, repeats=2,
        )
        tuner.probe(grid_graph)
        assert len(handed_out) == 8  # 2 candidates x 2 sources x 2 repeats
        assert len(set(map(id, handed_out))) == 1  # ... all the same pool

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(candidates=())

    def test_module_level_best_stepper(self, grid_graph):
        pick = best_stepper(grid_graph, tuner=AutoTuner(num_sources=1, repeats=1))
        assert pick in DEFAULT_CANDIDATES

    def test_custom_candidate_subset(self, grid_graph):
        tuner = AutoTuner(candidates=("rho", "delta-star"), num_sources=1, repeats=1)
        assert tuner.best_stepper(grid_graph) in ("rho", "delta-star")

    def test_row_for_unknown_raises(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        with pytest.raises(KeyError):
            tuner.report_for(grid_graph).row_for("nope")

    def test_tuned_pick_correct_distances(self, random_weighted_graph):
        """Whatever the tuner picks must still be exact."""
        from repro.sssp import dijkstra
        from repro.stepping import solve_with

        tuner = AutoTuner(num_sources=1, repeats=1)
        pick = tuner.best_stepper(random_weighted_graph)
        r = solve_with(pick, random_weighted_graph, 0)
        assert np.array_equal(r.distances, dijkstra(random_weighted_graph, 0).distances)

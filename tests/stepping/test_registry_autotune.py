"""Registry discovery and the per-graph auto-tuner."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.sssp.delta import DELTA_STRATEGIES, choose_delta
from repro.stepping import (
    DEFAULT_CANDIDATES,
    STEPPERS,
    AutoTuner,
    FunctionStepper,
    best_stepper,
    get_stepper,
    register_stepper,
    stepper_names,
)


class TestRegistry:
    def test_all_expected_members(self):
        assert {"rho", "radius", "delta-star", "delta", "graphblas",
                "dijkstra", "bellman-ford"} <= set(STEPPERS)

    def test_kind_filter(self):
        assert set(stepper_names(kind="stepping")) == {"rho", "radius", "delta-star"}
        assert "delta" in stepper_names(kind="legacy")

    def test_unknown_stepper_error_enumerates_registry(self):
        """The ValueError names every registered algorithm — the same
        discovery contract as ``choose_delta``'s strategy error."""
        with pytest.raises(ValueError) as excinfo:
            get_stepper("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        for name in STEPPERS:
            assert name in message

    def test_choose_delta_error_enumerates_its_registry(self):
        """Companion check: the Δ-strategy registry keeps the same
        one-registry enumeration contract the steppers adopted."""
        with pytest.raises(ValueError) as excinfo:
            choose_delta(gen.grid_2d(2, 2), "warp-drive")
        message = str(excinfo.value)
        for name in ("auto", *DELTA_STRATEGIES):
            assert name in message

    def test_register_stepper_roundtrip(self):
        probe = FunctionStepper("test-probe", lambda g, s, **kw: None, description="x")
        register_stepper(probe)
        try:
            assert get_stepper("test-probe") is probe
            assert "test-probe" in stepper_names()
        finally:
            del STEPPERS["test-probe"]

    def test_default_candidates_are_registered(self):
        for name in DEFAULT_CANDIDATES:
            assert name in STEPPERS


class TestAutoTuner:
    def test_probe_races_all_candidates(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        report = tuner.probe(grid_graph)
        assert {r.stepper for r in report.rows} == set(DEFAULT_CANDIDATES)
        assert all(r.ms_per_source > 0 for r in report.rows)
        assert report.best in DEFAULT_CANDIDATES

    def test_report_cached_per_epoch(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        first = tuner.report_for(grid_graph)
        assert tuner.report_for(grid_graph) is first  # cache hit, no re-probe
        grid_graph.epoch += 1  # what apply_edge_updates does
        assert tuner.report_for(grid_graph) is not first

    def test_stale_epochs_evicted_on_reprobe(self, grid_graph):
        """Epochs are monotone: probing epoch e+1 drops the epoch-e report,
        so a long-lived tuner doesn't accumulate one entry per mutation."""
        tuner = AutoTuner(num_sources=1, repeats=1)
        tuner.report_for(grid_graph)
        grid_graph.epoch += 1
        tuner.report_for(grid_graph)
        assert len(tuner._reports) == 1

    def test_dead_graph_reports_purged(self):
        """A collected graph's reports are retired (the id-reuse guard)."""
        import gc

        tuner = AutoTuner(num_sources=1, repeats=1)
        g = gen.grid_2d(4, 4)
        tuner.report_for(g)
        assert len(tuner._reports) == 1
        del g
        gc.collect()
        tuner._purge_dead()
        assert len(tuner._reports) == 0
        assert not tuner._tracked_gids

    def test_best_stepper_deterministic_given_report(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        assert tuner.best_stepper(grid_graph) == tuner.report_for(grid_graph).best

    def test_explicit_sources_respected(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        report = tuner.probe(grid_graph, sources=(5,))
        assert report.sources == (5,)

    def test_predict_scales_linearly(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        name = DEFAULT_CANDIDATES[0]
        one = tuner.predict_ms(grid_graph, name, 1)
        assert tuner.predict_ms(grid_graph, name, 10) == pytest.approx(10 * one)

    def test_unknown_candidate_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(candidates=("rho", "warp-drive"))

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(candidates=())

    def test_module_level_best_stepper(self, grid_graph):
        pick = best_stepper(grid_graph, tuner=AutoTuner(num_sources=1, repeats=1))
        assert pick in DEFAULT_CANDIDATES

    def test_custom_candidate_subset(self, grid_graph):
        tuner = AutoTuner(candidates=("rho", "delta-star"), num_sources=1, repeats=1)
        assert tuner.best_stepper(grid_graph) in ("rho", "delta-star")

    def test_row_for_unknown_raises(self, grid_graph):
        tuner = AutoTuner(num_sources=1, repeats=1)
        with pytest.raises(KeyError):
            tuner.report_for(grid_graph).row_for("nope")

    def test_tuned_pick_correct_distances(self, random_weighted_graph):
        """Whatever the tuner picks must still be exact."""
        from repro.sssp import dijkstra
        from repro.stepping import solve_with

        tuner = AutoTuner(num_sources=1, repeats=1)
        pick = tuner.best_stepper(random_weighted_graph)
        r = solve_with(pick, random_weighted_graph, 0)
        assert np.array_equal(r.distances, dijkstra(random_weighted_graph, 0).distances)

"""Stepper ≡ Dijkstra equivalence: the subsystem's core correctness claim.

Every stepping algorithm is a schedule over the same min-plus relaxation,
so final distances must be **bit-identical** (``np.array_equal``, not
allclose) to the Dijkstra reference — on random graphs, zero-weight
graphs, disconnected graphs, and the single-vertex graph alike.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.sssp import dijkstra
from repro.sssp.validate import check_against_dijkstra, check_optimality_conditions
from repro.stepping import (
    default_rho,
    get_stepper,
    solve_with,
    stepper_names,
    vertex_radii,
)

NEW_STEPPERS = ("rho", "radius", "delta-star")


@st.composite
def random_graphs(draw, allow_zero_weights=False):
    """Random weighted digraphs up to 40 vertices (zero weights optional)."""
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 160))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    w = rng.uniform(0.05, 2.0, size=m)
    if allow_zero_weights and m:
        w = np.where(rng.random(m) < 0.3, 0.0, w)
    return Graph.from_edges(src, dst, w, n=n)


class TestBitIdentityProperties:
    """Property tests: every stepper ≡ Dijkstra, bitwise."""

    @pytest.mark.parametrize("name", NEW_STEPPERS)
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, name, data):
        g = data.draw(random_graphs())
        source = data.draw(st.integers(0, g.num_vertices - 1))
        r = solve_with(name, g, source)
        assert np.array_equal(r.distances, dijkstra(g, source).distances)
        check_against_dijkstra(g, r)  # reuse the validate helpers too
        check_optimality_conditions(g, r)

    @pytest.mark.parametrize("name", NEW_STEPPERS)
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_zero_weight_graphs(self, name, data):
        """Zero-weight edges (tight cycles, zero-width windows) must not
        break a schedule."""
        g = data.draw(random_graphs(allow_zero_weights=True))
        source = data.draw(st.integers(0, g.num_vertices - 1))
        r = solve_with(name, g, source)
        assert np.array_equal(r.distances, dijkstra(g, source).distances)


class TestEdgeCaseGraphs:
    @pytest.mark.parametrize("name", NEW_STEPPERS)
    def test_single_vertex(self, name):
        g = Graph.empty(1)
        r = solve_with(name, g, 0)
        assert np.array_equal(r.distances, [0.0])

    @pytest.mark.parametrize("name", NEW_STEPPERS)
    def test_disconnected_components(self, name):
        # two components; the second is unreachable from source 0
        g = Graph.from_edges([0, 1, 3, 4], [1, 2, 4, 5], [1.0, 2.0, 1.0, 1.0], n=6)
        r = solve_with(name, g, 0)
        oracle = dijkstra(g, 0).distances
        assert np.array_equal(r.distances, oracle)
        assert r.num_reached == 3

    @pytest.mark.parametrize("name", NEW_STEPPERS)
    def test_no_edges(self, name):
        g = Graph.empty(5)
        r = solve_with(name, g, 2)
        expected = np.full(5, np.inf)
        expected[2] = 0.0
        assert np.array_equal(r.distances, expected)

    @pytest.mark.parametrize("name", NEW_STEPPERS)
    def test_all_zero_weights(self, name):
        g = Graph.from_edges([0, 1, 2], [1, 2, 0], [0.0, 0.0, 0.0], n=3)
        r = solve_with(name, g, 0)
        assert np.array_equal(r.distances, [0.0, 0.0, 0.0])

    @pytest.mark.parametrize("name", NEW_STEPPERS)
    def test_source_out_of_range(self, name):
        with pytest.raises(IndexError):
            solve_with(name, gen.grid_2d(3, 3), 99)

    def test_every_registered_stepper_on_grid(self, grid_graph):
        """The whole registry — legacy wrappers included — agrees on the
        mesh fixture."""
        oracle = dijkstra(grid_graph, 0).distances
        for name in stepper_names():
            r = solve_with(name, grid_graph, 0)
            assert np.array_equal(r.distances, oracle), name


class TestStepperParameters:
    def test_rho_one_is_dijkstra_order(self, diamond_graph):
        """ρ=1 settles one vertex per step — the Dijkstra limit."""
        r = solve_with("rho", diamond_graph, 0, rho=1)
        assert np.array_equal(r.distances, [0.0, 2.0, 5.0, 6.0])
        # 4 reachable vertices, one extraction each (none re-relaxes here)
        assert r.buckets_processed == 4

    def test_rho_infinite_is_bellman_ford(self, diamond_graph):
        """ρ ≥ n relaxes the whole frontier per step — the Bellman–Ford limit."""
        r = solve_with("rho", diamond_graph, 0, rho=10**9)
        assert np.array_equal(r.distances, [0.0, 2.0, 5.0, 6.0])

    def test_rho_rejects_nonpositive(self, diamond_graph):
        with pytest.raises(ValueError):
            solve_with("rho", diamond_graph, 0, rho=0)

    def test_default_rho_floor(self):
        assert default_rho(gen.grid_2d(2, 2)) == 64

    def test_delta_star_rejects_nonpositive(self, diamond_graph):
        with pytest.raises(ValueError):
            solve_with("delta-star", diamond_graph, 0, delta=0.0)

    def test_delta_star_explicit_delta(self, diamond_graph):
        r = solve_with("delta-star", diamond_graph, 0, delta=100.0)
        assert np.array_equal(r.distances, [0.0, 2.0, 5.0, 6.0])
        assert r.buckets_processed == 1  # one window covers everything

    def test_radius_k_sweep(self, random_weighted_graph):
        oracle = dijkstra(random_weighted_graph, 0).distances
        for k in (1, 2, 5, 50):
            r = solve_with("radius", random_weighted_graph, 0, k=k)
            assert np.array_equal(r.distances, oracle), f"k={k}"


class TestVertexRadii:
    def test_kth_smallest_out_weight(self):
        g = Graph.from_edges([0, 0, 0, 1], [1, 2, 3, 2], [3.0, 1.0, 2.0, 5.0], n=4)
        r1 = vertex_radii(g, 1)
        assert r1[0] == 1.0 and r1[1] == 5.0
        r2 = vertex_radii(g, 2)
        assert r2[0] == 2.0
        # degree < k → infinite radius (never constrains the bound)
        assert np.isinf(r2[1]) and np.isinf(r2[2]) and np.isinf(r2[3])

    def test_empty_graph(self):
        assert np.all(np.isinf(vertex_radii(Graph.empty(3), 1)))

    def test_rejects_bad_k(self, diamond_graph):
        with pytest.raises(ValueError):
            vertex_radii(diamond_graph, 0)


class TestResolveContract:
    def test_resolve_from_seeded_state(self, diamond_graph):
        """resolve() continues from arbitrary seeded state — the dynamic
        repair entry point."""
        n = diamond_graph.num_vertices
        for name in NEW_STEPPERS:
            d = np.full(n, np.inf)
            d[0] = 0.0
            active = np.zeros(n, dtype=bool)
            active[0] = True
            counters = get_stepper(name).resolve(diamond_graph, d, active)
            assert np.array_equal(d, [0.0, 2.0, 5.0, 6.0]), name
            assert counters["updates"] >= 3

    def test_legacy_steppers_reject_resolve(self, diamond_graph):
        s = get_stepper("dijkstra")
        assert not s.supports_resolve
        with pytest.raises(NotImplementedError):
            s.resolve(diamond_graph, np.zeros(4), np.zeros(4, dtype=bool))

    def test_default_params_reported(self, grid_graph):
        assert "rho" in get_stepper("rho").default_params(grid_graph)
        assert "k" in get_stepper("radius").default_params(grid_graph)
        assert get_stepper("delta-star").default_params(grid_graph)["delta"] > 0

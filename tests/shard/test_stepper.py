"""ShardedDeltaStepper ≡ Dijkstra, across every partition/transport knob,
plus the consumer integrations the registry promises (batch engine,
incremental repair, auto-tuner, view caching)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.shard import (
    ShardedDeltaStepper,
    default_num_shards,
    partition_graph,
    sharded_delta_stepping,
    sharded_view,
)
from repro.sssp import dijkstra
from repro.stepping import STEPPERS, get_stepper, solve_with


@st.composite
def random_graphs(draw, allow_zero_weights=False):
    """Random weighted digraphs up to 40 vertices (zero weights optional)."""
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 160))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    w = rng.uniform(0.05, 2.0, size=m)
    if allow_zero_weights and m:
        w = np.where(rng.random(m) < 0.3, 0.0, w)
    return Graph.from_edges(src, dst, w, n=n)


class TestBitIdentityProperties:
    """The subsystem's core claim: sharding never changes a distance bit."""

    @pytest.mark.parametrize("partitioner", ["contiguous", "bfs"])
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, partitioner, data):
        g = data.draw(random_graphs())
        source = data.draw(st.integers(0, g.num_vertices - 1))
        shards = data.draw(st.sampled_from([1, 2, 3, 5]))
        r = solve_with("sharded", g, source, num_shards=shards, partitioner=partitioner)
        assert np.array_equal(r.distances, dijkstra(g, source).distances)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_zero_weight_graphs(self, data):
        g = data.draw(random_graphs(allow_zero_weights=True))
        source = data.draw(st.integers(0, g.num_vertices - 1))
        r = solve_with("sharded", g, source, num_shards=3)
        assert np.array_equal(r.distances, dijkstra(g, source).distances)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_thread_transport_matches(self, data):
        """The pool transport must land on the same fixed point."""
        g = data.draw(random_graphs())
        source = data.draw(st.integers(0, g.num_vertices - 1))
        r = solve_with("sharded", g, source, num_shards=4, transport="threads:3")
        assert np.array_equal(r.distances, dijkstra(g, source).distances)


class TestEdgeCaseGraphs:
    def test_single_vertex(self):
        r = solve_with("sharded", Graph.empty(1), 0)
        assert np.array_equal(r.distances, [0.0])

    def test_no_edges(self):
        r = solve_with("sharded", Graph.empty(5), 2, num_shards=3)
        expected = np.full(5, np.inf)
        expected[2] = 0.0
        assert np.array_equal(r.distances, expected)

    def test_disconnected_components(self):
        g = Graph.from_edges([0, 1, 3, 4], [1, 2, 4, 5], [1.0, 2.0, 1.0, 1.0], n=6)
        r = solve_with("sharded", g, 0, num_shards=2)
        assert np.array_equal(r.distances, dijkstra(g, 0).distances)
        assert r.num_reached == 3

    def test_all_zero_weights(self):
        g = Graph.from_edges([0, 1, 2], [1, 2, 0], [0.0, 0.0, 0.0], n=3)
        r = solve_with("sharded", g, 0, num_shards=2)
        assert np.array_equal(r.distances, [0.0, 0.0, 0.0])

    def test_source_out_of_range(self):
        with pytest.raises(IndexError):
            solve_with("sharded", gen.grid_2d(3, 3), 99)

    def test_rejects_bad_params(self):
        g = gen.grid_2d(3, 3)
        with pytest.raises(ValueError):
            solve_with("sharded", g, 0, delta=0.0)
        with pytest.raises(ValueError):
            solve_with("sharded", g, 0, num_shards=0)
        with pytest.raises(ValueError):
            solve_with("sharded", g, 0, partitioner="metis")

    def test_non_integer_shards_named_in_error(self):
        """A spec like shards=2.0 must fail naming the knob, not as a
        numpy TypeError deep inside the partitioner."""
        g = gen.grid_2d(3, 3)
        with pytest.raises(ValueError, match="num_shards must be an integer"):
            solve_with("sharded(shards=2.0)", g, 0)
        with pytest.raises(ValueError, match="num_shards must be an integer"):
            solve_with("sharded(shards=four)", g, 0)

    def test_default_num_shards_bounds(self):
        assert default_num_shards(Graph.empty(1)) == 1
        assert default_num_shards(gen.grid_2d(8, 8)) == 4


class TestRegistryIntegration:
    def test_registered_with_resolve_support(self):
        s = get_stepper("sharded")
        assert isinstance(s, ShardedDeltaStepper)
        assert s.supports_resolve
        assert s.parallel_capable
        assert s.kind == "sharded"
        assert "sharded" in STEPPERS

    def test_result_carries_comm_metrics(self):
        g = gen.grid_2d(8, 8)
        r = sharded_delta_stepping(g, 0, num_shards=4)
        for key in ("shards", "partitioner", "cut_edges", "cut_fraction",
                    "exchanges", "entries_posted", "entries_carried",
                    "entries_applied", "bytes_carried", "transport"):
            assert key in r.extra, key
        assert r.extra["shards"] == 4
        assert r.extra["entries_carried"] > 0  # a mesh cut has traffic

    def test_default_params_reported(self):
        params = get_stepper("sharded").default_params(gen.grid_2d(4, 4))
        assert params["delta"] > 0
        assert params["num_shards"] >= 1
        assert params["partitioner"] in ("contiguous", "bfs")

    def test_resolve_from_seeded_state(self):
        g = Graph.from_edges(
            [0, 0, 1, 2], [1, 2, 2, 3], [2.0, 7.0, 3.0, 1.0], n=4
        )
        d = np.full(4, np.inf)
        d[0] = 0.0
        active = np.zeros(4, dtype=bool)
        active[0] = True
        counters = get_stepper("sharded").resolve(g, d, active, num_shards=2)
        assert np.array_equal(d, [0.0, 2.0, 5.0, 6.0])
        assert not active.any()  # consumed, like every other stepper
        assert counters["updates"] >= 3
        assert "comm" in counters and "params" in counters

    def test_batch_engine_dispatch(self):
        from repro.service.batch import batch_delta_stepping

        g = gen.grid_2d(6, 6)
        res = batch_delta_stepping(g, [0, 7, 20], method="sharded(shards=3)")
        for k, s in enumerate([0, 7, 20]):
            assert np.array_equal(res.distances[k], dijkstra(g, s).distances)

    def test_repair_dispatch(self):
        """repair_sssp(stepper="sharded") stays bit-identical through a
        general (delete + insert) mutation batch."""
        from repro.dynamic import apply_edge_updates, repair_sssp
        from repro.sssp.fused import fused_delta_stepping

        g = gen.road_network(6, 6, seed=5)
        before = fused_delta_stepping(g, 0, 1.0).distances
        src, dst, w = g.to_edges()
        applied = apply_edge_updates(
            g,
            inserts=[(int(src[0]), (int(dst[0]) + 3) % g.num_vertices, 0.5)],
            deletes=[(int(src[1]), int(dst[1]))],
        )
        rep = repair_sssp(
            g, 0, before, applied, stepper="sharded(shards=3)", validate=True
        )
        oracle = fused_delta_stepping(g, 0, 1.0).distances
        assert np.array_equal(rep.distances, oracle)

    def test_autotuner_races_sharded(self):
        from repro.stepping import AutoTuner

        tuner = AutoTuner(
            candidates=("delta", "sharded(shards=2)"), num_sources=1, repeats=1
        )
        report = tuner.probe(gen.grid_2d(8, 8))
        assert {r.stepper for r in report.rows} == {"delta", "sharded(shards=2)"}


class TestViewCache:
    def test_view_cached_per_epoch(self):
        g = gen.grid_2d(5, 5)
        first = sharded_view(g, 2, "contiguous")
        assert sharded_view(g, 2, "contiguous") is first
        g.epoch += 1
        rebuilt = sharded_view(g, 2, "contiguous")
        assert rebuilt is not first
        assert not rebuilt.is_stale()

    def test_stale_views_all_dropped_on_epoch_bump(self):
        g = gen.grid_2d(5, 5)
        sharded_view(g, 2, "contiguous")
        sharded_view(g, 3, "bfs")
        g.epoch += 1
        sharded_view(g, 2, "contiguous")
        views = g.meta["_shard_views"]
        assert all(not v.is_stale() for v in views.values())

    def test_graph_copy_does_not_inherit_views(self):
        """Graph.copy() shallow-copies meta; the cache must notice the
        views belong to the original graph and rebuild."""
        g = gen.grid_2d(5, 5)
        view = sharded_view(g, 2, "contiguous")
        clone = g.copy()
        # Graph.copy drops _-prefixed derived caches entirely: no dead
        # views keeping the original's slice arrays alive on the clone
        assert "_shard_views" not in clone.meta
        clone_view = sharded_view(clone, 2, "contiguous")
        assert clone_view is not view
        assert clone_view.graph is clone
        # and the two caches are independent afterwards: re-lookups on
        # either graph are hits, not mutual evictions
        assert sharded_view(g, 2, "contiguous") is view
        assert sharded_view(clone, 2, "contiguous") is clone_view

    def test_explicit_view_must_match_graph(self):
        g, other = gen.grid_2d(4, 4), gen.grid_2d(4, 4)
        sg = partition_graph(other, 2)
        with pytest.raises(ValueError, match="different graph"):
            solve_with("sharded", g, 0, sharded=sg)

    def test_stale_explicit_view_rejected(self):
        g = gen.grid_2d(4, 4)
        sg = partition_graph(g, 2)
        g.epoch += 1
        with pytest.raises(ValueError, match="stale"):
            solve_with("sharded", g, 0, sharded=sg)

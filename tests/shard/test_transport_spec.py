"""Transport spec mini-language: parsing shapes and numeric validation."""

import pytest

from repro.shard.exchange import (
    InProcessTransport,
    PoolTransport,
    make_transport,
    parse_transport_spec,
)


class TestParsing:
    def test_bare_name(self):
        assert parse_transport_spec("inline") == ("inline", None, {})

    def test_colon_arg(self):
        assert parse_transport_spec("threads:8") == ("threads", "8", {})

    def test_paren_params_keep_colons_in_values(self):
        name, arg, params = parse_transport_spec("chaos(inner=threads:4,seed=7)")
        assert (name, arg) == ("chaos", None)
        assert params == {"inner": "threads:4", "seed": "7"}

    def test_whitespace_is_tolerated(self):
        assert parse_transport_spec("  threads : 8 ") == ("threads", "8", {})

    def test_missing_close_paren(self):
        with pytest.raises(ValueError, match=r"missing '\)'"):
            parse_transport_spec("chaos(seed=7")

    def test_non_key_value_item(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_transport_spec("chaos(seed)")


class TestNumericValidation:
    @pytest.mark.parametrize("spec", ["threads:0", "threads:-2"])
    def test_nonpositive_thread_counts_rejected(self, spec):
        with pytest.raises(ValueError) as ei:
            make_transport(spec)
        # the error must name the offending spec, not just the number
        assert spec in str(ei.value)
        assert ">= 1" in str(ei.value)

    def test_non_numeric_thread_count_rejected(self):
        with pytest.raises(ValueError) as ei:
            make_transport("threads:lots")
        assert "threads:lots" in str(ei.value)
        assert "integer" in str(ei.value)

    def test_paren_thread_count(self):
        tr = make_transport("threads(n=2)")
        assert isinstance(tr, PoolTransport)
        assert tr.pool.num_threads == 2

    def test_paren_thread_count_validates_too(self):
        with pytest.raises(ValueError, match=">= 1"):
            make_transport("threads(n=0)")


class TestRegistry:
    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="known: .*inline.*threads"):
            make_transport("carrier-pigeon")

    def test_inline_rejects_arguments(self):
        with pytest.raises(ValueError, match="takes no argument"):
            make_transport("inline:4")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_transport("threads(n=2,color=red)")

    def test_instance_passes_through(self):
        tr = InProcessTransport()
        assert make_transport(tr) is tr

"""Partitioners and the ShardedGraph container on every graph shape the
stepper must survive: disconnected, power-law, single-vertex, zero-weight."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.shard import (
    PARTITIONERS,
    ShardedGraph,
    bfs_locality_partition,
    contiguous_partition,
    partition_graph,
    shard_graph,
)


def _power_law_graph(n=300, m=3, seed=7) -> Graph:
    return gen.barabasi_albert(n, m_per_node=m, seed=seed)


def _disconnected_graph() -> Graph:
    # two components + two fully isolated vertices
    return Graph.from_edges(
        [0, 1, 3, 4, 5], [1, 2, 4, 5, 3], [1.0, 2.0, 1.0, 1.0, 1.0], n=8
    )


def _zero_weight_graph() -> Graph:
    return Graph.from_edges(
        [0, 1, 2, 3, 0], [1, 2, 3, 0, 3], [0.0, 0.0, 1.0, 0.0, 0.0], n=5
    )


class TestOwnerArrays:
    """Both partitioners must produce a total, valid ownership map."""

    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    @pytest.mark.parametrize(
        "graph",
        [_power_law_graph(), _disconnected_graph(), _zero_weight_graph(),
         gen.grid_2d(6, 6), Graph.empty(1), Graph.empty(5)],
        ids=["power-law", "disconnected", "zero-weight", "grid", "single-vertex", "edgeless"],
    )
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    def test_every_vertex_owned(self, partitioner, graph, k):
        owner = PARTITIONERS[partitioner](graph, k)
        assert owner.shape == (graph.num_vertices,)
        assert owner.min(initial=0) >= 0
        assert owner.max(initial=0) < max(1, min(k, graph.num_vertices))

    def test_contiguous_is_contiguous(self):
        owner = contiguous_partition(gen.grid_2d(8, 8), 4)
        # contiguous ranges: owner ids are non-decreasing over vertex ids
        assert np.all(np.diff(owner) >= 0)

    def test_contiguous_balances_edge_mass(self):
        g = _power_law_graph()
        sg = partition_graph(g, 4, "contiguous")
        assert sg.num_shards >= 2
        # no shard carries more than ~2x the ideal even share
        assert sg.edge_balance() < 2.0

    def test_bfs_covers_disconnected_components(self):
        g = _disconnected_graph()
        owner = bfs_locality_partition(g, 2)
        assert owner.shape == (8,)  # isolated vertices owned too

    def test_bfs_beats_or_matches_random_labelling_on_mesh(self):
        # scramble the mesh's vertex ids: contiguous-by-id partitioning is
        # then meaningless, but BFS rediscovers the locality
        g = gen.grid_2d(10, 10)
        rng = np.random.default_rng(3)
        perm = rng.permutation(g.num_vertices)
        src, dst, w = g.to_edges()
        scrambled = Graph.from_edges(perm[src], perm[dst], w, n=g.num_vertices)
        cut_contig = partition_graph(scrambled, 4, "contiguous").num_cut_edges
        cut_bfs = partition_graph(scrambled, 4, "bfs").num_cut_edges
        assert cut_bfs < cut_contig

    def test_unknown_partitioner_enumerates_registry(self):
        with pytest.raises(ValueError) as excinfo:
            partition_graph(gen.grid_2d(2, 2), 2, "metis")
        message = str(excinfo.value)
        assert "metis" in message
        for name in PARTITIONERS:
            assert name in message

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            partition_graph(gen.grid_2d(2, 2), 0)


class TestShardedGraph:
    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    @pytest.mark.parametrize(
        "graph",
        [_power_law_graph(), _disconnected_graph(), _zero_weight_graph(), gen.grid_2d(6, 6)],
        ids=["power-law", "disconnected", "zero-weight", "grid"],
    )
    def test_slices_partition_the_edge_set(self, partitioner, graph):
        """Every stored edge appears in exactly one shard's CSR slice,
        with its weight intact."""
        sg = partition_graph(graph, 3, partitioner)
        assert sum(s.num_edges for s in sg.shards) == graph.num_edges
        # reassemble (src, dst, w) triples from the slices and compare
        srcs, dsts, ws = [], [], []
        for s in sg.shards:
            assert np.array_equal(sg.owner[s.owned], np.full(len(s.owned), s.id))
            srcs.append(np.repeat(s.owned, np.diff(s.indptr)))
            dsts.append(s.indices)
            ws.append(s.weights)
        got_s, got_d, got_w = map(np.concatenate, (srcs, dsts, ws))
        order = np.lexsort((got_d, got_s))
        want_s, want_d, want_w = graph.to_edges()
        assert np.array_equal(got_s[order], want_s)
        assert np.array_equal(got_d[order], want_d)
        assert np.array_equal(got_w[order], want_w)

    def test_cut_edges_and_halo_consistent(self):
        g = gen.grid_2d(6, 6)
        sg = partition_graph(g, 3, "contiguous")
        for s in sg.shards:
            # cut mask flags exactly the targets owned elsewhere
            assert np.array_equal(s.cut_mask, sg.owner[s.indices] != s.id)
            assert np.array_equal(s.halo, np.unique(s.indices[s.cut_mask]))
            assert not np.isin(s.halo, s.owned).any()
        assert sg.num_cut_edges == sum(s.num_cut_edges for s in sg.shards)
        assert 0.0 < sg.cut_fraction < 1.0

    def test_single_vertex_graph(self):
        sg = partition_graph(Graph.empty(1), 3)
        assert sg.num_shards == 1
        assert sg.shards[0].num_owned == 1
        assert sg.num_cut_edges == 0
        assert sg.cut_fraction == 0.0

    def test_one_shard_has_no_cut(self):
        sg = partition_graph(_power_law_graph(), 1)
        assert sg.num_shards == 1
        assert sg.num_cut_edges == 0
        assert sg.shards[0].num_edges == sg.graph.num_edges

    def test_local_rows_roundtrip(self):
        sg = partition_graph(gen.grid_2d(5, 5), 4, "contiguous")
        for s in sg.shards:
            rows = s.local_rows(s.owned)
            assert np.array_equal(rows, np.arange(s.num_owned))

    def test_staleness_tracks_epoch(self):
        g = gen.grid_2d(4, 4)
        sg = partition_graph(g, 2)
        assert not sg.is_stale()
        g.epoch += 1  # what apply_edge_updates does
        assert sg.is_stale()

    def test_custom_owner_array(self):
        g = _disconnected_graph()
        owner = np.array([0, 0, 1, 1, 0, 1, 0, 1])
        sg = shard_graph(g, owner, partitioner="handmade")
        assert isinstance(sg, ShardedGraph)
        assert sg.partitioner == "handmade"
        assert sg.num_shards == 2
        assert np.array_equal(sg.owner, owner)

    def test_bad_owner_array_rejected(self):
        g = gen.grid_2d(2, 2)
        with pytest.raises(ValueError):
            shard_graph(g, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            shard_graph(g, np.array([0, -1, 0, 0]))

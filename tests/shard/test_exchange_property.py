"""Property: dup/reordered deliveries through flush are idempotent.

Min-plus relaxation is the algebra that makes the chaos transport's
delivery faults harmless: IEEE min is associative and commutative, so
duplicating a box's pending entries into another outbox or permuting
the delivery order may change ``entries_applied`` but never the
post-flush distance array.  This is the property the chaos matrix
relies on end to end; here it is pinned directly at the exchange.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import ChaosTransport, FaultPlan
from repro.shard.exchange import FrontierExchange

N = 40
SHARDS = 4

posts_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SHARDS - 1),
        st.integers(min_value=0, max_value=N - 1),
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=60,
)


def run_round(posts, chaos=None, dist=None):
    ex = FrontierExchange(SHARDS, N)
    for shard, target, d in posts:
        ex.post(shard, np.array([target], dtype=np.int64),
                np.array([d], dtype=np.float64))
    if chaos is not None:
        chaos.before_flush(ex)
    dist = np.full(N, np.inf) if dist is None else dist
    improved = ex.flush(dist)
    return dist, improved, ex.stats


@given(posts=posts_strategy, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_dup_and_reorder_never_change_the_distances(posts, seed):
    plan = FaultPlan(seed=seed, dup_rate=0.7, reorder_rate=0.7)
    chaos = ChaosTransport(plan, inner="inline")

    clean_dist, clean_improved, clean_stats = run_round(posts)
    faulty_dist, faulty_improved, faulty_stats = run_round(posts, chaos=chaos)

    # bit-identical outcome: the authoritative array and the returned
    # frontier agree exactly, duplicates and reorders notwithstanding
    np.testing.assert_array_equal(clean_dist, faulty_dist)
    np.testing.assert_array_equal(clean_improved, faulty_improved)

    # the *ledger* is allowed to differ — duplicated deliveries can only
    # add volume, never remove it
    assert faulty_stats.entries_posted >= clean_stats.entries_posted
    assert faulty_stats.entries_applied == clean_stats.entries_applied


@given(posts=posts_strategy, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_redelivery_into_a_warm_array_is_idempotent(posts, seed):
    """Flushing the same candidate set twice (total re-delivery) applies
    zero entries the second time and leaves the array bit-identical."""
    plan = FaultPlan(seed=seed, dup_rate=0.7, reorder_rate=0.7)
    dist, _, _ = run_round(posts)
    before = dist.copy()
    chaos = ChaosTransport(plan, inner="inline")
    dist, improved, stats = run_round(posts, chaos=chaos, dist=dist)
    np.testing.assert_array_equal(dist, before)
    assert len(improved) == 0
    assert stats.entries_applied == 0

"""The frontier-exchange protocol: outbox accumulation, min-combine
delivery, communication counters, and the transport plug points."""

import numpy as np
import pytest

from repro.parallel.pool import get_pool
from repro.shard import (
    ExchangeStats,
    FrontierExchange,
    InProcessTransport,
    Outbox,
    PoolTransport,
    Transport,
    TRANSPORTS,
    make_transport,
)


class TestOutbox:
    def test_post_min_combines_duplicates(self):
        box = Outbox(6)
        box.post(np.array([2, 4, 2]), np.array([5.0, 1.0, 3.0]))
        box.post(np.array([2]), np.array([7.0]))
        keys, vals = box.take()
        assert np.array_equal(keys, [2, 4])
        assert np.array_equal(vals, [3.0, 1.0])

    def test_take_drains(self):
        box = Outbox(4)
        box.post(np.array([1]), np.array([2.0]))
        box.take()
        assert not box
        keys, vals = box.take()
        assert len(keys) == 0 and len(vals) == 0

    def test_buffer_reset_between_rounds(self):
        box = Outbox(4)
        box.post(np.array([1]), np.array([2.0]))
        box.take()
        box.post(np.array([1]), np.array([5.0]))
        _, vals = box.take()
        assert vals[0] == 5.0  # the old 2.0 must not leak into round two

    def test_empty_post_is_free(self):
        box = Outbox(4)
        box.post(np.empty(0, dtype=np.int64), np.empty(0))
        assert not box


class TestFrontierExchange:
    def test_flush_min_combines_across_senders(self):
        ex = FrontierExchange(num_shards=3, num_vertices=8)
        dist = np.full(8, np.inf)
        ex.post(0, np.array([5]), np.array([4.0]))
        ex.post(1, np.array([5]), np.array([3.0]))
        ex.post(2, np.array([6]), np.array([9.0]))
        improved = ex.flush(dist)
        assert np.array_equal(improved, [5, 6])
        assert dist[5] == 3.0 and dist[6] == 9.0

    def test_delivery_filters_non_improvements(self):
        ex = FrontierExchange(num_shards=1, num_vertices=4)
        dist = np.array([0.0, 1.0, np.inf, np.inf])
        ex.post(0, np.array([1, 2]), np.array([5.0, 2.0]))
        improved = ex.flush(dist)
        assert np.array_equal(improved, [2])  # 5.0 lost to the cached 1.0
        assert dist[1] == 1.0

    def test_counters_track_volume(self):
        ex = FrontierExchange(num_shards=2, num_vertices=8)
        dist = np.full(8, np.inf)
        ex.post(0, np.array([3, 3, 4]), np.array([2.0, 1.0, 6.0]))  # 3 posted
        ex.post(1, np.array([4]), np.array([5.0]))  # 1 posted
        ex.flush(dist)
        s = ex.stats
        assert s.exchanges == 1
        assert s.entries_posted == 4
        assert s.entries_carried == 3  # {3, 4} from shard 0 + {4} from shard 1
        assert s.entries_applied == 2  # vertex 4 applies once (min 5.0)
        assert s.bytes_carried == 3 * 16
        assert 0 < s.dedup_ratio < 1

    def test_empty_flush_counts_nothing(self):
        ex = FrontierExchange(num_shards=2, num_vertices=4)
        out = ex.flush(np.full(4, np.inf))
        assert len(out) == 0
        assert ex.stats.exchanges == 0

    def test_stats_as_dict_keys(self):
        keys = set(ExchangeStats().as_dict())
        assert keys == {
            "exchanges", "entries_posted", "entries_carried",
            "entries_applied", "bytes_carried",
        }


class TestPerSuperstep:
    def _run_rounds(self):
        ex = FrontierExchange(num_shards=2, num_vertices=8)
        dist = np.full(8, np.inf)
        ex.post(0, np.array([3, 3, 4]), np.array([2.0, 1.0, 6.0]))
        ex.post(1, np.array([4]), np.array([5.0]))
        ex.flush(dist)
        ex.post(0, np.array([5]), np.array([7.0]))
        ex.flush(dist)
        ex.flush(dist)  # empty round: no row
        return ex

    def test_rows_sum_to_aggregates(self):
        ex = self._run_rounds()
        rows = ex.stats.per_superstep()
        agg = ex.stats.as_dict()
        assert len(rows) == agg["exchanges"] == 2
        for key in (
            "entries_posted", "entries_carried", "entries_applied", "bytes_carried",
        ):
            assert sum(r[key] for r in rows) == agg[key], key

    def test_rows_are_indexed_and_per_round(self):
        ex = self._run_rounds()
        rows = ex.stats.per_superstep()
        assert [r["superstep"] for r in rows] == [0, 1]
        assert rows[0]["entries_posted"] == 4
        assert rows[1] == {
            "superstep": 1, "entries_posted": 1, "entries_carried": 1,
            "entries_applied": 1, "bytes_carried": 16,
        }

    def test_per_superstep_returns_copies(self):
        ex = self._run_rounds()
        ex.stats.per_superstep()[0]["entries_posted"] = -1
        assert ex.stats.per_superstep()[0]["entries_posted"] == 4

    def test_empty_rounds_add_no_rows(self):
        ex = FrontierExchange(num_shards=1, num_vertices=4)
        ex.flush(np.full(4, np.inf))
        assert ex.stats.per_superstep() == []

    def test_sharded_run_rows_match_result_aggregates(self, random_weighted_graph):
        from repro.stepping import solve_with

        res = solve_with("sharded(shards=3)", random_weighted_graph, 0)
        rows = res.extra["per_superstep"]
        assert len(rows) == res.extra["exchanges"] > 0
        for key in (
            "entries_posted", "entries_carried", "entries_applied", "bytes_carried",
        ):
            assert sum(r[key] for r in rows) == res.extra[key], key


class TestTransports:
    def test_inline_runs_in_order(self):
        tr = InProcessTransport()
        assert tr.run([lambda: 1, lambda: 2]) == [1, 2]

    def test_pool_transport_uses_shared_pool(self):
        pool = get_pool(2)
        tr = PoolTransport(pool=pool)
        assert tr.pool is pool
        assert tr.run([lambda k=k: k * 2 for k in range(4)]) == [0, 2, 4, 6]

    def test_make_transport_specs(self):
        assert isinstance(make_transport(None), InProcessTransport)
        assert isinstance(make_transport("inline"), InProcessTransport)
        tr = make_transport("threads:3")
        assert isinstance(tr, PoolTransport)
        assert tr.pool.num_threads == 3

    def test_make_transport_defaults_to_pool_when_given_one(self):
        pool = get_pool(2)
        tr = make_transport(None, pool=pool)
        assert isinstance(tr, PoolTransport) and tr.pool is pool

    def test_make_transport_passes_instances_through(self):
        tr = InProcessTransport()
        assert make_transport(tr) is tr

    def test_unknown_transport_enumerates_registry(self):
        with pytest.raises(ValueError) as excinfo:
            make_transport("carrier-pigeon")
        message = str(excinfo.value)
        for name in TRANSPORTS:
            assert name in message

    def test_transport_is_abstract(self):
        with pytest.raises(TypeError):
            Transport()

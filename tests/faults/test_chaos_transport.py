"""ChaosTransport: injection mechanics, determinism, bit-identity."""

import numpy as np
import pytest

from repro.faults import ChaosTransport, FaultInjected, FaultPlan
from repro.graphs.generators import watts_strogatz
from repro.obs import Recorder
from repro.parallel.pool import BatchError
from repro.shard.exchange import make_transport
from repro.shard.stepper import ShardedDeltaStepper
from repro.sssp.reference import dijkstra


@pytest.fixture(scope="module")
def graph():
    return watts_strogatz(200, 6, 0.1, seed=5)


class TestInjection:
    def test_injected_failure_is_fail_stop(self):
        plan = FaultPlan(seed=0, fail_rate=1.0, max_failures=10)
        tr = ChaosTransport(plan, inner="inline")
        ran = []
        with pytest.raises(BatchError) as ei:
            tr.run([lambda: ran.append(0), lambda: ran.append(1)])
        # fail-stop before the body: injected steps never ran
        assert len(ran) + len(ei.value.failures) == 2
        assert all(isinstance(e, FaultInjected) for _, e in ei.value.failures)

    def test_clean_plan_is_transparent(self):
        tr = ChaosTransport(FaultPlan(seed=0), inner="inline")
        assert tr.run([lambda: "a", lambda: "b"]) == ["a", "b"]

    def test_name_nests_inner(self):
        tr = ChaosTransport(FaultPlan(), inner="threads:2")
        assert tr.name == "chaos[threads[2]]"

    def test_spec_form_via_registry(self):
        tr = make_transport("chaos(inner=threads:2,seed=3,fail_rate=0.5)")
        assert isinstance(tr, ChaosTransport)
        assert tr.plan.seed == 3
        assert tr.plan.fail_rate == 0.5
        assert tr.inner.name == "threads[2]"

    def test_spec_rejects_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_transport("chaos(frobnicate=1)")


class TestDeterminismAcrossInnerTransports:
    def test_same_schedule_inline_vs_threads(self, graph):
        """Serial draws: the injected schedule must not depend on how the
        inner transport interleaves its workers."""
        counts = {}
        for inner in ("inline", "threads:2"):
            plan = FaultPlan(seed=9, fail_rate=0.3, dup_rate=0.3,
                             reorder_rate=0.3, max_failures=16)
            rec = Recorder()
            ShardedDeltaStepper().solve(
                graph, 0, num_shards=4,
                transport=f_resilient(plan, inner),
                checkpoint_every=2, max_restores=32, recorder=rec,
            )
            counts[inner] = {
                k: v for k, v in rec.metrics.snapshot()["counters"].items()
                if k.startswith("faults.")
            }
        assert counts["inline"] == counts["threads:2"]
        assert counts["inline"]["faults.injected"] > 0


def f_resilient(plan, inner):
    from repro.faults import ResilientTransport, RetryPolicy

    return ResilientTransport(
        inner=ChaosTransport(plan, inner=inner),
        policy=RetryPolicy(max_attempts=4, base_delay_ms=0.0, jitter=0.0),
    )


class TestBitIdentity:
    @pytest.mark.parametrize("plan_kw", [
        {"fail_rate": 0.3, "max_failures": 16},
        {"dup_rate": 0.5, "reorder_rate": 0.5},
        {"fail_rate": 0.2, "dup_rate": 0.3, "reorder_rate": 0.3,
         "max_failures": 16},
    ])
    def test_identical_to_dijkstra_under_faults(self, graph, plan_kw):
        expected = dijkstra(graph, 0).distances
        plan = FaultPlan(seed=21, **plan_kw)
        result = ShardedDeltaStepper().solve(
            graph, 0, num_shards=4,
            transport=f_resilient(plan, "inline"),
            checkpoint_every=2, max_restores=32,
        )
        assert plan.injected > 0, "plan injected nothing; test is vacuous"
        np.testing.assert_array_equal(result.distances, expected)

"""QueryService degraded mode: breaker wiring, deadlines, shedding."""

import numpy as np
import pytest

from repro.faults import CircuitBreaker, CircuitOpenError, MutationShedError
from repro.graphs.generators import watts_strogatz
from repro.obs import Recorder
from repro.service.batch import batch_delta_stepping
from repro.service.landmarks import LandmarkIndex
from repro.service.server import QueryService
from repro.sssp.reference import dijkstra


@pytest.fixture(scope="module")
def graph():
    return watts_strogatz(120, 6, 0.1, seed=8)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def scripted_solver(fail_first):
    calls = {"n": 0}

    def solver(graph, batch, **kwargs):
        calls["n"] += 1
        if calls["n"] <= fail_first:
            raise RuntimeError("scripted outage")
        return batch_delta_stepping(graph, batch, **kwargs)

    solver.calls = calls
    return solver


def make_service(graph, fail_first=3, landmarks=True, recorder=None, clock=None):
    clock = clock or FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, reset_after_s=10.0, clock=clock)
    service = QueryService(
        graph,
        landmarks=LandmarkIndex.build(graph, num_landmarks=3) if landmarks else None,
        breaker=breaker,
        solver=scripted_solver(fail_first),
        recorder=recorder,
    )
    return service, breaker, clock


class TestDegradedAnswers:
    def test_solver_failure_degrades_to_landmark_bounds(self, graph):
        service, breaker, _ = make_service(graph)
        resp = service.query(0)
        assert resp.degraded and not resp.exact
        assert resp.distances is not None  # landmark upper bounds, not a crash
        assert service.stats().degraded_answers == 1

    def test_consecutive_failures_trip_and_open_rejects(self, graph):
        service, breaker, _ = make_service(graph, fail_first=2)
        service.query(0)
        service.query(1)
        assert breaker.state == "open"
        # while open: no solver call at all, straight to landmark answers
        before = service._solver.calls["n"]
        resp = service.query(2)
        assert resp.degraded
        assert service._solver.calls["n"] == before

    def test_cached_answers_survive_open_breaker(self, graph):
        service, breaker, clock = make_service(graph, fail_first=0)
        exact = service.query(5)
        assert exact.exact
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        again = service.query(5)
        assert again.exact and again.from_cache and not again.degraded
        np.testing.assert_array_equal(again.distances, exact.distances)

    def test_no_landmarks_propagates_failure(self, graph):
        service, _, _ = make_service(graph, landmarks=False)
        with pytest.raises(RuntimeError, match="scripted outage"):
            service.query(0)

    def test_no_landmarks_open_breaker_raises_circuit_open(self, graph):
        service, breaker, _ = make_service(graph, fail_first=0, landmarks=False)
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            service.query(7)

    def test_recovery_is_bit_identical(self, graph):
        service, breaker, clock = make_service(graph, fail_first=2)
        service.query(0)
        service.query(1)
        assert breaker.state == "open"
        clock.t = 11.0  # half-open; scripted failures are spent
        resp = service.query(3)
        assert resp.exact and not resp.degraded
        assert breaker.state == "closed"
        np.testing.assert_array_equal(
            resp.distances, dijkstra(graph, 3).distances
        )


class TestMutationShedding:
    def test_open_breaker_sheds_mutations(self, graph):
        service, breaker, _ = make_service(graph, fail_first=0)
        for _ in range(3):
            breaker.record_failure()
        epoch = graph.epoch
        with pytest.raises(MutationShedError):
            service.mutate(reweights=[(0, int(graph.indices[0]), 2.0)], strict=False)
        assert graph.epoch == epoch  # nothing was touched
        assert service.stats().mutations_shed == 1

    def test_half_open_admits_mutations(self, graph):
        service, breaker, clock = make_service(graph, fail_first=0)
        for _ in range(3):
            breaker.record_failure()
        clock.t = 11.0
        report = service.mutate(
            reweights=[(0, int(graph.indices[0]), 2.0)], strict=False
        )
        assert report.epoch == graph.epoch


class TestDeadlinesAndTelemetry:
    def test_default_deadline_marks_misses(self, graph):
        service = QueryService(graph, default_deadline_ms=1e-6)
        resp = service.query(0)
        assert resp.deadline_missed
        assert resp.query.max_latency_ms == 1e-6
        assert service.stats().deadline_misses == 1

    def test_default_deadline_validation(self, graph):
        with pytest.raises(ValueError):
            QueryService(graph, default_deadline_ms=0.0)

    def test_gauges_and_counters(self, graph):
        rec = Recorder()
        service, breaker, _ = make_service(graph, fail_first=2, recorder=rec)
        service.query(0)
        service.query(1)
        snap = rec.metrics.snapshot()
        assert snap["gauges"]["service.degraded"] == 1.0
        assert snap["gauges"]["service.breaker_state"] == 2.0  # open
        assert snap["counters"]["service.solver_failures"] == 2
        assert snap["counters"]["service.degraded_answers"] == 2
        service.query(2)  # rejected by the open breaker
        counters = rec.metrics.snapshot()["counters"]
        assert counters["service.breaker_rejections"] >= 1

    def test_stats_surface_breaker_state(self, graph):
        service, breaker, _ = make_service(graph, fail_first=2)
        service.query(0)
        service.query(1)
        stats = service.stats()
        assert stats.breaker_state == "open"
        assert stats.breaker_trips == 1
        # and a breaker-less service reports the neutral sentinel
        assert QueryService(graph).stats().breaker_state == "none"

"""Superstep checkpoints: restore + re-execute is bit-identical."""

import numpy as np
import pytest

from repro.faults import (
    ChaosTransport,
    FaultPlan,
    ResilientTransport,
    RetryExhausted,
    RetryPolicy,
)
from repro.graphs.generators import watts_strogatz
from repro.obs import Recorder
from repro.shard.stepper import ShardedDeltaStepper
from repro.sssp.reference import dijkstra


@pytest.fixture(scope="module")
def graph():
    return watts_strogatz(150, 6, 0.1, seed=2)


def lossy_transport(seed=13, max_attempts=1):
    """A stack whose retry layer gives up immediately: every injected
    failure escalates to the checkpoint layer."""
    return ResilientTransport(
        inner=ChaosTransport(
            FaultPlan(seed=seed, fail_rate=0.25, max_failures=24), inner="inline"
        ),
        policy=RetryPolicy(max_attempts=max_attempts, base_delay_ms=0.0, jitter=0.0),
    )


class TestCheckpointRestore:
    def test_restore_path_is_bit_identical(self, graph):
        expected = dijkstra(graph, 0).distances
        rec = Recorder()
        result = ShardedDeltaStepper().solve(
            graph, 0, num_shards=4, transport=lossy_transport(),
            checkpoint_every=2, max_restores=64, recorder=rec,
        )
        assert result.extra["restores"] > 0, "no restore happened; test is vacuous"
        np.testing.assert_array_equal(result.distances, expected)
        counters = rec.metrics.snapshot()["counters"]
        assert counters["checkpoint.restores"] == result.extra["restores"]
        assert counters["checkpoint.snapshots"] >= 1

    def test_exchange_ledger_survives_recovery(self, graph):
        """Rows-sum-to-aggregates must hold across restores."""
        result = ShardedDeltaStepper().solve(
            graph, 0, num_shards=4, transport=lossy_transport(seed=3),
            checkpoint_every=2, max_restores=64,
        )
        assert result.extra["restores"] > 0
        rows = result.extra["per_superstep"]
        assert sum(r["entries_applied"] for r in rows) == result.extra["entries_applied"]
        assert sum(r["entries_carried"] for r in rows) == result.extra["entries_carried"]

    def test_without_checkpoints_failure_is_fatal(self, graph):
        with pytest.raises(RetryExhausted):
            ShardedDeltaStepper().solve(
                graph, 0, num_shards=4, transport=lossy_transport(),
            )

    def test_restore_budget_exhaustion_reraises(self, graph):
        with pytest.raises(RetryExhausted):
            ShardedDeltaStepper().solve(
                graph, 0, num_shards=4, transport=lossy_transport(),
                checkpoint_every=2, max_restores=0,
            )

    def test_checkpointing_a_clean_run_changes_nothing(self, graph):
        expected = dijkstra(graph, 0).distances
        result = ShardedDeltaStepper().solve(
            graph, 0, num_shards=4, transport="inline", checkpoint_every=1,
        )
        assert result.extra["restores"] == 0
        np.testing.assert_array_equal(result.distances, expected)

    @pytest.mark.parametrize("bad", [0, -3, True])
    def test_checkpoint_every_validation(self, graph, bad):
        with pytest.raises((ValueError, TypeError)):
            ShardedDeltaStepper().solve(
                graph, 0, num_shards=2, checkpoint_every=bad,
            )

    def test_spec_alias_checkpoint(self, graph):
        """The stepper spec mini-language exposes the cadence."""
        from repro.stepping import resolve_stepper_spec

        stepper, params = resolve_stepper_spec("sharded(shards=2,checkpoint=2)")
        assert params == {"num_shards": 2, "checkpoint_every": 2}
        result = stepper.solve(graph, 0, **params)
        assert result.extra["checkpoint_every"] == 2
        np.testing.assert_array_equal(
            result.distances, dijkstra(graph, 0).distances
        )

"""The chaos harness: matrix cells, breaker drill, fleet metrics merge."""

import pytest

from repro.faults.harness import (
    DEFAULT_TRANSPORTS,
    named_fault_plans,
    run_breaker_drill,
    run_chaos_matrix,
)
from repro.obs.metrics import MetricsRegistry


class TestFaultPlans:
    def test_named_plans_cover_the_failure_modes(self):
        plans = named_fault_plans()
        assert set(plans) == {"clean", "failures", "stragglers", "duplicates", "mixed"}
        assert plans["clean"].fail_rate == 0.0
        assert plans["failures"].max_failures > 0
        assert plans["duplicates"].dup_rate > 0 and plans["duplicates"].reorder_rate > 0

    def test_seed_threads_through(self):
        a, b = named_fault_plans(seed=1), named_fault_plans(seed=2)
        assert a["failures"].seed != b["failures"].seed


class TestChaosMatrix:
    @pytest.fixture(scope="class")
    def report(self):
        # inline-only keeps the smoke matrix fast; transport parity is
        # covered separately in test_chaos_transport.py
        return run_chaos_matrix(smoke=True, transports=("inline",))

    def test_smoke_matrix_is_green(self, report):
        assert report.ok
        assert report.breaker["ok"]

    def test_every_cell_is_bit_identical_and_bounded(self, report):
        plans = named_fault_plans()
        assert len(report.cells) == 2 * len(plans)  # 2 smoke workloads x plans
        for cell in report.cells:
            assert cell.identical, f"{cell.workload}/{cell.plan} diverged"
            assert cell.retry_attempts <= cell.retry_bound
            assert cell.transport == "inline"

    def test_faulty_plans_actually_inject(self, report):
        assert all(
            c.faults_injected == 0 for c in report.cells if c.plan == "clean"
        )
        assert any(
            c.faults_injected > 0 for c in report.cells if c.plan != "clean"
        )

    def test_fleet_metrics_aggregate_all_cells(self, report):
        counters = report.metrics.snapshot()["counters"]
        # cells count every *drawn* injection; the counter only counts
        # injections that materialized (a duplication drawn against an
        # empty outbox is a no-op), so it is bounded by the draw total
        assert 0 < counters["faults.injected"] <= sum(
            c.faults_injected for c in report.cells
        )
        assert counters["retry.attempts"] == sum(
            c.retry_attempts for c in report.cells
        )
        assert counters.get("checkpoint.snapshots", 0) > 0

    def test_as_dict_round_trips(self, report):
        d = report.as_dict()
        assert d["ok"] is True
        assert len(d["cells"]) == len(report.cells)
        assert {"workload", "plan", "transport", "identical"} <= set(d["cells"][0])

    def test_default_transports_include_a_parallel_one(self):
        assert "inline" in DEFAULT_TRANSPORTS
        assert any(t.startswith("threads") for t in DEFAULT_TRANSPORTS)


class TestBreakerDrill:
    def test_drill_passes_every_check(self):
        drill = run_breaker_drill()
        assert drill["ok"], drill
        for key in (
            "failure_degrades", "breaker_trips", "second_failure_degrades",
            "mutation_shed", "failed_probe_reopens", "recovery_exact",
        ):
            assert drill["checks"][key], key


class TestRegistryMerge:
    def test_counters_add_and_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("hits", 3)
        b.inc("hits", 4)
        b.inc("misses", 1)
        a.gauge("level").set(1.0)
        b.gauge("level").set(2.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["hits"] == 7
        assert snap["counters"]["misses"] == 1
        assert snap["gauges"]["level"] == 2.0

    def test_histograms_fold_same_ladder(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1.0, 5.0):
            a.observe("lat", v)
        for v in (2.0, 50.0):
            b.observe("lat", v)
        a.merge(b)
        h = a.snapshot()["histograms"]["lat"]
        assert h["count"] == 4
        assert h["min"] == 1.0 and h["max"] == 50.0

    def test_histogram_ladder_mismatch_is_an_error(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        b.histogram("lat", buckets=(10.0, 20.0)).observe(15.0)
        with pytest.raises(ValueError, match="bucket"):
            a.merge(b)

    def test_merge_is_additive_not_destructive(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("only_a")
        b.inc("only_b")
        a.merge(b)
        counters = a.snapshot()["counters"]
        assert counters == {"only_a": 1, "only_b": 1}
        # the source registry is untouched
        assert b.snapshot()["counters"] == {"only_b": 1}

"""FaultPlan: seeded determinism, the failure budget, validation."""

import pytest

from repro.faults import FaultPlan


def _drain(plan, steps=50, boxes=4):
    """A fixed draw sequence: step draws then exchange draws."""
    out = []
    for i in range(steps):
        out.append(plan.draw_step(i % boxes))
    out.append(plan.draw_duplications(boxes))
    out.append(plan.draw_reorder(boxes))
    return out


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        kw = dict(seed=11, fail_rate=0.3, delay_ms=1.0, dup_rate=0.4, reorder_rate=0.5)
        assert _drain(FaultPlan(**kw)) == _drain(FaultPlan(**kw))

    def test_different_seeds_differ(self):
        kw = dict(fail_rate=0.3, delay_ms=1.0, dup_rate=0.4, reorder_rate=0.5)
        assert _drain(FaultPlan(seed=1, **kw)) != _drain(FaultPlan(seed=2, **kw))

    def test_reset_replays_identically(self):
        plan = FaultPlan(seed=3, fail_rate=0.5, dup_rate=0.5, reorder_rate=0.5)
        first = _drain(plan)
        counters_first = plan.injected
        plan.reset()
        assert plan.injected == 0
        assert _drain(plan) == first
        assert plan.injected == counters_first


class TestBudget:
    def test_max_failures_caps_injection(self):
        plan = FaultPlan(seed=0, fail_rate=1.0, max_failures=5)
        fails = sum(1 for i in range(100) if plan.draw_step(i)[0])
        assert fails == 5
        assert plan.failures_injected == 5

    def test_zero_budget_never_fails(self):
        plan = FaultPlan(seed=0, fail_rate=1.0, max_failures=0)
        assert not any(plan.draw_step(i)[0] for i in range(20))

    def test_counters_and_as_dict(self):
        plan = FaultPlan(seed=1, fail_rate=1.0, dup_rate=1.0, reorder_rate=1.0,
                         max_failures=2)
        plan.draw_step(0)
        plan.draw_duplications(3)
        plan.draw_reorder(3)
        d = plan.as_dict()
        assert d["failures_injected"] == 1
        assert d["dups_injected"] == 3
        assert d["reorders_injected"] == 1
        assert plan.injected == 5


class TestDrawShapes:
    def test_reorder_is_permutation(self):
        plan = FaultPlan(seed=4, reorder_rate=1.0)
        perm = plan.draw_reorder(6)
        assert sorted(perm) == list(range(6))

    def test_reorder_needs_two_boxes(self):
        assert FaultPlan(seed=4, reorder_rate=1.0).draw_reorder(1) is None

    def test_duplications_target_in_range(self):
        plan = FaultPlan(seed=5, dup_rate=1.0)
        for src, dst in plan.draw_duplications(4):
            assert 0 <= src < 4 and 0 <= dst < 4


class TestValidation:
    @pytest.mark.parametrize("kw", [
        {"fail_rate": 1.5}, {"fail_rate": -0.1}, {"dup_rate": 2.0},
        {"reorder_rate": -1.0}, {"delay_rate": 7.0},
        {"delay_ms": -1.0}, {"max_failures": -1},
    ])
    def test_bad_knobs_raise(self, kw):
        with pytest.raises(ValueError):
            FaultPlan(**kw)

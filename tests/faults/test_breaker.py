"""CircuitBreaker: the closed/open/half-open machine on a fake clock."""

import pytest

from repro.faults import BREAKER_STATE_CODES, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture()
def clock():
    return FakeClock()


def make(clock, threshold=3, reset=30.0):
    return CircuitBreaker(
        failure_threshold=threshold, reset_after_s=reset, clock=clock
    )


class TestStateMachine:
    def test_starts_closed_and_allows(self, clock):
        br = make(clock)
        assert br.state == "closed"
        assert br.allow()
        assert br.allow_mutation()

    def test_trips_after_consecutive_failures(self, clock):
        br = make(clock, threshold=3)
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open"
        assert br.trips == 1
        assert not br.allow()
        assert not br.allow_mutation()

    def test_success_resets_the_streak(self, clock):
        br = make(clock, threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"

    def test_cooldown_turns_half_open(self, clock):
        br = make(clock, threshold=1, reset=10.0)
        br.record_failure()
        assert br.state == "open"
        clock.t = 9.9
        assert br.state == "open"
        clock.t = 10.0
        assert br.state == "half-open"
        assert br.allow_mutation()  # half-open no longer sheds

    def test_half_open_admits_single_probe(self, clock):
        br = make(clock, threshold=1, reset=10.0)
        br.record_failure()
        clock.t = 10.0
        assert br.allow()       # the probe
        assert not br.allow()   # concurrent callers are refused
        br.record_success()
        assert br.state == "closed"
        assert br.allow()

    def test_failed_probe_reopens_and_restarts_cooldown(self, clock):
        br = make(clock, threshold=3, reset=10.0)
        for _ in range(3):
            br.record_failure()
        clock.t = 10.0
        assert br.allow()
        br.record_failure()  # a single half-open failure trips, not threshold
        assert br.state == "open"
        assert br.trips == 2
        clock.t = 19.0
        assert br.state == "open"
        clock.t = 20.0
        assert br.state == "half-open"

    def test_as_dict_and_codes(self, clock):
        br = make(clock, threshold=1)
        br.record_failure()
        d = br.as_dict()
        assert d["state"] == "open"
        assert d["state_code"] == BREAKER_STATE_CODES["open"] == 2
        assert d["trips"] == 1
        assert set(BREAKER_STATE_CODES) == {"closed", "half-open", "open"}


class TestValidation:
    def test_bad_threshold(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)

    def test_bad_cooldown(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=-1.0, clock=clock)

"""RetryPolicy / ResilientTransport: partial re-runs, backoff, exhaustion."""

import random

import pytest

from repro.faults import ResilientTransport, RetryExhausted, RetryPolicy
from repro.obs import Recorder
from repro.shard.exchange import TransportFailure, make_transport


class TestPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay_ms=1.0, max_delay_ms=4.0, jitter=0.0)
        rng = random.Random(0)
        assert [policy.backoff_ms(k, rng) for k in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 4.0]

    def test_jitter_is_subtractive(self):
        policy = RetryPolicy(base_delay_ms=10.0, max_delay_ms=10.0, jitter=0.5)
        rng = random.Random(0)
        for k in range(1, 6):
            assert 5.0 <= policy.backoff_ms(k, rng) <= 10.0

    @pytest.mark.parametrize("kw", [
        {"max_attempts": 0}, {"base_delay_ms": -1.0}, {"jitter": 1.5},
        {"jitter": -0.1}, {"deadline_ms": 0.0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RetryPolicy(**kw)


def _flaky(failures_left):
    state = {"left": failures_left, "calls": 0}

    def fn():
        state["calls"] += 1
        if state["left"] > 0:
            state["left"] -= 1
            raise RuntimeError("transient")
        return "ok"

    fn.state = state
    return fn


def _fast_transport(max_attempts=4, **kw):
    return ResilientTransport(
        inner="inline",
        policy=RetryPolicy(max_attempts=max_attempts, base_delay_ms=0.0,
                           jitter=0.0, **kw),
    )


class TestResilientTransport:
    def test_retries_only_failed_steps(self):
        flaky, solid = _flaky(2), _flaky(0)
        out = _fast_transport().run([flaky, solid])
        assert out == ["ok", "ok"]
        assert flaky.state["calls"] == 3
        assert solid.state["calls"] == 1  # completed sibling never re-ran

    def test_exhaustion_raises_retry_exhausted(self):
        always = _flaky(10**9)
        tr = _fast_transport(max_attempts=3)
        with pytest.raises(RetryExhausted) as ei:
            tr.run([always, _flaky(0)])
        assert ei.value.attempts == 3
        assert [i for i, _ in ei.value.failures] == [0]
        assert "shard step(s) [0]" in str(ei.value)
        assert always.state["calls"] == 3

    def test_retry_exhausted_is_transport_failure(self):
        assert issubclass(RetryExhausted, TransportFailure)

    def test_deadline_ends_recovery_without_sleeping(self):
        # the first backoff (~25-50 ms) would cross the 5 ms superstep
        # deadline, so the transport gives up before sleeping
        tr = ResilientTransport(
            inner="inline",
            policy=RetryPolicy(max_attempts=10, base_delay_ms=50.0,
                               deadline_ms=5.0),
        )
        with pytest.raises(RetryExhausted) as ei:
            tr.run([_flaky(10**9)])
        assert ei.value.deadline_hit
        assert "deadline" in str(ei.value)

    def test_counters(self):
        rec = Recorder()
        tr = _fast_transport()
        tr.bind_recorder(rec)
        tr.run([_flaky(2)])
        counters = rec.metrics.snapshot()["counters"]
        assert counters["retry.attempts"] == 2
        assert "retry.exhausted" not in counters
        with pytest.raises(RetryExhausted):
            tr.run([_flaky(10**9)])
        assert rec.metrics.snapshot()["counters"]["retry.exhausted"] == 1

    def test_spec_form_via_registry(self):
        tr = make_transport("resilient(inner=threads:2,attempts=2,seed=5)")
        assert isinstance(tr, ResilientTransport)
        assert tr.policy.max_attempts == 2
        assert tr.policy.seed == 5
        assert tr.inner.name == "threads[2]"
        assert tr.name == "resilient[threads[2]]"

    def test_spec_rejects_bad_values(self):
        with pytest.raises(ValueError, match="attempts"):
            make_transport("resilient(attempts=0)")
        with pytest.raises(ValueError, match="unknown parameter"):
            make_transport("resilient(bogus=1)")

    def test_stacks_over_chaos_in_code(self):
        # paren specs allow one nesting level; wrapper-over-wrapper
        # stacks are built in code (the documented contract)
        from repro.faults import ChaosTransport, FaultPlan

        tr = ResilientTransport(
            inner=ChaosTransport(FaultPlan(seed=1, fail_rate=0.5), inner="inline")
        )
        assert tr.name == "resilient[chaos[inline]]"

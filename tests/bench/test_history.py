"""Bench history + the bench-diff regression gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.bench.history import (
    BenchHistory,
    diff_bench,
    diff_payloads,
    history_path,
    load_bench_json,
    metric_direction,
    metric_scope,
    provenance,
    render_diff,
    row_key,
)
from repro.bench.registry import write_bench_json

REPO_ROOT = Path(__file__).resolve().parents[2]


def _payload(**overrides):
    base = {
        "experiment": "KERNEL",
        "schema": 2,
        "written_at": "2026-08-08T00:00:00+0000",
        "provenance": {"host": "host-a", "git_sha": "abc123", "cpu_count": 4},
        "headline": {"passed": True, "best_speedup": 2.0},
        "rows": [
            {"graph": "g1", "family": "mesh", "nodes": 100, "edges": 400,
             "variant": "scatter", "ms": 10.0, "speedup": 2.0, "phases": 5,
             "relax_per_ms": 100.0, "verified": "ok"},
            {"graph": "g1", "family": "mesh", "nodes": 100, "edges": 400,
             "variant": "seed", "ms": 20.0, "speedup": 1.0, "phases": 5,
             "relax_per_ms": 50.0, "verified": "ok"},
        ],
    }
    base.update(overrides)
    return base


class TestProvenance:
    def test_fields_present(self):
        p = provenance()
        assert {"git_sha", "host", "cpu_count", "python", "numpy", "platform"} <= set(p)
        assert p["host"] and p["python"]

    def test_write_bench_json_embeds_schema_2(self, tmp_path):
        path = write_bench_json("kernel", [{"graph": "g", "ms": 1.0}],
                                directory=tmp_path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == 2
        assert payload["provenance"]["host"] == provenance()["host"]


class TestClassification:
    @pytest.mark.parametrize("name,want", [
        ("ms", "lower"), ("repair_ms", "lower"), ("loop_ms", "lower"),
        ("vs_best", "lower"), ("kb", "lower"),
        ("speedup", "higher"), ("loop_qps", "higher"),
        ("relax_per_ms", "higher"), ("hit_rate", "higher"),
        ("nodes", "info"), ("edges", "info"), ("phases", "info"),
        ("cut_frac", "info"), ("entries", "info"),
    ])
    def test_direction(self, name, want):
        assert metric_direction(name) == want

    def test_scope_wall_clock_vs_portable(self):
        assert metric_scope("ms") == "host"
        assert metric_scope("loop_qps") == "host"
        assert metric_scope("relax_per_ms") == "host"
        assert metric_scope("speedup") == "portable"
        assert metric_scope("vs_best") == "host"  # a race between timings
        assert metric_scope("kb") == "portable"

    def test_row_key_uses_config_fields_only(self):
        row = {"graph": "g1", "variant": "scatter", "ms": 3.0,
               "shards": 4, "verified": "ok"}
        key = row_key(row)
        assert key == "graph=g1/shards=4/variant=scatter"


class TestLoadBenchJson:
    def test_accepts_schema_1_and_2(self, tmp_path):
        for schema in (1, 2):
            p = tmp_path / f"BENCH_S{schema}.json"
            p.write_text(json.dumps(_payload(schema=schema)))
            assert load_bench_json(p)["schema"] == schema

    def test_rejects_unknown_schema(self, tmp_path):
        p = tmp_path / "BENCH_X.json"
        p.write_text(json.dumps(_payload(schema=99)))
        with pytest.raises(ValueError, match="unknown bench schema"):
            load_bench_json(p)

    def test_rejects_non_payload(self, tmp_path):
        p = tmp_path / "BENCH_Y.json"
        p.write_text(json.dumps({"whatever": 1}))
        with pytest.raises(ValueError, match="no 'rows'"):
            load_bench_json(p)


class TestDiff:
    def test_identical_payloads_pass(self):
        result = diff_payloads(_payload(), _payload())
        assert result.ok
        assert not result.notes  # same host: wall clock fully gated

    def test_2x_slowdown_is_a_regression(self):
        slow = _payload()
        for row in slow["rows"]:
            row["ms"] *= 2.0
        result = diff_payloads(_payload(), slow)
        assert not result.ok
        assert {f.metric for f in result.regressions} == {"ms"}
        assert all(f.change == pytest.approx(1.0) for f in result.regressions)

    def test_speedup_drop_is_a_regression_even_cross_host(self):
        slow = _payload(provenance={"host": "host-b"})
        for row in slow["rows"]:
            row["speedup"] /= 2.0
        result = diff_payloads(_payload(), slow)
        assert not result.ok
        assert {f.metric for f in result.regressions} == {"speedup"}

    def test_cross_host_wall_clock_not_gated(self):
        slow = _payload(provenance={"host": "host-b"})
        for row in slow["rows"]:
            row["ms"] *= 2.0
        result = diff_payloads(_payload(), slow)
        assert result.ok
        assert any("not certified same-host" in n for n in result.notes)

    def test_absolute_always_overrides_cross_host(self):
        slow = _payload(provenance={"host": "host-b"})
        for row in slow["rows"]:
            row["ms"] *= 2.0
        assert not diff_payloads(_payload(), slow, absolute="always").ok

    def test_absolute_never_demotes_everything_wall_clock(self):
        slow = _payload()
        for row in slow["rows"]:
            row["ms"] *= 2.0
        assert diff_payloads(_payload(), slow, absolute="never").ok

    def test_schema_1_baseline_still_diffs(self):
        base = _payload(schema=1)
        del base["provenance"]
        slow = _payload()
        for row in slow["rows"]:
            row["speedup"] /= 2.0
        result = diff_payloads(base, slow)
        assert not result.ok  # ratios gate without provenance

    def test_verified_flip_regresses_with_no_tolerance(self):
        bad = _payload()
        bad["rows"][0]["verified"] = "MISMATCH"
        result = diff_payloads(_payload(), bad)
        assert any(f.metric == "verified" and f.status == "regression"
                   for f in result.findings)

    def test_headline_boolean_flip_regresses(self):
        bad = _payload()
        bad["headline"]["passed"] = False
        result = diff_payloads(_payload(), bad)
        assert any(f.key == "<headline>" and f.status == "regression"
                   for f in result.findings)

    def test_improvement_is_not_a_regression(self):
        fast = _payload()
        for row in fast["rows"]:
            row["ms"] /= 4.0
        result = diff_payloads(_payload(), fast)
        assert result.ok
        assert any(f.status == "improved" for f in result.findings)

    def test_missing_row_is_skipped_not_failed(self):
        fewer = _payload()
        fewer["rows"] = fewer["rows"][:1]
        result = diff_payloads(_payload(), fewer)
        assert result.ok
        assert any(f.status == "skipped" and "missing from fresh" in f.note
                   for f in result.findings)

    def test_sub_floor_times_are_skipped(self):
        tiny = _payload()
        for p in (tiny,):
            for row in p["rows"]:
                row["ms"] = 0.001
        jittery = copy.deepcopy(tiny)
        for row in jittery["rows"]:
            row["ms"] = 0.004  # 4x, but under the 0.05 ms floor
        result = diff_payloads(tiny, jittery)
        assert result.ok
        assert any("timer floor" in f.note for f in result.findings)

    def test_render_diff_marks_fail(self):
        slow = _payload()
        for row in slow["rows"]:
            row["ms"] *= 2.0
        text = render_diff(diff_payloads(_payload(), slow))
        assert "REGRESSION" in text and "== FAIL" in text
        ok_text = render_diff(diff_payloads(_payload(), _payload()))
        assert "== PASS" in ok_text


class TestHistory:
    def test_append_and_reload(self, tmp_path):
        h = BenchHistory(tmp_path / "BENCH_HISTORY.jsonl")
        h.append(_payload())
        h.append(_payload())
        assert len(h) == 2
        (entry, _) = h.entries("kernel")
        assert entry["experiment"] == "KERNEL"
        assert entry["provenance"]["host"] == "host-a"
        # metrics are flattened per row key
        key = row_key(_payload()["rows"][0])
        assert entry["metrics"][key]["ms"] == 10.0

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        h = BenchHistory(path)
        h.append(_payload())
        with open(path, "a") as fh:
            fh.write("{torn wri")  # torn write mid-line
        h.append(_payload())
        assert len(h.entries()) == 2

    def test_series_filters_by_host(self, tmp_path):
        h = BenchHistory(tmp_path / "h.jsonl")
        for host, ms in (("host-a", 10.0), ("host-b", 99.0), ("host-a", 12.0)):
            p = _payload(provenance={"host": host})
            p["rows"][0]["ms"] = ms
            h.append(p)
        key = row_key(_payload()["rows"][0])
        assert h.series("KERNEL", key, "ms", host="host-a") == [10.0, 12.0]
        assert h.series("KERNEL", key, "ms") == [10.0, 99.0, 12.0]

    def test_noisy_history_widens_the_gate(self, tmp_path):
        h = BenchHistory(tmp_path / "h.jsonl")
        for ms in (8.0, 12.0, 16.0):  # cv ~27% -> tolerance ~82%
            p = _payload()
            p["rows"][0]["ms"] = ms
            h.append(p)
        jitter = _payload()
        jitter["rows"][0]["ms"] = 16.5  # +65%: over the 50% base gate
        assert not diff_payloads(_payload(), jitter).ok
        widened = diff_payloads(_payload(), jitter, history=h)
        assert widened.ok
        assert any("widened" in f.note for f in widened.findings)

    def test_history_path_resolution(self, tmp_path, monkeypatch):
        assert history_path("/x/y.jsonl") == Path("/x/y.jsonl")
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path / "env.jsonl"))
        assert history_path() == tmp_path / "env.jsonl"
        monkeypatch.delenv("REPRO_BENCH_HISTORY")
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert history_path() == tmp_path / "BENCH_HISTORY.jsonl"


class TestAgainstCommittedBaseline:
    """The acceptance criterion, against the real committed BENCH_KERNEL.json."""

    def test_clean_rerun_passes(self, tmp_path):
        committed = REPO_ROOT / "BENCH_KERNEL.json"
        fresh = tmp_path / "BENCH_KERNEL.json"
        fresh.write_text(committed.read_text())
        result = diff_bench("KERNEL", baseline_dir=REPO_ROOT, fresh_dir=tmp_path)
        assert result.ok, render_diff(result, verbose=True)

    def test_injected_2x_slowdown_fails(self, tmp_path):
        payload = load_bench_json(REPO_ROOT / "BENCH_KERNEL.json")
        for row in payload["rows"]:
            row["ms"] = row["ms"] * 2.0
            row["relax_per_ms"] = row["relax_per_ms"] / 2.0
            row["speedup"] = row["speedup"] / 2.0
        (tmp_path / "BENCH_KERNEL.json").write_text(json.dumps(payload))
        result = diff_bench("KERNEL", baseline_dir=REPO_ROOT, fresh_dir=tmp_path)
        assert not result.ok
        # the slowdown shows up as a speedup-ratio regression on every
        # non-seed variant regardless of which host runs the suite
        assert any(f.metric == "speedup" for f in result.regressions)

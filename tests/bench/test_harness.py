"""Unit tests for the benchmark harness (timing, workloads, figures,
reporting, registry) on miniature inputs."""

import numpy as np
import pytest

from repro.bench.figures import fig3_series, fig4_series, render_fig3, render_fig4, render_sec6c, sec6c_profile
from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.bench.reporting import ascii_bar_chart, format_table, geometric_mean
from repro.bench.timing import time_callable
from repro.bench.workloads import suite_workloads, workload_for


@pytest.fixture(scope="module")
def tiny_workloads():
    return [workload_for("ci-ws"), workload_for("ci-road")]


class TestTiming:
    def test_basic_measurement(self):
        stats = time_callable(lambda: sum(range(1000)), repeats=3, warmup=1)
        assert stats.best > 0
        assert stats.repeats == 3
        assert stats.best <= stats.median <= max(stats.best, stats.mean) * 10

    def test_min_total_extends_repeats(self):
        stats = time_callable(lambda: None, repeats=1, min_total_seconds=0.01)
        assert stats.repeats > 1

    def test_ms_properties(self):
        stats = time_callable(lambda: None, repeats=2)
        assert np.isclose(stats.best_ms, stats.best * 1e3)


class TestWorkloads:
    def test_source_in_largest_component(self):
        wl = workload_for("ci-rmat")  # has many components
        from repro.graphs.stats import connected_components

        labels = connected_components(wl.graph)
        largest = np.bincount(labels).argmax()
        assert labels[wl.source] == largest

    def test_suite_ascending(self):
        wls = suite_workloads("ci")
        sizes = [w.num_vertices for w in wls]
        assert sizes == sorted(sizes)

    def test_paper_configuration(self):
        wl = workload_for("ci-ws")
        assert wl.delta == 1.0
        assert wl.graph.has_unit_weights()


class TestFigureSeries:
    def test_fig3_rows(self, tiny_workloads):
        rows = fig3_series(tiny_workloads, repeats=1, verify=True)
        assert len(rows) == 2
        for row in rows:
            assert row["unfused_ms"] > 0
            assert row["fused_ms"] > 0
            assert row["speedup"] > 1.0  # fusion always wins here

    def test_fig4_simulated_rows(self, tiny_workloads):
        rows = fig4_series(tiny_workloads, threads=(2,), simulate=True)
        assert all("speedup_2t" in r for r in rows)
        assert all(r["speedup_2t"] > 0 for r in rows)

    def test_sec6c_rows(self, tiny_workloads):
        rows = sec6c_profile(tiny_workloads)
        for row in rows:
            pct_total = sum(v for k, v in row.items() if k.endswith("_pct"))
            assert np.isclose(pct_total, 100.0, atol=0.5)

    def test_renderers_mention_paper_numbers(self, tiny_workloads):
        rows = fig3_series(tiny_workloads, repeats=1, verify=False)
        text = render_fig3(rows)
        assert "3.7x" in text
        rows4 = fig4_series(tiny_workloads, threads=(2, 4), simulate=True)
        text4 = render_fig4(rows4, simulate=True)
        assert "1.44x" in text4
        rows6 = sec6c_profile(tiny_workloads)
        assert "35-40%" in render_sec6c(rows6)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_ascii_chart_log_scale(self):
        text = ascii_bar_chart(["g1", "g2"], {"s": [1.0, 1000.0]}, log_scale=True)
        assert "#" in text
        assert "1e+03" in text or "1000" in text

    def test_ascii_chart_empty(self):
        assert ascii_bar_chart([], {"s": []}) == "(no data)"

    def test_geometric_mean(self):
        assert np.isclose(geometric_mean([2.0, 8.0]), 4.0)
        assert geometric_mean([]) == 0.0


class TestShardBench:
    def test_series_and_render(self, tiny_workloads):
        from repro.bench.shard_bench import (
            render_sharded_scaling,
            sharded_scaling_series,
        )

        rows = sharded_scaling_series(
            tiny_workloads[:1], shard_counts=(2,), partitioners=("contiguous",),
            transport="inline", repeats=1,
        )
        assert len(rows) == 2  # sequential baseline + one configuration
        base, config = rows
        assert base["shards"] == 1 and base["speedup"] == 1.0
        assert config["shards"] == 2
        assert config["verified"] == "ok"
        assert config["entries"] >= 0 and config["kb"] >= 0
        text = render_sharded_scaling(rows)
        assert "SHARD" in text
        assert "PASS" in text
        assert "exchanged" in text

    def test_rejects_empty_shard_counts(self, tiny_workloads):
        from repro.bench.shard_bench import sharded_scaling_series

        with pytest.raises(ValueError):
            sharded_scaling_series(tiny_workloads[:1], shard_counts=())


class TestKernelBench:
    def test_series_render_and_headline(self, tiny_workloads):
        from repro.bench.kernel_bench import (
            kernel_bench_headline,
            kernel_bench_series,
            render_kernel_bench,
        )

        rows = kernel_bench_series(tiny_workloads[:1], repeats=1)
        variants = {r["variant"] for r in rows}
        assert {"seed", "argsort", "scatter", "auto"} <= variants
        assert all(r["verified"] == "ok" for r in rows)
        head = kernel_bench_headline(rows)
        assert head["all_verified"] is True
        assert head["best_speedup"] > 0
        text = render_kernel_bench(rows)
        assert "KERNEL" in text
        assert "seed" in text

    def test_seed_baseline_matches_dijkstra(self, tiny_workloads):
        from repro.bench.kernel_bench import seed_fused_delta_stepping
        from repro.sssp.reference import dijkstra

        wl = tiny_workloads[0]
        r = seed_fused_delta_stepping(wl.graph, wl.source, wl.delta)
        assert np.array_equal(r.distances, dijkstra(wl.graph, wl.source).distances)


class TestBenchJsonWriter:
    def test_write_and_path_env_override(self, tmp_path, monkeypatch):
        from repro.bench.registry import bench_json_path, write_bench_json

        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        rows = [{"graph": "g", "ms": np.float64(1.5), "n": np.int64(3),
                 "ok": np.bool_(True)}]
        path = write_bench_json("STEP", rows, headline={"passed": True})
        assert path == bench_json_path("STEP")
        assert path.parent == tmp_path
        import json

        payload = json.loads(path.read_text())
        assert payload["experiment"] == "STEP"
        assert payload["claim"]  # provenance from the registry
        assert payload["rows"][0] == {"graph": "g", "ms": 1.5, "n": 3, "ok": True}
        assert payload["headline"] == {"passed": True}

    def test_explicit_directory_wins(self, tmp_path):
        from repro.bench.registry import write_bench_json

        path = write_bench_json("KERNEL", [], directory=tmp_path)
        assert path.parent == tmp_path


class TestRegistry:
    def test_all_experiments_present(self):
        assert {"FIG3", "FIG4", "SEC6C", "SERVE", "DYN", "STEP", "SHARD", "KERNEL"} <= set(EXPERIMENTS)

    def test_experiments_have_claims(self):
        for exp in EXPERIMENTS.values():
            assert exp.claim
            assert exp.paper_artifact

    def test_run_experiment_fig3(self):
        text = run_experiment("FIG3", suite="ci", repeats=1, verify=False)
        assert "Fig. 3" in text

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("FIG99")

    def test_dyn_batch_builder_bounded_on_dense_graph(self):
        """A graph with no non-edges must not hang the insert sampler."""
        from repro.bench.mutate_bench import build_update_batch
        from repro.graphs import generators as gen

        rng = np.random.default_rng(0)
        inserts, deletes, reweights = build_update_batch(
            gen.complete_graph(10), 0.2, rng
        )
        assert len(inserts[0]) == 0  # gave up cleanly
        assert len(reweights[0]) > 0

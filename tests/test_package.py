"""Package-level integration: lazy imports, version, public API surface."""

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_subpackages(self):
        assert repro.graphblas.Vector is not None
        assert repro.sssp.delta_stepping is not None
        assert repro.datasets.load is not None
        assert repro.ir.delta_stepping_program is not None
        assert repro.algorithms.bfs_levels is not None
        assert repro.bench.run_experiment is not None
        assert repro.parallel.WorkerPool is not None

    def test_unknown_attribute(self):
        try:
            repro.nonexistent
        except AttributeError as exc:
            assert "nonexistent" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected AttributeError")

    def test_quickstart_docstring_flow(self):
        """The README/module-docstring quickstart must actually run."""
        g = repro.datasets.load("roadgrid-small")
        result = repro.sssp.delta_stepping(g, source=0, delta=1.0)
        assert result.num_reached > 1
        assert result.distances[0] == 0.0

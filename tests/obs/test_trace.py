"""TraceRecorder: span/instant recording and Chrome trace-event export."""

import json
import time

import numpy as np
import pytest

from repro.obs import NO_TRACE, NullTrace, TraceRecorder


class TestSpans:
    def test_span_records_complete_event(self):
        tr = TraceRecorder()
        with tr.span("work", wave=5):
            pass
        assert len(tr) == 1
        (span,) = tr.spans()
        assert span["name"] == "work"
        assert span["args"] == {"wave": 5}
        assert span["dur_us"] >= 0.0

    def test_set_attaches_late_args(self):
        tr = TraceRecorder()
        with tr.span("work", before=1) as sp:
            sp.set(after=2)
        (span,) = tr.spans()
        assert span["args"] == {"before": 1, "after": 2}

    def test_span_duration_covers_the_block(self):
        tr = TraceRecorder()
        with tr.span("sleep"):
            time.sleep(0.002)
        (span,) = tr.spans()
        assert span["dur_us"] >= 2000.0

    def test_spans_filter_by_name(self):
        tr = TraceRecorder()
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        with tr.span("a"):
            pass
        assert len(tr.spans("a")) == 2
        assert len(tr.spans("b")) == 1
        assert len(tr.spans()) == 3

    def test_instants_are_not_spans(self):
        tr = TraceRecorder()
        tr.instant("marker", k=1)
        assert len(tr) == 1
        assert tr.spans() == []

    def test_nested_spans_both_recorded(self):
        tr = TraceRecorder()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        names = [s["name"] for s in tr.spans()]
        assert names == ["inner", "outer"]  # exit order

    def test_clear(self):
        tr = TraceRecorder()
        with tr.span("x"):
            pass
        tr.clear()
        assert len(tr) == 0


class TestChromeExport:
    def _trace(self):
        tr = TraceRecorder()
        with tr.span("solve", stepper="delta"):
            with tr.span("wave", size=3):
                pass
        tr.instant("tick")
        return tr

    def test_schema_required_fields(self):
        doc = self._trace().to_chrome()
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        for ev in events:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
        # every non-metadata event is timestamped
        for ev in events:
            if ev["ph"] != "M":
                assert "ts" in ev

    def test_complete_events_carry_duration(self):
        events = self._trace().to_chrome()["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        for ev in xs:
            assert ev["dur"] >= 0.0

    def test_metadata_event_names_the_process(self):
        events = self._trace().to_chrome(process_name="proc-x")["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"] == {"name": "proc-x"}

    def test_instant_events_have_thread_scope(self):
        events = self._trace().to_chrome()["traceEvents"]
        (inst,) = [e for e in events if e["ph"] == "i"]
        assert inst["s"] == "t"

    def test_json_round_trip(self):
        doc = self._trace().to_chrome()
        assert json.loads(json.dumps(doc)) == doc

    def test_numpy_args_are_coerced(self):
        tr = TraceRecorder()
        with tr.span("np", count=np.int64(7), frac=np.float64(0.5), arr=np.arange(2)):
            pass
        doc = tr.to_chrome()
        text = json.dumps(doc)  # must not raise
        args = json.loads(text)["traceEvents"][1]["args"]
        assert args["count"] == 7
        assert args["frac"] == 0.5
        assert isinstance(args["arr"], str)  # non-scalar: stringified

    def test_write_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        out = self._trace().write(path)
        assert out == str(path)
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_empty_trace_exports_cleanly(self, tmp_path):
        # zero events: still a valid document (metadata only) that
        # round-trips through disk
        tr = TraceRecorder()
        doc = tr.to_chrome()
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]
        path = tmp_path / "empty.json"
        tr.write(path)
        assert json.loads(path.read_text()) == doc

    def test_write_with_unclosed_span_omits_it(self, tmp_path):
        # a span records on __exit__; writing mid-span must not emit a
        # half-open event (and must not corrupt the document)
        tr = TraceRecorder()
        with tr.span("outer"):
            with tr.span("closed"):
                pass
            path = tmp_path / "mid.json"
            tr.write(path)
            doc = json.loads(path.read_text())
            names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
            assert names == ["closed"]  # "outer" is still open
        # after the block closes, a re-export includes it
        names = [e["name"] for e in tr.to_chrome()["traceEvents"] if e["ph"] == "X"]
        assert sorted(names) == ["closed", "outer"]

    def test_numpy_bool_and_scalar_args_round_trip(self):
        tr = TraceRecorder()
        with tr.span(
            "np2", ok=np.bool_(True), nope=np.bool_(False),
            n32=np.int32(-3), f32=np.float32(0.25),
        ):
            pass
        args = json.loads(json.dumps(tr.to_chrome()))["traceEvents"][1]["args"]
        assert args["ok"] is True and args["nope"] is False
        assert args["n32"] == -3
        assert args["f32"] == 0.25

    def test_timestamps_are_relative_and_ordered(self):
        tr = TraceRecorder()
        with tr.span("first"):
            pass
        with tr.span("second"):
            pass
        xs = [e for e in tr.to_chrome()["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0.0 for e in xs)
        assert xs[0]["ts"] <= xs[1]["ts"]


class TestNullTrace:
    def test_falsy_and_empty(self):
        assert not NO_TRACE
        assert len(NO_TRACE) == 0
        assert NO_TRACE.spans() == []

    def test_span_is_reusable_noop(self):
        with NO_TRACE.span("x", a=1) as sp:
            sp.set(b=2)
        with NO_TRACE.span("y") as sp2:
            assert sp2 is sp  # one shared null span
        NO_TRACE.instant("z")
        NO_TRACE.clear()
        assert len(NO_TRACE) == 0

    def test_singleton_type(self):
        assert isinstance(NO_TRACE, NullTrace)

    def test_exceptions_propagate_through_spans(self):
        tr = TraceRecorder()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        # the span still closed and recorded
        assert len(tr.spans("boom")) == 1

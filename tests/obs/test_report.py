"""Run reports: span-tree reconstruction, the exchange ledger, renderers."""

import json

import numpy as np
import pytest

from repro.bench.workloads import workload_for
from repro.obs import Recorder, RunReport, build_report, render_html, render_markdown
from repro.obs.report import build_span_tree, spans_from_chrome, stage_attribution
from repro.stepping import solve_with


def _synthetic_recorder():
    """A hand-built sharded-looking run with known ledger numbers."""
    rec = Recorder()
    with rec.span("solve:sharded", shards=2):
        for step in range(3):
            with rec.span("superstep", step=step, bound=float(step + 1),
                          phases=2, activated=10 * (step + 1)):
                with rec.span("shard-step", shard=0, phases=1):
                    pass
                with rec.span("exchange", step=step, exchanges=1,
                              entries_posted=8, entries_carried=6,
                              entries_applied=5, bytes_carried=96):
                    pass
    rec.observe("service.query_ms", 1.5)
    rec.inc("cache.hits", 2)
    return rec


class TestSpanTree:
    def test_nesting_reconstructed_per_thread(self):
        rec = _synthetic_recorder()
        roots = build_span_tree(rec.trace.spans())
        assert [r.name for r in roots] == ["solve:sharded"]
        steps = roots[0].children
        assert [s.name for s in steps] == ["superstep"] * 3
        assert [c.name for c in steps[0].children] == ["shard-step", "exchange"]

    def test_self_time_excludes_children(self):
        rec = _synthetic_recorder()
        (root,) = build_span_tree(rec.trace.spans())
        child_total = sum(c.dur_us for c in root.children)
        assert root.self_us == pytest.approx(root.dur_us - child_total)

    def test_attribution_covers_every_name_once(self):
        rec = _synthetic_recorder()
        rows = stage_attribution(build_span_tree(rec.trace.spans()))
        by_name = {r["name"]: r for r in rows}
        assert set(by_name) == {"solve:sharded", "superstep", "shard-step", "exchange"}
        assert by_name["superstep"]["count"] == 3

    def test_spans_from_chrome_inverts_to_chrome(self):
        rec = _synthetic_recorder()
        doc = json.loads(json.dumps(rec.trace.to_chrome()))
        spans = spans_from_chrome(doc)
        assert len(spans) == len(rec.trace.spans())
        assert {s["name"] for s in spans} == {
            "solve:sharded", "superstep", "shard-step", "exchange"
        }


class TestBuildReport:
    def test_exchange_ledger_rows_and_totals(self):
        report = build_report(_synthetic_recorder())
        (ledger,) = [s for s in report.sections
                     if s.title.startswith("Exchange ledger")]
        assert [r["superstep"] for r in ledger.table] == ["0", "1", "2"]
        assert all(r["posted"] == "8" and r["bytes"] == "96" for r in ledger.table)
        # the prose carries the summed wire volume
        assert any("24 posted" in line and "288 bytes" in line
                   for line in ledger.lines)

    def test_recorder_supplies_its_own_metrics(self):
        report = build_report(_synthetic_recorder())
        titles = [s.title for s in report.sections]
        assert "Metrics — counters & gauges" in titles
        assert "Metrics — latency histograms" in titles

    def test_empty_trace_still_reports(self):
        report = build_report(Recorder())
        assert report.span_count == 0
        assert any("trace is empty" in line
                   for line in report.sections[0].lines)
        assert "# " in render_markdown(report)

    def test_saved_trace_json_renders_same_ledger(self, tmp_path):
        rec = _synthetic_recorder()
        path = tmp_path / "trace.json"
        rec.write_trace(path)
        from_file = build_report(str(path))
        from_rec = build_report(rec)
        pick = lambda rep: [s.table for s in rep.sections
                            if s.title.startswith("Exchange ledger")]
        assert pick(from_file) == pick(from_rec)

    def test_real_sharded_run_has_ledger(self):
        # the acceptance-criterion path: an actual sharded solve
        wl = workload_for("ci-ws")
        rec = Recorder()
        solve_with("sharded(shards=2,partitioner=bfs)", wl.graph, wl.source,
                   recorder=rec)
        md = render_markdown(build_report(rec))
        assert "## Exchange ledger (per superstep)" in md
        assert "## Sharded supersteps" in md
        # ledger rows carry real wire volume
        assert "| superstep | posted | carried | applied | bytes | ms |" in md


class TestRenderers:
    def test_markdown_sections_and_tables(self):
        md = render_markdown(build_report(_synthetic_recorder(), title="T"))
        assert md.startswith("# T\n")
        assert "## Time attribution" in md
        assert "| span | count | total ms |" in md

    def test_html_is_self_contained(self):
        html_doc = render_html(build_report(_synthetic_recorder(), title="T"))
        assert html_doc.startswith("<!DOCTYPE html>")
        assert "<style>" in html_doc and "</html>" in html_doc
        assert "http://" not in html_doc  # no external assets

    def test_html_escapes_args(self):
        rec = Recorder()
        with rec.span("odd", label="<script>x</script>"):
            pass
        html_doc = render_html(build_report(rec))
        assert "<script>" not in html_doc

    def test_numpy_args_do_not_break_rendering(self):
        rec = Recorder()
        with rec.span("exchange", step=np.int64(0),
                      entries_posted=np.int64(4), entries_carried=np.int64(4),
                      entries_applied=np.int64(3), bytes_carried=np.int64(64)):
            pass
        report = build_report(rec)
        (ledger,) = [s for s in report.sections
                     if s.title.startswith("Exchange ledger")]
        assert ledger.table[0]["posted"] == "4"
        render_markdown(report)
        render_html(report)

    def test_run_report_dataclass_defaults(self):
        rep = RunReport(title="x")
        assert rep.sections == [] and rep.span_count == 0

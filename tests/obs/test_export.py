"""OpenMetrics exposition: text format, cumulative buckets, scrape endpoint."""

import math
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsRegistry,
    MetricsServer,
    Recorder,
    render_openmetrics,
    sanitize_metric_name,
)


def _populated_registry():
    reg = MetricsRegistry()
    reg.inc("cache.hits", 3)
    reg.set_gauge("cache.size", 2.0)
    h = reg.histogram("service.query_ms", buckets=[1.0, 10.0, 100.0])
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    return reg


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("service.query_ms") == "service_query_ms"

    def test_arbitrary_chars_replaced(self):
        assert sanitize_metric_name("a b/c-d") == "a_b_c_d"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_colon_allowed(self):
        assert sanitize_metric_name("ns:metric") == "ns:metric"


class TestRenderOpenmetrics:
    def test_ends_with_eof(self):
        assert render_openmetrics(MetricsRegistry()).endswith("# EOF\n")

    def test_counter_family(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_cache_hits counter" in text
        assert "repro_cache_hits_total 3" in text

    def test_gauge_family(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_cache_size gauge" in text
        assert "repro_cache_size 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(_populated_registry())
        lines = [l for l in text.splitlines() if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert counts[-1] == 4  # +Inf bucket equals the observation count
        assert 'le="+Inf"' in lines[-1]

    def test_histogram_count_and_sum(self):
        text = render_openmetrics(_populated_registry())
        assert "repro_service_query_ms_count 4" in text
        assert "repro_service_query_ms_sum 555.5" in text

    def test_prefix_override_and_empty_prefix(self):
        reg = _populated_registry()
        assert "app_cache_hits_total" in render_openmetrics(reg, prefix="app")
        assert "\ncache_hits_total 3" in render_openmetrics(reg, prefix="")

    def test_recorder_unwraps_to_its_registry(self):
        rec = Recorder()
        rec.inc("cache.hits", 7)
        assert "repro_cache_hits_total 7" in render_openmetrics(rec)

    def test_nan_gauge_spelled_out(self):
        reg = MetricsRegistry()
        reg.set_gauge("weird", math.nan)
        assert "repro_weird NaN" in render_openmetrics(reg)

    def test_empty_histogram_exposes_zero_counts(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=[1.0])
        text = render_openmetrics(reg)
        assert "repro_lat_count 0" in text
        assert "repro_lat_sum 0" in text


class TestMetricsServer:
    def test_scrape_round_trip(self):
        reg = _populated_registry()
        with MetricsServer(reg) as srv:
            with urllib.request.urlopen(srv.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
                body = resp.read().decode()
        assert body == render_openmetrics(reg)

    def test_scrape_sees_live_updates(self):
        reg = MetricsRegistry()
        with MetricsServer(reg) as srv:
            reg.inc("events", 1)
            with urllib.request.urlopen(srv.url, timeout=5) as resp:
                assert b"repro_events_total 1" in resp.read()
            reg.inc("events", 41)
            with urllib.request.urlopen(srv.url, timeout=5) as resp:
                assert b"repro_events_total 42" in resp.read()

    def test_healthz_endpoint(self):
        import json

        reg = MetricsRegistry()
        with MetricsServer(reg) as srv:
            health_url = srv.url.replace("/metrics", "/healthz")
            with urllib.request.urlopen(health_url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == "application/json"
                body = json.loads(resp.read())
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0
        assert body["scrapes"] == 0  # health probes are not scrapes

    def test_healthz_counts_metric_scrapes(self):
        import json

        with MetricsServer(MetricsRegistry()) as srv:
            for _ in range(3):
                urllib.request.urlopen(srv.url, timeout=5).read()
            health_url = srv.url.replace("/metrics", "/healthz")
            with urllib.request.urlopen(health_url, timeout=5) as resp:
                assert json.loads(resp.read())["scrapes"] == 3

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry()) as srv:
            bad = srv.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(bad, timeout=5)
            assert exc.value.code == 404

    def test_ephemeral_port_and_close(self):
        srv = MetricsServer(MetricsRegistry())
        assert srv.port != 0
        assert srv.url == f"http://127.0.0.1:{srv.port}/metrics"
        srv.close()
        with pytest.raises(OSError):
            urllib.request.urlopen(srv.url, timeout=1)

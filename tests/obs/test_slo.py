"""SLO engine: spec parsing, bucket-exact evaluation, budgets, burn rates."""

import math

import pytest

from repro.obs import (
    AvailabilityObjective,
    BurnRateMonitor,
    LatencyTarget,
    MetricsRegistry,
    SLOSpec,
    evaluate,
    evaluate_summary,
    export_slo_gauges,
    load_slo_path,
    parse_slo_data,
    render_openmetrics,
    render_slo_text,
)
from repro.obs.slo import _parse_minimal_toml

SLO_TOML = """\
[[slo]]
name = "query-latency"
metric = "service.query_ms"
window_s = 600

[[slo.latency]]
percentile = 50
threshold_ms = 5.0

[[slo.latency]]
percentile = 99
threshold_ms = 50.0

[slo.availability]
objective = 0.99
threshold_ms = 100.0

[[slo]]
name = "mutation-latency"
metric = "service.mutate_ms"

[[slo.latency]]
percentile = 99
threshold_ms = 50.0
"""


class TestSpecs:
    def test_latency_target_validation(self):
        with pytest.raises(ValueError):
            LatencyTarget(percentile=0, threshold_ms=1.0)
        with pytest.raises(ValueError):
            LatencyTarget(percentile=101, threshold_ms=1.0)
        with pytest.raises(ValueError):
            LatencyTarget(percentile=99, threshold_ms=-1.0)

    def test_availability_validation_and_budget(self):
        with pytest.raises(ValueError):
            AvailabilityObjective(objective=1.0, threshold_ms=1.0)
        a = AvailabilityObjective(objective=0.999, threshold_ms=100.0)
        assert a.error_budget == pytest.approx(0.001)

    def test_spec_needs_at_least_one_target(self):
        with pytest.raises(ValueError):
            SLOSpec(name="empty", metric="m")

    def test_spec_needs_name_and_metric(self):
        with pytest.raises(ValueError):
            SLOSpec(name="", metric="m", latency=(LatencyTarget(99, 1.0),))


class TestTomlLoading:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(SLO_TOML)
        specs = load_slo_path(path)
        assert [s.name for s in specs] == ["query-latency", "mutation-latency"]
        q = specs[0]
        assert q.metric == "service.query_ms"
        assert q.window_s == 600.0
        assert [t.percentile for t in q.latency] == [50.0, 99.0]
        assert q.availability == AvailabilityObjective(0.99, 100.0)
        assert specs[1].availability is None

    def test_minimal_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert parse_slo_data(_parse_minimal_toml(SLO_TOML)) == parse_slo_data(
            tomllib.loads(SLO_TOML)
        )

    def test_committed_slo_toml_parses_both_ways(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "slo.toml"
        specs = parse_slo_data(_parse_minimal_toml(path.read_text()))
        assert load_slo_path(path) == specs
        assert any(s.availability is not None for s in specs)

    def test_no_entries_raises(self):
        with pytest.raises(ValueError, match=r"\[\[slo\]\]"):
            parse_slo_data({})


def _specs():
    return [
        SLOSpec(
            name="q",
            metric="lat",
            latency=(LatencyTarget(99, 10.0),),
            availability=AvailabilityObjective(0.95, 10.0),
        )
    ]


def _registry(good: int, bad: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=[10.0, 100.0])
    for _ in range(good):
        h.observe(1.0)
    for _ in range(bad):
        h.observe(50.0)
    return reg


class TestEvaluate:
    def test_all_good_passes_with_full_budget(self):
        result = evaluate(_specs(), _registry(good=100, bad=0))
        assert result.ok and not result.failures
        avail = [c for c in result.checks if c.kind == "availability"][0]
        assert avail.observed == 1.0
        assert avail.budget_remaining == pytest.approx(1.0)

    def test_breach_fails_and_reports_budget_overdraw(self):
        # 10/100 bad = 10% bad against a 5% budget: blown twice over
        result = evaluate(_specs(), _registry(good=90, bad=10))
        assert not result.ok
        avail = [c for c in result.checks if c.kind == "availability"][0]
        assert avail.observed == pytest.approx(0.9)
        assert avail.budget_remaining == pytest.approx(1.0 - 0.10 / 0.05)

    def test_latency_check_uses_histogram_percentile(self):
        result = evaluate(_specs(), _registry(good=0, bad=100))
        lat = [c for c in result.checks if c.kind == "latency"][0]
        assert not lat.ok
        assert lat.observed > 10.0

    def test_missing_metric_passes_vacuously(self):
        result = evaluate(_specs(), MetricsRegistry())
        assert result.ok
        assert all(c.note == "no observations" for c in result.checks)
        assert all(math.isnan(c.observed) for c in result.checks)

    def test_bucket_aligned_threshold_is_exact(self):
        # the 10.0 threshold sits ON a bucket bound: observations at 1.0
        # are good, at 50.0 bad — nothing straddles
        result = evaluate(_specs(), _registry(good=95, bad=5))
        avail = [c for c in result.checks if c.kind == "availability"][0]
        assert avail.observed == pytest.approx(0.95)
        assert avail.ok  # exactly on objective


class TestEvaluateSummary:
    def test_percentile_trio_checked(self):
        summary = {"histograms": {"lat": {"count": 10, "p50": 1.0, "p90": 2.0, "p99": 50.0}}}
        result = evaluate_summary(_specs(), summary)
        lat = [c for c in result.checks if c.kind == "latency"][0]
        assert not lat.ok and lat.observed == 50.0
        assert result.source == "summary"

    def test_availability_reported_as_skipped_not_evaluated(self):
        summary = {"histograms": {"lat": {"count": 10, "p50": 1, "p90": 1, "p99": 1.0}}}
        result = evaluate_summary(_specs(), summary)
        avail = [c for c in result.checks if c.kind == "availability"][0]
        assert avail.ok and "not computable" in avail.note

    def test_unsupported_percentile_raises(self):
        specs = [SLOSpec(name="q", metric="lat", latency=(LatencyTarget(75, 1.0),))]
        summary = {"histograms": {"lat": {"count": 5, "p50": 1.0}}}
        with pytest.raises(ValueError, match="p75"):
            evaluate_summary(specs, summary)


class TestBurnRateMonitor:
    def test_requires_availability(self):
        spec = SLOSpec(name="q", metric="lat", latency=(LatencyTarget(99, 1.0),))
        with pytest.raises(ValueError):
            BurnRateMonitor(spec, MetricsRegistry())

    def test_burn_rate_differences_samples(self):
        reg = _registry(good=0, bad=0)
        mon = BurnRateMonitor(_specs()[0], reg, windows_s=(60.0, 600.0))
        h = reg.histogram("lat")
        mon.sample(now=0.0)
        # one window of traffic: 10% bad against the 5% budget = 2x burn
        for _ in range(90):
            h.observe(1.0)
        for _ in range(10):
            h.observe(50.0)
        mon.sample(now=60.0)
        assert mon.burn_rate(60.0, now=60.0) == pytest.approx(0.10 / 0.05)
        assert mon.alerting(factor=1.0, now=60.0)
        assert not mon.alerting(factor=3.0, now=60.0)

    def test_idle_window_burns_nothing(self):
        reg = _registry(good=10, bad=0)
        mon = BurnRateMonitor(_specs()[0], reg, windows_s=(60.0,))
        mon.sample(now=0.0)
        mon.sample(now=60.0)  # no new traffic between samples
        assert mon.burn_rate(60.0, now=60.0) == 0.0
        assert not mon.alerting(now=60.0)

    def test_multi_window_rule_ignores_a_blip(self):
        reg = _registry(good=0, bad=0)
        mon = BurnRateMonitor(_specs()[0], reg, windows_s=(60.0, 600.0))
        h = reg.histogram("lat")
        mon.sample(now=0.0)
        for _ in range(1000):  # long stretch of good traffic
            h.observe(1.0)
        mon.sample(now=540.0)
        for _ in range(10):  # short burst of bad
            h.observe(50.0)
        mon.sample(now=600.0)
        assert mon.burn_rate(60.0, now=600.0) > 1.0  # short window burning
        assert mon.burn_rate(600.0, now=600.0) < 1.0  # hour-scale still fine
        assert not mon.alerting(now=600.0)

    def test_export_gauges(self):
        reg = _registry(good=10, bad=0)
        mon = BurnRateMonitor(_specs()[0], reg, windows_s=(60.0,))
        mon.sample(now=0.0)
        mon.export_gauges()
        assert "slo.q.burn_rate.60s" in reg.as_dict()["gauges"]


class TestExposition:
    def test_export_slo_gauges_and_openmetrics(self):
        reg = _registry(good=90, bad=10)
        result = evaluate(_specs(), reg)
        export_slo_gauges(result, reg)
        gauges = reg.as_dict()["gauges"]
        assert gauges["slo.q.ok"] == 0.0
        assert gauges["slo.q.p99_ok"] == 0.0  # 10% bad drags p99 over 10ms
        assert gauges["slo.q.p99_ms"] > 10.0
        assert gauges["slo.q.availability"] == pytest.approx(0.9)
        text = render_openmetrics(reg)
        assert "repro_slo_q_ok 0" in text

    def test_render_slo_text(self):
        result = evaluate(_specs(), _registry(good=90, bad=10))
        text = render_slo_text(result)
        assert "[FAIL] q:" in text
        assert text.splitlines()[-1].startswith("SLO check (registry): FAIL")
        passing = render_slo_text(evaluate(_specs(), _registry(good=100, bad=0)))
        assert "PASS" in passing.splitlines()[-1]

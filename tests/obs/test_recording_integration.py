"""Recording end-to-end: bit-identity, layered spans, service metrics."""

import json

import numpy as np
import pytest

from repro.obs import NO_RECORDER, Recorder
from repro.service import QueryService
from repro.stepping import STEPPERS, solve_with


def _fingerprint(result):
    return (
        result.buckets_processed,
        result.phases,
        result.relaxations,
        result.updates,
    )


class TestBitIdentity:
    """Recording must never change distances or work counters."""

    @pytest.mark.parametrize("name", sorted(STEPPERS))
    def test_recorded_run_identical_to_unrecorded(self, name, random_weighted_graph):
        g = random_weighted_graph
        base = solve_with(name, g, 0)
        recorded = solve_with(name, g, 0, recorder=Recorder())
        disabled = solve_with(name, g, 0, recorder=NO_RECORDER)
        for other in (recorded, disabled):
            assert np.array_equal(base.distances, other.distances)
            assert _fingerprint(base) == _fingerprint(other)

    @pytest.mark.parametrize("name", sorted(STEPPERS))
    def test_every_stepper_emits_a_solve_span(self, name, random_weighted_graph):
        rec = Recorder()
        solve_with(name, random_weighted_graph, 0, recorder=rec)
        names = {s["name"] for s in rec.trace.spans()}
        # the fused engine traces per-bucket instead of one whole-solve span
        if name == "delta":
            assert "bucket" in names
        else:
            assert f"solve:{name}" in names

    def test_sharded_spec_bit_identical(self, random_weighted_graph):
        g = random_weighted_graph
        spec = "sharded(shards=4,partitioner=bfs)"
        base = solve_with(spec, g, 0)
        recorded = solve_with(spec, g, 0, recorder=Recorder())
        assert np.array_equal(base.distances, recorded.distances)
        assert _fingerprint(base) == _fingerprint(recorded)


class TestShardedSpanLayers:
    def test_three_layers_plus_exchange_deltas(self, random_weighted_graph):
        rec = Recorder()
        solve_with(
            "sharded(shards=4,partitioner=bfs)", random_weighted_graph, 0, recorder=rec
        )
        spans = rec.trace.spans()
        names = {s["name"] for s in spans}
        assert {"solve:sharded", "superstep", "shard-step", "exchange"} <= names
        # exchange spans carry the per-round stats deltas
        for ex in rec.trace.spans("exchange"):
            assert {"entries_posted", "entries_carried", "entries_applied"} <= set(
                ex["args"]
            )
        # superstep spans nest shard steps: 4 shards per superstep
        assert len(rec.trace.spans("shard-step")) == 4 * len(
            rec.trace.spans("superstep")
        )

    def test_chrome_export_of_sharded_run_is_valid(self, random_weighted_graph, tmp_path):
        rec = Recorder()
        solve_with("sharded(shards=2)", random_weighted_graph, 0, recorder=rec)
        path = tmp_path / "sharded.json"
        rec.write_trace(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        for ev in events[1:]:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0


class TestServiceRecording:
    def _serve(self, graph, rec):
        svc = QueryService(graph, recorder=rec)
        for s in (0, 1, 2, 0, 1):
            svc.query(s, 5)
        return svc

    def test_query_latency_histogram_and_cache_counters(self, random_weighted_graph):
        rec = Recorder()
        self._serve(random_weighted_graph, rec)
        snap = rec.summary()
        lat = snap["histograms"]["service.query_ms"]
        assert lat["count"] == 5
        assert 0.0 < lat["p50"] <= lat["p90"] <= lat["p99"]
        assert snap["counters"]["cache.hits"] == 2
        assert snap["counters"]["cache.misses"] == 3
        assert snap["counters"]["service.queries"] == 5
        assert snap["gauges"]["cache.size"] == 3

    def test_drain_plan_and_solve_spans(self, random_weighted_graph):
        rec = Recorder()
        self._serve(random_weighted_graph, rec)
        names = {s["name"] for s in rec.trace.spans()}
        assert {"service:drain", "service:plan", "service:batch-solve"} <= names

    def test_responses_identical_with_and_without_recorder(self, random_weighted_graph):
        plain = self._serve(random_weighted_graph, None).query(3, 7)
        recorded = self._serve(random_weighted_graph, Recorder()).query(3, 7)
        assert plain.distance == recorded.distance
        assert plain.exact == recorded.exact

    def test_mutation_records_span_histogram_and_repairs(self, random_weighted_graph):
        rec = Recorder()
        svc = self._serve(random_weighted_graph, rec)
        report = svc.mutate(inserts=[(0, 50, 0.05)])
        assert report.repaired_entries > 0
        snap = rec.summary()
        assert snap["histograms"]["service.mutate_ms"]["count"] == 1
        assert snap["counters"]["service.mutations"] == 1
        assert snap["counters"]["repair.runs"] == report.repaired_entries
        assert snap["histograms"]["repair.ms"]["count"] == report.repaired_entries
        names = {s["name"] for s in rec.trace.spans()}
        assert {"service:mutate", "repair"} <= names
        mode_args = [s["args"]["mode"] for s in rec.trace.spans("repair")]
        assert all(m in ("noop", "decrease-only", "general") for m in mode_args)


class TestRepairRecording:
    def test_repair_bit_identical_with_recorder(self, random_weighted_graph):
        from repro.dynamic import apply_edge_updates, repair_sssp
        from repro.sssp.fused import fused_delta_stepping

        g = random_weighted_graph
        before = fused_delta_stepping(g, 0, delta=0.5).distances.copy()
        applied = apply_edge_updates(g, inserts=[(0, 100, 0.01)])
        rec = Recorder()
        repaired = repair_sssp(g, 0, before, applied, delta=0.5, recorder=rec)
        plain = repair_sssp(g, 0, before, applied, delta=0.5)
        assert np.array_equal(repaired.distances, plain.distances)
        (span,) = rec.trace.spans("repair")
        assert span["args"]["mode"] == repaired.mode
        assert rec.summary()["counters"]["repair.runs"] == 1

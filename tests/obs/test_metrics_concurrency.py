"""MetricsRegistry under concurrent writers: exact totals, safe iteration.

The serving tier's scrape endpoint iterates the registry while worker
threads write into it — the creation lock must keep registration,
``items()``, and ``snapshot()`` from ever observing a mid-resize dict,
and counter increments must not lose updates.
"""

import threading

from repro.obs import MetricsRegistry, render_openmetrics


def _run_threads(n, fn):
    barrier = threading.Barrier(n)

    def body(i):
        barrier.wait()
        fn(i)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestConcurrentWriters:
    def test_counter_increments_are_exact(self):
        reg = MetricsRegistry()
        rounds = 2000

        def writer(i):
            for _ in range(rounds):
                reg.inc("hits")

        _run_threads(8, writer)
        assert reg.snapshot()["counters"]["hits"] == 8 * rounds

    def test_histogram_observation_count_is_exact(self):
        reg = MetricsRegistry()
        rounds = 2000

        def writer(i):
            for j in range(rounds):
                reg.observe("lat", float(j % 7))

        _run_threads(8, writer)
        h = reg.histogram("lat")
        assert h.count == 8 * rounds
        assert sum(h.counts) == 8 * rounds  # no bucket update lost

    def test_concurrent_registration_yields_one_instrument(self):
        reg = MetricsRegistry()
        seen = []

        def register(i):
            seen.append(reg.counter("shared"))

        _run_threads(16, register)
        assert all(c is seen[0] for c in seen)

    def test_snapshot_while_writers_register_fresh_instruments(self):
        reg = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def writer(i):
            n = 0
            while not stop.is_set():
                reg.inc(f"c.{i}.{n % 50}")
                reg.set_gauge(f"g.{i}.{n % 50}", float(n))
                reg.observe(f"h.{i}.{n % 50}", float(n % 9))
                n += 1

        def reader():
            try:
                for _ in range(200):
                    snap = reg.snapshot()
                    for value in snap["counters"].values():
                        assert value >= 0
                    for kind, name, inst in reg.items():
                        assert name
                    text = render_openmetrics(reg)
                    assert text.endswith("# EOF\n")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        writers = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in writers + readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        for t in writers:
            t.join()
        assert errors == []

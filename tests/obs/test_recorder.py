"""Recorder facade, the NO_RECORDER null object, and the StageTimer bridge."""

import pytest

from repro.obs import (
    NO_RECORDER,
    NO_TIMER,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    StageTimer,
    TraceRecorder,
)


class TestRecorder:
    def test_truthy_and_enabled(self):
        rec = Recorder()
        assert rec
        assert rec.enabled

    def test_bundles_fresh_halves(self):
        rec = Recorder()
        assert isinstance(rec.trace, TraceRecorder)
        assert isinstance(rec.metrics, MetricsRegistry)

    def test_shares_supplied_halves(self):
        metrics = MetricsRegistry()
        trace = TraceRecorder()
        rec = Recorder(trace=trace, metrics=metrics)
        assert rec.trace is trace and rec.metrics is metrics

    def test_delegates_to_both_halves(self):
        rec = Recorder()
        with rec.span("phase", k=1):
            pass
        rec.instant("mark")
        rec.inc("events", 2)
        rec.observe("lat_ms", 0.5)
        rec.set_gauge("depth", 3)
        assert len(rec.trace) == 2
        snap = rec.summary()
        assert snap["counters"] == {"events": 2}
        assert snap["gauges"] == {"depth": 3}
        assert snap["histograms"]["lat_ms"]["count"] == 1

    def test_write_trace(self, tmp_path):
        rec = Recorder()
        with rec.span("x"):
            pass
        path = rec.write_trace(tmp_path / "t.json")
        assert path == str(tmp_path / "t.json")


class TestNullRecorder:
    def test_falsy_disabled_singleton(self):
        assert not NO_RECORDER
        assert not NO_RECORDER.enabled
        assert isinstance(NO_RECORDER, NullRecorder)
        assert NO_RECORDER.trace is None and NO_RECORDER.metrics is None

    def test_every_method_is_a_noop(self, tmp_path):
        with NO_RECORDER.span("x", a=1) as sp:
            sp.set(b=2)
        NO_RECORDER.instant("y")
        NO_RECORDER.inc("c")
        NO_RECORDER.observe("h", 1.0)
        NO_RECORDER.set_gauge("g", 2.0)
        assert NO_RECORDER.write_trace(tmp_path / "never.json") is None
        assert not (tmp_path / "never.json").exists()
        assert NO_RECORDER.summary() == {}


class TestStageTimerBridge:
    def test_stages_mirror_as_spans(self):
        rec = Recorder()
        timer = StageTimer(recorder=rec)
        with timer.stage("relax", wave=4):
            pass
        with timer.stage("relax"):
            pass
        with timer.stage("filter"):
            pass
        spans = rec.trace.spans("relax")
        assert len(spans) == 2
        assert spans[0]["args"] == {"wave": 4}
        assert timer.counts["relax"] == 2
        assert len(rec.trace.spans("filter")) == 1

    def test_span_durations_cover_stage_totals(self):
        rec = Recorder()
        timer = StageTimer(recorder=rec)
        with timer.stage("s"):
            sum(range(2000))
        (span,) = rec.trace.spans("s")
        # the span opens before t0 and closes after the accumulation,
        # so it can only be at least as long as the stage total
        assert span["dur_us"] * 1e-6 >= timer.totals["s"] * 0.5

    def test_no_recorder_means_no_spans(self):
        timer = StageTimer()
        with timer.stage("s", extra=1):
            pass
        assert timer.counts["s"] == 1

    def test_null_recorder_disables_the_bridge(self):
        timer = StageTimer(recorder=NO_RECORDER)
        with timer.stage("s"):
            pass
        assert timer._recorder is None

    def test_feed_pushes_totals_into_metrics(self):
        rec = Recorder()
        timer = StageTimer()
        with timer.stage("relax"):
            pass
        with timer.stage("relax"):
            pass
        timer.feed(rec)
        snap = rec.summary()
        assert snap["counters"]["stage.relax.hits"] == 2
        assert snap["gauges"]["stage.relax.seconds"] == pytest.approx(
            timer.totals["relax"]
        )

    def test_feed_into_falsy_recorder_is_noop(self):
        timer = StageTimer()
        with timer.stage("s"):
            pass
        timer.feed(None)
        timer.feed(NO_RECORDER)  # must not raise

    def test_null_timer_accepts_span_args(self):
        with NO_TIMER.stage("s", kernel="scatter", wave=9):
            pass
        assert NO_TIMER.as_dict() == {}


class TestInstrumentAlias:
    def test_sssp_instrument_reexports_obs_stage(self):
        import warnings

        from repro.obs import stage

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.sssp import instrument

        assert instrument.StageTimer is stage.StageTimer
        assert instrument.NullTimer is stage.NullTimer
        assert instrument.NO_TIMER is stage.NO_TIMER

    def test_sssp_instrument_import_emits_deprecation_warning(self):
        import importlib
        import sys

        # evict so the module-level warning re-fires for this import
        sys.modules.pop("repro.sssp.instrument", None)
        with pytest.warns(DeprecationWarning, match="repro.obs.stage"):
            importlib.import_module("repro.sssp.instrument")

"""MetricsRegistry: counters, gauges, and histogram percentile edges."""

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS_MS, Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge_last_value_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5
        g.reset()
        assert g.value == 0.0

    def test_default_buckets_are_geometric(self):
        b = DEFAULT_LATENCY_BUCKETS_MS
        assert b[0] == pytest.approx(1e-3)
        for lo, hi in zip(b, b[1:]):
            assert hi == pytest.approx(2 * lo)


class TestHistogramPercentiles:
    def test_empty_histogram_reports_nan_sentinel(self):
        # no observations must not look like a real 0 ms latency: every
        # value field is NaN; count/sum stay exact
        import math

        h = Histogram()
        assert h.count == 0
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.percentile(0))
        assert math.isnan(h.percentile(100))
        assert math.isnan(h.mean)
        s = h.summary()
        assert s["count"] == 0
        assert s["sum"] == 0.0
        for key in ("min", "max", "mean", "p50", "p90", "p99"):
            assert math.isnan(s[key]), key

    def test_empty_histogram_sentinel_clears_after_observe_and_reset(self):
        import math

        h = Histogram()
        h.observe(2.0)
        assert h.percentile(50) == 2.0 and h.mean == 2.0
        h.reset()
        assert math.isnan(h.percentile(50)) and math.isnan(h.summary()["max"])

    def test_single_sample_is_every_percentile(self):
        h = Histogram()
        h.observe(3.7)
        for q in (0, 1, 50, 90, 99, 100):
            assert h.percentile(q) == pytest.approx(3.7)
        s = h.summary()
        assert s["min"] == s["max"] == s["mean"] == pytest.approx(3.7)

    def test_all_samples_in_one_bucket_stay_in_observed_range(self):
        h = Histogram(buckets=[1.0, 10.0, 100.0])
        for v in (4.0, 5.0, 6.0):
            h.observe(v)
        for q in (50, 90, 99):
            assert 4.0 <= h.percentile(q) <= 6.0

    def test_percentiles_are_monotone_across_buckets(self):
        h = Histogram(buckets=[1.0, 2.0, 4.0, 8.0])
        for v in (0.5, 1.5, 3.0, 3.5, 6.0, 7.0, 20.0):
            h.observe(v)
        qs = [h.percentile(q) for q in (10, 25, 50, 75, 90, 99)]
        assert qs == sorted(qs)
        assert h.percentile(99) <= h.max

    def test_overflow_bucket_counts_and_clamps_to_max(self):
        h = Histogram(buckets=[1.0])
        h.observe(500.0)
        h.observe(900.0)
        assert h.counts[-1] == 2
        assert h.percentile(99) == pytest.approx(900.0)

    def test_min_max_sum_exact(self):
        h = Histogram()
        for v in (2.0, 8.0, 4.0):
            h.observe(v)
        assert (h.min, h.max, h.total, h.count) == (2.0, 8.0, 14.0, 3)
        assert h.mean == pytest.approx(14.0 / 3)

    def test_reset_zeroes_in_place(self):
        import math

        h = Histogram()
        h.observe(1.0)
        h.reset()
        assert h.count == 0 and math.isnan(h.percentile(50))

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[])
        with pytest.raises(ValueError):
            Histogram(buckets=[2.0, 1.0])

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_convenience_forms(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.set_gauge("size", 7)
        reg.observe("lat", 1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"size": 7}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_cross_kind_name_reuse_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_snapshot_is_plain_and_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert reg.as_dict() == snap

    def test_reset_keeps_handles_valid(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc(5)
        h = reg.histogram("lat")
        h.observe(1.0)
        reg.reset()
        assert c.value == 0 and h.count == 0
        c.inc()
        assert reg.snapshot()["counters"]["n"] == 1

    def test_items_yields_kind_name_instrument_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z.count")
        reg.inc("a.count")
        reg.set_gauge("size", 3.0)
        reg.observe("lat", 1.0)
        items = list(reg.items())
        assert [(k, n) for k, n, _ in items] == [
            ("counter", "a.count"), ("counter", "z.count"),
            ("gauge", "size"), ("histogram", "lat"),
        ]
        # the instruments are the live handles, not copies
        assert items[0][2] is reg.counter("a.count")

    def test_empty_registry_is_falsy_by_len(self):
        # relied on nowhere in the tree (binding uses `is not None`), but
        # pin the behavior so a future truthiness guard fails loudly here
        assert len(MetricsRegistry()) == 0

"""FlightRecorder ring semantics, anomaly triggers, and the slow-query log."""

import json
import time

import pytest

from repro.obs import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    FlightTrigger,
    Recorder,
    SlowQueryLog,
    load_trace,
)
from repro.obs.flight import _Ring


class TestRing:
    def test_append_below_capacity_keeps_everything(self):
        ring = _Ring(4)
        for i in range(3):
            ring.append(("i", f"e{i}", i, 0, 0, {}))
        assert len(ring) == 3
        assert ring.total == 3
        assert [e[1] for e in ring] == ["e0", "e1", "e2"]

    def test_wrap_retains_newest_in_chronological_order(self):
        ring = _Ring(4)
        for i in range(10):
            ring.append(("i", f"e{i}", i, 0, 0, {}))
        assert len(ring) == 4
        assert ring.total == 10
        assert [e[1] for e in ring] == ["e6", "e7", "e8", "e9"]

    def test_clear_resets_everything(self):
        ring = _Ring(2)
        for i in range(5):
            ring.append(("i", f"e{i}", i, 0, 0, {}))
        ring.clear()
        assert len(ring) == 0 and ring.total == 0
        assert list(ring) == []


class TestFlightRecorder:
    def test_default_capacity(self):
        rec = FlightRecorder()
        assert rec.capacity == DEFAULT_FLIGHT_CAPACITY

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_bounded_retention_and_dropped_count(self):
        rec = FlightRecorder(8)
        for i in range(20):
            with rec.span("work", i=i):
                pass
        assert rec.total_events == 20
        assert rec.dropped == 12
        kept = rec.spans("work")
        assert len(kept) == 8
        assert [s["args"]["i"] for s in kept] == list(range(12, 20))

    def test_chrome_export_reads_the_ring(self, tmp_path):
        rec = FlightRecorder(4)
        for i in range(6):
            with rec.span("s", i=i):
                pass
        path = rec.write(tmp_path / "flight.json")
        spans = load_trace(path)
        assert [s["args"]["i"] for s in spans] == [2, 3, 4, 5]

    def test_snapshot_last_and_name_filters(self):
        rec = FlightRecorder(64)
        for i in range(5):
            with rec.span("a", i=i):
                pass
            with rec.span("b", i=i):
                pass
        snap = rec.snapshot(last=3)
        assert len(snap) == 3
        assert snap[-1]["name"] == "b"
        only_a = rec.snapshot(name="a")
        assert {s["name"] for s in only_a} == {"a"}
        # JSON-safe: must serialize without a custom encoder
        json.dumps(snap)

    def test_recorder_flight_constructor_wires_the_ring(self):
        rec = Recorder.flight(capacity=2)
        assert isinstance(rec.trace, FlightRecorder)
        for i in range(5):
            with rec.span("q", i=i):
                pass
        assert rec.trace.dropped == 3
        # metrics facade still works alongside the ring
        rec.inc("events", 5)
        assert rec.summary()["counters"]["events"] == 5


class TestFlightTrigger:
    def test_needs_path_or_action(self):
        with pytest.raises(ValueError):
            FlightTrigger(10.0)

    def test_fires_on_threshold_with_dump(self, tmp_path):
        out = tmp_path / "dump-{n}.json"
        rec = FlightRecorder(64, triggers=[
            FlightTrigger(0.0, span="slow:", path=out, cooldown_s=0.0),
        ])
        with rec.span("fast:op"):
            pass
        assert rec.triggers[0].fired == 0  # prefix filter held it back
        with rec.span("slow:op"):
            time.sleep(0.001)
        trig = rec.triggers[0]
        assert trig.fired == 1
        assert trig.last_path == str(tmp_path / "dump-0.json")
        assert load_trace(trig.last_path)  # dump is a loadable Chrome trace

    def test_threshold_filters_fast_spans(self):
        fired = []
        trig = FlightTrigger(1000.0, action=lambda r, name, ms: fired.append(name))
        rec = FlightRecorder(16, triggers=[trig])
        with rec.span("quick"):
            pass
        assert fired == [] and trig.fired == 0

    def test_cooldown_coalesces_a_storm(self):
        fired = []
        trig = FlightTrigger(
            0.0, action=lambda r, name, ms: fired.append(name), cooldown_s=3600.0
        )
        rec = FlightRecorder(16, triggers=[trig])
        for _ in range(5):
            with rec.span("anomaly"):
                pass
        assert trig.fired == 1 and fired == ["anomaly"]

    def test_action_receives_recorder_and_duration(self):
        seen = {}

        def act(recorder, name, dur_ms):
            seen["recorder"] = recorder
            seen["name"] = name
            seen["dur_ms"] = dur_ms

        rec = FlightRecorder(16)
        rec.add_trigger(FlightTrigger(0.0, action=act, cooldown_s=0.0))
        with rec.span("op"):
            time.sleep(0.001)
        assert seen["recorder"] is rec
        assert seen["name"] == "op"
        assert seen["dur_ms"] >= 1.0


class TestSlowQueryLog:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(10.0, capacity=0)

    def test_record_stamps_and_sanitizes(self):
        import numpy as np

        log = SlowQueryLog(5.0)
        stored = log.record({"request_id": "q-1", "latency_ms": np.float64(7.5)})
        assert stored["threshold_ms"] == 5.0
        assert "ts" in stored
        assert isinstance(stored["latency_ms"], float)
        json.dumps(stored)

    def test_rotation_keeps_newest(self):
        log = SlowQueryLog(1.0, capacity=3)
        for i in range(7):
            log.record({"request_id": f"q-{i}"})
        assert len(log) == 3 and log.total == 7
        assert [e["request_id"] for e in log.entries()] == ["q-4", "q-5", "q-6"]

    def test_write_jsonl_round_trip(self, tmp_path):
        from repro.obs import load_slow_queries

        log = SlowQueryLog(1.0)
        log.record({"request_id": "q-0", "latency_ms": 3.0})
        log.record({"request_id": "q-1", "latency_ms": 9.0})
        path = log.write(tmp_path / "slow.jsonl")
        entries = load_slow_queries(path)
        assert [e["request_id"] for e in entries] == ["q-0", "q-1"]

"""Request-scoped tracing through the serving tier: ids, spans, slow log."""

import math

import pytest

from repro.graphs import generators
from repro.obs import Recorder, SlowQueryLog, filter_spans_by_request
from repro.service import Query, QueryService


@pytest.fixture(scope="module")
def grid():
    return generators.grid_2d(8, 8)


class TestRequestIds:
    def test_submit_assigns_sequential_ids(self, grid):
        svc = QueryService(grid)
        svc.submit(Query(0))
        svc.submit(Query(1))
        responses = svc.drain()
        assert [r.query.request_id for r in responses] == ["q-000001", "q-000002"]

    def test_caller_supplied_id_is_kept(self, grid):
        svc = QueryService(grid)
        svc.submit(Query(0, request_id="my-req"))
        (r,) = svc.drain()
        assert r.query.request_id == "my-req"

    def test_ids_survive_coalescing(self, grid):
        svc = QueryService(grid)
        svc.submit(Query(0, target=1))
        svc.submit(Query(0, target=2))  # same source, coalesced into one solve
        responses = svc.drain()
        assert [r.query.request_id for r in responses] == ["q-000001", "q-000002"]


class TestSpanPropagation:
    def test_every_span_of_the_round_is_tagged(self, grid):
        rec = Recorder()
        svc = QueryService(grid, recorder=rec)
        svc.submit(Query(0))
        svc.submit(Query(1, request_id="my-req"))
        svc.drain()
        spans = rec.trace.spans()
        assert spans, "the drain round must record spans"
        for s in spans:
            assert s["args"].get("request_id") == "q-000001,my-req", s["name"]

    def test_sharded_pool_spans_inherit_the_request_id(self, grid):
        # shard steps run on pooled threads — the ambient context is
        # recorder-scoped, not thread-local, so they must still be tagged
        rec = Recorder()
        svc = QueryService(grid, recorder=rec, stepper="sharded(shards=2)")
        svc.submit(Query(0))
        svc.drain()
        spans = rec.trace.spans()
        step_spans = [s for s in spans if "shard" in s["name"] or "step" in s["name"]]
        assert step_spans, "sharded solve must record shard/step spans"
        untagged = [s["name"] for s in spans if "request_id" not in s["args"]]
        assert untagged == []

    def test_filter_spans_by_request_round_trips(self, grid):
        rec = Recorder()
        svc = QueryService(grid, recorder=rec)
        svc.query(0)
        svc.query(1)
        spans = rec.trace.spans()
        mine = filter_spans_by_request(spans, "q-000002")
        assert mine
        assert all("q-000002" in str(s["args"]["request_id"]).split(",") for s in mine)
        assert not filter_spans_by_request(spans, "q-999999")

    def test_consecutive_drains_do_not_leak_context(self, grid):
        rec = Recorder()
        svc = QueryService(grid, recorder=rec)
        svc.query(0)
        with rec.span("outside"):
            pass
        outside = [s for s in rec.trace.spans() if s["name"] == "outside"][0]
        assert "request_id" not in outside["args"]


class TestSlowQueryLog:
    def test_threshold_zero_logs_everything(self, grid):
        rec = Recorder()
        svc = QueryService(grid, recorder=rec, slow_query_ms=0.0)
        svc.query(0)
        entries = svc.slow_query_log.entries()
        assert len(entries) == 1
        e = entries[0]
        assert e["request_id"] == "q-000001"
        assert e["latency_ms"] > 0
        assert e["stepper"]
        assert e["plan"]["batches"] >= 1
        assert "cache_hit" in e and "counters" in e

    def test_high_threshold_logs_nothing(self, grid):
        rec = Recorder()
        svc = QueryService(grid, recorder=rec, slow_query_ms=1e9)
        svc.query(0)
        assert svc.slow_query_log.entries() == []
        assert "service.slow_queries" not in rec.summary()["counters"]

    def test_flight_snapshot_embedded_when_flight_recorder_bound(self, grid):
        rec = Recorder.flight(capacity=256)
        svc = QueryService(grid, recorder=rec, slow_query_ms=0.0)
        svc.query(0)
        (e,) = svc.slow_query_log.entries()
        assert e["flight"], "flight recorder must contribute a snapshot"
        assert all({"name", "ts_us", "dur_us", "args"} <= set(s) for s in e["flight"])

    def test_counter_deltas_cover_only_this_round(self, grid):
        rec = Recorder()
        svc = QueryService(grid, recorder=rec, slow_query_ms=0.0)
        svc.query(0)
        first = svc.slow_query_log.entries()[-1]["counters"]
        svc.query(1)
        second = svc.slow_query_log.entries()[-1]["counters"]
        # deltas, not cumulative totals: each single-query round must
        # report exactly one served query, not the running total
        assert first["service.queries"] == 1
        assert second["service.queries"] == 1

    def test_shared_log_instance_pools_across_services(self, grid):
        shared = SlowQueryLog(0.0)
        a = QueryService(grid, recorder=Recorder(), slow_query_log=shared)
        b = QueryService(grid, recorder=Recorder(), slow_query_log=shared)
        a.query(0)
        b.query(1)
        assert len(shared) == 2

    def test_no_recorder_means_no_log_overhead(self, grid):
        svc = QueryService(grid, slow_query_ms=0.0)
        svc.query(0)  # recorder-less path must not throw
        assert svc.slow_query_log.entries() == []


class TestStatsFromRecorder:
    def test_percentiles_come_from_the_histogram(self, grid):
        rec = Recorder()
        svc = QueryService(grid, recorder=rec)
        for s in range(6):
            svc.query(s)
        stats = svc.stats()
        summary = rec.metrics.histogram("service.query_ms").summary()
        assert stats.latency_p50_ms == summary["p50"]
        assert stats.latency_p99_ms == summary["p99"]
        assert stats.latency_p50_ms <= stats.latency_p99_ms

    def test_empty_recorder_stats_use_nan_sentinel(self, grid):
        svc = QueryService(grid, recorder=Recorder())
        stats = svc.stats()
        assert math.isnan(stats.latency_p50_ms)
        assert math.isnan(stats.latency_p99_ms)

    def test_recorderless_stats_keep_legacy_zero_fallback(self, grid):
        svc = QueryService(grid)
        stats = svc.stats()
        assert stats.latency_p50_ms == 0.0

    def test_query_ms_uses_the_latency_preset(self, grid):
        from repro.obs import LATENCY_MS_BUCKETS

        rec = Recorder()
        QueryService(grid, recorder=rec)
        h = rec.metrics.histogram("service.query_ms")
        assert tuple(h.bounds) == LATENCY_MS_BUCKETS

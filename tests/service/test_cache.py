"""DistanceCache: LRU eviction, graph invalidation, stats, immutability."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.service.cache import DistanceCache


def _graph(n=4, name="g"):
    return Graph.from_edges([0, 1, 2], [1, 2, 3], n=n, name=name)


class TestLookup:
    def test_miss_then_hit(self):
        cache = DistanceCache()
        g = _graph()
        assert cache.get(g, 0) is None
        cache.put(g, 0, "unit", np.arange(4.0))
        hit = cache.get(g, 0)
        assert hit is not None
        assert np.array_equal(hit, [0, 1, 2, 3])

    def test_key_includes_source_and_weight_mode(self):
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(4))
        assert cache.get(g, 1) is None
        assert cache.get(g, 0, "uniform") is None
        assert cache.get(g, 0, "unit") is not None

    def test_key_distinguishes_graph_objects(self):
        cache = DistanceCache()
        g1, g2 = _graph(name="a"), _graph(name="b")
        cache.put(g1, 0, "unit", np.zeros(4))
        assert cache.get(g2, 0) is None

    def test_entries_are_read_only(self):
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(4))
        hit = cache.get(g, 0)
        with pytest.raises(ValueError):
            hit[0] = 99.0

    def test_put_validates_length(self):
        cache = DistanceCache()
        with pytest.raises(ValueError):
            cache.put(_graph(), 0, "unit", np.zeros(3))


class TestEviction:
    def test_lru_eviction_order(self):
        cache = DistanceCache(capacity=2)
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(4))
        cache.put(g, 1, "unit", np.zeros(4))
        cache.get(g, 0)  # 0 is now most-recently-used
        cache.put(g, 2, "unit", np.zeros(4))  # evicts 1, not 0
        assert cache.get(g, 0) is not None
        assert cache.get(g, 1) is None
        assert cache.stats().evictions == 1

    def test_capacity_bound_holds(self):
        cache = DistanceCache(capacity=3)
        g = _graph()
        for s in range(10):
            cache.put(g, s, "unit", np.zeros(4))
        assert len(cache) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DistanceCache(capacity=0)


class TestInvalidation:
    def test_invalidate_drops_graph_entries(self):
        cache = DistanceCache()
        g1, g2 = _graph(name="a"), _graph(name="b")
        cache.put(g1, 0, "unit", np.zeros(4))
        cache.put(g2, 0, "unit", np.zeros(4))
        dropped = cache.invalidate(g1)
        assert dropped == 1
        assert cache.get(g1, 0) is None
        assert cache.get(g2, 0) is not None

    def test_mutation_workflow(self):
        """The documented in-place mutation pattern: mutate, invalidate,
        recompute — stale distances never come back."""
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.array([0.0, 1.0, 2.0, 3.0]))
        g.weights[:] = 5.0  # in-place mutation
        cache.invalidate(g)
        assert cache.get(g, 0) is None
        cache.put(g, 0, "unit", np.array([0.0, 5.0, 10.0, 15.0]))
        assert cache.get(g, 0)[1] == 5.0

    def test_invalidate_unknown_graph_not_counted(self):
        """Regression: invalidating a graph the cache never saw inflated
        the ``invalidations`` counter; only real invalidations count."""
        cache = DistanceCache()
        stranger = _graph(name="never-seen")
        assert cache.invalidate(stranger) == 0
        assert cache.stats().invalidations == 0

    def test_invalidate_empty_known_graph_not_counted(self):
        cache = DistanceCache()
        g = _graph()
        cache.get(g, 0)  # known (missed), but holds no entries
        assert cache.invalidate(g) == 0
        assert cache.stats().invalidations == 0

    def test_invalidate_with_entries_counted_once(self):
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(4))
        cache.put(g, 1, "unit", np.zeros(4))
        assert cache.invalidate(g) == 2
        assert cache.stats().invalidations == 1

    def test_epoch_keying_invalidates_implicitly(self):
        """The mutation API bumps ``graph.epoch``; old entries must miss
        without any call into the cache."""
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(4))
        g.epoch += 1
        assert cache.get(g, 0) is None
        cache.put(g, 0, "unit", np.ones(4))
        assert cache.get(g, 0)[0] == 1.0

    def test_stats_counters(self):
        cache = DistanceCache()
        g = _graph()
        cache.get(g, 0)
        cache.put(g, 0, "unit", np.zeros(4))
        cache.get(g, 0)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_clear_resets(self):
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(4))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 0

    def test_garbage_collected_graph_drops_entries(self):
        import gc

        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(4))
        del g
        gc.collect()
        assert len(cache) == 0


class TestMetricsIntegration:
    def test_counters_mirror_into_registry(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        cache = DistanceCache(capacity=2, metrics=metrics)
        g = _graph()
        cache.get(g, 0)  # miss
        cache.put(g, 0, "unit", np.zeros(4))
        cache.get(g, 0)  # hit
        cache.put(g, 1, "unit", np.zeros(4))
        cache.put(g, 2, "unit", np.zeros(4))  # evicts source 0
        cache.invalidate(g)
        snap = metrics.snapshot()
        stats = cache.stats()
        assert snap["counters"]["cache.hits"] == stats.hits == 1
        assert snap["counters"]["cache.misses"] == stats.misses == 1
        assert snap["counters"]["cache.evictions"] == stats.evictions == 1
        assert snap["counters"]["cache.invalidations"] == stats.invalidations == 1
        assert snap["gauges"]["cache.size"] == 0

    def test_size_gauge_tracks_inserts(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        cache = DistanceCache(metrics=metrics)
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(4))
        cache.put(g, 1, "unit", np.zeros(4))
        assert metrics.snapshot()["gauges"]["cache.size"] == 2
        cache.clear()
        assert metrics.snapshot()["gauges"]["cache.size"] == 0

    def test_bind_metrics_first_binding_wins(self):
        from repro.obs import MetricsRegistry

        cache = DistanceCache()
        first, second = MetricsRegistry(), MetricsRegistry()
        cache.bind_metrics(first)
        cache.bind_metrics(second)  # no-op: already bound
        g = _graph()
        cache.get(g, 0)
        assert first.snapshot()["counters"]["cache.misses"] == 1
        assert len(second) == 0

    def test_unbound_cache_records_no_metrics(self):
        cache = DistanceCache()
        g = _graph()
        cache.get(g, 0)
        cache.put(g, 0, "unit", np.zeros(4))
        assert cache.stats().misses == 1  # plain counters still work

"""QueryService + QueryPlanner: coalescing, routing, caching, stats."""

import numpy as np
import pytest

from repro.graphs import datasets
from repro.service import (
    DistanceCache,
    LandmarkIndex,
    Query,
    QueryPlanner,
    QueryService,
)
from repro.sssp import dijkstra


@pytest.fixture(scope="module")
def ws_graph():
    return datasets.load("ci-ws")


@pytest.fixture(scope="module")
def ws_oracle(ws_graph):
    return dijkstra(ws_graph, 0).distances


class TestPlanner:
    def test_coalesces_duplicate_sources(self):
        planner = QueryPlanner(max_batch_size=8)
        plan = planner.plan([Query(0, 1), Query(0, 2), Query(0, 3)])
        assert plan.num_exact_sources == 1

    def test_chunks_to_batch_size(self):
        planner = QueryPlanner(max_batch_size=4)
        plan = planner.plan([Query(s) for s in range(10)])
        assert [len(b) for b in plan.batches] == [4, 4, 2]

    def test_cache_hits_skip_batches(self, ws_graph):
        cache = DistanceCache()
        cache.put(ws_graph, 0, "unit", np.zeros(ws_graph.num_vertices))
        planner = QueryPlanner()
        plan = planner.plan([Query(0), Query(1)], cache=cache, graph=ws_graph)
        assert list(plan.cached) == [0]
        assert plan.cached[0] is not None  # the probe IS the fetch
        assert plan.num_exact_sources == 1

    def test_budget_routes_to_landmarks(self):
        planner = QueryPlanner(latency_budget_ms=1.0)
        planner.record_solve(1, 50.0)  # model: exact solve far over budget
        plan = planner.plan([Query(3)], has_landmarks=True)
        assert plan.approximate == [3]
        assert plan.num_exact_sources == 0

    def test_budget_without_landmarks_stays_exact(self):
        planner = QueryPlanner(latency_budget_ms=1.0)
        planner.record_solve(1, 50.0)
        plan = planner.plan([Query(3)], has_landmarks=False)
        assert plan.approximate == []
        assert plan.num_exact_sources == 1

    def test_no_cost_model_stays_exact(self):
        planner = QueryPlanner(latency_budget_ms=1.0)
        plan = planner.plan([Query(3)], has_landmarks=True)
        assert plan.num_exact_sources == 1

    def test_per_query_budget_overrides_default(self):
        planner = QueryPlanner(latency_budget_ms=None)
        planner.record_solve(1, 50.0)
        plan = planner.plan([Query(3, max_latency_ms=0.5)], has_landmarks=True)
        assert plan.approximate == [3]

    def test_budget_is_cumulative_over_the_round(self):
        """The budget bounds the whole drain, not each source alone."""
        planner = QueryPlanner(latency_budget_ms=10.0)
        planner.record_solve(1, 4.0)  # model: 4 ms per exact source
        plan = planner.plan([Query(s) for s in range(5)], has_landmarks=True)
        assert plan.num_exact_sources == 2  # 8 ms committed; a third would overflow
        assert plan.approximate == [2, 3, 4]


class TestService:
    def test_point_query_matches_dijkstra(self, ws_graph, ws_oracle):
        svc = QueryService(ws_graph)
        resp = svc.query(0, 42)
        assert resp.exact and not resp.from_cache
        assert resp.distance == ws_oracle[42]

    def test_one_to_many_matches_dijkstra(self, ws_graph, ws_oracle):
        svc = QueryService(ws_graph)
        resp = svc.query(0)
        assert np.array_equal(resp.distances, ws_oracle)

    def test_second_query_hits_cache(self, ws_graph):
        svc = QueryService(ws_graph)
        first = svc.query(0, 10)
        second = svc.query(0, 11)
        assert not first.from_cache
        assert second.from_cache
        assert svc.cache.stats().hits >= 1

    def test_drain_coalesces_into_one_batch(self, ws_graph, ws_oracle):
        svc = QueryService(ws_graph)
        for s in (0, 5, 9, 0, 5):
            svc.submit(Query(source=s, target=1))
        responses = svc.drain()
        assert len(responses) == 5
        assert svc.stats().batches_solved == 1
        assert svc.stats().sources_solved == 3  # deduplicated
        assert responses[0].distance == ws_oracle[1]
        assert responses[3].distance == ws_oracle[1]

    def test_responses_in_submission_order(self, ws_graph):
        svc = QueryService(ws_graph)
        svc.submit(Query(source=3, target=0))
        svc.submit(Query(source=8, target=0))
        responses = svc.drain()
        assert [r.query.source for r in responses] == [3, 8]

    def test_batch_results_match_dijkstra_per_source(self, ws_graph):
        svc = QueryService(ws_graph, max_batch_size=4)
        sources = [0, 3, 7, 11, 20, 33]
        for s in sources:
            svc.submit(Query(source=s))
        responses = svc.drain()
        assert svc.stats().batches_solved == 2  # 6 sources / batch of 4
        for s, resp in zip(sources, responses):
            assert np.array_equal(resp.distances, dijkstra(ws_graph, s).distances)

    def test_budget_falls_back_to_landmark_answer(self, ws_graph, ws_oracle):
        landmarks = LandmarkIndex.build(ws_graph, num_landmarks=4)
        svc = QueryService(ws_graph, landmarks=landmarks, latency_budget_ms=1e-6)
        svc.query(7, 3)  # calibrates the planner's cost model (exact)
        resp = svc.query(0, 42)  # now predicted over budget -> approximate
        assert not resp.exact
        lower, upper = resp.bounds
        assert lower <= ws_oracle[42] <= upper
        assert resp.distance == upper
        assert svc.stats().approximate_answers == 1

    def test_invalidate_forces_recompute(self, ws_graph):
        svc = QueryService(ws_graph)
        svc.query(0, 1)
        assert svc.invalidate() == 1
        resp = svc.query(0, 1)
        assert not resp.from_cache

    def test_source_validation(self, ws_graph):
        svc = QueryService(ws_graph)
        with pytest.raises(IndexError):
            svc.submit(Query(source=10_000))
        with pytest.raises(IndexError):
            svc.submit(Query(source=0, target=10_000))

    def test_drain_empty_is_noop(self, ws_graph):
        assert QueryService(ws_graph).drain() == []

    def test_stats_percentiles(self, ws_graph):
        svc = QueryService(ws_graph)
        for s in range(6):
            svc.query(s, 0)
        stats = svc.stats()
        assert stats.queries_served == 6
        assert stats.latency_p50_ms <= stats.latency_p99_ms
        assert stats.throughput_qps > 0

"""Regression: a repair failing mid-mutation must roll the service back.

The hot-repair loop runs *after* the epoch has advanced and may have
re-put some entries under the new epoch before dying.  The service must
rewind to the pre-mutation snapshot — graph arrays, epoch, Δ, and cache
— so every source that answered from cache before the call still
answers bit-identically after the failure.
"""

import numpy as np
import pytest

import repro.service.server as server_mod
from repro.graphs.generators import watts_strogatz
from repro.service.server import QueryService


@pytest.fixture()
def graph():
    return watts_strogatz(100, 6, 0.1, seed=11)


@pytest.fixture()
def service(graph):
    return QueryService(graph)


def reweight_batch(graph):
    return [(0, int(graph.indices[graph.indptr[0]]), 5.0)]


def failing_repairs(monkeypatch, fail_after=1):
    """Patch repair_sssp to die after *fail_after* successful repairs —
    a genuine mid-flight failure, some entries already re-put."""
    calls = {"n": 0}
    real = server_mod.repair_sssp

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > fail_after:
            raise RuntimeError("repair kernel died mid-flight")
        return real(*args, **kwargs)

    monkeypatch.setattr(server_mod, "repair_sssp", flaky)
    return calls


class TestRollback:
    def test_graph_epoch_weights_delta_restored(self, service, graph, monkeypatch):
        r0, r1 = service.query(0), service.query(1)  # warm two cache entries
        weights_before = graph.weights.copy()
        indptr_before, indices_before = graph.indptr, graph.indices
        epoch_before, delta_before = graph.epoch, service.delta

        failing_repairs(monkeypatch, fail_after=1)
        with pytest.raises(RuntimeError, match="mid-flight"):
            service.mutate(reweights=reweight_batch(graph), strict=False)

        assert graph.epoch == epoch_before
        assert service.delta == delta_before
        np.testing.assert_array_equal(graph.weights, weights_before)
        # structure arrays are only ever replaced wholesale; a pure
        # reweight rollback must hand back the very same objects
        assert graph.indptr is indptr_before
        assert graph.indices is indices_before

    def test_service_answers_from_pre_mutation_snapshot(
        self, service, graph, monkeypatch
    ):
        before = {s: service.query(s) for s in (0, 1, 2)}
        failing_repairs(monkeypatch, fail_after=1)
        with pytest.raises(RuntimeError):
            service.mutate(reweights=reweight_batch(graph), strict=False)

        for s, resp in before.items():
            again = service.query(s)
            assert again.from_cache, f"source {s} lost its cache entry"
            np.testing.assert_array_equal(again.distances, resp.distances)

    def test_no_aborted_epoch_entries_survive(self, service, graph, monkeypatch):
        # fail_after=1: the first harvested entry IS re-put under the
        # aborted epoch before the second repair dies — rollback must
        # evict it, not let it shadow the snapshot
        service.query(0)
        service.query(1)
        failing_repairs(monkeypatch, fail_after=1)
        with pytest.raises(RuntimeError):
            service.mutate(reweights=reweight_batch(graph), strict=False)
        stats = service.stats()
        assert stats.cache.size == 2
        assert stats.mutations_applied == 0

    def test_service_recovers_for_later_mutations(self, service, graph, monkeypatch):
        service.query(0)
        calls = failing_repairs(monkeypatch, fail_after=0)
        with pytest.raises(RuntimeError):
            service.mutate(reweights=reweight_batch(graph), strict=False)
        assert calls["n"] == 1
        # with the patch lifted the same batch applies cleanly
        monkeypatch.undo()
        report = service.mutate(reweights=reweight_batch(graph), strict=False)
        assert report.epoch == graph.epoch
        assert report.repaired_entries == 1
        # and the repaired answer matches a cold re-solve
        repaired = service.query(0)
        cold = QueryService(graph).query(0)
        np.testing.assert_array_equal(repaired.distances, cold.distances)

"""The batch engine's contract: K-source results == K independent Dijkstra runs."""

import numpy as np
import pytest

from repro.graphs import datasets
from repro.graphs.graph import Graph
from repro.service.batch import (
    BatchSSSPResult,
    batch_delta_stepping,
    batch_fused_delta_stepping,
    batch_graphblas_delta_stepping,
)
from repro.sssp import dijkstra, fused_delta_stepping
from repro.sssp.delta import choose_delta


class TestBatchMatchesDijkstra:
    @pytest.mark.parametrize("name", ["ci-ba", "ci-rmat", "ci-road", "ci-ws", "ci-er"])
    def test_ci_suite_unit_weights(self, name):
        g = datasets.load(name)
        rng = np.random.default_rng(hash(name) % 2**32)
        sources = rng.choice(g.num_vertices, size=8, replace=False)
        res = batch_delta_stepping(g, sources)
        for k, s in enumerate(sources):
            oracle = dijkstra(g, int(s)).distances
            assert np.array_equal(res.distances[k], oracle), f"{name} row {k}"

    def test_weighted_graph(self, random_weighted_graph):
        g = random_weighted_graph
        sources = [0, 5, 17, 99]
        res = batch_delta_stepping(g, sources, delta=0.3)
        for k, s in enumerate(sources):
            oracle = dijkstra(g, s).distances
            assert np.allclose(res.distances[k], oracle)
            assert np.array_equal(
                np.isfinite(res.distances[k]), np.isfinite(oracle)
            )

    def test_graphblas_engine_matches(self, diamond_graph):
        res = batch_graphblas_delta_stepping(diamond_graph, [0, 1, 3], 1.0)
        for k, s in enumerate([0, 1, 3]):
            assert np.array_equal(res.distances[k], dijkstra(diamond_graph, s).distances)

    def test_engines_agree(self):
        g = datasets.load("ci-ws")
        sources = [0, 10, 20, 30]
        fused = batch_fused_delta_stepping(g, sources, 1.0)
        gb = batch_graphblas_delta_stepping(g, sources, 1.0)
        assert np.array_equal(fused.distances, gb.distances)

    def test_duplicate_sources_allowed(self, diamond_graph):
        res = batch_delta_stepping(diamond_graph, [0, 0, 2])
        assert np.array_equal(res.distances[0], res.distances[1])

    def test_matches_single_source_fused(self, grid_graph):
        sources = [0, 13, 63]
        res = batch_delta_stepping(grid_graph, sources)
        for k, s in enumerate(sources):
            single = fused_delta_stepping(grid_graph, s, 1.0)
            assert np.array_equal(res.distances[k], single.distances)


class TestBatchShape:
    def test_result_for_repackages_rows(self, diamond_graph):
        res = batch_delta_stepping(diamond_graph, [0, 1])
        single = res.result_for(1)
        assert single.source == 1
        assert np.array_equal(single.distances, res.distances[1])
        with pytest.raises(IndexError):
            res.result_for(2)

    def test_counters_aggregate(self, grid_graph):
        res = batch_delta_stepping(grid_graph, [0, 63])
        assert res.num_sources == 2
        assert res.phases > 0
        assert res.relaxations > 0
        assert isinstance(res, BatchSSSPResult)

    def test_shared_waves_fewer_phases_than_sum(self, grid_graph):
        """The batching win: K sources share waves instead of summing them."""
        sources = [0, 7, 56, 63]
        batch = batch_delta_stepping(grid_graph, sources)
        single_phases = sum(
            fused_delta_stepping(grid_graph, s, 1.0).phases for s in sources
        )
        assert batch.phases < single_phases

    def test_delta_auto_selection(self, grid_graph):
        res = batch_delta_stepping(grid_graph, [0])
        assert res.delta == choose_delta(grid_graph)


class TestBatchValidation:
    def test_empty_sources_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            batch_delta_stepping(diamond_graph, [])

    def test_out_of_range_source(self, diamond_graph):
        with pytest.raises(IndexError):
            batch_delta_stepping(diamond_graph, [0, 99])

    def test_nonpositive_delta(self, diamond_graph):
        with pytest.raises(ValueError):
            batch_delta_stepping(diamond_graph, [0], delta=0.0)

    def test_unknown_method(self, diamond_graph):
        with pytest.raises(ValueError, match="unknown batch method"):
            batch_delta_stepping(diamond_graph, [0], method="magic")

    def test_state_size_guard(self):
        g = Graph.empty(1 << 20)
        with pytest.raises(ValueError, match="chunk the sources"):
            batch_fused_delta_stepping(g, list(range(200)), 1.0)

    def test_disconnected_rows_are_inf(self):
        g = Graph.from_edges([0, 3], [1, 4], n=6)
        res = batch_delta_stepping(g, [0, 3])
        assert np.isinf(res.distances[0, 3:]).all()
        assert np.isinf(res.distances[1, :3]).all()
        assert res.distances[0, 1] == 1.0
        assert res.distances[1, 4] == 1.0

"""Landmark index: selection strategies and bound admissibility.

The load-bearing property: for every queried pair, the true shortest
distance lies inside ``[lower_bound, upper_bound]`` — the upper bound is
the length of a real s→landmark→t walk, the lower bound the ALT triangle
bound.
"""

import numpy as np
import pytest

from repro.graphs import datasets, generators
from repro.graphs.graph import Graph
from repro.service.landmarks import (
    LANDMARK_STRATEGIES,
    LandmarkIndex,
    select_landmarks,
)
from repro.sssp import dijkstra


class TestSelection:
    @pytest.mark.parametrize("strategy", sorted(LANDMARK_STRATEGIES))
    def test_strategies_return_valid_vertices(self, strategy):
        g = datasets.load("ci-ws")
        marks = select_landmarks(g, 6, strategy=strategy)
        assert 1 <= len(marks) <= 6
        assert len(np.unique(marks)) == len(marks)
        assert marks.min() >= 0 and marks.max() < g.num_vertices

    def test_farthest_spreads_over_grid(self):
        g = generators.grid_2d(10, 10)
        marks = select_landmarks(g, 4, strategy="farthest")
        # farthest-point sampling on a mesh never picks adjacent corners
        d = dijkstra(g, int(marks[0])).distances
        assert d[marks[1]] >= 5

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown landmark strategy"):
            select_landmarks(datasets.load("ci-ws"), 2, strategy="psychic")

    def test_zero_landmarks_rejected(self):
        with pytest.raises(ValueError):
            select_landmarks(datasets.load("ci-ws"), 0)


class TestBounds:
    @pytest.mark.parametrize("strategy", ["farthest", "degree", "random"])
    def test_bounds_bracket_true_distance(self, strategy):
        g = datasets.load("ci-ws")
        index = LandmarkIndex.build(g, num_landmarks=4, strategy=strategy)
        rng = np.random.default_rng(5)
        for s in rng.choice(g.num_vertices, size=5, replace=False):
            true = dijkstra(g, int(s)).distances
            for t in rng.choice(g.num_vertices, size=20, replace=False):
                est = index.estimate(int(s), int(t))
                if np.isfinite(true[t]):
                    assert est.lower <= true[t] + 1e-9, (s, t)
                    assert est.upper >= true[t] - 1e-9, (s, t)

    def test_upper_bound_admissible_on_weighted_digraph(self):
        rng = np.random.default_rng(9)
        m = 400
        g = Graph.from_edges(
            rng.integers(0, 80, m), rng.integers(0, 80, m),
            rng.uniform(0.1, 1.0, m), n=80,
        )
        index = LandmarkIndex.build(g, num_landmarks=5, strategy="degree")
        for s in (0, 7, 33):
            true = dijkstra(g, s).distances
            for t in range(80):
                ub = index.upper_bound(s, t)
                if np.isfinite(true[t]):
                    assert ub >= true[t] - 1e-9
                # the bound is itself a real walk length, so it is also
                # infinite whenever the pair is truly disconnected
                else:
                    assert np.isinf(ub)

    def test_identity_query(self):
        g = datasets.load("ci-ws")
        index = LandmarkIndex.build(g, num_landmarks=2)
        est = index.estimate(3, 3)
        assert est.lower == est.upper == 0.0

    def test_disconnected_pair_is_inf_upper(self):
        g = Graph.from_edges([0, 2], [1, 3], n=4)
        index = LandmarkIndex.build(g, num_landmarks=2, strategy="degree")
        assert np.isinf(index.upper_bound(0, 3))

    def test_disconnected_estimate_emits_no_warning(self):
        """inf - inf inside the lower bound must stay silent (embedders
        running with warnings-as-errors would otherwise crash)."""
        import warnings

        g = Graph.from_edges([0, 1, 3, 4], [1, 2, 4, 5], n=6)
        index = LandmarkIndex.build(g, num_landmarks=2, strategy="degree")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            est = index.estimate(0, 4)
        assert np.isinf(est.upper)

    def test_out_of_range_query(self):
        g = datasets.load("ci-ws")
        index = LandmarkIndex.build(g, num_landmarks=2)
        with pytest.raises(IndexError):
            index.estimate(0, 10_000)

"""Kernel equivalence: argsort and scatter must be interchangeable, bit-for-bit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    KERNELS,
    RelaxWorkspace,
    check_kernel,
    gather_candidates,
    min_by_target,
    min_by_target_scatter,
    min_by_target_sort,
)


def _both(targets, dists, n):
    ws = RelaxWorkspace(n)
    a = min_by_target_sort(targets, dists)
    b = min_by_target_scatter(targets, dists, ws)
    return a, b, ws


class TestKernelEquivalence:
    def test_duplicate_targets(self):
        targets = np.array([3, 1, 3, 3, 1, 0], dtype=np.int64)
        dists = np.array([5.0, 2.0, 1.5, 9.0, 2.0, 0.25])
        (ts_a, ds_a), (ts_b, ds_b), _ = _both(targets, dists, 8)
        assert np.array_equal(ts_a, [0, 1, 3])
        assert np.array_equal(ds_a, [0.25, 2.0, 1.5])
        assert np.array_equal(ts_a, ts_b)
        assert np.array_equal(ds_a, ds_b)

    def test_zero_weight_candidates(self):
        # equal (zero-derived) distances for one target: both kernels keep it
        targets = np.array([2, 2, 2], dtype=np.int64)
        dists = np.array([4.0, 4.0, 4.0])
        (ts_a, ds_a), (ts_b, ds_b), _ = _both(targets, dists, 4)
        assert np.array_equal(ts_a, ts_b) and np.array_equal(ds_a, ds_b)
        assert ds_a[0] == 4.0

    def test_empty_input(self):
        (ts_a, ds_a), (ts_b, ds_b), _ = _both(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), 5
        )
        assert len(ts_a) == len(ds_a) == len(ts_b) == len(ds_b) == 0

    def test_single_vertex(self):
        (ts_a, ds_a), (ts_b, ds_b), _ = _both(
            np.array([0], dtype=np.int64), np.array([1.25]), 1
        )
        assert np.array_equal(ts_a, ts_b) and np.array_equal(ds_a, ds_b)
        assert ts_a[0] == 0 and ds_a[0] == 1.25

    def test_scatter_restores_workspace_invariant(self):
        targets = np.array([1, 1, 4], dtype=np.int64)
        dists = np.array([3.0, 2.0, 7.0])
        _, _, ws = _both(targets, dists, 6)
        ws.check()  # req all-inf, touched all-False, offenders named

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_property_identical_results(self, data):
        n = data.draw(st.integers(min_value=1, max_value=40))
        m = data.draw(st.integers(min_value=0, max_value=200))
        targets = np.asarray(
            data.draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)),
            dtype=np.int64,
        )
        # weights quantized to quarters: exercises exact ties (zero-weight
        # duplicates) without float-noise distraction
        dists = np.asarray(
            data.draw(st.lists(st.integers(0, 40), min_size=m, max_size=m)),
            dtype=np.float64,
        ) / 4.0
        (ts_a, ds_a), (ts_b, ds_b), ws = _both(targets, dists, n)
        assert np.array_equal(ts_a, ts_b)
        assert np.array_equal(ds_a, ds_b)
        # the invariant must hold again so the next wave starts clean
        ws.check()


class TestDispatch:
    def test_auto_without_workspace_uses_sort(self, rng):
        targets = rng.integers(0, 10, size=50)
        dists = rng.random(50)
        uts, ubest = min_by_target(targets, dists)  # no workspace: argsort path
        ref = min_by_target_sort(targets, dists)
        assert np.array_equal(uts, ref[0]) and np.array_equal(ubest, ref[1])

    def test_explicit_scatter_requires_workspace(self):
        with pytest.raises(ValueError, match="RelaxWorkspace"):
            min_by_target(np.array([0]), np.array([1.0]), kernel="scatter")

    def test_unknown_kernel_enumerates_registry(self):
        with pytest.raises(ValueError) as e:
            min_by_target(np.array([0]), np.array([1.0]), kernel="quantum")
        for name in KERNELS:
            assert name in str(e.value)
        with pytest.raises(ValueError) as e2:
            check_kernel("quantum")
        assert "argsort" in str(e2.value)

    def test_check_kernel_accepts_known(self):
        for name in ("auto", *KERNELS):
            assert check_kernel(name) == name


class TestGather:
    def test_matches_manual_expansion(self, diamond_graph):
        indptr, indices, weights = diamond_graph.csr()
        t = np.array([0.0, 2.0, np.inf, np.inf])
        frontier = np.array([0, 1], dtype=np.int64)
        for ws in (None, RelaxWorkspace(diamond_graph.num_vertices)):
            targets, dists = gather_candidates(indptr, indices, weights, frontier, t, ws)
            assert np.array_equal(np.asarray(targets), [1, 2, 2])
            assert np.allclose(np.asarray(dists), [2.0, 7.0, 5.0])

    def test_edgeless_frontier_returns_none(self):
        indptr = np.zeros(4, dtype=np.int64)
        out = gather_candidates(
            indptr, np.empty(0, dtype=np.int64), np.empty(0), np.array([1, 2]), np.zeros(3)
        )
        assert out == (None, None)

"""BucketQueue: lazy bucket index semantics (ordering, staleness, hints)."""

import numpy as np
import pytest

from repro.kernels import BucketQueue


def _arr(*xs):
    return np.asarray(xs, dtype=np.int64)


class TestBasics:
    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            BucketQueue(0.0)
        with pytest.raises(ValueError):
            BucketQueue(-1.0)

    def test_empty_pop(self):
        bq = BucketQueue(1.0)
        assert not bq
        i, frontier = bq.pop_bucket(np.zeros(4))
        assert i is None and len(frontier) == 0

    def test_pops_in_bucket_order(self):
        dist = np.array([0.0, 3.5, 1.2, 7.9])
        bq = BucketQueue(1.0)
        bq.push(_arr(1, 3), dist[[1, 3]])
        bq.push(_arr(0, 2), dist[[0, 2]])
        order = []
        while bq:
            i, frontier = bq.pop_bucket(dist)
            order.append((i, frontier.tolist()))
        assert order == [(0, [0]), (1, [2]), (3, [1]), (7, [3])]

    def test_frontier_is_deduped_and_ascending(self):
        dist = np.array([0.4, 0.2, 0.9])
        bq = BucketQueue(1.0)
        bq.push(_arr(2, 0), dist[[2, 0]])
        bq.push(_arr(1, 2), dist[[1, 2]])
        i, frontier = bq.pop_bucket(dist)
        assert i == 0
        assert frontier.tolist() == [0, 1, 2]


class TestLazyValidation:
    def test_stale_entries_dropped(self):
        # vertex 1 filed under bucket 4, then improves into bucket 0:
        # the old hint must evaporate, the new one must serve
        dist = np.array([0.0, 4.5])
        bq = BucketQueue(1.0)
        bq.push(_arr(1), dist[[1]])
        dist[1] = 0.25
        bq.push(_arr(1), dist[[1]])
        i, frontier = bq.pop_bucket(dist)
        assert i == 0 and frontier.tolist() == [1]
        i, frontier = bq.pop_bucket(dist)
        assert i is None and len(frontier) == 0

    def test_push_into_hint_validated_like_any_entry(self):
        dist = np.array([1.5, 1.7])
        bq = BucketQueue(1.0)
        bq.push_into(1, _arr(0, 1))
        dist[0] = 0.1  # improved away after the hint was filed
        bq.push(_arr(0), dist[[0]])
        i, frontier = bq.pop_bucket(dist)
        assert (i, frontier.tolist()) == (0, [0])
        i, frontier = bq.pop_bucket(dist)
        assert (i, frontier.tolist()) == (1, [1])

    def test_push_into_empty_is_noop(self):
        bq = BucketQueue(1.0)
        bq.push_into(3, np.empty(0, dtype=np.int64))
        assert not bq


class TestUlpBoundaryRegression:
    """push/pop/stepper windows must agree under float rounding — a 1-ulp
    disagreement between ``idx*Δ + Δ`` and ``(idx+1)*Δ`` used to drop a
    live vertex and return inf for a reachable one."""

    def test_confirmed_drop_case(self):
        from repro.graphs.graph import Graph
        from repro.sssp.fused import fused_delta_stepping
        from repro.sssp.reference import dijkstra

        g = Graph.from_edges([0, 1], [1, 2], [15.003965537540262, 1.0], n=3)
        delta = 2.500660922923377
        oracle = dijkstra(g, 0).distances
        for kernel in ("argsort", "scatter"):
            r = fused_delta_stepping(g, 0, delta, kernel=kernel)
            assert np.array_equal(r.distances, oracle)

    def test_queue_never_loses_vertices_at_fuzzy_boundaries(self):
        rng = np.random.default_rng(11)
        for _ in range(200):
            delta = float(rng.uniform(0.3, 5.0))
            k = rng.integers(1, 40, size=16)
            # distances engineered onto/next to bucket boundaries, both
            # the k*Δ and (k-1)*Δ + Δ spellings
            d = np.where(rng.random(16) < 0.5, k * delta, (k - 1) * delta + delta)
            d = np.abs(d)
            bq = BucketQueue(delta)
            bq.push(np.arange(16, dtype=np.int64), d)
            seen = set()
            while bq:
                i, frontier = bq.pop_bucket(d)
                lo, hi = i * delta, (i + 1) * delta
                assert np.all((d[frontier] >= lo) & (d[frontier] < hi))
                seen.update(frontier.tolist())
            assert seen == set(range(16)), (delta, d)

    def test_late_entries_refiled_not_dropped(self):
        # an analytic hint one bucket too low must be refiled, not lost
        dist = np.array([2.0])
        bq = BucketQueue(1.0)
        bq.push_into(1, _arr(0))  # true bucket is 2
        i, frontier = bq.pop_bucket(dist)
        assert (i, frontier.tolist()) == (2, [0])

    def test_huge_distance_tiny_delta_terminates(self):
        """Livelock regression: when d/Δ exceeds 2^53, adjacent bucket
        products collapse (b*Δ == (b+1)*Δ) and floor_divide errs by more
        than ±1 — push must still walk to a valid bucket and pop must
        make progress, like the seed's window scan did."""
        from repro.graphs.graph import Graph
        from repro.sssp.fused import fused_delta_stepping
        from repro.sssp.reference import dijkstra

        g = Graph.from_edges([0, 1], [1, 2], [1.455986969276348e17, 1.0], n=3)
        oracle = dijkstra(g, 0).distances
        for kernel in ("argsort", "scatter"):
            r = fused_delta_stepping(g, 0, 6.405920704482398, kernel=kernel)
            assert np.array_equal(r.distances, oracle)

    def test_queue_level_ulp_starved_push_pop(self):
        d = np.array([1.455986969276348e17])
        bq = BucketQueue(6.405920704482398)
        bq.push(_arr(0), d)
        i, frontier = bq.pop_bucket(d)
        assert frontier.tolist() == [0]
        lo, hi = i * bq.delta, (i + 1) * bq.delta
        assert lo <= d[0] < hi

    def test_phantom_empty_buckets_do_not_crash_bench(self):
        """The seed's division/product boundary disagreement makes it walk
        (and count) phantom empty buckets; the queue never schedules one.
        Distances and phase counters must still agree, and the bench must
        report rather than crash on such a (graph, delta) pair."""
        from repro.bench.kernel_bench import kernel_bench_series, seed_fused_delta_stepping
        from repro.bench.workloads import Workload
        from repro.graphs.graph import Graph
        from repro.sssp.fused import fused_delta_stepping

        g = Graph.from_edges([0], [1], [13.7], n=2)
        seed = seed_fused_delta_stepping(g, 0, 1e-6)
        new = fused_delta_stepping(g, 0, 1e-6)
        assert np.array_equal(seed.distances, new.distances)
        assert (seed.phases, seed.relaxations, seed.updates) == (
            new.phases, new.relaxations, new.updates,
        )
        assert new.buckets_processed <= seed.buckets_processed  # no phantoms
        rows = kernel_bench_series([Workload("boundary", g, 0, 1e-6)], repeats=1)
        assert all(r["verified"] == "ok" for r in rows)

    def test_fused_fuzz_vs_dijkstra_random_deltas(self):
        from repro.graphs.graph import Graph
        from repro.sssp.fused import fused_delta_stepping
        from repro.sssp.reference import dijkstra

        rng = np.random.default_rng(5)
        for _ in range(25):
            m = 150
            g = Graph.from_edges(
                rng.integers(0, 40, size=m), rng.integers(0, 40, size=m),
                rng.uniform(0.0, 16.0, size=m), n=40,
            )
            delta = float(rng.uniform(0.05, 7.0))
            oracle = dijkstra(g, 0).distances
            for kernel in ("argsort", "scatter"):
                r = fused_delta_stepping(g, 0, delta, kernel=kernel)
                assert np.array_equal(r.distances, oracle), (delta, kernel)


class TestBoundaryPlacement:
    def test_exact_bucket_boundaries(self):
        # distances exactly on iΔ must land in bucket i (window [iΔ,(i+1)Δ))
        delta = 0.1  # not exactly representable: the misround-prone case
        dist = np.array([k * delta for k in range(30)])
        bq = BucketQueue(delta)
        bq.push(np.arange(30, dtype=np.int64), dist)
        seen = []
        while bq:
            i, frontier = bq.pop_bucket(dist)
            seen.extend(frontier.tolist())
            lo = i * delta
            assert np.all(dist[frontier] >= lo)
            assert np.all(dist[frontier] < lo + delta)
        assert sorted(seen) == list(range(30))  # nothing lost to misrounding

    def test_single_bucket_fast_path_matches_general(self):
        dist = np.array([2.1, 2.9, 2.5])
        a, b = BucketQueue(1.0), BucketQueue(1.0)
        a.push(_arr(0, 1, 2), dist)  # all one bucket: fast path
        b.push(_arr(0), dist[[0]])
        b.push(_arr(1), dist[[1]])
        b.push(_arr(2), dist[[2]])
        ia, fa = a.pop_bucket(dist)
        ib, fb = b.pop_bucket(dist)
        assert ia == ib == 2
        assert fa.tolist() == fb.tolist() == [0, 1, 2]

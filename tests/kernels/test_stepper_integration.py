"""Registry-wide kernel bit-identity + counter-parity regressions.

The kernel core's contract is that swapping the per-target-min kernel can
never change a distance or a work counter: every kernel-capable member of
``STEPPERS`` must stay bit-identical to Dijkstra under ``kernel=scatter``,
and the fused stepper's two relax variants must keep counter parity on
the awkward graphs (unreachable vertices, zero-weight edges).
"""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.sssp.fused import fused_delta_stepping
from repro.sssp.reference import dijkstra
from repro.stepping import STEPPERS, solve_with


def _graphs(rng):
    gs = {}
    # random weighted digraph
    m = 400
    gs["random"] = Graph.from_edges(
        rng.integers(0, 80, size=m), rng.integers(0, 80, size=m),
        rng.uniform(0.05, 1.0, size=m), n=80,
    )
    # unreachable tail: vertices 90..99 have no incoming path from 0
    src = rng.integers(0, 60, size=200)
    dst = rng.integers(0, 60, size=200)
    gs["unreachable"] = Graph.from_edges(
        np.concatenate([src, [90, 91]]), np.concatenate([dst, [91, 92]]),
        np.concatenate([rng.uniform(0.1, 2.0, size=200), [1.0, 1.0]]), n=100,
    )
    # zero-weight edges sprinkled in
    w = rng.uniform(0.0, 1.0, size=300)
    w[rng.integers(0, 300, size=40)] = 0.0
    gs["zero-weight"] = Graph.from_edges(
        rng.integers(0, 70, size=300), rng.integers(0, 70, size=300), w, n=70,
    )
    # single vertex
    gs["single"] = Graph.empty(1)
    return gs


@pytest.fixture(scope="module")
def graphs():
    return _graphs(np.random.default_rng(7))


class TestRegistryBitIdentity:
    @pytest.mark.parametrize("name", sorted(STEPPERS))
    def test_every_stepper_vs_dijkstra_under_scatter(self, graphs, name):
        """The ISSUE satellite: every STEPPERS entry, kernel=scatter, bitwise."""
        stepper = STEPPERS[name]
        for label, g in graphs.items():
            oracle = dijkstra(g, 0).distances
            if stepper.kernel_capable:
                r = solve_with(f"{name}(kernel=scatter)", g, 0)
            else:
                r = stepper.solve(g, 0)
            assert np.array_equal(r.distances, oracle), (name, label)

    @pytest.mark.parametrize("name", [n for n in sorted(STEPPERS) if STEPPERS[n].kernel_capable])
    def test_kernel_capable_argsort_matches_scatter(self, graphs, name):
        g = graphs["zero-weight"]
        a = solve_with(f"{name}(kernel=argsort)", g, 0)
        b = solve_with(f"{name}(kernel=scatter)", g, 0)
        assert np.array_equal(a.distances, b.distances)
        assert a.phases == b.phases
        assert a.relaxations == b.relaxations
        assert a.updates == b.updates

    def test_kernel_capable_flags_cover_expected_members(self):
        capable = {n for n, s in STEPPERS.items() if s.kernel_capable}
        assert {"delta", "rho", "radius", "delta-star", "sharded", "bellman-ford"} <= capable
        assert "dijkstra" not in capable

    def test_unknown_kernel_spec_rejected(self, graphs):
        with pytest.raises(ValueError, match="unknown kernel"):
            solve_with("delta(kernel=quantum)", graphs["random"], 0)


class TestFusedCounterParity:
    """Regression: fuse_relax=True/False count over different candidate
    representations; the kernels must preserve their parity exactly."""

    def _parity(self, g, source, delta, kernel):
        rs = [
            fused_delta_stepping(g, source, delta, fuse_relax=fr, kernel=kernel)
            for fr in (True, False)
        ]
        a, b = rs
        assert np.array_equal(a.distances, b.distances)
        assert a.buckets_processed == b.buckets_processed
        assert a.phases == b.phases
        assert a.relaxations == b.relaxations
        assert a.updates == b.updates
        return a

    @pytest.mark.parametrize("kernel", ["auto", "argsort", "scatter"])
    def test_parity_with_unreachable_vertices(self, graphs, kernel):
        r = self._parity(graphs["unreachable"], 0, 0.4, kernel)
        assert np.isinf(r.distances).any()  # the tail really is unreachable

    @pytest.mark.parametrize("kernel", ["auto", "argsort", "scatter"])
    def test_parity_with_zero_weight_edges(self, graphs, kernel):
        self._parity(graphs["zero-weight"], 0, 0.3, kernel)

    @pytest.mark.parametrize("kernel", ["auto", "argsort", "scatter"])
    def test_parity_on_diamond(self, diamond_graph, kernel):
        self._parity(diamond_graph, 0, 3.0, kernel)

    def test_parity_counters_match_dijkstra_distances(self, graphs):
        for label, g in graphs.items():
            r = self._parity(g, 0, 0.5, "scatter")
            assert np.array_equal(r.distances, dijkstra(g, 0).distances), label


class TestBatchEngineKernels:
    def test_batch_fused_kernels_agree(self, graphs):
        from repro.service.batch import batch_fused_delta_stepping

        g = graphs["random"]
        sources = [0, 3, 11]
        a = batch_fused_delta_stepping(g, sources, 0.5, kernel="scatter")
        b = batch_fused_delta_stepping(g, sources, 0.5, kernel="argsort")
        assert np.array_equal(a.distances, b.distances)
        for k, s in enumerate(sources):
            assert np.array_equal(a.distances[k], dijkstra(g, s).distances)

    def test_batch_rejects_unknown_kernel(self, graphs):
        from repro.service.batch import batch_fused_delta_stepping

        with pytest.raises(ValueError, match="unknown kernel"):
            batch_fused_delta_stepping(graphs["random"], [0], 0.5, kernel="quantum")

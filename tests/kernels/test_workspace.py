"""Workspace reuse: steady-state phases must not allocate wave buffers."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.kernels import RelaxWorkspace, cached_row_ids, workspace_for
from repro.kernels.workspace import _ROW_IDS_KEY, _WORKSPACE_KEY
from repro.sssp.fused import fused_delta_stepping
from repro.sssp.reference import dijkstra


class _RecordingWorkspace(RelaxWorkspace):
    """Counts distinct backing buffers handed out across waves."""

    def __init__(self, n):
        super().__init__(n)
        self.buffer_ids = set()
        self.waves = 0

    def wave_buffers(self, total):
        out = super().wave_buffers(total)
        self.waves += 1
        self.buffer_ids.add(id(out[0].base))
        return out


class TestSteadyStateReuse:
    def test_no_per_phase_allocations_across_solve(self, grid_graph):
        """The ISSUE acceptance check: buffer identity counted across phases.

        After one warmup solve the arena is at capacity; a steady-state
        solve must route every phase's wave through the *same* backing
        buffers with zero growths.
        """
        ws = _RecordingWorkspace(grid_graph.num_vertices)
        fused_delta_stepping(grid_graph, 0, 1.0, workspace=ws)  # warmup: grows allowed
        ws.buffer_ids.clear()
        ws.waves = 0
        grows_before = ws.grows
        r = fused_delta_stepping(grid_graph, 0, 1.0, workspace=ws, kernel="scatter")
        assert r.phases > 5  # a real multi-phase run
        # every non-empty relax wave went through the arena (heavy phases
        # on a unit-weight graph carry no edges and skip the gather)
        assert ws.waves >= r.buckets_processed
        assert ws.grows == grows_before  # no new allocations at steady state
        assert len(ws.buffer_ids) == 1  # one backing buffer served every phase

    def test_wave_buffer_views_share_base(self):
        ws = RelaxWorkspace(10)
        f1, t1, d1 = ws.wave_buffers(7)
        f2, t2, d2 = ws.wave_buffers(3)
        assert f1.base is f2.base and t1.base is t2.base and d1.base is d2.base
        assert ws.grows == 1

    def test_growth_is_geometric_and_monotone(self):
        ws = RelaxWorkspace(4)
        ws.wave_buffers(10)
        cap = len(ws._flat)
        ws.wave_buffers(cap)  # fits: no growth
        assert ws.grows == 1
        ws.wave_buffers(cap + 1)
        assert ws.grows == 2
        assert len(ws._flat) >= 2 * cap

    def test_iota_is_a_stable_ramp(self):
        ws = RelaxWorkspace(4)
        assert np.array_equal(ws.iota(5), np.arange(5))
        base = ws._iota
        assert ws.iota(3).base is base

    def test_reset_restores_invariant(self):
        ws = RelaxWorkspace(6)
        ws.req[2] = 1.0
        ws.touched[3] = True
        ws.reset()
        assert np.all(np.isinf(ws.req)) and not ws.touched.any()

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            RelaxWorkspace(-1)


class TestCheckInvariant:
    """``RelaxWorkspace.check()``: the debug assertion of the between-waves
    steady state (req all-inf, touched all-False), wired into the kernel
    property tests and the race harness."""

    def test_fresh_and_reset_arenas_pass(self):
        ws = RelaxWorkspace(8)
        ws.check()
        ws.req[1] = 0.5
        ws.reset()
        ws.check()

    def test_leaked_request_named(self):
        ws = RelaxWorkspace(8)
        ws.req[2] = 1.0
        with pytest.raises(AssertionError, match=r"req not all-inf at keys \[2\]"):
            ws.check()

    def test_stuck_touched_named(self):
        ws = RelaxWorkspace(8)
        ws.touched[5] = True
        with pytest.raises(AssertionError, match=r"touched not all-False at keys \[5\]"):
            ws.check()

    def test_listing_caps_at_eight_with_total(self):
        ws = RelaxWorkspace(32)
        ws.touched[:12] = True
        with pytest.raises(AssertionError, match=r"\(12 total\)"):
            ws.check()

    def test_clean_after_a_full_solve(self, grid_graph):
        ws = RelaxWorkspace(grid_graph.num_vertices)
        fused_delta_stepping(grid_graph, 0, 1.0, workspace=ws, kernel="scatter")
        ws.check()


class TestPerGraphCaching:
    def test_workspace_for_memoizes(self, grid_graph):
        ws1 = workspace_for(grid_graph)
        ws2 = workspace_for(grid_graph)
        assert ws1 is ws2
        assert grid_graph.meta[_WORKSPACE_KEY] is ws1

    def test_workspace_dropped_on_copy(self, grid_graph):
        workspace_for(grid_graph)
        assert _WORKSPACE_KEY not in grid_graph.copy().meta

    def test_row_ids_cached_per_epoch(self, grid_graph):
        ids1 = cached_row_ids(grid_graph)
        ids2 = cached_row_ids(grid_graph)
        assert ids1 is ids2
        ref = np.repeat(
            np.arange(grid_graph.num_vertices), np.diff(grid_graph.indptr)
        )
        assert np.array_equal(ids1, ref)

    def test_row_ids_recomputed_after_mutation(self, grid_graph):
        from repro.dynamic import apply_edge_updates

        ids_before = cached_row_ids(grid_graph)
        apply_edge_updates(grid_graph, deletes=[(0, 1)])
        ids_after = cached_row_ids(grid_graph)
        assert ids_after is not ids_before
        assert len(ids_after) == grid_graph.num_edges

    def test_row_ids_dropped_on_copy(self, grid_graph):
        cached_row_ids(grid_graph)
        assert _ROW_IDS_KEY not in grid_graph.copy().meta

    def test_split_reuses_one_expansion(self, grid_graph):
        """Light and heavy builds share the cached expansion (the satellite)."""
        from repro.sssp.fused import split_csr_light_heavy

        split_csr_light_heavy(grid_graph, 1.0)
        entry = grid_graph.meta[_ROW_IDS_KEY]
        split_csr_light_heavy(grid_graph, 0.5, fused=False)
        assert grid_graph.meta[_ROW_IDS_KEY] is entry  # no recompute

    def test_solves_correct_after_mutation_with_caches(self):
        """The epoch key keeps cached expansions honest across mutations."""
        from repro.dynamic import apply_edge_updates

        g = generators.grid_2d(5, 5)
        fused_delta_stepping(g, 0, 1.0)  # populate caches
        apply_edge_updates(g, deletes=[(0, 1)])
        r = fused_delta_stepping(g, 0, 1.0)
        assert np.array_equal(r.distances, dijkstra(g, 0).distances)

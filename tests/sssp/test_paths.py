"""Unit + property tests for shortest-path reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.sssp import delta_stepping, dijkstra
from repro.sssp.paths import path_weight, predecessor_tree, reconstruct_path


class TestPredecessorTree:
    def test_diamond(self, diamond_graph):
        r = delta_stepping(diamond_graph, 0, 1.0)
        pred = predecessor_tree(diamond_graph, r)
        assert pred.tolist() == [-1, 0, 1, 2]

    def test_unreachable_minus_one(self):
        g = Graph.from_edges([0], [1], n=3)
        r = delta_stepping(g, 0, 1.0)
        assert predecessor_tree(g, r)[2] == -1

    def test_tie_break_smallest(self):
        # two equal-length routes to 3: via 1 and via 2 -> picks 1
        g = Graph.from_edges([0, 0, 1, 2], [1, 2, 3, 3], [1.0, 1.0, 1.0, 1.0], n=4)
        r = delta_stepping(g, 0, 1.0)
        assert predecessor_tree(g, r)[3] == 1

    def test_matches_dijkstra_tree_distances(self, random_weighted_graph):
        r = delta_stepping(random_weighted_graph, 0, 0.3)
        pred = predecessor_tree(random_weighted_graph, r)
        d = r.distances
        for v in range(random_weighted_graph.num_vertices):
            if pred[v] >= 0:
                nbrs, wts = random_weighted_graph.neighbors(pred[v])
                k = np.searchsorted(nbrs, v)
                assert nbrs[k] == v
                assert np.isclose(d[v], d[pred[v]] + wts[k])


class TestReconstructPath:
    def test_diamond_route(self, diamond_graph):
        r = delta_stepping(diamond_graph, 0, 1.0)
        path = reconstruct_path(diamond_graph, r, 3)
        assert path == [0, 1, 2, 3]
        assert np.isclose(path_weight(diamond_graph, path), r.distances[3])

    def test_source_path(self, diamond_graph):
        r = delta_stepping(diamond_graph, 0, 1.0)
        assert reconstruct_path(diamond_graph, r, 0) == [0]

    def test_unreachable_empty(self):
        g = Graph.from_edges([0], [1], n=3)
        r = delta_stepping(g, 0, 1.0)
        assert reconstruct_path(g, r, 2) == []

    def test_disconnected_component_targets(self):
        """A whole second component: every vertex in it reconstructs to an
        empty path (no exception), from every implementation's result."""
        # component A: 0-1-2 chain; component B: 3-4-5 cycle
        g = Graph.from_edges(
            [0, 1, 3, 4, 5], [1, 2, 4, 5, 3], [1.0, 2.0, 1.0, 1.0, 1.0], n=6
        )
        for method in ("fused", "graphblas", "meyer-sanders"):
            r = delta_stepping(g, 0, 1.0, method=method)
            assert not np.isfinite(r.distances[3:]).any()
            for target in (3, 4, 5):
                assert reconstruct_path(g, r, target) == []
            # reachable side still works
            assert reconstruct_path(g, r, 2) == [0, 1, 2]

    def test_disconnected_component_predecessors(self):
        g = Graph.from_edges(
            [0, 1, 3, 4, 5], [1, 2, 4, 5, 3], [1.0, 2.0, 1.0, 1.0, 1.0], n=6
        )
        r = delta_stepping(g, 0, 1.0)
        pred = predecessor_tree(g, r)
        # unreachable vertices have no predecessor, even though the
        # cycle's edges are "tight" among themselves (inf == inf + w is
        # not a tight edge because the source distance is not finite)
        assert pred[3:].tolist() == [-1, -1, -1]

    def test_isolated_source_all_unreachable(self):
        g = Graph.from_edges([1], [2], n=4)  # source 0 has no out-edges
        r = delta_stepping(g, 0, 1.0)
        assert reconstruct_path(g, r, 0) == [0]
        for target in (1, 2, 3):
            assert reconstruct_path(g, r, target) == []

    def test_target_out_of_range(self, diamond_graph):
        r = delta_stepping(diamond_graph, 0, 1.0)
        with pytest.raises(IndexError):
            reconstruct_path(diamond_graph, r, 99)

    def test_path_weight_validates_edges(self, diamond_graph):
        with pytest.raises(ValueError):
            path_weight(diamond_graph, [0, 3])

    @given(st.integers(0, 2**31 - 1), st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_every_reached_target_reconstructs(self, seed, n):
        rng = np.random.default_rng(seed)
        m = 4 * n
        g = Graph.from_edges(
            rng.integers(0, n, m), rng.integers(0, n, m),
            rng.uniform(0.1, 1.0, m), n=n,
        )
        r = delta_stepping(g, 0, 0.5)
        for target in range(n):
            path = reconstruct_path(g, r, target)
            if np.isfinite(r.distances[target]):
                assert path[0] == 0 and path[-1] == target
                assert np.isclose(path_weight(g, path), r.distances[target])
            else:
                assert path == []

"""Unit + property tests for shortest-path reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.sssp import delta_stepping, dijkstra
from repro.sssp.paths import path_weight, predecessor_tree, reconstruct_path


class TestPredecessorTree:
    def test_diamond(self, diamond_graph):
        r = delta_stepping(diamond_graph, 0, 1.0)
        pred = predecessor_tree(diamond_graph, r)
        assert pred.tolist() == [-1, 0, 1, 2]

    def test_unreachable_minus_one(self):
        g = Graph.from_edges([0], [1], n=3)
        r = delta_stepping(g, 0, 1.0)
        assert predecessor_tree(g, r)[2] == -1

    def test_tie_break_smallest(self):
        # two equal-length routes to 3: via 1 and via 2 -> picks 1
        g = Graph.from_edges([0, 0, 1, 2], [1, 2, 3, 3], [1.0, 1.0, 1.0, 1.0], n=4)
        r = delta_stepping(g, 0, 1.0)
        assert predecessor_tree(g, r)[3] == 1

    def test_matches_dijkstra_tree_distances(self, random_weighted_graph):
        r = delta_stepping(random_weighted_graph, 0, 0.3)
        pred = predecessor_tree(random_weighted_graph, r)
        d = r.distances
        for v in range(random_weighted_graph.num_vertices):
            if pred[v] >= 0:
                nbrs, wts = random_weighted_graph.neighbors(pred[v])
                k = np.searchsorted(nbrs, v)
                assert nbrs[k] == v
                assert np.isclose(d[v], d[pred[v]] + wts[k])


class TestReconstructPath:
    def test_diamond_route(self, diamond_graph):
        r = delta_stepping(diamond_graph, 0, 1.0)
        path = reconstruct_path(diamond_graph, r, 3)
        assert path == [0, 1, 2, 3]
        assert np.isclose(path_weight(diamond_graph, path), r.distances[3])

    def test_source_path(self, diamond_graph):
        r = delta_stepping(diamond_graph, 0, 1.0)
        assert reconstruct_path(diamond_graph, r, 0) == [0]

    def test_unreachable_empty(self):
        g = Graph.from_edges([0], [1], n=3)
        r = delta_stepping(g, 0, 1.0)
        assert reconstruct_path(g, r, 2) == []

    def test_disconnected_component_targets(self):
        """A whole second component: every vertex in it reconstructs to an
        empty path (no exception), from every implementation's result."""
        # component A: 0-1-2 chain; component B: 3-4-5 cycle
        g = Graph.from_edges(
            [0, 1, 3, 4, 5], [1, 2, 4, 5, 3], [1.0, 2.0, 1.0, 1.0, 1.0], n=6
        )
        for method in ("fused", "graphblas", "meyer-sanders"):
            r = delta_stepping(g, 0, 1.0, method=method)
            assert not np.isfinite(r.distances[3:]).any()
            for target in (3, 4, 5):
                assert reconstruct_path(g, r, target) == []
            # reachable side still works
            assert reconstruct_path(g, r, 2) == [0, 1, 2]

    def test_disconnected_component_predecessors(self):
        g = Graph.from_edges(
            [0, 1, 3, 4, 5], [1, 2, 4, 5, 3], [1.0, 2.0, 1.0, 1.0, 1.0], n=6
        )
        r = delta_stepping(g, 0, 1.0)
        pred = predecessor_tree(g, r)
        # unreachable vertices have no predecessor, even though the
        # cycle's edges are "tight" among themselves (inf == inf + w is
        # not a tight edge because the source distance is not finite)
        assert pred[3:].tolist() == [-1, -1, -1]

    def test_isolated_source_all_unreachable(self):
        g = Graph.from_edges([1], [2], n=4)  # source 0 has no out-edges
        r = delta_stepping(g, 0, 1.0)
        assert reconstruct_path(g, r, 0) == [0]
        for target in (1, 2, 3):
            assert reconstruct_path(g, r, target) == []

    def test_target_out_of_range(self, diamond_graph):
        r = delta_stepping(diamond_graph, 0, 1.0)
        with pytest.raises(IndexError):
            reconstruct_path(diamond_graph, r, 99)

    def test_path_weight_validates_edges(self, diamond_graph):
        with pytest.raises(ValueError):
            path_weight(diamond_graph, [0, 3])

    def test_path_weight_on_unsorted_rows(self):
        """Regression: ``path_weight`` binary-searched each row, silently
        reporting "no edge" for valid edges when the CSR rows were
        unsorted (hand-built or adopted structures)."""
        g = Graph(
            indptr=np.array([0, 2, 3, 3]),
            indices=np.array([2, 1, 2]),  # row 0 targets [2, 1] — unsorted
            weights=np.array([5.0, 1.0, 1.0]),
        )
        assert g.edge_weight(0, 1) == 1.0
        assert g.edge_weight(0, 2) == 5.0
        assert path_weight(g, [0, 1, 2]) == 2.0
        assert path_weight(g, [0, 2]) == 5.0
        with pytest.raises(ValueError):
            path_weight(g, [1, 0])

    def test_unsorted_rows_round_trip_reconstruction(self):
        """The full chain — solve, predecessor tree, reconstruct, weigh —
        works on a graph whose rows were never canonicalized."""
        rng = np.random.default_rng(3)
        n, m = 40, 160
        sorted_g = Graph.from_edges(
            rng.integers(0, n, m), rng.integers(0, n, m),
            rng.uniform(0.1, 1.0, m), n=n,
        )
        perm_g = Graph(
            indptr=sorted_g.indptr.copy(),
            indices=sorted_g.indices.copy(),
            weights=sorted_g.weights.copy(),
        )
        # shuffle every row in place
        for v in range(n):
            lo, hi = perm_g.indptr[v], perm_g.indptr[v + 1]
            p = rng.permutation(hi - lo)
            perm_g.indices[lo:hi] = perm_g.indices[lo:hi][p]
            perm_g.weights[lo:hi] = perm_g.weights[lo:hi][p]
        assert not perm_g.has_canonical_rows() or perm_g.num_edges < 2
        r = delta_stepping(perm_g, 0, 0.5)
        assert np.array_equal(r.distances, delta_stepping(sorted_g, 0, 0.5).distances)
        for target in range(n):
            path = reconstruct_path(perm_g, r, target)
            if np.isfinite(r.distances[target]):
                assert np.isclose(path_weight(perm_g, path), r.distances[target])

    @given(st.integers(0, 2**31 - 1), st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_every_reached_target_reconstructs(self, seed, n):
        rng = np.random.default_rng(seed)
        m = 4 * n
        g = Graph.from_edges(
            rng.integers(0, n, m), rng.integers(0, n, m),
            rng.uniform(0.1, 1.0, m), n=n,
        )
        r = delta_stepping(g, 0, 0.5)
        for target in range(n):
            path = reconstruct_path(g, r, target)
            if np.isfinite(r.distances[target]):
                assert path[0] == 0 and path[-1] == target
                assert np.isclose(path_weight(g, path), r.distances[target])
            else:
                assert path == []

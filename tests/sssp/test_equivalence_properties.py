"""Property-based equivalence: every implementation ≡ Dijkstra on random
graphs, across Δ — the repo's strongest correctness statement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.sssp import METHODS, dijkstra
from repro.sssp.validate import check_against_dijkstra, check_optimality_conditions


@st.composite
def random_graphs(draw):
    """Random weighted digraphs up to 40 vertices."""
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 160))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    w = rng.uniform(0.05, 2.0, size=m)
    return Graph.from_edges(src, dst, w, n=n)


@st.composite
def graph_and_params(draw):
    g = draw(random_graphs())
    source = draw(st.integers(0, g.num_vertices - 1))
    delta = draw(st.sampled_from([0.1, 0.3, 1.0, 2.5, 100.0]))
    return g, source, delta


class TestEquivalenceProperties:
    @given(graph_and_params())
    @settings(max_examples=25, deadline=None)
    def test_fused_equals_dijkstra(self, gp):
        g, src, delta = gp
        r = METHODS["fused"](g, src, delta)
        check_against_dijkstra(g, r)

    @given(graph_and_params())
    @settings(max_examples=15, deadline=None)
    def test_graphblas_equals_dijkstra(self, gp):
        g, src, delta = gp
        r = METHODS["graphblas"](g, src, delta)
        check_against_dijkstra(g, r)

    @given(graph_and_params())
    @settings(max_examples=15, deadline=None)
    def test_meyer_sanders_equals_dijkstra(self, gp):
        g, src, delta = gp
        r = METHODS["meyer-sanders"](g, src, delta)
        check_against_dijkstra(g, r)

    @given(graph_and_params())
    @settings(max_examples=10, deadline=None)
    def test_capi_equals_dijkstra(self, gp):
        g, src, delta = gp
        # the Fig. 2 listing steps i by 1; cap bucket count for tiny deltas
        if delta < 1.0:
            delta = 1.0
        r = METHODS["capi"](g, src, delta)
        check_against_dijkstra(g, r)

    @given(graph_and_params())
    @settings(max_examples=12, deadline=None)
    def test_parallel_equals_dijkstra(self, gp):
        g, src, delta = gp
        r = METHODS["parallel"](g, src, delta, num_threads=2, min_parallel_size=0)
        check_against_dijkstra(g, r)

    @given(graph_and_params())
    @settings(max_examples=20, deadline=None)
    def test_optimality_conditions_hold(self, gp):
        g, src, delta = gp
        r = METHODS["fused"](g, src, delta)
        check_optimality_conditions(g, r)

    @given(random_graphs(), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_delta_invariance(self, g, src_seed):
        """Distances must not depend on Δ."""
        src = src_seed % g.num_vertices
        results = [METHODS["fused"](g, src, d) for d in (0.2, 1.0, 7.0)]
        for r in results[1:]:
            assert results[0].same_distances(r)

    @given(random_graphs())
    @settings(max_examples=15, deadline=None)
    def test_distances_monotone_under_edge_addition(self, g):
        """Adding an edge can only shorten distances."""
        if g.num_vertices < 3:
            return
        before = METHODS["fused"](g, 0, 1.0).distances
        src, dst, w = g.to_edges()
        g2 = Graph.from_edges(
            np.concatenate([src, [0]]),
            np.concatenate([dst, [g.num_vertices - 1]]),
            np.concatenate([w, [0.05]]),
            n=g.num_vertices,
        )
        after = METHODS["fused"](g2, 0, 1.0).distances
        assert np.all(after <= before + 1e-9)


class TestValidateHelpers:
    def test_check_against_dijkstra_detects_corruption(self, diamond_graph):
        from repro.sssp.validate import ValidationError

        r = METHODS["fused"](diamond_graph, 0, 1.0)
        r.distances[2] += 1.0
        with pytest.raises(ValidationError):
            check_against_dijkstra(diamond_graph, r)

    def test_optimality_detects_infeasible(self, diamond_graph):
        from repro.sssp.validate import ValidationError

        r = METHODS["fused"](diamond_graph, 0, 1.0)
        r.distances[3] = 100.0
        with pytest.raises(ValidationError):
            check_optimality_conditions(diamond_graph, r)

    def test_optimality_detects_too_small(self, diamond_graph):
        from repro.sssp.validate import ValidationError

        r = METHODS["fused"](diamond_graph, 0, 1.0)
        r.distances[3] = 0.5  # not achievable by any incoming edge
        with pytest.raises(ValidationError):
            check_optimality_conditions(diamond_graph, r)

    def test_networkx_crosscheck(self, random_weighted_graph):
        from repro.sssp.validate import check_against_networkx

        r = METHODS["fused"](random_weighted_graph, 0, 0.5)
        check_against_networkx(random_weighted_graph, r)

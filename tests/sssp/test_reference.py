"""Unit tests for the Dijkstra and Bellman–Ford baselines."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.sssp.reference import NegativeWeightError, bellman_ford, dijkstra


class TestDijkstra:
    def test_diamond(self, diamond_graph):
        r = dijkstra(diamond_graph, 0)
        assert r.distances.tolist() == [0.0, 2.0, 5.0, 6.0]

    def test_unreachable_is_inf(self):
        g = Graph.from_edges([0], [1], n=3)
        r = dijkstra(g, 0)
        assert np.isinf(r.distances[2])
        assert r.num_reached == 2

    def test_source_distance_zero(self, random_weighted_graph):
        r = dijkstra(random_weighted_graph, 7)
        assert r.distances[7] == 0.0

    def test_predecessors_form_shortest_tree(self, diamond_graph):
        r = dijkstra(diamond_graph, 0, return_predecessors=True)
        pred = r.extra["predecessors"]
        assert pred[0] == -1
        assert pred[1] == 0
        assert pred[2] == 1  # via 0->1->2 (5) not 0->2 (7)
        assert pred[3] == 2

    def test_matches_networkx(self, random_weighted_graph):
        import networkx as nx

        g = random_weighted_graph
        G = nx.DiGraph()
        G.add_nodes_from(range(g.num_vertices))
        s, d, w = g.to_edges()
        G.add_weighted_edges_from(zip(s.tolist(), d.tolist(), w.tolist()))
        expected = nx.single_source_dijkstra_path_length(G, 0)
        r = dijkstra(g, 0)
        for v, dist in expected.items():
            assert np.isclose(r.distances[v], dist)
        assert r.num_reached == len(expected)

    def test_negative_weight_rejected(self):
        g = Graph.from_edges([0], [1], [1.0], n=2)
        g.weights[0] = -2.0
        with pytest.raises(NegativeWeightError):
            dijkstra(g, 0)

    def test_bad_source(self, diamond_graph):
        with pytest.raises(IndexError):
            dijkstra(diamond_graph, 4)

    def test_counters_populated(self, diamond_graph):
        r = dijkstra(diamond_graph, 0)
        assert r.relaxations == 4
        assert r.updates >= 3


class TestBellmanFord:
    def test_diamond(self, diamond_graph):
        r = bellman_ford(diamond_graph, 0)
        assert r.distances.tolist() == [0.0, 2.0, 5.0, 6.0]

    def test_matches_dijkstra(self, random_weighted_graph):
        a = dijkstra(random_weighted_graph, 0)
        b = bellman_ford(random_weighted_graph, 0)
        assert a.same_distances(b)

    def test_round_count_bounded_by_longest_path(self):
        from repro.graphs.generators import path_graph

        g = path_graph(20)
        r = bellman_ford(g, 0)
        assert r.distances[19] == 19.0
        assert r.phases <= 20

    def test_handles_negative_edges_without_cycle(self):
        g = Graph.from_edges([0, 1, 0], [1, 2, 2], [5.0, 1.0, 2.0], n=3)
        g.weights[0] = -1.0  # 0->1 costs -1
        r = bellman_ford(g, 0)
        assert r.distances.tolist() == [0.0, -1.0, 0.0]

    def test_detects_negative_cycle(self):
        g = Graph.from_edges([0, 1, 2], [1, 2, 1], [1.0, 1.0, 1.0], n=3)
        g.weights[1] = -3.0
        g.weights[2] = 1.0
        with pytest.raises(NegativeWeightError):
            bellman_ford(g, 0)

    def test_max_rounds_caps_iterations(self):
        from repro.graphs.generators import path_graph

        g = path_graph(30)
        r = bellman_ford(g, 0, max_rounds=3)
        assert r.phases == 3
        assert np.isinf(r.distances[20])

    def test_bad_source(self, diamond_graph):
        with pytest.raises(IndexError):
            bellman_ford(diamond_graph, -1)

"""Unit tests for every delta-stepping implementation + the dispatcher."""

import numpy as np
import pytest

from repro.graphs import datasets
from repro.graphs.graph import Graph
from repro.sssp import METHODS, delta_stepping, dijkstra
from repro.sssp.capi_sssp import capi_delta_stepping
from repro.sssp.fused import fused_delta_stepping
from repro.sssp.graphblas_sssp import graphblas_delta_stepping
from repro.sssp.meyer_sanders import meyer_sanders_delta_stepping
from repro.sssp.parallel import parallel_delta_stepping


@pytest.fixture(params=sorted(METHODS))
def method(request):
    return request.param


class TestAllMethods:
    def test_diamond_distances(self, diamond_graph, method):
        r = delta_stepping(diamond_graph, 0, 3.0, method=method)
        assert np.allclose(r.distances, [0.0, 2.0, 5.0, 6.0])

    def test_unit_grid_matches_bfs(self, grid_graph, method):
        from repro.graphs.stats import bfs_levels

        r = delta_stepping(grid_graph, 0, 1.0, method=method)
        lv = bfs_levels(grid_graph, 0)
        assert np.allclose(r.distances, lv.astype(float))

    def test_unreachable_vertices_inf(self, method):
        g = Graph.from_edges([0], [1], n=4)
        r = delta_stepping(g, 0, 1.0, method=method)
        assert r.num_reached == 2
        assert np.isinf(r.distances[2]) and np.isinf(r.distances[3])

    def test_source_only_graph(self, method):
        g = Graph.empty(3)
        r = delta_stepping(g, 1, 1.0, method=method)
        assert r.distances[1] == 0.0
        assert r.num_reached == 1

    def test_invalid_delta_rejected(self, diamond_graph, method):
        with pytest.raises(ValueError):
            delta_stepping(diamond_graph, 0, 0.0, method=method)
        with pytest.raises(ValueError):
            delta_stepping(diamond_graph, 0, -1.0, method=method)

    def test_invalid_source_rejected(self, diamond_graph, method):
        with pytest.raises(IndexError):
            delta_stepping(diamond_graph, 17, 1.0, method=method)

    def test_result_metadata(self, diamond_graph, method):
        r = delta_stepping(diamond_graph, 0, 3.0, method=method)
        assert r.source == 0
        assert r.delta == 3.0
        assert r.buckets_processed > 0
        assert r.phases >= r.buckets_processed


class TestDispatcher:
    def test_unknown_method(self, diamond_graph):
        with pytest.raises(ValueError, match="unknown method"):
            delta_stepping(diamond_graph, 0, 1.0, method="quantum")

    def test_auto_delta_unit_weights(self, grid_graph):
        r = delta_stepping(grid_graph, 0)  # delta=None -> auto -> 1.0
        assert r.delta == 1.0

    def test_kwargs_forwarded(self, grid_graph):
        r = delta_stepping(grid_graph, 0, 1.0, method="parallel", num_threads=2, simulate=True)
        assert r.extra["mode"] == "simulated"


class TestMeyerSanders:
    def test_strict_equals_vectorized(self, random_weighted_graph):
        a = meyer_sanders_delta_stepping(random_weighted_graph, 0, 0.5, strict=True)
        b = meyer_sanders_delta_stepping(random_weighted_graph, 0, 0.5, strict=False)
        assert a.same_distances(b)
        assert a.buckets_processed == b.buckets_processed
        assert a.phases == b.phases
        assert a.relaxations == b.relaxations

    def test_dijkstra_like_at_min_weight_delta(self, random_weighted_graph):
        r = meyer_sanders_delta_stepping(random_weighted_graph, 0, 0.05)
        assert r.same_distances(dijkstra(random_weighted_graph, 0))


class TestStructuralAgreement:
    """The four bucket implementations walk identical bucket/phase orders."""

    def test_counters_agree_on_unit_weights(self, grid_graph):
        rs = [
            meyer_sanders_delta_stepping(grid_graph, 0, 1.0),
            graphblas_delta_stepping(grid_graph, 0, 1.0),
            capi_delta_stepping(grid_graph, 0, 1.0),
            fused_delta_stepping(grid_graph, 0, 1.0),
            parallel_delta_stepping(grid_graph, 0, 1.0, num_threads=2),
        ]
        assert len({r.buckets_processed for r in rs}) == 1
        assert len({r.phases for r in rs}) == 1

    def test_delta_one_bucket_per_level(self, grid_graph):
        """§VII: Δ=1 on unit weights ⇒ one bucket per BFS level."""
        from repro.graphs.stats import bfs_levels

        r = fused_delta_stepping(grid_graph, 0, 1.0)
        assert r.buckets_processed == bfs_levels(grid_graph, 0).max() + 1


class TestInstrumentation:
    def test_fused_profile_stages(self, grid_graph):
        r = fused_delta_stepping(grid_graph, 0, 1.0, instrument=True)
        assert r.profile
        assert any(k.startswith("relax") for k in r.profile)

    def test_unfused_profile_includes_matrix_filters(self, grid_graph):
        r = graphblas_delta_stepping(grid_graph, 0, 1.0, instrument=True)
        assert "filter:AL" in r.profile
        assert "filter:AH" in r.profile
        assert r.profile["filter:AL"] > 0

    def test_profile_off_by_default(self, grid_graph):
        assert fused_delta_stepping(grid_graph, 0, 1.0).profile is None


class TestFusionToggles:
    @pytest.mark.parametrize("fuse_relax", [False, True])
    @pytest.mark.parametrize("fuse_matrix_split", [False, True])
    def test_all_combos_correct(self, random_weighted_graph, fuse_relax, fuse_matrix_split):
        oracle = dijkstra(random_weighted_graph, 0)
        r = fused_delta_stepping(
            random_weighted_graph, 0, 0.4,
            fuse_relax=fuse_relax, fuse_matrix_split=fuse_matrix_split,
        )
        assert r.same_distances(oracle)


class TestParallel:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_thread_counts_correct(self, random_weighted_graph, threads):
        oracle = dijkstra(random_weighted_graph, 0)
        r = parallel_delta_stepping(random_weighted_graph, 0, 0.4, num_threads=threads)
        assert r.same_distances(oracle)
        assert r.extra["num_threads"] == threads

    def test_simulated_mode_reports_schedule(self, grid_graph):
        r = parallel_delta_stepping(grid_graph, 0, 1.0, num_threads=2, simulate=True)
        assert r.extra["mode"] == "simulated"
        assert r.extra["simulated_seconds"] > 0
        assert r.extra["serial_seconds"] > 0
        assert r.extra["task_batches"] > 0

    def test_simulated_speedup_monotone_reasonable(self, grid_graph):
        r2 = parallel_delta_stepping(grid_graph, 0, 1.0, num_threads=2, simulate=True)
        assert 0.5 < r2.extra["simulated_speedup"] < 2.0

    def test_forced_chunking_still_correct(self, grid_graph):
        oracle = dijkstra(grid_graph, 0)
        r = parallel_delta_stepping(grid_graph, 0, 1.0, num_threads=3, min_parallel_size=0)
        assert r.same_distances(oracle)


class TestSkipEmptyBuckets:
    def test_sparse_buckets_same_result(self):
        # weights clustered near 1.0 with delta 0.1 -> most buckets empty
        g = Graph.from_edges(
            [0, 1, 2, 3], [1, 2, 3, 4], [1.0, 1.0, 1.0, 1.0], n=5
        )
        a = graphblas_delta_stepping(g, 0, 0.1, skip_empty_buckets=True)
        b = graphblas_delta_stepping(g, 0, 0.1, skip_empty_buckets=False)
        assert a.same_distances(b)
        assert a.buckets_processed <= b.buckets_processed

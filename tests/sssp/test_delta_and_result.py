"""Unit tests for Δ heuristics, SSSPResult, and the stage timer."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.weights import assign_weights
from repro.sssp import dijkstra
from repro.sssp.delta import (
    DELTA_STRATEGIES,
    bellman_ford_equivalent_delta,
    choose_delta,
    dijkstra_equivalent_delta,
)
from repro.sssp.fused import fused_delta_stepping
from repro.obs.stage import NO_TIMER, StageTimer
from repro.sssp.result import SSSPResult


class TestDeltaHeuristics:
    def test_auto_unit_weights_is_one(self):
        assert choose_delta(gen.grid_2d(4, 4)) == 1.0

    def test_auto_weighted_uses_meyer_sanders(self):
        g = assign_weights(gen.erdos_renyi(100, seed=1), "uniform", 0.1, 1.0)
        d = choose_delta(g)
        assert 0 < d <= g.max_weight

    def test_dijkstra_equivalent_is_min_weight(self):
        g = assign_weights(gen.erdos_renyi(100, seed=1), "uniform", 0.2, 1.0)
        assert np.isclose(dijkstra_equivalent_delta(g), g.weights[g.weights > 0].min())

    def test_bellman_ford_equivalent_single_bucket(self):
        g = gen.grid_2d(5, 5)
        d = bellman_ford_equivalent_delta(g)
        r = fused_delta_stepping(g, 0, d)
        assert r.buckets_processed == 1
        assert r.same_distances(dijkstra(g, 0))

    def test_all_strategies_positive(self):
        g = assign_weights(gen.erdos_renyi(60, seed=2), "uniform", 0.1, 1.0)
        for name in DELTA_STRATEGIES:
            assert choose_delta(g, name) > 0

    def test_zero_weight_graph_every_strategy(self):
        """Regression: all-zero edge weights crashed ``dijkstra_equivalent_delta``
        (empty ``w[w > 0]`` reduction) and produced Δ=0 from ``avg-weight``;
        every strategy must yield a positive, usable Δ."""
        g = Graph.from_edges([0, 1, 2], [1, 2, 3], [0.0, 0.0, 0.0], n=4)
        for name in DELTA_STRATEGIES:
            d = choose_delta(g, name)
            assert d > 0, f"strategy {name} returned non-positive delta {d}"
            r = fused_delta_stepping(g, 0, d)
            assert np.array_equal(r.distances, [0.0, 0.0, 0.0, 0.0])

    def test_zero_weight_graph_auto(self):
        g = Graph.from_edges([0, 1], [1, 2], [0.0, 0.0], n=3)
        d = choose_delta(g, "auto")
        assert d > 0
        assert np.array_equal(
            fused_delta_stepping(g, 0, d).distances, dijkstra(g, 0).distances
        )

    def test_dijkstra_equivalent_ignores_zero_weights_among_positive(self):
        g = Graph.from_edges([0, 1], [1, 2], [0.0, 0.5], n=3)
        assert dijkstra_equivalent_delta(g) == 0.5

    def test_bellman_ford_equivalent_clamped_on_huge_weights(self):
        """Regression: ``n · max_weight + 1`` overflowed to ``inf`` on huge
        weights, and every solver rejects a non-finite Δ; the heuristic must
        return a large *finite* Δ instead."""
        g = Graph.from_edges([0, 1], [1, 2], [1e308, 1.0], n=3)
        d = bellman_ford_equivalent_delta(g)
        assert np.isfinite(d)
        assert d == np.finfo(np.float64).max
        # the clamped Δ still degenerates to one bucket per the contract
        r = fused_delta_stepping(g, 0, d)
        assert r.buckets_processed == 1
        assert np.array_equal(r.distances, dijkstra(g, 0).distances)

    def test_bellman_ford_equivalent_finite_path_untouched(self):
        """Ordinary graphs keep the exact ``n · max_weight + 1`` value."""
        g = gen.grid_2d(4, 4)
        assert bellman_ford_equivalent_delta(g) == g.num_vertices * 1.0 + 1.0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError) as excinfo:
            choose_delta(gen.grid_2d(2, 2), "magic")
        # the error is a ValueError (not a raw KeyError escaping the
        # registry lookup) and names every valid strategy
        message = str(excinfo.value)
        assert "magic" in message
        for name in ("auto", *DELTA_STRATEGIES):
            assert name in message


class TestSSSPResult:
    def _mk(self, dist, **kw):
        return SSSPResult(
            distances=np.asarray(dist, dtype=float),
            source=0,
            delta=1.0,
            method="test",
            **kw,
        )

    def test_reached(self):
        r = self._mk([0.0, 1.0, np.inf])
        assert r.reached().tolist() == [True, True, False]
        assert r.num_reached == 2

    def test_same_distances_inf_aware(self):
        a = self._mk([0.0, np.inf])
        b = self._mk([0.0, np.inf])
        c = self._mk([0.0, 5.0])
        assert a.same_distances(b)
        assert not a.same_distances(c)

    def test_same_distances_shape_mismatch(self):
        assert not self._mk([0.0]).same_distances(self._mk([0.0, 1.0]))

    def test_max_abs_difference(self):
        a = self._mk([0.0, 1.0, np.inf])
        b = self._mk([0.0, 1.5, np.inf])
        assert np.isclose(a.max_abs_difference(b), 0.5)

    def test_summary_keys(self):
        s = self._mk([0.0]).summary()
        assert {"method", "source", "delta", "reached"} <= set(s)

    def test_distance_to(self):
        assert self._mk([0.0, 3.0]).distance_to(1) == 3.0


class TestStageTimer:
    def test_accumulates(self):
        t = StageTimer()
        with t.stage("a"):
            pass
        with t.stage("a"):
            pass
        with t.stage("b"):
            pass
        assert t.counts["a"] == 2
        assert t.counts["b"] == 1
        assert set(t.as_dict()) == {"a", "b"}

    def test_fractions_sum_to_one(self):
        t = StageTimer()
        t.add("x", 0.3)
        t.add("y", 0.7)
        fr = t.fractions()
        assert np.isclose(sum(fr.values()), 1.0)
        assert np.isclose(fr["y"], 0.7)

    def test_merged_groups(self):
        t = StageTimer()
        t.add("x", 1.0)
        t.add("y", 2.0)
        m = t.merged({"both": ["x", "y"], "none": ["z"]})
        assert m == {"both": 3.0, "none": 0.0}

    def test_null_timer_interface(self):
        with NO_TIMER.stage("anything"):
            pass
        NO_TIMER.add("x", 1.0)
        assert NO_TIMER.total == 0.0
        assert NO_TIMER.fractions() == {}
        assert NO_TIMER.merged({"g": ["x"]}) == {"g": 0.0}

    def test_timer_preserves_insertion_order(self):
        t = StageTimer()
        for name in ("c", "a", "b"):
            t.add(name, 1.0)
        assert list(t.as_dict()) == ["c", "a", "b"]

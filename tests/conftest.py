"""Shared test fixtures: small deterministic graphs and random generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import Graph


@pytest.fixture(autouse=True)
def _bench_json_to_tmp(tmp_path, monkeypatch):
    """Point the shared BENCH_<NAME>.json writer at a tmpdir so test runs
    never overwrite the repo-root perf trajectory."""
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))


@pytest.fixture
def diamond_graph() -> Graph:
    """The 4-vertex weighted diamond used throughout the unit tests::

        0 --2.0--> 1 --3.0--> 2 --1.0--> 3
        0 -------7.0--------> 2

    Shortest: d = [0, 2, 5, 6].
    """
    return Graph.from_edges(
        [0, 0, 1, 2], [1, 2, 2, 3], [2.0, 7.0, 3.0, 1.0], n=4, name="diamond"
    )


@pytest.fixture
def grid_graph() -> Graph:
    """8x8 unit-weight mesh (64 vertices, known BFS distances)."""
    return generators.grid_2d(8, 8)


@pytest.fixture
def random_weighted_graph() -> Graph:
    """Seeded 120-vertex random digraph with uniform weights in [0.1, 1)."""
    rng = np.random.default_rng(42)
    m = 600
    src = rng.integers(0, 120, size=m)
    dst = rng.integers(0, 120, size=m)
    w = rng.uniform(0.1, 1.0, size=m)
    return Graph.from_edges(src, dst, w, n=120, name="rand120")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)

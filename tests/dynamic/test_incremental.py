"""repair_sssp: handcrafted scenarios + property tests vs full recompute."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic import apply_edge_updates, repair_sssp
from repro.dynamic.incremental import affected_vertices
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.sssp.fused import fused_delta_stepping


def _solve(graph, source=0, delta=1.0):
    return fused_delta_stepping(graph, source, delta).distances


def _check(graph, source, d0, applied, delta=1.0):
    rep = repair_sssp(graph, source, d0, applied, delta=delta)
    oracle = _solve(graph, source, delta)
    assert np.array_equal(rep.distances, oracle)
    return rep


class TestScenarios:
    def test_decrease_shortcut(self, diamond_graph):
        d0 = _solve(diamond_graph)
        applied = apply_edge_updates(diamond_graph, reweights=[(0, 2, 1.0)])
        rep = _check(diamond_graph, 0, d0, applied)
        assert rep.mode == "decrease-only"
        assert rep.distances[2] == 1.0
        assert rep.distances[3] == 2.0

    def test_insert_shortcut(self, diamond_graph):
        d0 = _solve(diamond_graph)
        applied = apply_edge_updates(diamond_graph, inserts=[(0, 3, 0.5)])
        rep = _check(diamond_graph, 0, d0, applied)
        assert rep.mode == "decrease-only"
        assert rep.distances[3] == 0.5

    def test_increase_on_shortest_path(self, diamond_graph):
        d0 = _solve(diamond_graph)
        applied = apply_edge_updates(diamond_graph, reweights=[(0, 1, 10.0)])
        rep = _check(diamond_graph, 0, d0, applied)
        assert rep.mode == "general"
        assert rep.affected >= 1
        # the 0 -> 2 chord takes over
        assert rep.distances[2] == 7.0

    def test_delete_disconnects(self):
        g = Graph.from_edges([0, 1], [1, 2], [1.0, 1.0], n=3)
        d0 = _solve(g)
        applied = apply_edge_updates(g, deletes=[(1, 2)])
        rep = _check(g, 0, d0, applied)
        assert not np.isfinite(rep.distances[2])

    def test_delete_off_tree_edge_is_cheap(self, diamond_graph):
        # 0 -> 2 (weight 7) is not on any shortest path: nothing to repair
        d0 = _solve(diamond_graph)
        applied = apply_edge_updates(diamond_graph, deletes=[(0, 2)])
        rep = _check(diamond_graph, 0, d0, applied)
        assert rep.affected == 0
        assert rep.phases == 0

    def test_mixed_batch(self, diamond_graph):
        d0 = _solve(diamond_graph)
        applied = apply_edge_updates(
            diamond_graph,
            inserts=[(1, 3, 0.5)],
            deletes=[(2, 3)],
            reweights=[(0, 1, 3.0)],
        )
        rep = _check(diamond_graph, 0, d0, applied)
        assert rep.mode == "general"
        assert rep.distances[3] == 3.5

    def test_decreased_edge_losing_its_worsened_tail(self):
        """Regression: a decreased edge whose tail is worsened in the same
        batch must still invalidate its head — old-weight tightness is
        lost for decreases too, not only for deletes/increases."""
        # source -> 1 -> 2 -> 3 chain; distances 0, 1, 2, 3
        g = Graph.from_edges([0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0], n=4)
        d0 = _solve(g)
        # worsen 1 -> 2 (tail side) while decreasing 2 -> 3
        applied = apply_edge_updates(g, reweights=[(1, 2, 5.0), (2, 3, 0.9)])
        rep = _check(g, 0, d0, applied)
        assert rep.distances[3] == 0 + 1.0 + 5.0 + 0.9

    def test_zero_weight_edges_use_conservative_closure(self):
        g = Graph.from_edges(
            [0, 1, 2, 3, 0], [1, 2, 3, 1, 4], [0.0, 0.0, 0.0, 0.0, 2.0], n=5
        )
        d0 = _solve(g)
        applied = apply_edge_updates(g, deletes=[(0, 1)])
        rep = _check(g, 0, d0, applied)
        assert rep.mode == "general"
        assert not np.isfinite(rep.distances[1])

    def test_noop_batch(self, diamond_graph):
        d0 = _solve(diamond_graph)
        applied = apply_edge_updates(diamond_graph, reweights=[(0, 1, 2.0)])
        rep = _check(diamond_graph, 0, d0, applied)
        assert rep.mode == "noop"
        assert rep.phases == 0

    def test_validate_flag_passes_on_correct_repair(self, diamond_graph):
        d0 = _solve(diamond_graph)
        applied = apply_edge_updates(diamond_graph, reweights=[(0, 1, 4.0)])
        rep = repair_sssp(diamond_graph, 0, d0, applied, delta=1.0, validate=True)
        assert rep.distances[1] == 4.0

    def test_read_only_input_accepted(self, diamond_graph):
        d0 = _solve(diamond_graph)
        d0.flags.writeable = False
        applied = apply_edge_updates(diamond_graph, reweights=[(0, 1, 4.0)])
        rep = repair_sssp(diamond_graph, 0, d0, applied, delta=1.0)
        assert d0[1] == 2.0  # input untouched
        assert rep.distances[1] == 4.0

    def test_bad_inputs(self, diamond_graph):
        d0 = _solve(diamond_graph)
        applied = apply_edge_updates(diamond_graph, reweights=[(0, 1, 4.0)])
        with pytest.raises(IndexError):
            repair_sssp(diamond_graph, 99, d0, applied)
        with pytest.raises(ValueError):
            repair_sssp(diamond_graph, 0, d0[:2], applied)
        with pytest.raises(ValueError):
            repair_sssp(diamond_graph, 0, d0, applied, delta=0.0)


class TestAffectedSet:
    def test_source_never_affected(self):
        g = Graph.from_edges([0, 1], [1, 2], [1.0, 1.0], n=3)
        d0 = _solve(g)
        applied = apply_edge_updates(g, reweights=[(0, 1, 3.0)])
        aff = affected_vertices(g, d0, applied.worsening_edges(), source=0)
        assert not aff[0]
        assert aff[1] and aff[2]

    def test_surviving_support_not_affected(self):
        # two disjoint unit paths to 2; worsening one leaves 2 supported
        g = Graph.from_edges([0, 0, 1, 3], [1, 3, 2, 2], [1.0, 1.0, 1.0, 1.0], n=4)
        d0 = _solve(g)
        applied = apply_edge_updates(g, reweights=[(1, 2, 5.0)])
        aff = affected_vertices(g, d0, applied.worsening_edges(), source=0)
        assert not aff[2]  # still tight via 3 -> 2


class TestProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(8, 50))
    @settings(max_examples=40, deadline=None)
    def test_repair_equals_recompute_random_batches(self, seed, n):
        rng = np.random.default_rng(seed)
        m = 4 * n
        g = Graph.from_edges(
            rng.integers(0, n, m), rng.integers(0, n, m),
            rng.uniform(0.05, 1.0, m), n=n,
        )
        delta = 0.4
        d0 = _solve(g, 0, delta)
        src_all = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.indptr))
        stored = len(src_all)
        pick = rng.choice(stored, size=min(6, stored), replace=False)
        reweights = (
            src_all[pick[:3]],
            g.indices[pick[:3]],
            g.weights[pick[:3]] * rng.uniform(0.3, 2.0, size=len(pick[:3])),
        )
        deletes = (src_all[pick[3:]], g.indices[pick[3:]])
        inserts = []
        for _ in range(40):
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and g.edge_weight(u, v) is None:
                inserts.append((u, v, float(rng.uniform(0.05, 1.0))))
                break
        applied = apply_edge_updates(g, inserts=inserts, deletes=deletes, reweights=reweights)
        _check(g, 0, d0, applied, delta=delta)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_repair_on_unit_grid_deletes(self, seed):
        rng = np.random.default_rng(seed)
        g = gen.grid_2d(8, 8)
        d0 = _solve(g)
        src_all = np.repeat(np.arange(g.num_vertices, dtype=np.int64), np.diff(g.indptr))
        upper = np.nonzero(src_all < g.indices)[0]
        pick = rng.choice(upper, size=3, replace=False)
        applied = apply_edge_updates(
            g, deletes=(src_all[pick], g.indices[pick])
        )
        _check(g, 0, d0, applied)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_sequential_batches_compose(self, seed):
        """Repairing batch after batch tracks the truth across epochs."""
        rng = np.random.default_rng(seed)
        g = gen.watts_strogatz(40, k=4, beta=0.2, seed=int(seed % 1000))
        d = _solve(g)
        for _ in range(3):
            src_all = np.repeat(np.arange(g.num_vertices, dtype=np.int64), np.diff(g.indptr))
            upper = np.nonzero(src_all < g.indices)[0]
            p = int(rng.choice(upper))
            applied = apply_edge_updates(
                g, reweights=[(int(src_all[p]), int(g.indices[p]), float(rng.uniform(0.2, 3.0)))]
            )
            rep = repair_sssp(g, 0, d, applied, delta=1.0)
            d = rep.distances
        assert np.array_equal(d, _solve(g))
        assert g.epoch == 3

"""apply_edge_updates: CSR consistency, epoch semantics, batch validation."""

import numpy as np
import pytest

from repro.dynamic import apply_edge_updates
from repro.graphs import generators as gen
from repro.graphs.graph import Graph


def _directed_graph():
    # 0 -> 1 -> 2 -> 3 with a 0 -> 2 chord
    return Graph.from_edges([0, 1, 2, 0], [1, 2, 3, 2], [1.0, 2.0, 1.5, 5.0], n=4)


class TestCSRConsistency:
    def test_insert_keeps_rows_sorted_and_deduped(self):
        g = _directed_graph()
        apply_edge_updates(g, inserts=[(0, 3, 4.0), (2, 0, 1.0)])
        assert g.has_canonical_rows()
        assert g.num_edges == 6
        assert g.edge_weight(0, 3) == 4.0
        assert g.edge_weight(2, 0) == 1.0

    def test_delete_removes_exactly_the_edge(self):
        g = _directed_graph()
        apply_edge_updates(g, deletes=[(0, 2)])
        assert g.edge_weight(0, 2) is None
        assert g.edge_weight(0, 1) == 1.0
        assert g.num_edges == 3
        assert g.has_canonical_rows()

    def test_reweight_in_place_fast_path(self):
        g = _directed_graph()
        indices_before = g.indices
        indptr_before = g.indptr
        apply_edge_updates(g, reweights=[(1, 2, 9.0)])
        # pure reweights must not rebuild the sparsity structure
        assert g.indices is indices_before
        assert g.indptr is indptr_before
        assert g.edge_weight(1, 2) == 9.0

    def test_round_trip_insert_then_delete(self):
        g = _directed_graph()
        ref = g.copy()
        apply_edge_updates(g, inserts=[(3, 0, 2.0)])
        apply_edge_updates(g, deletes=[(3, 0)])
        assert np.array_equal(g.indptr, ref.indptr)
        assert np.array_equal(g.indices, ref.indices)
        assert np.array_equal(g.weights, ref.weights)

    def test_undirected_updates_apply_both_orientations(self):
        g = gen.grid_2d(3, 3)  # undirected
        apply_edge_updates(g, reweights=[(0, 1, 0.5)])
        assert g.edge_weight(0, 1) == 0.5
        assert g.edge_weight(1, 0) == 0.5
        apply_edge_updates(g, deletes=[(0, 1)])
        assert g.edge_weight(0, 1) is None
        assert g.edge_weight(1, 0) is None


class TestEpoch:
    def test_epoch_increases_monotonically(self):
        g = _directed_graph()
        assert g.epoch == 0
        apply_edge_updates(g, reweights=[(0, 1, 2.0)])
        assert g.epoch == 1
        apply_edge_updates(g, inserts=[(3, 0, 1.0)])
        assert g.epoch == 2
        apply_edge_updates(g, deletes=[(3, 0)])
        assert g.epoch == 3

    def test_copy_preserves_epoch(self):
        g = _directed_graph()
        apply_edge_updates(g, reweights=[(0, 1, 2.0)])
        assert g.copy().epoch == g.epoch


class TestAppliedRecord:
    def test_classification(self):
        g = _directed_graph()
        applied = apply_edge_updates(
            g,
            inserts=[(3, 0, 1.0)],
            deletes=[(0, 2)],
            reweights=[(0, 1, 5.0), (1, 2, 0.5)],
        )
        assert len(applied.inserted[0]) == 1
        assert len(applied.deleted[0]) == 1
        assert applied.deleted[2][0] == 5.0  # records the old weight
        assert len(applied.increased[0]) == 1 and applied.increased[3][0] == 5.0
        assert len(applied.decreased[0]) == 1 and applied.decreased[3][0] == 0.5
        assert not applied.decrease_only
        assert applied.num_updates == 4

    def test_no_change_reweight_dropped_from_record(self):
        g = _directed_graph()
        applied = apply_edge_updates(g, reweights=[(0, 1, 1.0)])  # same weight
        assert applied.num_updates == 0
        assert applied.decrease_only
        assert g.epoch == 1  # the batch still counts as a mutation

    def test_decrease_only_detection(self):
        g = _directed_graph()
        applied = apply_edge_updates(
            g, inserts=[(3, 0, 1.0)], reweights=[(0, 2, 0.5)]
        )
        assert applied.decrease_only


class TestValidation:
    def test_strict_insert_existing_edge(self):
        g = _directed_graph()
        with pytest.raises(ValueError, match="existing edge"):
            apply_edge_updates(g, inserts=[(0, 1, 2.0)])

    def test_strict_delete_missing_edge(self):
        g = _directed_graph()
        with pytest.raises(ValueError, match="missing edge"):
            apply_edge_updates(g, deletes=[(3, 0)])

    def test_strict_reweight_missing_edge(self):
        g = _directed_graph()
        with pytest.raises(ValueError, match="missing edge"):
            apply_edge_updates(g, reweights=[(3, 0, 1.0)])

    def test_non_strict_coerces(self):
        g = _directed_graph()
        applied = apply_edge_updates(
            g,
            inserts=[(0, 1, 0.25)],   # exists: min-combines (a decrease)
            deletes=[(3, 0)],          # missing: skipped
            strict=False,
        )
        assert g.edge_weight(0, 1) == 0.25
        assert len(applied.decreased[0]) == 1
        assert len(applied.deleted[0]) == 0

    def test_cross_category_conflict_always_rejected(self):
        g = _directed_graph()
        with pytest.raises(ValueError, match="deleted and reweighted"):
            apply_edge_updates(
                g, deletes=[(0, 1)], reweights=[(0, 1, 2.0)], strict=False
            )

    def test_out_of_range_endpoint(self):
        g = _directed_graph()
        with pytest.raises(ValueError, match="out of range"):
            apply_edge_updates(g, inserts=[(0, 99, 1.0)])

    def test_self_loop_rejected(self):
        g = _directed_graph()
        with pytest.raises(ValueError, match="self-loop"):
            apply_edge_updates(g, inserts=[(1, 1, 1.0)])

    def test_negative_weight_rejected(self):
        g = _directed_graph()
        with pytest.raises(ValueError, match="negative"):
            apply_edge_updates(g, reweights=[(0, 1, -1.0)])

    def test_duplicate_edge_in_batch(self):
        g = _directed_graph()
        with pytest.raises(ValueError, match="duplicate"):
            apply_edge_updates(g, reweights=[(0, 1, 2.0), (0, 1, 3.0)])

    def test_insert_into_empty_graph(self):
        """Regression: the edge lookup crashed on zero-edge graphs instead
        of letting a graph be built up incrementally from empty."""
        g = Graph.empty(4)
        applied = apply_edge_updates(g, inserts=[(0, 1, 1.0), (1, 2, 2.0)])
        assert g.num_edges == 2
        assert g.edge_weight(1, 2) == 2.0
        assert len(applied.inserted[0]) == 2
        assert g.epoch == 1

    def test_delete_on_empty_graph_strict_raises(self):
        g = Graph.empty(4)
        with pytest.raises(ValueError, match="missing edge"):
            apply_edge_updates(g, deletes=[(0, 1)])
        assert apply_edge_updates(g, deletes=[(0, 1)], strict=False).num_updates == 0


class TestCanonicalization:
    def test_from_matrix_canonicalizes_rows(self):
        from repro.graphblas.matrix import Matrix

        # adopt a matrix whose row 0 carries unsorted targets [1, 0]
        A = Matrix.from_csr(
            np.array([0, 2, 2]), np.array([1, 0]), np.array([3.0, 1.0]), ncols=2
        )
        g = Graph.from_matrix(A)
        assert g.has_canonical_rows()
        assert g.edge_weight(0, 0) == 1.0
        assert g.edge_weight(0, 1) == 3.0

    def test_canonicalize_min_combines_duplicates(self):
        g = Graph(
            indptr=np.array([0, 3, 3]),
            indices=np.array([1, 1, 0]),
            weights=np.array([5.0, 2.0, 1.0]),
        )
        g.canonicalize_rows()
        assert g.has_canonical_rows()
        assert g.num_edges == 2
        assert g.edge_weight(0, 1) == 2.0

    def test_canonicalize_noop_on_canonical(self):
        g = _directed_graph()
        indices = g.indices
        g.canonicalize_rows()
        assert g.indices is indices  # untouched

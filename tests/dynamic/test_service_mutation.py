"""QueryService.mutate: epoch keying, hot repair, landmark staleness, planner reset."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.service import DistanceCache, LandmarkIndex, Query, QueryService
from repro.sssp import dijkstra


def _graph():
    return gen.watts_strogatz(60, k=4, beta=0.2, seed=5)


class TestEpochKeying:
    def test_epoch_bump_misses_without_invalidate_call(self):
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(g.num_vertices))
        g.epoch += 1  # what apply_edge_updates does
        assert cache.get(g, 0) is None
        stats = cache.stats()
        assert stats.invalidations == 0  # nothing was manually invalidated

    def test_take_entries_harvests_and_removes(self):
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(g.num_vertices))
        cache.put(g, 3, "uniform", np.ones(g.num_vertices))
        taken = cache.take_entries(g)
        assert set(taken) == {(0, "unit"), (3, "uniform")}
        assert len(cache) == 0
        assert cache.stats().invalidations == 0

    def test_take_entries_skips_stale_epochs(self):
        """Regression: entries parked under an older epoch (the graph was
        mutated directly, bypassing the service) must never be handed out
        as repair baselines — they describe a graph that no longer exists."""
        cache = DistanceCache()
        g = _graph()
        cache.put(g, 0, "unit", np.zeros(g.num_vertices))
        g.epoch += 1  # direct apply_edge_updates, not via the service
        cache.put(g, 5, "unit", np.ones(g.num_vertices))
        taken = cache.take_entries(g)
        assert set(taken) == {(5, "unit")}  # only the current-epoch entry
        assert len(cache) == 0  # the stale one is dropped, not left behind


class TestHotRepair:
    def test_cached_answers_survive_mutation(self):
        g = _graph()
        svc = QueryService(g)
        first = svc.query(0)  # one-to-many, populates the cache
        assert not first.from_cache
        report = svc.mutate(reweights=[(0, int(g.indices[g.indptr[0]]), 0.25)])
        assert report.repaired_entries == 1
        assert report.epoch == 1
        again = svc.query(0)
        assert again.from_cache  # repaired in place, still hot
        assert np.array_equal(again.distances, dijkstra(g, 0).distances)

    def test_drop_policy_discards(self):
        g = _graph()
        svc = QueryService(g)
        svc.query(0)
        report = svc.mutate(
            reweights=[(0, int(g.indices[g.indptr[0]]), 0.25)], repair="drop"
        )
        assert report.repaired_entries == 0
        assert report.dropped_entries == 1
        resp = svc.query(0)
        assert not resp.from_cache  # re-solved cold
        assert np.array_equal(resp.distances, dijkstra(g, 0).distances)

    def test_other_weight_mode_entries_dropped(self):
        g = _graph()
        cache = DistanceCache()
        svc = QueryService(g, weight_mode="unit", cache=cache)
        cache.put(g, 7, "uniform", np.zeros(g.num_vertices))
        svc.query(0)
        report = svc.mutate(deletes=[(0, int(g.indices[g.indptr[0]]))])
        assert report.repaired_entries == 1  # the unit-mode entry
        assert report.dropped_entries == 1  # the uniform-mode entry

    def test_unknown_repair_policy(self):
        svc = QueryService(_graph())
        with pytest.raises(ValueError, match="repair policy"):
            svc.mutate(repair="magic")

    def test_rejected_batch_keeps_cache_intact(self):
        """Regression: a strict-mode ValueError left the cache emptied even
        though the graph never changed; harvested entries must be restored."""
        g = _graph()
        svc = QueryService(g)
        svc.query(0)
        missing = next(
            v for v in range(1, g.num_vertices) if g.edge_weight(0, v) is None
        )
        with pytest.raises(ValueError, match="missing edge"):
            svc.mutate(deletes=[(0, missing)])
        assert g.epoch == 0
        resp = svc.query(0)
        assert resp.from_cache  # the valid entry survived the rejected batch

    def test_mutation_stats(self):
        g = _graph()
        svc = QueryService(g)
        svc.query(0)
        svc.mutate(reweights=[(0, int(g.indices[g.indptr[0]]), 0.3)])
        stats = svc.stats()
        assert stats.mutations_applied == 1
        assert stats.entries_repaired == 1

    def test_repeated_mutations_stay_exact(self):
        g = _graph()
        svc = QueryService(g)
        rng = np.random.default_rng(9)
        svc.query(0)
        for _ in range(4):
            src_all = np.repeat(
                np.arange(g.num_vertices, dtype=np.int64), np.diff(g.indptr)
            )
            upper = np.nonzero(src_all < g.indices)[0]
            p = int(rng.choice(upper))
            svc.mutate(
                reweights=[(int(src_all[p]), int(g.indices[p]), float(rng.uniform(0.2, 3.0)))]
            )
        resp = svc.query(0)
        assert resp.from_cache
        assert np.array_equal(resp.distances, dijkstra(g, 0).distances)


class TestLandmarkStaleness:
    def test_mutate_marks_stale_and_lazy_rebuild(self):
        g = _graph()
        lm = LandmarkIndex.build(g, 3)
        svc = QueryService(g, landmarks=lm)
        assert not lm.stale
        svc.mutate(reweights=[(0, int(g.indices[g.indptr[0]]), 0.25)])
        assert lm.stale
        assert lm.rebuilds == 0  # lazy: nothing rebuilt yet
        lm.ensure_fresh()
        assert not lm.stale and lm.rebuilds == 1
        # fresh tables bound the true distance again
        true = float(dijkstra(g, 1).distances[40])
        est = lm.estimate(1, 40)
        assert est.lower <= true <= est.upper

    def test_ensure_fresh_noop_when_fresh(self):
        lm = LandmarkIndex.build(_graph(), 2)
        assert lm.ensure_fresh() is False
        assert lm.rebuilds == 0

    def test_unbound_stale_index_raises(self):
        lm = LandmarkIndex.build(_graph(), 2)
        unbound = LandmarkIndex(lm.landmarks, lm.dist_from, lm.dist_to)
        unbound.mark_stale()
        with pytest.raises(RuntimeError, match="no bound graph"):
            unbound.ensure_fresh()

    def test_approximate_answer_triggers_rebuild(self):
        g = _graph()
        lm = LandmarkIndex.build(g, 3)
        svc = QueryService(g, landmarks=lm, latency_budget_ms=0.0)
        # calibrate the cost model so the budget can route approximate
        svc.query(0)
        svc.mutate(reweights=[(0, int(g.indices[g.indptr[0]]), 0.25)])
        assert lm.stale
        svc.query(1)  # cache hit? no — new source; planner may route approx
        svc.submit(Query(source=2, target=9))
        svc.submit(Query(source=3, target=9))
        responses = svc.drain()
        if any(not r.exact for r in responses):
            assert not lm.stale  # the approximate path rebuilt lazily


class TestPlannerReset:
    def test_note_mutation_resets_cost_model(self):
        g = _graph()
        svc = QueryService(g)
        svc.query(0)
        assert svc.planner.predicted_exact_ms(1) is not None
        svc.mutate(reweights=[(0, int(g.indices[g.indptr[0]]), 0.5)])
        assert svc.planner.predicted_exact_ms(1) is None

"""Property-based tests: GraphBLAS operations against dense-dict oracles,
and algebraic laws of the operator layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import (
    FP64,
    IDENTITY,
    MIN,
    MIN_PLUS,
    PLUS,
    PLUS_TIMES,
    Matrix,
    REPLACE,
    Vector,
    apply,
    ewise_add,
    ewise_mult,
    reduce_vector_to_scalar,
    vxm,
)
from repro.graphblas.monoid import MIN_MONOID, PLUS_MONOID

SIZE = 12

# a sparse vector as a dict index -> value
sparse_dicts = st.dictionaries(
    st.integers(0, SIZE - 1),
    st.floats(-50, 50, allow_nan=False),
    max_size=SIZE,
)

sparse_matrices = st.dictionaries(
    st.tuples(st.integers(0, SIZE - 1), st.integers(0, SIZE - 1)),
    st.floats(0.1, 50, allow_nan=False),
    max_size=40,
)


def vec_of(d: dict) -> Vector:
    idx = sorted(d)
    return Vector.from_coo(idx, [d[i] for i in idx], SIZE, dtype=FP64)


def mat_of(d: dict) -> Matrix:
    keys = sorted(d)
    rows = [k[0] for k in keys]
    cols = [k[1] for k in keys]
    return Matrix.from_coo(rows, cols, [d[k] for k in keys], SIZE, SIZE, dtype=FP64)


class TestEWiseOracles:
    @given(sparse_dicts, sparse_dicts)
    @settings(max_examples=80, deadline=None)
    def test_ewise_add_union_oracle(self, a, b):
        out = Vector.new(FP64, SIZE)
        ewise_add(out, PLUS, vec_of(a), vec_of(b))
        expected = {k: a.get(k, 0) + b.get(k, 0) if (k in a and k in b) else (a.get(k) if k in a else b[k]) for k in set(a) | set(b)}
        got = out.to_dict()
        assert set(got) == set(expected)
        for k in expected:
            assert np.isclose(got[k], expected[k])

    @given(sparse_dicts, sparse_dicts)
    @settings(max_examples=80, deadline=None)
    def test_ewise_mult_intersection_oracle(self, a, b):
        out = Vector.new(FP64, SIZE)
        ewise_mult(out, PLUS, vec_of(a), vec_of(b))
        expected = {k: a[k] + b[k] for k in set(a) & set(b)}
        got = out.to_dict()
        assert set(got) == set(expected)
        for k in expected:
            assert np.isclose(got[k], expected[k])

    @given(sparse_dicts, sparse_dicts)
    @settings(max_examples=50, deadline=None)
    def test_ewise_add_commutative_for_min(self, a, b):
        out1 = Vector.new(FP64, SIZE)
        out2 = Vector.new(FP64, SIZE)
        ewise_add(out1, MIN, vec_of(a), vec_of(b))
        ewise_add(out2, MIN, vec_of(b), vec_of(a))
        assert out1.isclose(out2)


class TestApplyProperties:
    @given(sparse_dicts)
    @settings(max_examples=50, deadline=None)
    def test_apply_identity_preserves(self, a):
        v = vec_of(a)
        out = Vector.new(FP64, SIZE)
        apply(out, IDENTITY, v)
        assert out.isequal(v)

    @given(sparse_dicts, sparse_dicts)
    @settings(max_examples=50, deadline=None)
    def test_masked_apply_replace_is_restriction(self, a, m):
        v = vec_of(a)
        mask = vec_of({k: 1.0 for k in m})
        out = Vector.new(FP64, SIZE)
        apply(out, IDENTITY, v, mask=mask, desc=REPLACE)
        expected = {k: a[k] for k in set(a) & set(m)}
        assert out.to_dict() == expected


class TestVxmOracle:
    @given(sparse_dicts, sparse_matrices)
    @settings(max_examples=60, deadline=None)
    def test_min_plus_vxm_oracle(self, vd, md):
        v = vec_of({k: abs(x) for k, x in vd.items()})
        m = mat_of(md)
        out = Vector.new(FP64, SIZE)
        vxm(out, MIN_PLUS, v, m)
        expected: dict[int, float] = {}
        for i, x in v.to_dict().items():
            for (r, c), w in md.items():
                if r == i:
                    cand = x + w
                    if cand < expected.get(c, np.inf):
                        expected[c] = cand
        got = out.to_dict()
        assert set(got) == set(expected)
        for k in expected:
            assert np.isclose(got[k], expected[k])

    @given(sparse_dicts, sparse_matrices)
    @settings(max_examples=40, deadline=None)
    def test_plus_times_vxm_matches_dense(self, vd, md):
        v = vec_of(vd)
        m = mat_of(md)
        out = Vector.new(FP64, SIZE)
        vxm(out, PLUS_TIMES, v, m)
        dense = v.to_dense(0.0) @ m.to_dense(0.0)
        assert np.allclose(out.to_dense(0.0), dense)


class TestMonoidLaws:
    @given(st.lists(st.floats(-100, 100, allow_nan=False), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_min_reduce_matches_python(self, xs):
        v = Vector.from_coo(range(len(xs)), xs, max(len(xs), 1), dtype=FP64) if xs else Vector.new(FP64, 1)
        got = reduce_vector_to_scalar(MIN_MONOID, v)
        assert got == (min(xs) if xs else np.inf)

    @given(st.lists(st.floats(-100, 100, allow_nan=False), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_plus_reduce_matches_python(self, xs):
        v = Vector.from_coo(range(len(xs)), xs, max(len(xs), 1), dtype=FP64) if xs else Vector.new(FP64, 1)
        got = reduce_vector_to_scalar(PLUS_MONOID, v)
        assert np.isclose(got, sum(xs) if xs else 0.0)

    @given(
        st.floats(-50, 50, allow_nan=False),
        st.floats(-50, 50, allow_nan=False),
        st.floats(-50, 50, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_min_plus_distributes(self, a, x, y):
        """Semiring law: a + min(x, y) == min(a+x, a+y)."""
        lhs = a + min(x, y)
        rhs = min(a + x, a + y)
        assert np.isclose(lhs, rhs)

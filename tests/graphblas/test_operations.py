"""Unit tests for the GraphBLAS operation set (apply/select/ewise/matmul/
reduce/extract/assign/transpose/kronecker) against dense oracles."""

import numpy as np
import pytest

from repro.graphblas import (
    BOOL,
    FP64,
    IDENTITY,
    INT64,
    LOR,
    LT,
    MIN,
    MIN_MONOID,
    MIN_PLUS,
    PLUS,
    PLUS_MONOID,
    PLUS_TIMES,
    Matrix,
    REPLACE,
    TIMES,
    Vector,
    apply,
    assign_scalar_matrix,
    assign_scalar_vector,
    assign_vector,
    ewise_add,
    ewise_mult,
    extract_submatrix,
    extract_subvector,
    kronecker,
    mxm,
    mxv,
    reduce_matrix_to_scalar,
    reduce_matrix_to_vector,
    reduce_vector_to_scalar,
    select,
    transpose,
    vxm,
)
from repro.graphblas.descriptor import TRANSPOSE1
from repro.graphblas.indexunaryop import TRIL, VALUEGT
from repro.graphblas.info import DimensionMismatch
from repro.graphblas.unaryop import threshold_gt


@pytest.fixture
def v3():
    return Vector.from_coo([0, 2], [1.0, 3.0], 3)


@pytest.fixture
def w3():
    return Vector.from_coo([1, 2], [10.0, 20.0], 3)


class TestApply:
    def test_pattern_preserved(self, v3):
        out = Vector.new(FP64, 3)
        apply(out, threshold_gt(2.0), v3)
        assert out.indices.tolist() == [0, 2]
        assert out.values.tolist() == [0.0, 1.0]

    def test_matrix_apply(self):
        a = Matrix.from_coo([0, 1], [1, 0], [1.0, 5.0], 2, 2)
        out = Matrix.new(BOOL, 2, 2)
        apply(out, threshold_gt(2.0), a)
        assert out.to_dense().tolist() == [[False, False], [True, False]]

    def test_apply_with_accum(self, v3):
        out = Vector.from_coo([0], [100.0], 3)
        apply(out, IDENTITY, v3, accum=PLUS)
        assert out.to_dict() == {0: 101.0, 2: 3.0}

    def test_shape_mismatch_raises(self, v3):
        with pytest.raises(DimensionMismatch):
            apply(Vector.new(FP64, 4), IDENTITY, v3)


class TestSelect:
    def test_value_filter(self, v3):
        out = Vector.new(FP64, 3)
        select(out, VALUEGT, v3, 2.0)
        assert out.to_dict() == {2: 3.0}

    def test_structural_tril(self):
        a = Matrix.from_dense(np.arange(1.0, 10.0).reshape(3, 3))
        out = Matrix.new(FP64, 3, 3)
        select(out, TRIL, a, 0)
        assert np.array_equal(out.to_dense(), np.tril(np.arange(1.0, 10.0).reshape(3, 3)))


class TestEWise:
    def test_add_union_semantics(self, v3, w3):
        out = Vector.new(FP64, 3)
        ewise_add(out, PLUS, v3, w3)
        assert out.to_dict() == {0: 1.0, 1: 10.0, 2: 23.0}

    def test_add_pass_through_lone_operands(self, v3, w3):
        """The §V.B pitfall: lone operands pass through un-operated."""
        out = Vector.new(BOOL, 3)
        ewise_add(out, LT, v3, w3)
        # index 0 only in v3 → value 1.0 → True; 1 only in w3 → 10.0 → True;
        # 2 in both → 3.0 < 20.0 → True
        assert out.to_dict() == {0: True, 1: True, 2: True}

    def test_add_lt_with_mask_workaround(self, v3, w3):
        """Masking with the first operand excludes lone-second entries."""
        out = Vector.new(BOOL, 3)
        ewise_add(out, LT, v3, w3, mask=v3, desc=REPLACE)
        assert sorted(out.to_dict()) == [0, 2]

    def test_mult_intersection_semantics(self, v3, w3):
        out = Vector.new(FP64, 3)
        ewise_mult(out, TIMES, v3, w3)
        assert out.to_dict() == {2: 60.0}

    def test_matrix_ewise(self):
        a = Matrix.from_coo([0, 1], [0, 1], [1.0, 2.0], 2, 2)
        b = Matrix.from_coo([0, 1], [0, 0], [5.0, 7.0], 2, 2)
        out = Matrix.new(FP64, 2, 2)
        ewise_add(out, PLUS, a, b)
        assert out.to_dense().tolist() == [[6.0, 0.0], [7.0, 2.0]]
        out2 = Matrix.new(FP64, 2, 2)
        ewise_mult(out2, PLUS, a, b)
        assert out2.to_dense().tolist() == [[6.0, 0.0], [0.0, 0.0]]

    def test_monoid_accepted_as_op(self, v3, w3):
        out = Vector.new(FP64, 3)
        ewise_add(out, MIN_MONOID, v3, w3)
        assert out.to_dict() == {0: 1.0, 1: 10.0, 2: 3.0}

    def test_operand_shape_mismatch(self, v3):
        with pytest.raises(DimensionMismatch):
            ewise_add(Vector.new(FP64, 3), PLUS, v3, Vector.new(FP64, 4))


class TestVxmMxv:
    def test_vxm_min_plus_oracle(self, rng):
        n = 30
        dense_a = np.where(rng.random((n, n)) < 0.2, rng.random((n, n)) + 0.1, np.inf)
        np.fill_diagonal(dense_a, np.inf)
        a = Matrix.from_dense(np.where(np.isinf(dense_a), 0, dense_a), missing=0.0)
        vals = rng.random(n)
        mask = rng.random(n) < 0.3
        v = Vector.from_coo(np.nonzero(mask)[0], vals[mask], n)
        out = Vector.new(FP64, n)
        vxm(out, MIN_PLUS, v, a)
        dense_v = np.where(mask, vals, np.inf)
        expected = np.min(dense_v[:, None] + dense_a, axis=0)
        got = out.to_dense(fill=np.inf)
        assert np.allclose(got, expected)

    def test_vxm_plus_times_oracle(self, rng):
        n = 20
        dense_a = np.where(rng.random((n, n)) < 0.3, rng.random((n, n)), 0.0)
        a = Matrix.from_dense(dense_a, missing=0.0)
        dense_v = np.where(rng.random(n) < 0.5, rng.random(n), 0.0)
        v = Vector.from_dense(dense_v, missing=0.0)
        out = Vector.new(FP64, n)
        vxm(out, PLUS_TIMES, v, a)
        assert np.allclose(out.to_dense(), dense_v @ dense_a)

    def test_mxv_equals_vxm_on_transpose(self, rng):
        n = 25
        dense_a = np.where(rng.random((n, n)) < 0.25, rng.random((n, n)), 0.0)
        a = Matrix.from_dense(dense_a, missing=0.0)
        v = Vector.from_dense(np.where(rng.random(n) < 0.4, rng.random(n), 0.0), missing=0.0)
        out1 = Vector.new(FP64, n)
        mxv(out1, PLUS_TIMES, a, v)
        out2 = Vector.new(FP64, n)
        vxm(out2, PLUS_TIMES, v, a.transpose())
        assert out1.isclose(out2)

    def test_vxm_transpose1_descriptor(self, rng):
        n = 15
        dense_a = np.where(rng.random((n, n)) < 0.3, rng.random((n, n)), 0.0)
        a = Matrix.from_dense(dense_a, missing=0.0)
        v = Vector.from_dense(np.ones(n))
        out1 = Vector.new(FP64, n)
        vxm(out1, PLUS_TIMES, v, a, desc=TRANSPOSE1)
        out2 = Vector.new(FP64, n)
        vxm(out2, PLUS_TIMES, v, a.transpose())
        assert out1.isclose(out2)

    def test_empty_frontier_gives_empty(self):
        a = Matrix.from_coo([0], [1], [1.0], 2, 2)
        out = Vector.new(FP64, 2)
        vxm(out, MIN_PLUS, Vector.new(FP64, 2), a)
        assert out.nvals == 0

    def test_dimension_checks(self):
        a = Matrix.new(FP64, 2, 3)
        with pytest.raises(DimensionMismatch):
            vxm(Vector.new(FP64, 3), MIN_PLUS, Vector.new(FP64, 3), a)
        with pytest.raises(DimensionMismatch):
            mxv(Vector.new(FP64, 2), MIN_PLUS, a, Vector.new(FP64, 2))


class TestMxm:
    def test_plus_times_oracle(self, rng):
        a_d = np.where(rng.random((6, 8)) < 0.4, rng.random((6, 8)), 0.0)
        b_d = np.where(rng.random((8, 5)) < 0.4, rng.random((8, 5)), 0.0)
        a = Matrix.from_dense(a_d, missing=0.0)
        b = Matrix.from_dense(b_d, missing=0.0)
        out = Matrix.new(FP64, 6, 5)
        mxm(out, PLUS_TIMES, a, b)
        assert np.allclose(out.to_dense(), a_d @ b_d)

    def test_masked_mxm_structural(self, rng):
        n = 10
        a_d = (rng.random((n, n)) < 0.4).astype(np.float64)
        a = Matrix.from_dense(a_d, missing=0.0)
        out = Matrix.new(FP64, n, n)
        from repro.graphblas.descriptor import STRUCTURE

        mxm(out, PLUS_TIMES, a, a, mask=a, desc=STRUCTURE)
        full = a_d @ a_d
        expected = np.where(a_d > 0, full, 0.0)
        assert np.allclose(out.to_dense(), expected)

    def test_inner_dimension_mismatch(self):
        with pytest.raises(DimensionMismatch):
            mxm(Matrix.new(FP64, 2, 2), PLUS_TIMES, Matrix.new(FP64, 2, 3), Matrix.new(FP64, 2, 2))

    def test_masked_mxm_complement(self, rng):
        """Complemented mask: kept entries are exactly the product's
        pattern *outside* the mask (exercises the kernel's early filter)."""
        n = 10
        a_d = (rng.random((n, n)) < 0.4).astype(np.float64)
        a = Matrix.from_dense(a_d, missing=0.0)
        out = Matrix.new(FP64, n, n)
        from repro.graphblas.descriptor import Descriptor

        desc = Descriptor(mask_complement=True, mask_structure=True)
        mxm(out, PLUS_TIMES, a, a, mask=a, desc=desc)
        full = a_d @ a_d
        expected = np.where(a_d > 0, 0.0, full)
        assert np.allclose(out.to_dense(), expected)

    def test_min_plus_batch_frontier(self):
        """The batch-SSSP wave: a K×n frontier matrix against the
        adjacency under (min, +) relaxes K searches in one mxm."""
        # path 0 -> 1 -> 2 with weights 2, 3
        A = Matrix.from_coo([0, 1], [1, 2], [2.0, 3.0], 3, 3)
        F = Matrix.from_coo([0, 1], [0, 1], [0.0, 0.0], 2, 3)  # sources 0 and 1
        out = Matrix.new(FP64, 2, 3)
        mxm(out, MIN_PLUS, F, A)
        assert out.to_coo()[2].tolist() == [2.0, 3.0]
        assert out.get(0, 1) == 2.0  # from source 0
        assert out.get(1, 2) == 3.0  # from source 1


class TestReduce:
    def test_vector_to_scalar(self, v3):
        assert reduce_vector_to_scalar(PLUS_MONOID, v3) == 4.0
        assert reduce_vector_to_scalar(MIN_MONOID, v3) == 1.0

    def test_empty_vector_identity(self):
        assert reduce_vector_to_scalar(PLUS_MONOID, Vector.new(FP64, 3)) == 0.0

    def test_matrix_to_scalar(self):
        a = Matrix.from_coo([0, 1], [0, 1], [2.0, 3.0], 2, 2)
        assert reduce_matrix_to_scalar(PLUS_MONOID, a) == 5.0

    def test_matrix_to_vector_rows(self):
        a = Matrix.from_coo([0, 0, 1], [0, 1, 0], [1.0, 2.0, 5.0], 2, 2)
        out = reduce_matrix_to_vector(None, PLUS_MONOID, a)
        assert out.to_dict() == {0: 3.0, 1: 5.0}

    def test_matrix_to_vector_columns_via_transpose(self):
        from repro.graphblas.descriptor import TRANSPOSE0

        a = Matrix.from_coo([0, 0, 1], [0, 1, 0], [1.0, 2.0, 5.0], 2, 2)
        out = Vector.new(FP64, 2)
        reduce_matrix_to_vector(out, PLUS_MONOID, a, desc=TRANSPOSE0)
        assert out.to_dict() == {0: 6.0, 1: 2.0}


class TestExtractAssign:
    def test_extract_subvector(self, v3):
        out = extract_subvector(None, v3, [2, 0, 1])
        assert out.to_dict() == {0: 3.0, 1: 1.0}

    def test_extract_subvector_slice(self, v3):
        out = extract_subvector(None, v3, slice(0, 2))
        assert out.to_dict() == {0: 1.0}

    def test_extract_submatrix(self):
        a = Matrix.from_dense(np.arange(1.0, 13.0).reshape(3, 4))
        out = extract_submatrix(None, a, [2, 0], [1, 3])
        assert out.to_dense().tolist() == [[10.0, 12.0], [2.0, 4.0]]

    def test_assign_scalar_all(self):
        w = Vector.new(FP64, 3)
        assign_scalar_vector(w, 7.0)
        assert w.to_dense().tolist() == [7.0, 7.0, 7.0]

    def test_assign_scalar_masked(self):
        w = Vector.new(FP64, 3)
        m = Vector.from_coo([1], [True], 3, dtype=BOOL)
        assign_scalar_vector(w, 7.0, mask=m)
        assert w.to_dict() == {1: 7.0}

    def test_assign_vector_mapped(self):
        w = Vector.new(FP64, 5)
        u = Vector.from_coo([0, 1], [10.0, 20.0], 2)
        assign_vector(w, u, [3, 1])
        assert w.to_dict() == {1: 20.0, 3: 10.0}

    def test_assign_scalar_matrix_cross_product(self):
        c = Matrix.new(FP64, 3, 4)
        assign_scalar_matrix(c, 5.0, rows=[0, 2], cols=[1, 3])
        assert c.to_dense().tolist() == [
            [0.0, 5.0, 0.0, 5.0],
            [0.0, 0.0, 0.0, 0.0],
            [0.0, 5.0, 0.0, 5.0],
        ]

    def test_assign_scalar_matrix_preserves_outside_region(self):
        """GrB_assign semantics: entries outside rows x cols survive —
        the batch engine seeds one source per row in K separate calls."""
        c = Matrix.new(FP64, 2, 3)
        assign_scalar_matrix(c, 1.0, rows=[0], cols=[0])
        assign_scalar_matrix(c, 2.0, rows=[1], cols=[2])
        assert c.nvals == 2
        assert c.get(0, 0) == 1.0 and c.get(1, 2) == 2.0

    def test_assign_scalar_matrix_accum(self):
        c = Matrix.from_coo([0], [0], [10.0], 2, 2)
        assign_scalar_matrix(c, 1.0, rows=[0], cols=[0, 1], accum=PLUS)
        assert c.nvals == 2
        assert c.get(0, 0) == 11.0 and c.get(0, 1) == 1.0

    def test_assign_scalar_matrix_all(self):
        c = Matrix.new(FP64, 2, 2)
        assign_scalar_matrix(c, 3.0)
        assert np.allclose(c.to_dense(), 3.0)


class TestTransposeKronecker:
    def test_transpose_operation(self):
        a = Matrix.from_coo([0], [1], [5.0], 2, 3)
        out = Matrix.new(FP64, 3, 2)
        transpose(out, a)
        assert out.extract_element(1, 0) == 5.0

    def test_kronecker_oracle(self, rng):
        a_d = np.where(rng.random((2, 3)) < 0.6, rng.random((2, 3)), 0.0)
        b_d = np.where(rng.random((3, 2)) < 0.6, rng.random((3, 2)), 0.0)
        a = Matrix.from_dense(a_d, missing=0.0)
        b = Matrix.from_dense(b_d, missing=0.0)
        out = kronecker(None, TIMES, a, b)
        assert np.allclose(out.to_dense(), np.kron(a_d, b_d))

"""Unit tests for the GraphBLAS type system."""

import numpy as np
import pytest

from repro.graphblas import types
from repro.graphblas.info import DomainMismatch


class TestFromDtype:
    def test_every_predefined_type_roundtrips(self):
        for t in types.ALL_TYPES:
            assert types.from_dtype(t.np_dtype) is t

    def test_accepts_datatype_passthrough(self):
        assert types.from_dtype(types.FP64) is types.FP64

    def test_accepts_spec_name_string(self):
        assert types.from_dtype("INT32") is types.INT32

    def test_accepts_python_dtype_likes(self):
        assert types.from_dtype(float) is types.FP64
        assert types.from_dtype(bool) is types.BOOL
        assert types.from_dtype("int64") is types.INT64

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(DomainMismatch):
            types.from_dtype(np.complex128)


class TestClassification:
    def test_flags_are_exclusive(self):
        for t in types.ALL_TYPES:
            assert sum([t.is_bool, t.is_integer, t.is_float]) == 1

    def test_integer_family(self):
        assert types.INT8 in types.INTEGER_TYPES
        assert types.UINT64 in types.INTEGER_TYPES
        assert types.FP32 not in types.INTEGER_TYPES


class TestPromotion:
    def test_same_type_identity(self):
        assert types.promote(types.FP32, types.FP32) is types.FP32

    def test_int_float_promotes_to_float(self):
        assert types.promote(types.INT32, types.FP64) is types.FP64

    def test_bool_int_promotes_to_int(self):
        assert types.promote(types.BOOL, types.INT16) is types.INT16

    def test_mixed_width_promotes_up(self):
        assert types.promote(types.INT8, types.INT32) is types.INT32


class TestIdentities:
    def test_min_identity_float_is_inf(self):
        assert types.default_identity_for(types.FP64, "min") == np.inf

    def test_min_identity_int_is_max(self):
        assert types.default_identity_for(types.INT32, "min") == np.iinfo(np.int32).max

    def test_max_identity_float_is_neg_inf(self):
        assert types.default_identity_for(types.FP32, "max") == -np.inf

    def test_plus_identity_is_zero(self):
        assert types.default_identity_for(types.INT64, "plus") == 0

    def test_times_identity_is_one(self):
        assert types.default_identity_for(types.FP64, "times") == 1.0

    def test_bool_lor_land(self):
        assert types.default_identity_for(types.BOOL, "lor") == False  # noqa: E712
        assert types.default_identity_for(types.BOOL, "land") == True  # noqa: E712

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            types.default_identity_for(types.FP64, "nonsense")

    def test_cast_scalar_and_array(self):
        assert types.INT32.cast_scalar(7.9) == 7
        arr = types.FP32.cast_array([1, 2, 3])
        assert arr.dtype == np.float32

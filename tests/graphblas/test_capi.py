"""Unit tests for the C-flavoured GrB_* facade (Info codes, Ref cells)."""

import numpy as np
import pytest

from repro.graphblas import capi
from repro.graphblas.capi import (
    GrB_DESC_R,
    GrB_FP64,
    GrB_IDENTITY_FP64,
    GrB_LOR,
    GrB_MIN_FP64,
    GrB_MIN_PLUS_SEMIRING_FP64,
    GrB_NULL,
    GrB_PLUS_MONOID_FP64,
    Info,
    Ref,
)
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector


class TestLifetime:
    def test_vector_new_success(self):
        ref = Ref()
        assert capi.GrB_Vector_new(ref, GrB_FP64, 5) == Info.SUCCESS
        assert isinstance(ref.value, Vector)

    def test_matrix_new_success(self):
        ref = Ref()
        assert capi.GrB_Matrix_new(ref, GrB_FP64, 2, 3) == Info.SUCCESS
        assert ref.value.shape == (2, 3)

    def test_new_negative_size_reports_invalid_value(self):
        assert capi.GrB_Vector_new(Ref(), GrB_FP64, -1) == Info.INVALID_VALUE

    def test_dup_and_clear(self):
        v = Vector.from_coo([1], [2.0], 3)
        ref = Ref()
        assert capi.GrB_Vector_dup(ref, v) == Info.SUCCESS
        assert ref.value.isequal(v)
        assert capi.GrB_Vector_clear(ref.value) == Info.SUCCESS
        assert ref.value.nvals == 0
        assert v.nvals == 1

    def test_free_and_wait_are_noops(self):
        assert capi.GrB_free(None) == Info.SUCCESS
        assert capi.GrB_wait() == Info.SUCCESS


class TestElementAccess:
    def test_set_and_extract(self):
        v = Vector.new(GrB_FP64, 4)
        assert capi.GrB_Vector_setElement(v, 2.5, 1) == Info.SUCCESS
        out = Ref()
        assert capi.GrB_Vector_extractElement(out, v, 1) == Info.SUCCESS
        assert out.value == 2.5

    def test_extract_missing_is_no_value(self):
        v = Vector.new(GrB_FP64, 4)
        assert capi.GrB_Vector_extractElement(Ref(), v, 0) == Info.NO_VALUE

    def test_invalid_index_reported(self):
        v = Vector.new(GrB_FP64, 4)
        assert capi.GrB_Vector_setElement(v, 1.0, 9) == Info.INVALID_INDEX

    def test_matrix_set_extract(self):
        a = Matrix.new(GrB_FP64, 2, 2)
        assert capi.GrB_Matrix_setElement(a, 3.0, 0, 1) == Info.SUCCESS
        out = Ref()
        assert capi.GrB_Matrix_extractElement(out, a, 0, 1) == Info.SUCCESS
        assert out.value == 3.0
        assert capi.GrB_Matrix_extractElement(Ref(), a, 1, 1) == Info.NO_VALUE


class TestIntrospection:
    def test_nvals_size(self):
        v = Vector.from_coo([0, 1], [1.0, 2.0], 5)
        r = Ref()
        capi.GrB_Vector_nvals(r, v)
        assert r.value == 2
        capi.GrB_Vector_size(r, v)
        assert r.value == 5

    def test_matrix_dims(self):
        a = Matrix.new(GrB_FP64, 3, 7)
        r = Ref()
        capi.GrB_Matrix_nrows(r, a)
        assert r.value == 3
        capi.GrB_Matrix_ncols(r, a)
        assert r.value == 7


class TestBuildExtract:
    def test_vector_build(self):
        v = Vector.new(GrB_FP64, 5)
        info = capi.GrB_Vector_build(v, [3, 1], [30.0, 10.0], 2, GrB_NULL)
        assert info == Info.SUCCESS
        assert v.to_dict() == {1: 10.0, 3: 30.0}

    def test_matrix_build(self):
        a = Matrix.new(GrB_FP64, 2, 2)
        info = capi.GrB_Matrix_build(a, [0, 1], [1, 0], [1.0, 2.0], 2, GrB_NULL)
        assert info == Info.SUCCESS
        assert a.extract_element(1, 0) == 2.0

    def test_extract_tuples(self):
        v = Vector.from_coo([0, 2], [1.0, 3.0], 4)
        idx, vals, n = Ref(), Ref(), Ref()
        assert capi.GrB_Vector_extractTuples(idx, vals, n, v) == Info.SUCCESS
        assert n.value == 2
        assert idx.value.tolist() == [0, 2]


class TestOperations:
    def test_apply_dimension_error_reported_not_raised(self):
        out = Vector.new(GrB_FP64, 3)
        src = Vector.new(GrB_FP64, 4)
        info = capi.GrB_apply(out, GrB_NULL, GrB_NULL, GrB_IDENTITY_FP64, src, GrB_NULL)
        assert info == Info.DIMENSION_MISMATCH

    def test_vxm_min_plus(self):
        a = Matrix.from_coo([0, 1], [1, 2], [2.0, 3.0], 3, 3)
        v = Vector.from_coo([0], [0.0], 3)
        out = Vector.new(GrB_FP64, 3)
        info = capi.GrB_vxm(out, GrB_NULL, GrB_NULL, GrB_MIN_PLUS_SEMIRING_FP64, v, a, GrB_DESC_R)
        assert info == Info.SUCCESS
        assert out.to_dict() == {1: 2.0}

    def test_ewise_add_lor(self):
        a = Vector.from_coo([0], [True], 3)
        b = Vector.from_coo([1], [True], 3)
        out = Vector.new(GrB_FP64, 3)
        assert capi.GrB_eWiseAdd(out, GrB_NULL, GrB_NULL, GrB_LOR, a, b, GrB_NULL) == Info.SUCCESS
        assert out.nvals == 2

    def test_reduce_to_scalar_ref(self):
        v = Vector.from_coo([0, 1], [2.0, 5.0], 3)
        r = Ref()
        assert capi.GrB_reduce(r, GrB_NULL, GrB_PLUS_MONOID_FP64, v) == Info.SUCCESS
        assert r.value == 7.0

    def test_assign_scalar(self):
        v = Vector.new(GrB_FP64, 3)
        assert capi.GrB_assign(v, GrB_NULL, GrB_NULL, 4.0, [0, 2]) == Info.SUCCESS
        assert v.to_dict() == {0: 4.0, 2: 4.0}

    def test_transpose(self):
        a = Matrix.from_coo([0], [1], [5.0], 2, 2)
        out = Matrix.new(GrB_FP64, 2, 2)
        assert capi.GrB_transpose(out, GrB_NULL, GrB_NULL, a, GrB_NULL) == Info.SUCCESS
        assert out.extract_element(1, 0) == 5.0


class TestGBTLFacade:
    def test_vxm_gbtl_style(self):
        from repro.graphblas import gbtl

        a = Matrix.from_coo([0, 1], [1, 2], [2.0, 3.0], 3, 3)
        v = Vector.from_coo([0], [0.0], 3)
        w = Vector.new(GrB_FP64, 3)
        gbtl.vxm(w, gbtl.NoMask(), gbtl.NoAccumulate(), gbtl.MinPlusSemiring(), v, a, True)
        assert w.to_dict() == {1: 2.0}

    def test_gbtl_raises_on_error(self):
        from repro.graphblas import gbtl
        from repro.graphblas.info import DimensionMismatch

        with pytest.raises(DimensionMismatch):
            gbtl.apply(Vector.new(GrB_FP64, 2), None, None, GrB_IDENTITY_FP64, Vector.new(GrB_FP64, 3))

    def test_gbtl_reduce(self):
        from repro.graphblas import gbtl

        v = Vector.from_coo([0, 1], [2.0, 5.0], 3)
        assert gbtl.reduce(gbtl.PlusMonoid(), v) == 7.0

    def test_functor_factories(self):
        from repro.graphblas import gbtl
        from repro.graphblas.semiring import MIN_PLUS, MIN_SECOND

        assert gbtl.MinPlusSemiring() is MIN_PLUS
        assert gbtl.MinSelect2ndSemiring() is MIN_SECOND

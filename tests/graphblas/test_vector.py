"""Unit tests for the Vector container."""

import numpy as np
import pytest

from repro.graphblas import BOOL, FP64, INT64, Vector
from repro.graphblas.info import (
    DimensionMismatch,
    InvalidIndex,
    NoValue,
)


class TestConstruction:
    def test_new_is_empty(self):
        v = Vector.new(FP64, 10)
        assert v.size == 10
        assert v.nvals == 0
        assert v.dtype is FP64

    def test_from_coo_sorts_and_stores(self):
        v = Vector.from_coo([5, 1, 3], [50.0, 10.0, 30.0], 8)
        assert v.indices.tolist() == [1, 3, 5]
        assert v.values.tolist() == [10.0, 30.0, 50.0]

    def test_from_coo_duplicates_last_wins(self):
        v = Vector.from_coo([2, 2], [1.0, 9.0], 4)
        assert v.to_dict() == {2: 9.0}

    def test_from_coo_duplicates_with_dup_op(self):
        from repro.graphblas import PLUS

        v = Vector.from_coo([2, 2, 0], [1.0, 9.0, 4.0], 4, dup_op=PLUS)
        assert v.to_dict() == {0: 4.0, 2: 10.0}

    def test_from_coo_out_of_range_raises(self):
        with pytest.raises(InvalidIndex):
            Vector.from_coo([4], [1.0], 4)

    def test_from_coo_length_mismatch_raises(self):
        with pytest.raises(DimensionMismatch):
            Vector.from_coo([1, 2], [1.0], 4)

    def test_from_dense_drops_missing(self):
        v = Vector.from_dense(np.array([0.0, 3.0, 0.0, 4.0]), missing=0.0)
        assert v.to_dict() == {1: 3.0, 3: 4.0}

    def test_from_dense_nan_missing(self):
        v = Vector.from_dense(np.array([np.nan, 2.0]), missing=np.nan)
        assert v.to_dict() == {1: 2.0}

    def test_from_dense_keeps_all_without_missing(self):
        v = Vector.from_dense(np.array([0.0, 1.0]))
        assert v.nvals == 2

    def test_full(self):
        v = Vector.full(np.inf, 5)
        assert v.nvals == 5
        assert np.all(v.values == np.inf)

    def test_scalar_broadcast_values(self):
        v = Vector.from_coo([0, 2], 7.0, 4)
        assert v.to_dict() == {0: 7.0, 2: 7.0}


class TestElementAccess:
    def test_set_get_roundtrip(self):
        v = Vector.new(FP64, 4)
        v.set_element(2, 5.5)
        assert v.extract_element(2) == 5.5

    def test_set_overwrites(self):
        v = Vector.new(FP64, 4)
        v.set_element(2, 5.5).set_element(2, 6.5)
        assert v.extract_element(2) == 6.5
        assert v.nvals == 1

    def test_insert_keeps_sorted(self):
        v = Vector.new(FP64, 10)
        for i in (7, 1, 4):
            v.set_element(i, float(i))
        assert v.indices.tolist() == [1, 4, 7]

    def test_missing_raises_novalue(self):
        v = Vector.new(FP64, 4)
        with pytest.raises(NoValue):
            v.extract_element(0)

    def test_out_of_range_raises(self):
        v = Vector.new(FP64, 4)
        with pytest.raises(InvalidIndex):
            v.set_element(4, 1.0)
        with pytest.raises(InvalidIndex):
            v.extract_element(-1)

    def test_get_with_default(self):
        v = Vector.new(FP64, 4)
        assert v.get(1, default=-1.0) == -1.0
        v.set_element(1, 2.0)
        assert v.get(1) == 2.0

    def test_remove_element(self):
        v = Vector.from_coo([1, 2], [1.0, 2.0], 4)
        v.remove_element(1)
        assert v.to_dict() == {2: 2.0}
        v.remove_element(3)  # absent: no-op
        assert v.nvals == 1

    def test_contains(self):
        v = Vector.from_coo([1], [1.0], 4)
        assert 1 in v
        assert 0 not in v


class TestWholeObject:
    def test_clear(self):
        v = Vector.from_coo([1], [1.0], 4)
        v.clear()
        assert v.nvals == 0
        assert v.size == 4

    def test_dup_is_deep(self):
        v = Vector.from_coo([1], [1.0], 4)
        w = v.dup()
        w.set_element(2, 5.0)
        assert v.nvals == 1 and w.nvals == 2

    def test_to_dense_fill(self):
        v = Vector.from_coo([1], [3.0], 3)
        assert v.to_dense(fill=-1.0).tolist() == [-1.0, 3.0, -1.0]

    def test_isequal_and_isclose(self):
        a = Vector.from_coo([0, 1], [1.0, 2.0], 3)
        b = Vector.from_coo([0, 1], [1.0, 2.0], 3)
        c = Vector.from_coo([0, 1], [1.0, 2.0 + 1e-12], 3)
        assert a.isequal(b)
        assert not a.isequal(c)
        assert a.isclose(c, rel_tol=1e-9)

    def test_isequal_pattern_mismatch(self):
        a = Vector.from_coo([0], [1.0], 3)
        b = Vector.from_coo([1], [1.0], 3)
        assert not a.isequal(b)

    def test_values_are_readonly_views(self):
        v = Vector.from_coo([0], [1.0], 3)
        with pytest.raises(ValueError):
            v.values[0] = 9.0
        with pytest.raises(ValueError):
            v.indices[0] = 2

    def test_repr_mentions_type_and_size(self):
        assert "FP64" in repr(Vector.new(FP64, 3))

    def test_wait_is_noop(self):
        v = Vector.new(BOOL, 2)
        assert v.wait() is v

    def test_dtype_casting_on_set(self):
        v = Vector.new(INT64, 4)
        v.set_element(0, 3.7)
        assert v.extract_element(0) == 3

"""Unit tests for the object-method API (the Pythonic entry points that
delegate into the operations module)."""

import numpy as np
import pytest

from repro.graphblas import (
    BOOL,
    FP64,
    IDENTITY,
    LOR_LAND,
    MIN,
    MIN_MONOID,
    MIN_PLUS,
    PLUS,
    PLUS_MONOID,
    PLUS_TIMES,
    Matrix,
    TIMES,
    Vector,
)
from repro.graphblas.indexunaryop import VALUEGT
from repro.graphblas.unaryop import threshold_leq


@pytest.fixture
def v():
    return Vector.from_coo([0, 2, 3], [1.0, 3.0, 5.0], 4)


@pytest.fixture
def a():
    return Matrix.from_coo([0, 0, 1, 2], [1, 2, 2, 3], [2.0, 7.0, 3.0, 1.0], 4, 4)


class TestVectorMethods:
    def test_apply_allocates_output(self, v):
        out = v.apply(threshold_leq(3.0))
        assert out.dtype is BOOL
        assert out.to_dict() == {0: True, 2: True, 3: False}

    def test_apply_into_existing(self, v):
        target = Vector.new(FP64, 4)
        got = v.apply(IDENTITY, out=target)
        assert got is target
        assert target.isequal(v)

    def test_select_method(self, v):
        out = v.select(VALUEGT, thunk=2.0)
        assert out.to_dict() == {2: 3.0, 3: 5.0}

    def test_ewise_add_method(self, v):
        other = Vector.from_coo([1, 2], [10.0, 10.0], 4)
        out = v.ewise_add(other, MIN)
        assert out.to_dict() == {0: 1.0, 1: 10.0, 2: 3.0, 3: 5.0}

    def test_ewise_mult_method(self, v):
        other = Vector.from_coo([2, 3], [2.0, 2.0], 4)
        out = v.ewise_mult(other, TIMES)
        assert out.to_dict() == {2: 6.0, 3: 10.0}

    def test_vxm_method(self, v, a):
        out = v.vxm(a, MIN_PLUS)
        # out[1] = v[0]+A[0,1] = 3; out[2] = min(v[0]+7, v[1]? absent) = 8;
        # out[3] = v[2]+A[2,3] = 4
        assert out.to_dict() == {1: 3.0, 2: 8.0, 3: 4.0}

    def test_reduce_method(self, v):
        assert v.reduce(PLUS_MONOID) == 9.0
        assert v.reduce(MIN_MONOID) == 1.0

    def test_extract_method(self, v):
        out = v.extract([3, 1])
        assert out.to_dict() == {0: 5.0}

    def test_assign_scalar_method(self, v):
        v.assign_scalar(0.0, indices=[1, 2])
        assert v.to_dict()[1] == 0.0 and v.to_dict()[2] == 0.0


class TestMatrixMethods:
    def test_apply_method(self, a):
        out = a.apply(threshold_leq(3.0))
        assert out.dtype is BOOL
        assert out.nvals == a.nvals

    def test_select_method(self, a):
        out = a.select(VALUEGT, thunk=2.5)
        assert out.nvals == 2

    def test_ewise_methods(self, a):
        other = Matrix.identity(4, value=1.0)
        union = a.ewise_add(other, PLUS)
        assert union.nvals == a.nvals + 4
        inter = a.ewise_mult(other, PLUS)
        assert inter.nvals == 0  # a has an empty diagonal

    def test_mxv_method(self, a):
        x = Vector.from_coo([1, 2, 3], [1.0, 1.0, 1.0], 4)
        out = a.mxv(x, PLUS_TIMES)
        assert out.to_dict() == {0: 9.0, 1: 3.0, 2: 1.0}

    def test_mxm_method(self, a):
        sq = a.mxm(a, PLUS_TIMES)
        # paths of length 2: 0->1->2 (2*3), 0->2->3 (7*1), 1->2->3 (3*1)
        assert sq.to_dense()[0, 2] == 6.0
        assert sq.to_dense()[0, 3] == 7.0
        assert sq.to_dense()[1, 3] == 3.0

    def test_mxm_boolean_reachability(self):
        a = Matrix.from_coo([0, 1], [1, 2], [True, True], 3, 3, dtype=BOOL)
        two_hop = a.mxm(a, LOR_LAND)
        assert two_hop.extract_element(0, 2) == True  # noqa: E712

    def test_reduce_rows_method(self, a):
        out = a.reduce_rows(PLUS_MONOID)
        assert out.to_dict() == {0: 9.0, 1: 3.0, 2: 1.0}

    def test_reduce_scalar_method(self, a):
        assert a.reduce_scalar(PLUS_MONOID) == 13.0

    def test_kronecker_method(self):
        a = Matrix.from_coo([0], [0], [2.0], 1, 1)
        b = Matrix.from_coo([0, 1], [1, 0], [1.0, 3.0], 2, 2)
        out = a.kronecker(b, TIMES)
        assert out.to_dense().tolist() == [[0.0, 2.0], [6.0, 0.0]]

    def test_extract_submatrix_method(self, a):
        out = a.extract_submatrix([0, 1], [1, 2])
        assert out.to_dense().tolist() == [[2.0, 7.0], [0.0, 3.0]]

"""Unit tests for the Info code / exception mapping."""

import pytest

from repro.graphblas.info import (
    DimensionMismatch,
    GraphBLASError,
    Info,
    InvalidIndex,
    NoValue,
    info_of,
    raise_for_info,
)


class TestInfoCodes:
    def test_api_vs_execution_error_ranges(self):
        assert Info.SUCCESS == 0
        assert Info.NO_VALUE == 1
        assert 2 <= Info.UNINITIALIZED_OBJECT < 100  # API errors
        assert Info.PANIC >= 100  # execution errors

    def test_every_error_class_maps_back(self):
        for exc_type in GraphBLASError.__subclasses__():
            exc = exc_type("boom")
            assert info_of(exc) == exc_type.info

    def test_foreign_exceptions_map_sensibly(self):
        assert info_of(MemoryError()) == Info.OUT_OF_MEMORY
        assert info_of(IndexError()) == Info.INDEX_OUT_OF_BOUNDS
        assert info_of(RuntimeError()) == Info.PANIC


class TestRaiseForInfo:
    def test_success_is_silent(self):
        raise_for_info(Info.SUCCESS)

    def test_no_value_raises(self):
        with pytest.raises(NoValue):
            raise_for_info(Info.NO_VALUE)

    def test_specific_exceptions(self):
        with pytest.raises(DimensionMismatch):
            raise_for_info(Info.DIMENSION_MISMATCH)
        with pytest.raises(InvalidIndex):
            raise_for_info(Info.INVALID_INDEX)

    def test_message_carried(self):
        with pytest.raises(DimensionMismatch, match="sizes differ"):
            raise_for_info(Info.DIMENSION_MISMATCH, "sizes differ")

    def test_default_message_is_code_name(self):
        with pytest.raises(InvalidIndex, match="INVALID_INDEX"):
            raise_for_info(Info.INVALID_INDEX)

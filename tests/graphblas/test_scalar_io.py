"""Unit tests for GrB_Scalar and the import/export module."""

import numpy as np
import pytest

from repro.graphblas import FP64, INT32, Matrix, Vector
from repro.graphblas.info import NoValue
from repro.graphblas.io import (
    matrix_from_csc,
    matrix_from_scipy,
    matrix_to_csc,
    matrix_to_scipy,
    vector_from_numpy,
    vector_to_numpy,
)
from repro.graphblas.scalar import Scalar


class TestScalar:
    def test_empty_by_default(self):
        s = Scalar.new(FP64)
        assert s.is_empty
        assert s.nvals == 0
        with pytest.raises(NoValue):
            s.extract()

    def test_set_extract_roundtrip(self):
        s = Scalar(FP64)
        s.set(2.5)
        assert s.extract() == 2.5
        assert s.nvals == 1

    def test_domain_cast(self):
        s = Scalar(INT32, value=7.9)
        assert s.extract() == 7

    def test_clear(self):
        s = Scalar(FP64, value=1.0)
        s.clear()
        assert s.is_empty
        assert s.get(default=-1.0) == -1.0

    def test_dup(self):
        s = Scalar(FP64, value=3.0)
        d = s.dup()
        s.clear()
        assert d.extract() == 3.0

    def test_repr(self):
        assert "empty" in repr(Scalar(FP64))
        assert "3.0" in repr(Scalar(FP64, value=3.0))


class TestScipyInterop:
    def test_roundtrip(self, rng):
        import scipy.sparse as sp

        dense = np.where(rng.random((6, 9)) < 0.3, rng.random((6, 9)), 0.0)
        m = matrix_from_scipy(sp.csr_array(dense))
        assert np.allclose(m.to_dense(), dense)
        back = matrix_to_scipy(m)
        assert np.allclose(back.toarray(), dense)

    def test_accepts_coo_input(self, rng):
        import scipy.sparse as sp

        coo = sp.coo_array(([1.0, 2.0], ([0, 1], [1, 0])), shape=(2, 2))
        m = matrix_from_scipy(coo)
        assert m.extract_element(0, 1) == 1.0

    def test_duplicates_summed_like_scipy(self):
        import scipy.sparse as sp

        coo = sp.coo_array(([1.0, 2.0], ([0, 0], [1, 1])), shape=(2, 2))
        m = matrix_from_scipy(coo)
        assert m.extract_element(0, 1) == 3.0


class TestCsc:
    def test_roundtrip(self, rng):
        dense = np.where(rng.random((5, 5)) < 0.4, rng.random((5, 5)), 0.0)
        m = Matrix.from_dense(dense, missing=0.0)
        indptr, rows, vals = matrix_to_csc(m)
        back = matrix_from_csc(indptr, rows, vals, nrows=5)
        assert back.isequal(m)


class TestVectorNumpy:
    def test_roundtrip(self):
        v = vector_from_numpy(np.array([0.0, 2.0, 0.0]), missing=0.0)
        assert v.nvals == 1
        assert vector_to_numpy(v).tolist() == [0.0, 2.0, 0.0]

    def test_rejects_non_vector(self):
        from repro.graphblas.info import DimensionMismatch

        with pytest.raises(DimensionMismatch):
            vector_to_numpy(np.zeros(3))

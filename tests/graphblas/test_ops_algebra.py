"""Unit tests for the operator algebra: unary, binary, index-unary,
monoids, semirings."""

import numpy as np
import pytest

from repro.graphblas import binaryop as b
from repro.graphblas import indexunaryop as iu
from repro.graphblas import unaryop as u
from repro.graphblas.info import DomainMismatch
from repro.graphblas.monoid import (
    LOR_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    Monoid,
    PLUS_MONOID,
)
from repro.graphblas.semiring import LOR_LAND, MIN_PLUS, PLUS_PAIR, PLUS_TIMES, Semiring
from repro.graphblas.types import BOOL, FP64, INT32


class TestUnaryOps:
    def test_identity(self):
        x = np.array([1.0, 2.0])
        assert u.IDENTITY(x).tolist() == [1.0, 2.0]

    def test_ainv_abs_one(self):
        x = np.array([-2.0, 3.0])
        assert u.AINV(x).tolist() == [2.0, -3.0]
        assert u.ABS(x).tolist() == [2.0, 3.0]
        assert u.ONE(x).tolist() == [1.0, 1.0]

    def test_minv_handles_zero(self):
        out = u.MINV(np.array([2.0, 0.0]))
        assert out[0] == 0.5
        assert np.isinf(out[1])

    def test_lnot_outputs_bool(self):
        out = u.LNOT(np.array([0.0, 1.0]))
        assert out.dtype == np.bool_
        assert out.tolist() == [True, False]

    def test_threshold_factories(self):
        x = np.array([0.5, 1.0, 2.0])
        assert u.threshold_leq(1.0)(x).tolist() == [True, True, False]
        assert u.threshold_gt(1.0)(x).tolist() == [False, False, True]
        assert u.threshold_geq(1.0)(x).tolist() == [False, True, True]
        assert u.threshold_lt(1.0)(x).tolist() == [True, False, False]

    def test_range_filter_half_open(self):
        x = np.array([0.9, 1.0, 1.9, 2.0])
        assert u.range_filter(1.0, 2.0)(x).tolist() == [False, True, True, False]

    def test_result_type(self):
        assert u.IDENTITY.result_type(FP64) is FP64
        assert u.LNOT.result_type(FP64) is BOOL


class TestBinaryOps:
    def test_arithmetic(self):
        x, y = np.array([4.0]), np.array([2.0])
        assert b.PLUS(x, y)[0] == 6.0
        assert b.MINUS(x, y)[0] == 2.0
        assert b.RMINUS(x, y)[0] == -2.0
        assert b.TIMES(x, y)[0] == 8.0
        assert b.DIV(x, y)[0] == 2.0
        assert b.RDIV(x, y)[0] == 0.5

    def test_first_second_pair_any(self):
        x, y = np.array([4.0]), np.array([2.0])
        assert b.FIRST(x, y)[0] == 4.0
        assert b.SECOND(x, y)[0] == 2.0
        assert b.PAIR(x, y)[0] == 1.0
        assert b.ANY(x, y)[0] == 4.0

    def test_min_max(self):
        x, y = np.array([4.0, 1.0]), np.array([2.0, 3.0])
        assert b.MIN(x, y).tolist() == [2.0, 1.0]
        assert b.MAX(x, y).tolist() == [4.0, 3.0]

    def test_comparisons_output_bool_type(self):
        assert b.LT.result_type(FP64, FP64) is BOOL
        assert b.GE.result_type(INT32, INT32) is BOOL

    def test_commutativity_flags(self):
        assert b.PLUS.commutative
        assert b.MIN.commutative
        assert not b.LT.commutative
        assert not b.FIRST.commutative

    def test_div_by_zero_does_not_raise(self):
        out = b.DIV(np.array([1.0]), np.array([0.0]))
        assert np.isinf(out[0])

    def test_result_type_policies(self):
        assert b.FIRST.result_type(INT32, FP64) is INT32
        assert b.SECOND.result_type(INT32, FP64) is FP64
        assert b.PLUS.result_type(INT32, FP64) is FP64


class TestIndexUnaryOps:
    def test_tril_triu_diag(self):
        vals = np.zeros(3)
        rows = np.array([0, 1, 2])
        cols = np.array([1, 1, 1])
        assert iu.TRIL(vals, rows, cols, 0).tolist() == [False, True, True]
        assert iu.TRIU(vals, rows, cols, 0).tolist() == [True, True, False]
        assert iu.DIAG(vals, rows, cols, 0).tolist() == [False, True, False]
        assert iu.OFFDIAG(vals, rows, cols, 0).tolist() == [True, False, True]

    def test_value_comparators(self):
        vals = np.array([1.0, 5.0])
        z = np.zeros(2, dtype=np.int64)
        assert iu.VALUEGT(vals, z, z, 2.0).tolist() == [False, True]
        assert iu.VALUELE(vals, z, z, 1.0).tolist() == [True, False]

    def test_rowindex_outputs_int(self):
        out = iu.ROWINDEX(np.zeros(2), np.array([3, 4]), np.zeros(2, np.int64), 10)
        assert out.tolist() == [13, 14]

    def test_value_in_range(self):
        vals = np.array([0.5, 1.0, 2.0])
        z = np.zeros(3, dtype=np.int64)
        assert iu.value_in_range(1.0, 2.0)(vals, z, z, None).tolist() == [False, True, False]


class TestMonoids:
    def test_identities_per_domain(self):
        assert MIN_MONOID.identity(FP64) == np.inf
        assert MIN_MONOID.identity(INT32) == np.iinfo(np.int32).max
        assert PLUS_MONOID.identity(FP64) == 0.0
        assert MAX_MONOID.identity(FP64) == -np.inf

    def test_reduce_all(self):
        assert MIN_MONOID.reduce_all(np.array([3.0, 1.0, 2.0]), FP64) == 1.0
        assert PLUS_MONOID.reduce_all(np.array([3.0, 1.0]), FP64) == 4.0

    def test_reduce_empty_gives_identity(self):
        assert PLUS_MONOID.reduce_all(np.empty(0), FP64) == 0.0
        assert MIN_MONOID.reduce_all(np.empty(0), FP64) == np.inf

    def test_lor_reduce(self):
        assert LOR_MONOID.reduce_all(np.array([False, True]), BOOL) == True  # noqa: E712

    def test_user_defined_monoid(self):
        from repro.graphblas.binaryop import BinaryOp

        gcd = BinaryOp.define(np.gcd, name="GCD", ufunc=np.gcd, commutative=True)
        m = Monoid.define(gcd, identity=0, name="GCD")
        assert m.reduce_all(np.array([12, 18, 24]), INT32) == 6

    def test_non_commutative_monoid_rejected(self):
        with pytest.raises(DomainMismatch):
            Monoid.define(b.FIRST, identity=0)

    def test_ufunc_available_for_all_predefined(self):
        for m in (MIN_MONOID, MAX_MONOID, PLUS_MONOID, LOR_MONOID):
            assert m.ufunc is not None


class TestSemirings:
    def test_min_plus_components(self):
        assert MIN_PLUS.add is MIN_MONOID
        assert MIN_PLUS.multiply is b.PLUS

    def test_result_types(self):
        assert MIN_PLUS.result_type(FP64, FP64) is FP64
        assert PLUS_PAIR.result_type(FP64, FP64) is FP64
        assert LOR_LAND.result_type(BOOL, BOOL) is BOOL

    def test_user_defined(self):
        sr = Semiring.define(MAX_MONOID, b.TIMES, name="MAX_TIMES")
        assert sr.add is MAX_MONOID

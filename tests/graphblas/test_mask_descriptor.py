"""Unit tests for the accumulate→mask→replace write pipeline — the part
of the spec the paper's §V.B pitfalls live in."""

import numpy as np
import pytest

from repro.graphblas import (
    BOOL,
    COMPLEMENT,
    FP64,
    IDENTITY,
    Matrix,
    NULL_DESC,
    PLUS,
    REPLACE,
    REPLACE_COMPLEMENT,
    STRUCTURE,
    Vector,
    apply,
)
from repro.graphblas.descriptor import Descriptor


@pytest.fixture
def src():
    """Input vector {0: 1, 1: 2, 2: 3, 3: 4}."""
    return Vector.from_coo([0, 1, 2, 3], [1.0, 2.0, 3.0, 4.0], 4)


@pytest.fixture
def value_mask():
    """Mask storing True at 0, False at 1, True at 2 (3 unstored)."""
    return Vector.from_coo([0, 1, 2], [True, False, True], 4, dtype=BOOL)


class TestValueMask:
    def test_false_entries_do_not_pass(self, src, value_mask):
        out = Vector.new(FP64, 4)
        apply(out, IDENTITY, src, mask=value_mask)
        assert sorted(out.to_dict()) == [0, 2]

    def test_unstored_mask_positions_do_not_pass(self, src, value_mask):
        out = Vector.new(FP64, 4)
        apply(out, IDENTITY, src, mask=value_mask)
        assert 3 not in out.to_dict()


class TestStructuralMask:
    def test_stored_false_counts_as_true(self, src, value_mask):
        out = Vector.new(FP64, 4)
        apply(out, IDENTITY, src, mask=value_mask, desc=STRUCTURE)
        assert sorted(out.to_dict()) == [0, 1, 2]


class TestComplementMask:
    def test_complement_value_mask(self, src, value_mask):
        out = Vector.new(FP64, 4)
        apply(out, IDENTITY, src, mask=value_mask, desc=COMPLEMENT)
        # complement of {0, 2} over the full domain is {1, 3}
        assert sorted(out.to_dict()) == [1, 3]

    def test_complement_structural(self, src, value_mask):
        desc = Descriptor(mask_complement=True, mask_structure=True)
        out = Vector.new(FP64, 4)
        apply(out, IDENTITY, src, mask=value_mask, desc=desc)
        assert sorted(out.to_dict()) == [3]


class TestReplaceSemantics:
    def test_without_replace_outside_mask_survives(self, src, value_mask):
        out = Vector.from_coo([3], [99.0], 4)
        apply(out, IDENTITY, src, mask=value_mask)
        assert out.to_dict() == {0: 1.0, 2: 3.0, 3: 99.0}

    def test_with_replace_outside_mask_cleared(self, src, value_mask):
        out = Vector.from_coo([3], [99.0], 4)
        apply(out, IDENTITY, src, mask=value_mask, desc=REPLACE)
        assert out.to_dict() == {0: 1.0, 2: 3.0}

    def test_inside_mask_stale_entry_deleted(self, value_mask):
        # out has an entry at 0; the computed result has no entry at 0 →
        # within the mask, out must lose it (spec: C<m> becomes Z∩m there)
        out = Vector.from_coo([0], [99.0], 4)
        empty_src = Vector.new(FP64, 4)
        apply(out, IDENTITY, empty_src, mask=value_mask)
        assert out.nvals == 0

    def test_no_mask_full_overwrite(self, src):
        out = Vector.from_coo([3], [99.0], 4)
        apply(out, IDENTITY, src)
        assert out.to_dict() == src.to_dict()


class TestAccumulator:
    def test_accum_union_merge(self, src):
        out = Vector.from_coo([0, 3], [100.0, 100.0], 4)
        apply(out, IDENTITY, src, accum=PLUS)
        assert out.to_dict() == {0: 101.0, 1: 2.0, 2: 3.0, 3: 104.0}

    def test_accum_with_mask(self, src, value_mask):
        out = Vector.from_coo([0, 3], [100.0, 100.0], 4)
        apply(out, IDENTITY, src, accum=PLUS, mask=value_mask)
        # Z = {0:101, 1:2, 2:3, 3:104}; inside mask {0,2} take Z; outside kept
        assert out.to_dict() == {0: 101.0, 2: 3.0, 3: 100.0}

    def test_accum_mask_replace(self, src, value_mask):
        out = Vector.from_coo([0, 3], [100.0, 100.0], 4)
        apply(out, IDENTITY, src, accum=PLUS, mask=value_mask, desc=REPLACE_COMPLEMENT)
        # complement mask true-set {1,3}; replace clears {0,2}
        assert out.to_dict() == {1: 2.0, 3: 104.0}


class TestMatrixMasks:
    def test_matrix_value_mask(self):
        a = Matrix.from_dense(np.arange(1.0, 5.0).reshape(2, 2))
        m = Matrix.from_coo([0, 1], [0, 1], [True, True], 2, 2, dtype=BOOL)
        out = Matrix.new(FP64, 2, 2)
        apply(out, IDENTITY, a, mask=m)
        assert out.to_dense().tolist() == [[1.0, 0.0], [0.0, 4.0]]

    def test_matrix_complement_mask(self):
        a = Matrix.from_dense(np.arange(1.0, 5.0).reshape(2, 2))
        m = Matrix.from_coo([0, 1], [0, 1], [True, True], 2, 2, dtype=BOOL)
        out = Matrix.new(FP64, 2, 2)
        apply(out, IDENTITY, a, mask=m, desc=COMPLEMENT)
        assert out.to_dense().tolist() == [[0.0, 2.0], [3.0, 0.0]]


class TestDescriptorObject:
    def test_builders(self):
        d = NULL_DESC.replacing().complementing().structural().transposing(0)
        assert d.replace and d.mask_complement and d.mask_structure and d.transpose0

    def test_immutability(self):
        d = NULL_DESC.replacing()
        assert not NULL_DESC.replace
        assert d is not NULL_DESC

    def test_transposing_validates(self):
        with pytest.raises(ValueError):
            NULL_DESC.transposing(2)

    def test_repr_flags(self):
        assert "REPLACE" in repr(REPLACE)
        assert "NULL" in repr(NULL_DESC)

"""Unit tests for the Matrix container (CSR invariants included)."""

import numpy as np
import pytest

from repro.graphblas import FP64, INT32, Matrix
from repro.graphblas.info import DimensionMismatch, InvalidIndex, NoValue


@pytest.fixture
def m34() -> Matrix:
    """3x4 with entries (0,1)=1, (0,3)=2, (2,0)=3."""
    return Matrix.from_coo([0, 0, 2], [1, 3, 0], [1.0, 2.0, 3.0], 3, 4)


class TestConstruction:
    def test_new_empty(self):
        a = Matrix.new(FP64, 3, 4)
        assert a.shape == (3, 4)
        assert a.nvals == 0
        assert a.indptr.tolist() == [0, 0, 0, 0]

    def test_from_coo(self, m34):
        assert m34.nvals == 3
        assert m34.to_dense().tolist() == [
            [0.0, 1.0, 0.0, 2.0],
            [0.0, 0.0, 0.0, 0.0],
            [3.0, 0.0, 0.0, 0.0],
        ]

    def test_from_coo_sorts_columns_within_rows(self):
        a = Matrix.from_coo([0, 0], [3, 1], [30.0, 10.0], 1, 4)
        assert a.col_indices.tolist() == [1, 3]
        assert a.values.tolist() == [10.0, 30.0]

    def test_from_coo_dup_op(self):
        from repro.graphblas import MIN

        a = Matrix.from_coo([0, 0], [1, 1], [5.0, 2.0], 2, 2, dup_op=MIN)
        assert a.extract_element(0, 1) == 2.0

    def test_from_coo_out_of_range(self):
        with pytest.raises(InvalidIndex):
            Matrix.from_coo([3], [0], [1.0], 3, 4)
        with pytest.raises(InvalidIndex):
            Matrix.from_coo([0], [4], [1.0], 3, 4)

    def test_from_dense_roundtrip(self, rng):
        dense = np.where(rng.random((5, 6)) < 0.4, rng.random((5, 6)), 0.0)
        a = Matrix.from_dense(dense, missing=0.0)
        assert np.allclose(a.to_dense(), dense)

    def test_from_csr_zero_copy_shapes(self):
        a = Matrix.from_csr(
            np.array([0, 1, 1]), np.array([2]), np.array([9.0]), ncols=3
        )
        assert a.shape == (2, 3)
        assert a.extract_element(0, 2) == 9.0

    def test_identity(self):
        eye = Matrix.identity(3, value=2.0)
        assert eye.diag().values.tolist() == [2.0, 2.0, 2.0]


class TestElementAccess:
    def test_extract_present(self, m34):
        assert m34.extract_element(0, 3) == 2.0

    def test_extract_absent_raises(self, m34):
        with pytest.raises(NoValue):
            m34.extract_element(1, 1)

    def test_extract_out_of_range(self, m34):
        with pytest.raises(InvalidIndex):
            m34.extract_element(3, 0)

    def test_get_default(self, m34):
        assert m34.get(1, 1, default=0.0) == 0.0

    def test_set_element_insert_and_overwrite(self, m34):
        m34.set_element(1, 2, 7.0)
        assert m34.extract_element(1, 2) == 7.0
        m34.set_element(1, 2, 8.0)
        assert m34.extract_element(1, 2) == 8.0
        assert m34.nvals == 4

    def test_set_element_maintains_csr(self, m34):
        m34.set_element(0, 2, 9.0)
        cols, vals = m34.row(0)
        assert cols.tolist() == [1, 2, 3]


class TestStructure:
    def test_row_view(self, m34):
        cols, vals = m34.row(0)
        assert cols.tolist() == [1, 3]
        assert vals.tolist() == [1.0, 2.0]

    def test_row_degrees(self, m34):
        assert m34.row_degrees().tolist() == [2, 0, 1]

    def test_row_ids_expanded(self, m34):
        assert m34.row_ids_expanded().tolist() == [0, 0, 2]

    def test_keys_are_row_major(self, m34):
        keys = m34._keys()
        assert np.all(np.diff(keys) > 0)

    def test_to_coo_roundtrip(self, m34):
        r, c, v = m34.to_coo()
        again = Matrix.from_coo(r, c, v, 3, 4)
        assert again.isequal(m34)


class TestTranspose:
    def test_transpose_values(self, m34):
        t = m34.transpose()
        assert t.shape == (4, 3)
        assert t.extract_element(1, 0) == 1.0
        assert t.extract_element(0, 2) == 3.0

    def test_transpose_cached_until_mutation(self, m34):
        t1 = m34.transpose()
        assert m34.transpose() is t1
        m34.set_element(1, 1, 5.0)
        t2 = m34.transpose()
        assert t2 is not t1
        assert t2.extract_element(1, 1) == 5.0

    def test_double_transpose_identity(self, m34):
        assert m34.transpose().transpose().isequal(m34)

    def test_t_alias(self, m34):
        assert m34.T.isequal(m34.transpose())


class TestWholeObject:
    def test_clear(self, m34):
        m34.clear()
        assert m34.nvals == 0
        assert m34.shape == (3, 4)

    def test_dup_is_deep(self, m34):
        d = m34.dup()
        d.set_element(1, 1, 1.0)
        assert m34.nvals == 3 and d.nvals == 4

    def test_diag(self):
        a = Matrix.from_coo([0, 1, 1], [0, 1, 0], [1.0, 2.0, 9.0], 2, 2)
        assert a.diag().to_dict() == {0: 1.0, 1: 2.0}

    def test_dtype_cast(self):
        a = Matrix.from_coo([0], [0], [3.9], 1, 1, dtype=INT32)
        assert a.extract_element(0, 0) == 3

"""Unit + property tests for the sorted-index-set kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphblas import sparseutil as su

index_sets = st.lists(st.integers(0, 200), max_size=60).map(
    lambda xs: np.unique(np.array(xs, dtype=np.int64))
)


class TestMembership:
    def test_basic(self):
        hay = np.array([1, 3, 5, 9], dtype=np.int64)
        needles = np.array([0, 1, 5, 10], dtype=np.int64)
        assert su.membership(hay, needles).tolist() == [False, True, True, False]

    def test_empty_haystack(self):
        assert su.membership(np.empty(0, np.int64), np.array([1, 2])).tolist() == [False, False]

    def test_empty_needles(self):
        assert len(su.membership(np.array([1, 2]), np.empty(0, np.int64))) == 0

    @given(index_sets, index_sets)
    @settings(max_examples=60, deadline=None)
    def test_matches_python_sets(self, hay, needles):
        got = su.membership(hay, needles)
        expected = np.isin(needles, hay)
        assert np.array_equal(got, expected)


class TestUnionMerge:
    @given(index_sets, index_sets)
    @settings(max_examples=60, deadline=None)
    def test_union_provenance(self, a, b):
        merged, in_a, in_b, a_pos, b_pos = su.union_merge(a, b)
        assert np.array_equal(merged, np.union1d(a, b))
        # every union slot flagged in_a maps back to the right a element
        assert np.array_equal(merged[in_a], a[a_pos[in_a]])
        assert np.array_equal(merged[in_b], b[b_pos[in_b]])
        # every slot comes from somewhere
        assert np.all(in_a | in_b)


class TestIntersectDifference:
    @given(index_sets, index_sets)
    @settings(max_examples=60, deadline=None)
    def test_intersect(self, a, b):
        common, a_pos, b_pos = su.intersect(a, b)
        assert np.array_equal(common, np.intersect1d(a, b))
        assert np.array_equal(a[a_pos], common)
        assert np.array_equal(b[b_pos], common)

    @given(index_sets, index_sets)
    @settings(max_examples=60, deadline=None)
    def test_difference(self, a, b):
        kept, kept_pos = su.difference(a, b)
        assert np.array_equal(kept, np.setdiff1d(a, b))
        assert np.array_equal(a[kept_pos], kept)


class TestGroupReduce:
    def test_min_reduction(self):
        keys = np.array([3, 1, 3, 1, 2], dtype=np.int64)
        vals = np.array([5.0, 2.0, 1.0, 7.0, 4.0])
        uk, red = su.group_reduce(keys, vals, np.minimum)
        assert uk.tolist() == [1, 2, 3]
        assert red.tolist() == [2.0, 4.0, 1.0]

    def test_sum_reduction(self):
        keys = np.array([0, 0, 1], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0])
        uk, red = su.group_reduce(keys, vals, np.add)
        assert red.tolist() == [3.0, 3.0]

    def test_empty(self):
        uk, red = su.group_reduce(np.empty(0, np.int64), np.empty(0), np.add)
        assert len(uk) == 0 and len(red) == 0

    @given(st.lists(st.tuples(st.integers(0, 10), st.floats(-100, 100)), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_oracle(self, pairs):
        keys = np.array([k for k, _ in pairs], dtype=np.int64)
        vals = np.array([v for _, v in pairs], dtype=np.float64)
        uk, red = su.group_reduce(keys, vals, np.minimum)
        oracle = {}
        for k, v in pairs:
            oracle[k] = min(oracle.get(k, np.inf), v)
        assert uk.tolist() == sorted(oracle)
        for k, r in zip(uk.tolist(), red.tolist()):
            assert r == oracle[k]


class TestSegmentGather:
    def test_csr_rows(self):
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        flat, lengths = su.segment_gather(indptr, np.array([0, 2], dtype=np.int64))
        assert flat.tolist() == [0, 1, 2, 3, 4]
        assert lengths.tolist() == [2, 3]

    def test_row_order_preserved(self):
        indptr = np.array([0, 2, 4], dtype=np.int64)
        flat, lengths = su.segment_gather(indptr, np.array([1, 0], dtype=np.int64))
        assert flat.tolist() == [2, 3, 0, 1]

    def test_empty_rows(self):
        indptr = np.array([0, 0, 0], dtype=np.int64)
        flat, lengths = su.segment_gather(indptr, np.array([0, 1], dtype=np.int64))
        assert len(flat) == 0
        assert lengths.tolist() == [0, 0]


class TestDedupeCoo:
    def test_last_wins_without_dup_op(self):
        r = np.array([0, 0], dtype=np.int64)
        c = np.array([1, 1], dtype=np.int64)
        v = np.array([5.0, 9.0])
        rr, cc, vv = su.dedupe_coo(r, c, v, ncols=4, dup_ufunc=None)
        assert vv.tolist() == [9.0]

    def test_dup_ufunc_combines(self):
        r = np.array([0, 0, 1], dtype=np.int64)
        c = np.array([1, 1, 0], dtype=np.int64)
        v = np.array([5.0, 9.0, 2.0])
        rr, cc, vv = su.dedupe_coo(r, c, v, ncols=4, dup_ufunc=np.add)
        assert rr.tolist() == [0, 1]
        assert vv.tolist() == [14.0, 2.0]

    def test_output_row_major_sorted(self):
        r = np.array([1, 0, 1], dtype=np.int64)
        c = np.array([0, 3, 2], dtype=np.int64)
        v = np.array([1.0, 2.0, 3.0])
        rr, cc, vv = su.dedupe_coo(r, c, v, ncols=4, dup_ufunc=None)
        keys = rr * 4 + cc
        assert np.all(np.diff(keys) > 0)


class TestSortedUnique:
    def test_detects_sorted(self):
        assert su.is_sorted_unique(np.array([1, 2, 9], dtype=np.int64))

    def test_detects_duplicates(self):
        assert not su.is_sorted_unique(np.array([1, 1], dtype=np.int64))

    def test_detects_disorder(self):
        assert not su.is_sorted_unique(np.array([2, 1], dtype=np.int64))

    def test_short_arrays_trivially_sorted(self):
        assert su.is_sorted_unique(np.empty(0, np.int64))
        assert su.is_sorted_unique(np.array([5], dtype=np.int64))

"""Integration: every shipped example must run end-to-end.

Examples execute in-process (import + ``main()``) with stdout captured,
so breakage in any public API they touch fails the suite.  The two
heavier examples are trimmed via environment knobs where available.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "translation_pipeline.py",
    "road_network_routing.py",
    "query_service.py",
    "dynamic_updates.py",
    "sharded_execution.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_examples_inventory_complete():
    """At least the eight documented examples exist and are executable."""
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "road_network_routing.py",
        "translation_pipeline.py",
        "social_network_analysis.py",
        "parallel_scaling.py",
        "query_service.py",
        "dynamic_updates.py",
        "sharded_execution.py",
    } <= names


def test_quickstart_output_content(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "all five implementations agree" in out
    assert "validated" in out

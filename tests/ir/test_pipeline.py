"""Unit tests for the translation pipeline: nodes → lowering → fusion →
interpretation."""

import numpy as np
import pytest

from repro.graphblas import FP64, IDENTITY, MIN, MIN_PLUS, PLUS, Matrix, Vector
from repro.graphblas.unaryop import threshold_gt
from repro.ir import (
    ApplyUnary,
    Assign,
    Clear,
    Declare,
    EWiseAdd,
    EWiseMult,
    GrBCall,
    Interpreter,
    LoweredWhile,
    NvalsNonzero,
    Program,
    Reduce,
    Ref,
    SetElement,
    SetScalar,
    VxM,
    While,
    count_calls,
    fuse_program,
    lower_program,
    run_program,
)
from repro.ir.patterns import filter_vertices, min_merge, set_union


def lowered(statements, name="t"):
    return lower_program(Program(statements=tuple(statements), name=name))


class TestLowering:
    def test_assign_ref_becomes_identity_apply(self):
        prog = lowered([Assign("y", Ref("x"))])
        (call,) = prog.calls
        assert call.fn == "apply"
        assert call.args["in0"] == "x"

    def test_nested_expression_introduces_temp(self):
        prog = lowered(
            [Assign("t", EWiseAdd(MIN, Ref("t"), VxM(MIN_PLUS, Ref("v"), Ref("A"))))]
        )
        assert [c.fn for c in prog.calls] == ["vxm", "ewise_add"]
        tmp = prog.calls[0].out
        assert tmp.startswith("_tmp")
        assert prog.calls[1].args["in1"] == tmp

    def test_while_nests(self):
        prog = lowered(
            [
                While(
                    cond=NvalsNonzero("c"),
                    pre=(Assign("c", Ref("x")),),
                    body=(Clear("x"),),
                )
            ]
        )
        (loop,) = prog.calls
        assert isinstance(loop, LoweredWhile)
        assert loop.cond_name == "c"
        assert loop.pre[0].fn == "apply"
        assert loop.body[0].fn == "clear"

    def test_count_calls_skips_bookkeeping(self):
        prog = lowered(
            [Declare("v", "vector", FP64, size=3), SetScalar("i", 0), Clear("v")]
        )
        assert count_calls(prog.calls) == 1
        assert count_calls(prog.calls, include_bookkeeping=True) == 3

    def test_mask_modifiers_carried(self):
        prog = lowered([Assign("y", Ref("x"), mask="m", replace=True, complement=True)])
        call = prog.calls[0]
        assert call.mask == "m" and call.replace and call.complement


class TestFusion:
    def test_filter_pair_fuses(self):
        prog = lowered(filter_vertices("y", "x", threshold_gt(1.0)))
        fused, report = fuse_program(prog)
        assert report.filters_fused == 1
        assert report.calls_after == 1
        assert fused.calls[0].fn == "fused_filter"

    def test_no_fuse_when_predicate_still_live(self):
        stmts = filter_vertices("y", "x", threshold_gt(1.0))
        stmts.append(Assign("z", Ref("y_pred")))  # keeps the predicate alive
        prog = lowered(stmts)
        _, report = fuse_program(prog)
        assert report.filters_fused == 0

    def test_no_fuse_for_loop_carried_read(self):
        # the predicate is read at an earlier position of the loop body on
        # the next iteration, so eliding its write would be unsound
        pred = threshold_gt(1.0)
        body = (
            Assign("z", Ref("p")),  # earlier-position read (next iteration)
            Assign("p", ApplyUnary(pred, Ref("x"))),
            Assign("y", ApplyUnary(IDENTITY, Ref("x")), mask="p", replace=True),
        )
        prog = lowered(
            [While(cond=NvalsNonzero("y"), pre=(), body=body)]
        )
        _, report = fuse_program(prog)
        assert report.filters_fused == 0

    def test_fuse_when_loop_rewrites_before_read(self):
        pred = threshold_gt(1.0)
        body = (
            Assign("p", ApplyUnary(pred, Ref("x"))),
            Assign("y", ApplyUnary(IDENTITY, Ref("x")), mask="p", replace=True),
        )
        prog = lowered([While(cond=NvalsNonzero("y"), pre=(), body=body)])
        _, report = fuse_program(prog)
        assert report.filters_fused == 1

    def test_masked_vxm_fusion(self):
        stmts = [
            Assign("m", ApplyUnary(IDENTITY, Ref("t")), mask="b", replace=True),
            Assign("r", VxM(MIN_PLUS, Ref("m"), Ref("A"))),
        ]
        prog = lowered(stmts)
        fused, report = fuse_program(prog)
        assert report.masked_vxm_fused == 1
        assert fused.calls[0].fn == "fused_masked_vxm"
        assert fused.calls[0].args["in_mask"] == "b"


class TestInterpreter:
    def test_declare_and_set_element(self):
        prog = lowered(
            [
                Declare("v", "vector", FP64, size=4),
                SetElement("v", 2, 9.0),
            ]
        )
        interp = run_program(prog)
        assert interp.env["v"].to_dict() == {2: 9.0}

    def test_thunked_values_resolve_against_env(self):
        prog = lowered(
            [
                Declare("v", "vector", FP64, size=4),
                SetScalar("k", 3),
                SetElement("v", lambda env: env["k"], lambda env: env["k"] * 2.0),
            ]
        )
        interp = run_program(prog)
        assert interp.env["v"].to_dict() == {3: 6.0}

    def test_while_loop_executes(self):
        # keep halving the stored value count via a filter
        prog = Program(
            statements=(
                Declare("keep", "vector", FP64, size_of="x"),
                While(
                    cond=NvalsNonzero("x"),
                    pre=(),
                    body=(Clear("x"),),
                ),
            ),
        )
        x = Vector.from_coo([0, 1], [1.0, 2.0], 3)
        interp = run_program(lower_program(prog), {"x": x})
        assert interp.env["x"].nvals == 0

    def test_reduce_lands_scalar_in_env(self):
        from repro.graphblas.monoid import PLUS_MONOID

        prog = lowered([Assign("total", Reduce(PLUS_MONOID, Ref("x")))])
        x = Vector.from_coo([0, 1], [2.0, 3.0], 3)
        interp = run_program(prog, {"x": x})
        assert interp.env["total"] == 5.0

    def test_counts_executed_calls(self):
        prog = lowered([Assign("y", Ref("x")), Assign("z", Ref("y"))])
        x = Vector.from_coo([0], [1.0], 2)
        interp = run_program(prog, {"x": x})
        assert interp.calls_executed == 2
        assert interp.calls_by_fn == {"apply": 2}

    def test_unknown_name_raises(self):
        prog = lowered([Assign("y", Ref("missing"))])
        with pytest.raises(KeyError, match="missing"):
            run_program(prog)

    def test_ewise_mult_dispatch(self):
        prog = lowered([Assign("z", EWiseMult(PLUS, Ref("a"), Ref("b")))])
        a = Vector.from_coo([0, 1], [1.0, 2.0], 3)
        b = Vector.from_coo([1, 2], [10.0, 20.0], 3)
        interp = run_program(prog, {"a": a, "b": b})
        assert interp.env["z"].to_dict() == {1: 12.0}

    def test_set_union_pattern(self):
        prog = lowered([set_union("s", "s", "b")])
        s = Vector.from_coo([0], [True], 3)
        b = Vector.from_coo([2], [True], 3)
        interp = run_program(prog, {"s": s, "b": b})
        assert sorted(interp.env["s"].to_dict()) == [0, 2]

    def test_min_merge_pattern(self):
        prog = lowered([min_merge("t", "r")])
        t = Vector.from_coo([0, 1], [5.0, 1.0], 3)
        r = Vector.from_coo([0, 2], [2.0, 9.0], 3)
        interp = run_program(prog, {"t": t, "r": r})
        assert interp.env["t"].to_dict() == {0: 2.0, 1: 1.0, 2: 9.0}

    def test_fused_filter_equals_two_call_form(self):
        pred = threshold_gt(1.5)
        x = Vector.from_coo([0, 1, 2], [1.0, 2.0, 3.0], 4)
        unfused = run_program(lowered(filter_vertices("y", "x", pred)), {"x": x.dup()})
        fused_prog, _ = fuse_program(lowered(filter_vertices("y", "x", pred)))
        fused = run_program(fused_prog, {"x": x.dup()})
        assert unfused.env["y"].isequal(fused.env["y"])

"""End-to-end tests of the delta-stepping IR program (the paper's worked
example, executed through the full translation pipeline)."""

import numpy as np
import pytest

from repro.graphs import datasets, generators as gen
from repro.graphs.weights import assign_weights
from repro.ir import (
    count_calls,
    delta_stepping_program,
    fuse_program,
    lower_program,
    run_delta_stepping_ir,
)
from repro.sssp import dijkstra


class TestProgramShape:
    def test_static_call_count_matches_fig2(self):
        """Fig. 2 performs 19 distinct GraphBLAS operations (excluding
        declarations): 4 matrix-filter applies, 2+2 outer-check applies,
        2 bucket applies, 6 inner-loop ops, the heavy-phase 3, setElement,
        and clear."""
        lowered = lower_program(delta_stepping_program())
        assert count_calls(lowered.calls) == 19

    def test_fusion_reduces_static_calls(self):
        lowered = lower_program(delta_stepping_program())
        _, report = fuse_program(lowered)
        assert report.calls_before == 19
        assert report.calls_after == 15
        assert report.filters_fused == 3
        assert report.masked_vxm_fused == 1

    def test_program_is_reusable(self):
        """The same Program object runs on different graphs/parameters."""
        prog = delta_stepping_program()
        lowered = lower_program(prog)
        assert count_calls(lowered.calls) == count_calls(lower_program(prog).calls)


class TestEndToEnd:
    @pytest.mark.parametrize("fuse", [False, True])
    def test_matches_dijkstra_unit(self, grid_graph, fuse):
        r = run_delta_stepping_ir(grid_graph, 0, 1.0, fuse=fuse)
        assert r.same_distances(dijkstra(grid_graph, 0))

    @pytest.mark.parametrize("fuse", [False, True])
    def test_matches_dijkstra_weighted(self, random_weighted_graph, fuse):
        r = run_delta_stepping_ir(random_weighted_graph, 0, 0.5, fuse=fuse)
        assert r.same_distances(dijkstra(random_weighted_graph, 0))

    def test_fused_executes_fewer_calls(self, grid_graph):
        unfused = run_delta_stepping_ir(grid_graph, 0, 1.0, fuse=False)
        fused = run_delta_stepping_ir(grid_graph, 0, 1.0, fuse=True)
        assert fused.extra["calls_executed"] < unfused.extra["calls_executed"]
        assert fused.same_distances(unfused)

    def test_fusion_report_attached(self, grid_graph):
        r = run_delta_stepping_ir(grid_graph, 0, 1.0, fuse=True)
        rep = r.extra["fusion_report"]
        assert rep.calls_removed == 4

    def test_call_mix_recorded(self, grid_graph):
        r = run_delta_stepping_ir(grid_graph, 0, 1.0, fuse=False)
        by_fn = r.extra["calls_by_fn"]
        assert by_fn["vxm"] > 0
        assert by_fn["apply"] > by_fn["vxm"]  # filters dominate call count

    def test_unreachable_handled(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges([0], [1], n=4)
        r = run_delta_stepping_ir(g, 0, 1.0)
        assert r.num_reached == 2

    def test_invalid_params(self, grid_graph):
        with pytest.raises(ValueError):
            run_delta_stepping_ir(grid_graph, 0, 0.0)
        with pytest.raises(IndexError):
            run_delta_stepping_ir(grid_graph, 9999, 1.0)

    def test_ci_dataset_smoke(self):
        g = datasets.load("ci-ws")
        r = run_delta_stepping_ir(g, 0, 1.0, fuse=True)
        assert r.same_distances(dijkstra(g, 0))

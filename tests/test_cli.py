"""Unit tests for the CLI (argument parsing + command handlers)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig3_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.suite == "ci"
        assert args.repeats == 3

    def test_fig4_flags(self):
        args = build_parser().parse_args(["fig4", "--real", "--threads", "2", "4", "8"])
        assert args.real
        assert args.threads == [2, 4, 8]

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "ci-ws", "--method", "capi", "--delta", "2.0"])
        assert args.graph == "ci-ws"
        assert args.method == "capi"
        assert args.delta == 2.0

    def test_query_arguments(self):
        args = build_parser().parse_args(["query", "ci-ws", "--source", "3", "--target", "9"])
        assert args.graph == "ci-ws"
        assert (args.source, args.target) == (3, 9)
        assert args.repeat == 2

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.suite == "ci"
        assert args.queries == 64
        assert args.stepper is None and not args.auto

    def test_stepper_flags(self):
        args = build_parser().parse_args(["run", "ci-ws", "--stepper", "rho"])
        assert args.stepper == "rho"
        args = build_parser().parse_args(["query", "ci-ws", "--auto"])
        assert args.auto

    def test_step_bench_defaults(self):
        args = build_parser().parse_args(["step-bench"])
        assert args.suite == "ci"
        assert args.repeats == 3
        assert not args.smoke

    def test_shard_bench_defaults(self):
        args = build_parser().parse_args(["shard-bench"])
        assert args.suite == "ci"
        assert args.shards == [2, 4]
        assert args.partitioners is None
        assert args.transport == "threads"
        assert not args.smoke

    def test_kernel_bench_defaults(self):
        args = build_parser().parse_args(["kernel-bench"])
        assert args.suite == "ci"
        assert args.repeats == 5
        assert not args.smoke

    def test_shard_bench_flags(self):
        args = build_parser().parse_args(
            ["shard-bench", "--shards", "2", "8", "--partitioners", "bfs",
             "--transport", "inline", "--smoke"]
        )
        assert args.shards == [2, 8]
        assert args.partitioners == ["bfs"]
        assert args.transport == "inline"
        assert args.smoke


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "ci-ws", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "reached" in out
        assert "verified" in out

    def test_run_command_weighted(self, capsys):
        assert main(["run", "ci-ws", "--weights", "uniform", "--method", "fused"]) == 0
        assert "method" in capsys.readouterr().out

    def test_suite_command(self, capsys):
        assert main(["suite", "--suite", "ci"]) == 0
        out = capsys.readouterr().out
        assert "ci-ws" in out
        assert "|V|" in out

    def test_translate_command(self, capsys):
        assert main(["translate"]) == 0
        out = capsys.readouterr().out
        assert "fused_filter" in out
        assert "unfused" in out

    def test_query_point(self, capsys):
        assert main(["query", "ci-ws", "--target", "40"]) == 0
        out = capsys.readouterr().out
        assert "batch solve" in out
        assert "cache" in out  # the repeat is served from cache

    def test_query_one_to_many(self, capsys):
        assert main(["query", "ci-ws", "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "reached" in out

    def test_query_with_landmarks(self, capsys):
        assert main(["query", "ci-ws", "--target", "40", "--landmarks", "3"]) == 0
        assert "landmark bounds" in capsys.readouterr().out

    def test_serve_bench_tiny(self, capsys, monkeypatch):
        import repro.bench.workloads as wl

        monkeypatch.setattr(
            "repro.bench.registry.suite_workloads",
            lambda suite=None, **kw: [wl.workload_for("ci-ws")],
        )
        assert main(["serve-bench", "--queries", "8", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "service_qps" in out
        assert "verified bit-identical" in out

    def test_run_with_stepper(self, capsys):
        assert main(["run", "ci-ws", "--stepper", "rho", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "rho-stepping" in out
        assert "verified" in out

    def test_run_auto_prints_pick(self, capsys):
        assert main(["run", "ci-ws", "--auto", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "auto-tuned" in out
        assert "verified" in out

    def test_query_with_stepper(self, capsys):
        assert main(["query", "ci-ws", "--target", "40", "--stepper", "delta-star"]) == 0
        assert "batch solve" in capsys.readouterr().out

    def test_steppers_lists_both_registries(self, capsys):
        assert main(["steppers"]) == 0
        out = capsys.readouterr().out
        # every registered stepper and every Δ strategy is enumerated
        from repro.sssp.delta import DELTA_STRATEGIES
        from repro.stepping import STEPPERS

        for name in STEPPERS:
            assert name in out
        for name in ("auto", *DELTA_STRATEGIES):
            assert name in out

    def test_run_pinned_stepper_beats_auto_flag(self, capsys):
        """--stepper with --auto: the pin wins and no tuned label is printed."""
        assert main(["run", "ci-ws", "--stepper", "radius", "--auto"]) == 0
        out = capsys.readouterr().out
        assert "auto-tuned" not in out
        assert "radius-stepping" in out

    def test_run_delta_ignored_with_warning_for_rho(self, capsys):
        assert main(["run", "ci-ws", "--stepper", "rho", "--delta", "2.0"]) == 0
        captured = capsys.readouterr()
        assert "takes no delta" in captured.err
        assert "rho-stepping" in captured.out

    def test_run_delta_forwarded_to_delta_stepper(self, capsys):
        assert main(["run", "ci-ws", "--stepper", "delta", "--delta", "2.0"]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "2.0" in captured.out

    def test_steppers_probe(self, capsys):
        assert main(["steppers", "--probe", "ci-ws"]) == 0
        out = capsys.readouterr().out
        assert "best_stepper ->" in out
        assert "ms_per_source" in out

    def test_step_bench_smoke(self, capsys):
        assert main(["step-bench", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to Dijkstra" in out
        assert "Auto-tuner pick vs best measured" in out

    def test_shard_bench_smoke(self, capsys):
        assert main(["shard-bench", "--smoke", "--transport", "inline",
                     "--shards", "2", "--partitioners", "contiguous"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to Dijkstra" in out
        assert "speedup" in out
        assert "entries" in out  # communication-volume column

    def test_kernel_bench_smoke(self, capsys, tmp_path):
        import json
        import os

        assert main(["kernel-bench", "--smoke", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to Dijkstra" in out
        assert "seed" in out and "scatter" in out
        # the shared writer produced the machine-readable trajectory
        path = os.path.join(os.environ["REPRO_BENCH_DIR"], "BENCH_KERNEL.json")
        payload = json.loads(open(path).read())
        assert payload["experiment"] == "KERNEL"
        assert payload["headline"]["all_verified"] is True
        assert any(r["variant"] == "scatter" for r in payload["rows"])

    def test_run_with_kernel_spec(self, capsys):
        assert main(["run", "ci-ws", "--stepper", "delta(kernel=scatter)", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_run_with_sharded_spec(self, capsys):
        assert main(["run", "ci-ws", "--stepper",
                     "sharded(shards=3,partitioner=bfs)", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "sharded" in out
        assert "verified" in out

    def test_lint_clean_on_repo(self, capsys):
        assert main(["lint"]) == 0
        assert "repro lint: clean (0 findings)" in capsys.readouterr().out

    def test_lint_select_and_json(self, capsys):
        import json

        assert main(["lint", "--select", "export-hygiene", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"findings": [], "count": 0}

    def test_lint_list_enumerates_rules(self, capsys):
        from repro.analysis import RULES

        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_lint_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--select", "nope"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_profile_command_tiny(self, capsys, monkeypatch):
        # shrink the suite to one graph to keep the test fast
        import repro.bench.workloads as wl

        monkeypatch.setattr(
            "repro.bench.registry.suite_workloads",
            lambda suite=None, **kw: [wl.workload_for("ci-ws")],
        )
        assert main(["profile", "--suite", "ci"]) == 0
        assert "35-40%" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_report_parser_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.graph == "ci-ws"
        assert args.stepper == "sharded(shards=4,partitioner=bfs)"
        assert args.fmt == "md"

    def test_bench_diff_parser_defaults(self):
        args = build_parser().parse_args(["bench-diff", "KERNEL", "SHARD"])
        assert args.names == ["KERNEL", "SHARD"]
        assert args.baseline == "."
        assert args.absolute == "auto"
        assert args.time_tolerance == 0.5

    def test_metrics_parser_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.graph == "ci-ws"
        assert args.stepper == "delta"
        assert args.serve is None

    def test_report_sharded_run_prints_exchange_ledger(self, capsys):
        assert main(["report", "ci-ws",
                     "--stepper", "sharded(shards=2,partitioner=bfs)",
                     "--queries", "0"]) == 0
        out = capsys.readouterr().out
        assert "## Exchange ledger (per superstep)" in out
        assert "## Time attribution" in out

    def test_report_html_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "report.html"
        assert main(["report", "ci-ws", "--stepper", "delta", "--queries", "2",
                     "--format", "html", "--out", str(out_path)]) == 0
        doc = out_path.read_text()
        assert doc.startswith("<!DOCTYPE html>")
        assert "wrote" in capsys.readouterr().out

    def test_report_from_saved_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["trace", "ci-ws", "--queries", "0",
                     "--out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "## Overview" in out and "## Bucket occupancy" in out

    def test_metrics_command_emits_openmetrics(self, capsys):
        assert main(["metrics", "ci-ws", "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert out.rstrip().endswith("# EOF")
        assert "repro_service_queries_total 2" in out

    def test_bench_diff_clean_pass_and_injected_regression(self, capsys, tmp_path):
        import json
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        committed = root / "BENCH_KERNEL.json"
        fresh = tmp_path / "BENCH_KERNEL.json"
        fresh.write_text(committed.read_text())
        assert main(["bench-diff", "KERNEL", "--baseline", str(root),
                     "--fresh", str(tmp_path), "--no-history"]) == 0
        assert "PASS" in capsys.readouterr().out

        payload = json.loads(committed.read_text())
        for row in payload["rows"]:
            row["ms"] *= 2.0
            row["speedup"] /= 2.0
            row["relax_per_ms"] /= 2.0
        fresh.write_text(json.dumps(payload))
        assert main(["bench-diff", "KERNEL", "--baseline", str(root),
                     "--fresh", str(tmp_path), "--no-history"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_diff_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["bench-diff", "NOPE", "--baseline", str(tmp_path),
                     "--fresh", str(tmp_path)]) == 2

    def test_bench_diff_record_appends_history(self, capsys, tmp_path):
        import json
        from pathlib import Path

        from repro.bench.history import BenchHistory

        root = Path(__file__).resolve().parents[1]
        fresh = tmp_path / "BENCH_KERNEL.json"
        fresh.write_text((root / "BENCH_KERNEL.json").read_text())
        assert main(["bench-diff", "KERNEL", "--baseline", str(root),
                     "--fresh", str(tmp_path), "--record"]) == 0
        ledger = BenchHistory(tmp_path / "BENCH_HISTORY.jsonl")
        assert len(ledger.entries("KERNEL")) == 1


class TestSLOCommands:
    def test_slo_check_parser_defaults(self):
        args = build_parser().parse_args(["slo-check"])
        assert args.slo == "slo.toml"
        assert args.summary is None
        assert args.graph == "ci-ws"
        assert args.queries == 32
        assert args.slow_ms == 25.0
        assert args.inject_latency_ms is None

    def test_report_request_and_slow_flags(self):
        args = build_parser().parse_args(
            ["report", "--request", "q-000001", "--slow-ms", "5.0"])
        assert args.request == "q-000001"
        assert args.slow_ms == 5.0

    def test_trace_flight_smoke_flag(self):
        args = build_parser().parse_args(["trace", "--flight-smoke"])
        assert args.flight_smoke

    def test_slo_check_passes_on_committed_file(self, capsys, tmp_path):
        slow = tmp_path / "slow.jsonl"
        metrics = tmp_path / "metrics.txt"
        assert main(["slo-check", "--graph", "ci-ws", "--queries", "4",
                     "--slow-log-out", str(slow),
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "SLO check (registry): PASS" in out
        assert slow.exists()
        text = metrics.read_text()
        assert "repro_slo_query_latency_ok 1" in text
        assert text.rstrip().endswith("# EOF")

    def test_slo_check_injected_breach_exits_1(self, capsys):
        assert main(["slo-check", "--graph", "ci-ws", "--queries", "4",
                     "--inject-latency-ms", "10000"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_slo_check_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["slo-check", str(tmp_path / "nope.toml")]) == 2

    def test_slo_check_summary_mode(self, capsys, tmp_path):
        import json

        summary = tmp_path / "summary.json"
        summary.write_text(json.dumps({"histograms": {
            "service.query_ms": {"count": 8, "p50": 1.0, "p90": 2.0, "p99": 3.0},
        }}))
        assert main(["slo-check", "--summary", str(summary)]) == 0
        out = capsys.readouterr().out
        assert "SLO check (summary): PASS" in out

    def test_report_filters_by_request(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["trace", "ci-ws", "--queries", "2",
                     "--out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", str(trace),
                     "--request", "q-000002"]) == 0
        out = capsys.readouterr().out
        assert "request q-000002" in out

    def test_report_renders_slow_query_section(self, capsys):
        assert main(["report", "ci-ws", "--stepper", "delta",
                     "--queries", "2", "--slow-ms", "0"]) == 0
        out = capsys.readouterr().out
        assert "## Slow queries" in out
        assert "q-000001" in out

"""Unit tests for the CLI (argument parsing + command handlers)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig3_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.suite == "ci"
        assert args.repeats == 3

    def test_fig4_flags(self):
        args = build_parser().parse_args(["fig4", "--real", "--threads", "2", "4", "8"])
        assert args.real
        assert args.threads == [2, 4, 8]

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "ci-ws", "--method", "capi", "--delta", "2.0"])
        assert args.graph == "ci-ws"
        assert args.method == "capi"
        assert args.delta == 2.0

    def test_query_arguments(self):
        args = build_parser().parse_args(["query", "ci-ws", "--source", "3", "--target", "9"])
        assert args.graph == "ci-ws"
        assert (args.source, args.target) == (3, 9)
        assert args.repeat == 2

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.suite == "ci"
        assert args.queries == 64


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "ci-ws", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "reached" in out
        assert "verified" in out

    def test_run_command_weighted(self, capsys):
        assert main(["run", "ci-ws", "--weights", "uniform", "--method", "fused"]) == 0
        assert "method" in capsys.readouterr().out

    def test_suite_command(self, capsys):
        assert main(["suite", "--suite", "ci"]) == 0
        out = capsys.readouterr().out
        assert "ci-ws" in out
        assert "|V|" in out

    def test_translate_command(self, capsys):
        assert main(["translate"]) == 0
        out = capsys.readouterr().out
        assert "fused_filter" in out
        assert "unfused" in out

    def test_query_point(self, capsys):
        assert main(["query", "ci-ws", "--target", "40"]) == 0
        out = capsys.readouterr().out
        assert "batch solve" in out
        assert "cache" in out  # the repeat is served from cache

    def test_query_one_to_many(self, capsys):
        assert main(["query", "ci-ws", "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "reached" in out

    def test_query_with_landmarks(self, capsys):
        assert main(["query", "ci-ws", "--target", "40", "--landmarks", "3"]) == 0
        assert "landmark bounds" in capsys.readouterr().out

    def test_serve_bench_tiny(self, capsys, monkeypatch):
        import repro.bench.workloads as wl

        monkeypatch.setattr(
            "repro.bench.registry.suite_workloads",
            lambda suite=None, **kw: [wl.workload_for("ci-ws")],
        )
        assert main(["serve-bench", "--queries", "8", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "service_qps" in out
        assert "verified bit-identical" in out

    def test_profile_command_tiny(self, capsys, monkeypatch):
        # shrink the suite to one graph to keep the test fast
        import repro.bench.workloads as wl

        monkeypatch.setattr(
            "repro.bench.registry.suite_workloads",
            lambda suite=None, **kw: [wl.workload_for("ci-ws")],
        )
        assert main(["profile", "--suite", "ci"]) == 0
        assert "35-40%" in capsys.readouterr().out

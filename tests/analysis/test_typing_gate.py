"""The mypy --strict gate over the contract-bearing core modules.

The gate targets (``repro.kernels``, ``repro.obs``,
``repro.stepping.base``, ``repro.shard.exchange``, ``repro.faults``)
carry the zero-alloc, telemetry, spec, transport, and fault-recovery
contracts the rest of the repo builds on; ``mypy.ini`` pins the
configuration and CI runs the same invocation.  mypy itself is not
baked into the offline image, so the strict run skips locally when it
is unavailable — the marker/config tests always run.
"""

import configparser

import pytest

from repro.analysis.lint import repo_paths

GATE_TARGETS = (
    "src/repro/kernels",
    "src/repro/obs",
    "src/repro/stepping/base.py",
    "src/repro/shard/exchange.py",
    "src/repro/faults",
)


class TestGateArtifacts:
    def test_py_typed_marker_shipped(self):
        root, pkg, _ = repo_paths()
        assert (pkg / "py.typed").is_file()
        # and setup.py actually packages it
        assert 'package_data={"repro": ["py.typed"]}' in (root / "setup.py").read_text()

    def test_mypy_config_pins_strict_gate(self):
        root, _, _ = repo_paths()
        cfg = configparser.ConfigParser()
        cfg.read(root / "mypy.ini")
        assert cfg.getboolean("mypy", "strict")
        assert cfg.get("mypy", "mypy_path") == "src"
        # the non-gate subsystems stay explicitly out of scope
        for skipped in ("mypy-repro.graphs.*", "mypy-repro.sssp.*", "mypy-repro.parallel.*"):
            assert cfg.getboolean(skipped, "ignore_errors")

    def test_gate_targets_exist(self):
        root, _, _ = repo_paths()
        for target in GATE_TARGETS:
            assert (root / target).exists(), target


class TestStrictRun:
    def test_gate_modules_are_strict_clean(self):
        mypy_api = pytest.importorskip(
            "mypy.api", reason="mypy not installed in this environment; CI runs the gate"
        )
        root, _, _ = repo_paths()
        stdout, stderr, status = mypy_api.run([
            "--config-file", str(root / "mypy.ini"),
            *(str(root / t) for t in GATE_TARGETS),
        ])
        assert status == 0, f"mypy --strict gate failed:\n{stdout}\n{stderr}"

"""The write-set race harness: every registered sharded configuration must
hold the ownership contract, and an intentionally-broken stepper must be
caught with the shard pair, superstep, and vertices named."""

import numpy as np
import pytest

from repro.analysis import (
    RaceViolation,
    WriteTrackingTransport,
    check_sharded_run,
)
from repro.graphs.graph import Graph
from repro.shard.exchange import TRANSPORTS, Transport, make_transport
from repro.shard.partition import PARTITIONERS
from repro.shard.stepper import ShardedDeltaStepper, sharded_view
from repro.sssp import dijkstra

SHARD_COUNTS = (1, 2, 3)


@pytest.fixture(scope="module")
def harness_graph():
    """A graph big enough for real multi-superstep traffic on 3 shards."""
    rng = np.random.default_rng(7)
    m = 900
    src = rng.integers(0, 150, size=m)
    dst = rng.integers(0, 150, size=m)
    w = rng.uniform(0.1, 2.0, size=m)
    return Graph.from_edges(src, dst, w, n=150, name="race150")


class TestContractHolds:
    @pytest.mark.parametrize("transport", sorted(TRANSPORTS))
    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_every_registered_config(self, harness_graph, num_shards,
                                     partitioner, transport):
        report = check_sharded_run(
            harness_graph, 0, num_shards=num_shards,
            partitioner=partitioner, transport=transport,
        )
        assert report.ok, report.render()
        assert report.supersteps > 0 and report.writes_checked > 0
        # the tracker must observe, never perturb: the tracked solve
        # still lands on the exact Dijkstra fixed point
        assert np.array_equal(
            report.distances, dijkstra(harness_graph, 0).distances
        )
        assert "ownership contract held" in report.render()

    def test_kernel_pins_also_hold(self, harness_graph):
        for kernel in ("argsort", "scatter"):
            report = check_sharded_run(harness_graph, 0, num_shards=3, kernel=kernel)
            assert report.ok, report.render()

    def test_diamond_smoke(self, diamond_graph):
        report = check_sharded_run(diamond_graph, 0, num_shards=2)
        assert report.ok
        assert np.array_equal(report.distances, [0.0, 2.0, 5.0, 6.0])


class _Saboteur(Transport):
    """Wraps the tracked transport and makes shard 0's step scribble one
    foreign vertex directly into ``dist`` — exactly the write the
    ownership contract forbids."""

    name = "saboteur"

    def __init__(self, inner, dist, victim):
        self.inner = inner
        self.dist = dist
        self.victim = victim
        self.fired = False

    def run(self, fns):
        def scribble(step=fns[0]):
            out = step()
            if not self.fired:
                self.fired = True
                self.dist[self.victim] = 0.0
            return out

        return self.inner.run([scribble, *fns[1:]])


class ScribblingStepper(ShardedDeltaStepper):
    """The intentionally-broken fixture: a conforming sharded solve whose
    shard 0 writes a vertex owned by shard 1, once."""

    def resolve(self, graph, dist, active, **kw):
        sg = kw["sharded"]
        foreign = np.flatnonzero(sg.owner == 1)
        self.victim = int(foreign[-1])
        kw["transport"] = _Saboteur(kw["transport"], dist, self.victim)
        return super().resolve(graph, dist, active, **kw)


class TestBrokenStepperIsCaught:
    def test_foreign_write_flagged_with_details(self, harness_graph):
        stepper = ScribblingStepper()
        report = check_sharded_run(
            harness_graph, 0, num_shards=2, stepper=stepper
        )
        assert not report.ok
        hits = [v for v in report.violations if v.kind == "foreign-write"
                and stepper.victim in v.vertices]
        assert hits, report.render()
        v = hits[0]
        assert v.shards == (0, 1)  # writer, owner
        assert v.superstep == 0  # the saboteur fires on the first superstep
        assert v.num_vertices >= 1
        rendered = report.render()
        assert "violation" in rendered and str(stepper.victim) in rendered
        assert f"shard {v.shards[0]} wrote" in v.describe()

    def test_conforming_stepper_instance_stays_clean(self, harness_graph):
        report = check_sharded_run(
            harness_graph, 0, num_shards=2, stepper=ShardedDeltaStepper()
        )
        assert report.ok


class TestWriteTrackingTransport:
    """Unit-level attribution: hand-built step functions, known writes."""

    def _tracker(self, n=8, num_shards=2):
        dist = np.full(n, np.inf)
        owner = (np.arange(n) * num_shards // n).astype(np.int64)
        tracker = WriteTrackingTransport(make_transport("inline"), dist, owner)
        return tracker, dist, owner

    def test_owned_writes_pass(self):
        tracker, dist, owner = self._tracker()

        def shard0():
            dist[1] = 1.0

        def shard1():
            dist[6] = 2.0

        tracker.run([shard0, shard1])
        assert tracker.violations == []
        assert tracker.supersteps == 1 and tracker.writes_checked == 2
        assert [w.tolist() for w in tracker.write_sets[0]] == [[1], [6]]

    def test_foreign_write_attributed_to_writer(self):
        tracker, dist, owner = self._tracker()

        def shard0():
            dist[6] = 3.0  # owned by shard 1

        tracker.run([shard0, lambda: None])
        (v,) = tracker.violations
        assert v.kind == "foreign-write"
        assert v.shards == (0, 1) and v.vertices == (6,)

    def test_overlapping_writes_flagged_pairwise(self):
        tracker, dist, owner = self._tracker()

        def shard0():
            dist[2] = 5.0

        def shard1():
            dist[2] = 3.0  # same vertex, same superstep

        tracker.run([shard0, shard1])
        kinds = sorted(v.kind for v in tracker.violations)
        # shard 1 doesn't own vertex 2, so both the foreign write and the
        # pairwise overlap are reported
        assert kinds == ["foreign-write", "overlap"]
        overlap = [v for v in tracker.violations if v.kind == "overlap"][0]
        assert overlap.shards == (0, 1) and overlap.vertices == (2,)
        assert "both wrote" in overlap.describe()

    def test_violation_listing_truncates(self):
        tracker, dist, owner = self._tracker(n=40)

        def shard0():
            dist[20:40] = 1.0  # 20 foreign writes, listed capped at 8

        tracker.run([shard0, lambda: None])
        (v,) = tracker.violations
        assert v.num_vertices == 20 and len(v.vertices) == 8
        assert "… (20 total)" in v.describe()

    def test_results_pass_through(self):
        tracker, dist, owner = self._tracker()
        out = tracker.run([lambda: "a", lambda: "b"])
        assert out == ["a", "b"]


class TestWorkspaceInvariantFoldedIn:
    def test_harness_runs_workspace_check(self, harness_graph):
        """The race harness asserts the PR 5 steady-state invariant too:
        a corrupted arena makes the next check_sharded_run raise."""
        sg = sharded_view(harness_graph, 2, "contiguous")
        check_sharded_run(harness_graph, 0, num_shards=2)  # builds arenas
        ws = sg.meta["_relax_workspaces"][0]
        # corrupt a key shard 0's kernel never relaxes (a shard-1-owned
        # vertex), so the scatter path's own touched-reset can't heal it
        victim = int(np.flatnonzero(sg.owner == 1)[-1])
        ws.touched[victim] = True
        try:
            with pytest.raises(AssertionError, match="touched not all-False"):
                check_sharded_run(harness_graph, 0, num_shards=2)
        finally:
            ws.touched[victim] = False


class TestRaceViolationRendering:
    def test_describe_both_kinds(self):
        fw = RaceViolation("foreign-write", 3, (1, 2), (7, 9), 2)
        ov = RaceViolation("overlap", 1, (0, 1), (4,), 1)
        assert "superstep 3: shard 1 wrote 2 vertex(es) owned by shard 2" in fw.describe()
        assert "shards 0 and 1 both wrote" in ov.describe()

"""Per-rule lint tests: each rule catches a minimal violating snippet and
passes the conforming twin — plus the repo-wide clean gate."""

import json
import textwrap

import pytest

from repro.analysis import RULES, format_findings, run_lint
from repro.analysis.lint import Finding, repo_paths


def _tree(tmp_path, files):
    """Materialize a synthetic ``src/repro`` tree and return its root."""
    for rel, source in files.items():
        path = tmp_path / "src" / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    (tmp_path / "tests").mkdir(exist_ok=True)
    return tmp_path


def _on(findings, rel):
    """The findings landing in one synthetic file."""
    return [f for f in findings if f.path.endswith(rel)]


class TestHotLoopAlloc:
    def test_banned_np_allocators_caught(self, tmp_path):
        root = _tree(tmp_path, {"kernels/mod.py": """\
            import numpy as np

            # repro: hot
            def relax(xs):
                buf = np.zeros(8)
                idx = np.arange(len(xs))
                return np.concatenate([buf, idx])
            """})
        found = _on(run_lint(select=["hot-loop-alloc"], root=root), "kernels/mod.py")
        assert {f.line for f in found} == {5, 6, 7}
        assert all("allocates in a hot block" in f.message for f in found)

    def test_comprehensions_and_concat_caught(self, tmp_path):
        root = _tree(tmp_path, {"kernels/mod.py": """\
            # repro: hot
            def relax(xs, ys):
                squares = [x * x for x in xs]
                merged = squares + list(ys)
                return {x: 1 for x in merged}
            """})
        found = _on(run_lint(select=["hot-loop-alloc"], root=root), "kernels/mod.py")
        kinds = sorted(f.message.split(" allocates")[0] for f in found)
        assert kinds == ["`+`-concatenation", "dict comprehension", "list comprehension"]

    def test_conforming_hot_block_passes(self, tmp_path):
        root = _tree(tmp_path, {"kernels/mod.py": """\
            import numpy as np

            _EMPTY = np.empty(0, dtype=np.int64)

            # repro: hot
            def relax(ws, xs, dist):
                if not len(xs):
                    return _EMPTY
                flat, lengths, buf = ws.wave_buffers(len(xs))
                np.minimum(dist, buf[: len(xs)], out=dist)
                return flat
            """})
        assert _on(run_lint(select=["hot-loop-alloc"], root=root), "kernels/mod.py") == []

    def test_alloc_ok_suppresses_own_and_next_line(self, tmp_path):
        root = _tree(tmp_path, {"kernels/mod.py": """\
            import numpy as np

            # repro: hot
            def relax(n):
                a = np.zeros(n)  # repro: alloc-ok — documented fallback
                # repro: alloc-ok — regrowth, amortized away
                b = np.arange(n)
                return a, b
            """})
        assert _on(run_lint(select=["hot-loop-alloc"], root=root), "kernels/mod.py") == []

    def test_code_outside_markers_is_free(self, tmp_path):
        root = _tree(tmp_path, {"kernels/mod.py": """\
            import numpy as np

            # repro: hot
            def relax(ws):
                return ws.pop()

            def setup(n):
                return np.zeros(n)  # cold path: allocation is fine
            """})
        assert _on(run_lint(select=["hot-loop-alloc"], root=root), "kernels/mod.py") == []

    def test_relax_workspace_class_is_whitelisted(self, tmp_path):
        root = _tree(tmp_path, {"kernels/mod.py": """\
            import numpy as np

            # repro: hot
            class RelaxWorkspace:
                def grow(self, n):
                    self.buf = np.empty(n)
            """})
        assert _on(run_lint(select=["hot-loop-alloc"], root=root), "kernels/mod.py") == []

    def test_hot_files_must_carry_markers(self, tmp_path):
        root = _tree(tmp_path, {"service/batch.py": """\
            def relax():
                return 0
            """})
        found = run_lint(select=["hot-loop-alloc"], root=root)
        # the marker-less known-hot file is flagged, so the contract
        # cannot rot away by deleting comments
        assert any(f.path.endswith("service/batch.py")
                   and "no `# repro: hot` markers" in f.message for f in found)

    def test_repo_hot_files_all_marked(self):
        found = run_lint(select=["hot-loop-alloc"])
        assert found == [], format_findings(found)


class TestRecorderGuard:
    def test_unguarded_call_caught(self, tmp_path):
        root = _tree(tmp_path, {"sssp/mod.py": """\
            def solve(graph, recorder=None):
                recorder.inc("solves")
                return graph
            """})
        found = _on(run_lint(select=["recorder-guard"], root=root), "sssp/mod.py")
        assert len(found) == 1 and "unguarded `recorder.inc(...)`" in found[0].message

    def test_guard_idioms_pass(self, tmp_path):
        root = _tree(tmp_path, {"sssp/mod.py": """\
            def solve(graph, recorder=None, rec=None):
                if recorder:
                    recorder.inc("solves")
                if rec is not None:
                    with rec.span("solve"):
                        pass
                span = rec.span("phase") if rec else None
                rec and rec.observe("lat", 1.0)
                if recorder is None:
                    return graph
                recorder.set_gauge("depth", 2)
                return graph

            def flush(self, metrics=None):
                if not metrics:
                    return 0
                metrics.observe("flush", 1.0)
                return 1

            class S:
                def step(self):
                    if self._recorder is not None:
                        self._recorder.instant("step")
            """})
        assert _on(run_lint(select=["recorder-guard"], root=root), "sssp/mod.py") == []

    def test_compound_early_return_guards(self, tmp_path):
        # `if rec is None or log is None: return` — the test being falsy
        # implies rec is bound, so everything after it is guarded
        root = _tree(tmp_path, {"sssp/mod.py": """\
            def log_slow(rec=None, log=None):
                if rec is None or log is None:
                    return
                rec.inc("slow", 1)
                rec.observe("lat", 2.0)
            """})
        assert _on(run_lint(select=["recorder-guard"], root=root), "sssp/mod.py") == []

    def test_compound_early_return_without_receiver_still_caught(self, tmp_path):
        root = _tree(tmp_path, {"sssp/mod.py": """\
            def log_slow(rec=None, log=None):
                if log is None or log.closed:
                    return
                rec.inc("slow", 1)
            """})
        found = _on(run_lint(select=["recorder-guard"], root=root), "sssp/mod.py")
        assert len(found) == 1 and "rec.inc" in found[0].message

    def test_self_attribute_receiver_caught(self, tmp_path):
        root = _tree(tmp_path, {"service/mod.py": """\
            class S:
                def step(self):
                    self._metrics.observe("lat", 1.0)
            """})
        found = _on(run_lint(select=["recorder-guard"], root=root), "service/mod.py")
        assert len(found) == 1 and "_metrics.observe" in found[0].message

    def test_unrelated_receivers_ignored(self, tmp_path):
        root = _tree(tmp_path, {"sssp/mod.py": """\
            def solve(tracer):
                tracer.span("x")       # not a recorder-ish name
                histogram.observe(1.0)  # nor this
            """})
        assert _on(run_lint(select=["recorder-guard"], root=root), "sssp/mod.py") == []


class TestExportHygiene:
    def test_missing_all_in_init_caught(self, tmp_path):
        root = _tree(tmp_path, {"pkg/__init__.py": """\
            from .core import thing
            """})
        found = _on(run_lint(select=["export-hygiene"], root=root), "pkg/__init__.py")
        assert any("declares no __all__" in f.message for f in found)

    def test_unbound_and_duplicate_exports_caught(self, tmp_path):
        root = _tree(tmp_path, {"pkg/__init__.py": """\
            __all__ = ["solve", "solve", "ghost"]

            def solve():
                return 1
            """})
        messages = [f.message for f in
                    _on(run_lint(select=["export-hygiene"], root=root), "pkg/__init__.py")]
        assert any("lists 'solve' twice" in m for m in messages)
        assert any("exports 'ghost' but the module never binds it" in m for m in messages)

    def test_reexport_missing_from_all_caught(self, tmp_path):
        root = _tree(tmp_path, {
            "pkg/__init__.py": """\
                from .core import solve, helper

                __all__ = ["solve"]
                """,
            "pkg/core.py": """\
                def solve():
                    return 1

                def helper():
                    return 2
                """,
        })
        found = _on(run_lint(select=["export-hygiene"], root=root), "pkg/__init__.py")
        assert len(found) == 1
        assert "'helper' is re-exported from .core but missing from __all__" in found[0].message

    def test_lazy_getattr_exports_pass(self, tmp_path):
        root = _tree(tmp_path, {"pkg/__init__.py": """\
            __all__ = ["core", "extras"]

            def __getattr__(name):
                import importlib

                return importlib.import_module(f".{name}", __name__)
            """})
        assert _on(run_lint(select=["export-hygiene"], root=root), "pkg/__init__.py") == []

    def test_private_and_star_names_exempt(self, tmp_path):
        root = _tree(tmp_path, {"pkg/__init__.py": """\
            from .core import _internal, solve

            __all__ = ["solve"]
            """})
        assert _on(run_lint(select=["export-hygiene"], root=root), "pkg/__init__.py") == []


class TestNoDeprecatedImport:
    def test_absolute_and_module_imports_caught(self, tmp_path):
        root = _tree(tmp_path, {"bench/mod.py": """\
            import repro.sssp.instrument
            from repro.sssp.instrument import StageTimer
            """})
        found = _on(run_lint(select=["no-deprecated-import"], root=root), "bench/mod.py")
        assert len(found) == 2
        assert all("repro.obs.stage" in f.message for f in found)

    def test_relative_import_within_sssp_caught(self, tmp_path):
        root = _tree(tmp_path, {"sssp/mod.py": """\
            from .instrument import NO_TIMER
            """})
        found = _on(run_lint(select=["no-deprecated-import"], root=root), "sssp/mod.py")
        assert len(found) == 1

    def test_alias_module_itself_and_new_home_pass(self, tmp_path):
        root = _tree(tmp_path, {
            "sssp/instrument.py": """\
                from ..obs.stage import NO_TIMER, NullTimer, StageTimer
                """,
            "sssp/mod.py": """\
                from ..obs.stage import StageTimer
                from repro.obs import NO_TIMER
                """,
        })
        assert run_lint(select=["no-deprecated-import"], root=root) == []


class TestRegistrySpec:
    def test_repo_registries_and_specs_agree(self):
        found = run_lint(select=["registry-spec"])
        assert found == [], format_findings(found)

    def test_unparsable_registry_key_caught(self):
        from repro.stepping import STEPPERS

        STEPPERS["bad key("] = STEPPERS["delta"]
        try:
            found = run_lint(select=["registry-spec"])
        finally:
            del STEPPERS["bad key("]
        assert any("'bad key(' is not expressible" in f.message for f in found)

    def test_untested_registry_entry_caught(self):
        from repro.shard.partition import PARTITIONERS

        # built dynamically: a quoted literal here would itself count as
        # the test reference the rule scans for
        key = "zz-" + "unref"
        PARTITIONERS[key] = PARTITIONERS["contiguous"]
        try:
            found = run_lint(select=["registry-spec"])
        finally:
            del PARTITIONERS[key]
        assert any(f"{key!r} has no test referencing" in f.message
                   for f in found)

    def test_bad_candidate_knob_values_caught(self):
        from repro.analysis.lint import _spec_param_findings
        from repro.kernels import KERNELS
        from repro.shard.exchange import TRANSPORTS
        from repro.shard.partition import PARTITIONERS

        findings = []
        _spec_param_findings(
            "x.py", 1, "delta(kernel=warp)", {"kernel": "warp"},
            KERNELS, PARTITIONERS, TRANSPORTS, findings)
        _spec_param_findings(
            "x.py", 2, "sharded(partitioner=metis)", {"partitioner": "metis"},
            KERNELS, PARTITIONERS, TRANSPORTS, findings)
        _spec_param_findings(
            "x.py", 3, "sharded(transport=mpi:4)", {"transport": "mpi:4"},
            KERNELS, PARTITIONERS, TRANSPORTS, findings)
        assert [f.line for f in findings] == [1, 2, 3]
        assert "unregistered kernel 'warp'" in findings[0].message
        assert "unregistered partitioner 'metis'" in findings[1].message
        assert "unregistered transport 'mpi:4'" in findings[2].message

    def test_transport_thread_count_suffix_allowed(self):
        from repro.analysis.lint import _spec_param_findings
        from repro.kernels import KERNELS
        from repro.shard.exchange import TRANSPORTS
        from repro.shard.partition import PARTITIONERS

        findings = []
        _spec_param_findings(
            "x.py", 1, "sharded(transport=threads:4)", {"transport": "threads:4"},
            KERNELS, PARTITIONERS, TRANSPORTS, findings)
        assert findings == []


class TestDriver:
    def test_whole_repo_is_clean(self):
        found = run_lint()
        assert found == [], format_findings(found)

    def test_unknown_rule_enumerates_registry(self):
        with pytest.raises(ValueError, match="hot-loop-alloc"):
            run_lint(select=["no-such-rule"])

    def test_findings_sorted_and_rendered(self):
        f = Finding("hot-loop-alloc", "src/repro/x.py", 3, "boom")
        assert f.render() == "src/repro/x.py:3: [hot-loop-alloc] boom"
        assert f.as_dict()["line"] == 3

    def test_format_text_and_json(self):
        f = Finding("recorder-guard", "a.py", 1, "msg")
        text = format_findings([f])
        assert "a.py:1: [recorder-guard] msg" in text and "1 finding(s)" in text
        assert format_findings([]) == "repro lint: clean (0 findings)"
        payload = json.loads(format_findings([f], fmt="json"))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "recorder-guard"
        with pytest.raises(ValueError, match="known: text, json"):
            format_findings([], fmt="yaml")

    def test_rule_registry_matches_descriptions(self):
        assert set(RULES) == {
            "hot-loop-alloc", "recorder-guard", "registry-spec",
            "export-hygiene", "no-deprecated-import",
        }
        assert all(isinstance(v, str) and v for v in RULES.values())

    def test_repo_paths_resolve(self):
        root, pkg, tests = repo_paths()
        assert (pkg / "analysis" / "lint.py").is_file()
        assert pkg.parent.parent == root and tests.name == "tests"

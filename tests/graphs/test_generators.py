"""Unit + property tests for the graph generators (dataset substitutes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gen
from repro.graphs.validation import validate_graph


class TestDeterministicFamilies:
    def test_path(self):
        g = gen.path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 8  # 4 undirected edges stored twice
        validate_graph(g)

    def test_cycle(self):
        g = gen.cycle_graph(6)
        assert np.all(g.out_degree() == 2)
        validate_graph(g)

    def test_star(self):
        g = gen.star_graph(7)
        assert g.out_degree()[0] == 6
        assert np.all(g.out_degree()[1:] == 1)
        validate_graph(g)

    def test_complete(self):
        g = gen.complete_graph(5)
        assert np.all(g.out_degree() == 4)
        validate_graph(g)

    def test_grid(self):
        g = gen.grid_2d(3, 4)
        assert g.num_vertices == 12
        # corner degree 2, edge degree 3, interior degree 4
        assert sorted(np.unique(g.out_degree()).tolist()) == [2, 3, 4]
        validate_graph(g)


class TestRandomFamilies:
    def test_erdos_renyi_scale(self):
        g = gen.erdos_renyi(500, avg_degree=8, seed=1)
        assert g.num_vertices == 500
        # ~n*avg_degree stored half-edges, minus collision/self-loop losses
        assert 0.8 * 500 * 8 <= g.num_edges <= 500 * 8
        validate_graph(g)

    def test_erdos_renyi_deterministic(self):
        a = gen.erdos_renyi(100, seed=3)
        b = gen.erdos_renyi(100, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_erdos_renyi_seeds_differ(self):
        a = gen.erdos_renyi(100, seed=3)
        b = gen.erdos_renyi(100, seed=4)
        assert not np.array_equal(a.indices, b.indices)

    def test_barabasi_albert_power_law_head(self):
        g = gen.barabasi_albert(800, m_per_node=4, seed=2)
        deg = g.out_degree()
        assert deg.max() > 4 * deg.mean()  # heavy tail
        validate_graph(g)

    def test_barabasi_albert_tiny_n_is_clique(self):
        g = gen.barabasi_albert(3, m_per_node=4)
        assert np.all(g.out_degree() == 2)

    def test_watts_strogatz_degree(self):
        g = gen.watts_strogatz(200, k=6, beta=0.0, seed=5)
        assert np.all(g.out_degree() == 6)
        validate_graph(g)

    def test_watts_strogatz_rewiring_changes_structure(self):
        a = gen.watts_strogatz(200, k=6, beta=0.0, seed=5)
        b = gen.watts_strogatz(200, k=6, beta=0.5, seed=5)
        assert not np.array_equal(a.indices, b.indices)

    def test_rmat_size(self):
        g = gen.rmat(8, edge_factor=8, seed=6)
        assert g.num_vertices == 256
        validate_graph(g)

    def test_rmat_skew(self):
        g = gen.rmat(10, edge_factor=8, seed=7)
        deg = g.out_degree()
        assert deg.max() > 8 * max(deg.mean(), 1)

    def test_rmat_invalid_probabilities(self):
        with pytest.raises(ValueError):
            gen.rmat(4, a=0.5, b=0.4, c=0.3)

    def test_road_network(self):
        g = gen.road_network(20, 20, seed=8)
        assert g.num_vertices == 400
        validate_graph(g)
        # near-planar: max degree stays small
        assert g.out_degree().max() <= 8


@given(
    n=st.integers(2, 60),
    seed=st.integers(0, 5),
    family=st.sampled_from(["er", "ws", "ba"]),
)
@settings(max_examples=30, deadline=None)
def test_generators_always_produce_valid_graphs(n, seed, family):
    if family == "er":
        g = gen.erdos_renyi(n, avg_degree=4, seed=seed)
    elif family == "ws":
        g = gen.watts_strogatz(n, k=4, beta=0.2, seed=seed)
    else:
        g = gen.barabasi_albert(n, m_per_node=3, seed=seed)
    validate_graph(g)
    assert g.num_vertices == n

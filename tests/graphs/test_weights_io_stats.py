"""Unit tests for weights, file IO, statistics, datasets, validation."""

import numpy as np
import pytest

from repro.graphs import datasets, generators as gen
from repro.graphs.graph import Graph
from repro.graphs.io import (
    read_matrix_market,
    read_snap_edgelist,
    write_matrix_market,
    write_snap_edgelist,
)
from repro.graphs.stats import bfs_levels, connected_components, graph_stats
from repro.graphs.validation import GraphInvariantError, validate_graph
from repro.graphs.weights import assign_weights, hash_to_unit, unit_weights


class TestWeights:
    def test_unit_weights(self):
        g = gen.erdos_renyi(50, seed=1)
        gw = assign_weights(g, "uniform", 0.1, 1.0)
        back = unit_weights(gw)
        assert back.has_unit_weights()

    def test_uniform_range(self):
        g = gen.erdos_renyi(200, seed=1)
        gw = assign_weights(g, "uniform", low=0.25, high=0.75)
        assert gw.weights.min() >= 0.25
        assert gw.weights.max() < 0.75

    def test_undirected_symmetry(self):
        g = gen.watts_strogatz(100, k=4, beta=0.3, seed=2)
        gw = assign_weights(g, "uniform", 0.1, 1.0, seed=9)
        validate_graph(gw)  # includes the weight-symmetry check

    def test_integer_weights(self):
        g = gen.erdos_renyi(80, seed=1)
        gw = assign_weights(g, "integer", low=1, high=10)
        assert np.all(gw.weights == np.round(gw.weights))
        assert gw.weights.min() >= 1
        assert gw.weights.max() <= 10

    def test_exponential_positive(self):
        g = gen.erdos_renyi(80, seed=1)
        gw = assign_weights(g, "exponential", 0.1, 1.0)
        assert np.all(gw.weights > 0)

    def test_seed_changes_weights(self):
        g = gen.erdos_renyi(80, seed=1)
        a = assign_weights(g, "uniform", seed=0)
        b = assign_weights(g, "uniform", seed=1)
        assert not np.array_equal(a.weights, b.weights)

    def test_unknown_distribution(self):
        g = gen.erdos_renyi(10, seed=1)
        with pytest.raises(ValueError):
            assign_weights(g, "cauchy")

    def test_hash_to_unit_deterministic(self):
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(hash_to_unit(keys, 3), hash_to_unit(keys, 3))
        assert not np.array_equal(hash_to_unit(keys, 3), hash_to_unit(keys, 4))
        u = hash_to_unit(keys, 0)
        assert u.min() >= 0.0 and u.max() < 1.0


class TestSnapIO:
    def test_roundtrip_directed(self, tmp_path, diamond_graph):
        path = tmp_path / "g.txt"
        write_snap_edgelist(diamond_graph, path)
        g2 = read_snap_edgelist(path, directed=True)
        assert g2.num_vertices == 4
        assert np.allclose(np.sort(g2.weights), np.sort(diamond_graph.weights))

    def test_roundtrip_undirected(self, tmp_path):
        g = gen.watts_strogatz(40, k=4, beta=0.2, seed=3)
        path = tmp_path / "g.txt"
        write_snap_edgelist(g, path)
        g2 = read_snap_edgelist(path, directed=False)
        assert g2.num_edges == g.num_edges

    def test_gzip_support(self, tmp_path, diamond_graph):
        path = tmp_path / "g.txt.gz"
        write_snap_edgelist(diamond_graph, path)
        g2 = read_snap_edgelist(path, directed=True)
        assert g2.num_vertices == 4

    def test_comments_and_relabel(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% other comment\n10 20\n20 30\n")
        g = read_snap_edgelist(path, directed=True, relabel=True)
        assert g.num_vertices == 3
        g_raw = read_snap_edgelist(path, directed=True, relabel=False)
        assert g_raw.num_vertices == 31

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = read_snap_edgelist(path)
        assert g.num_vertices == 0


class TestMatrixMarketIO:
    def test_roundtrip_general(self, tmp_path, diamond_graph):
        path = tmp_path / "g.mtx"
        write_matrix_market(diamond_graph, path)
        g2 = read_matrix_market(path)
        assert g2.num_vertices == 4
        assert g2.num_edges == diamond_graph.num_edges

    def test_roundtrip_symmetric(self, tmp_path):
        g = gen.grid_2d(4, 4)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        g2 = read_matrix_market(path)
        assert g2.num_edges == g.num_edges  # symmetric expansion restores both

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n")
        g = read_matrix_market(path)
        assert g.num_edges == 2
        assert g.has_unit_weights()

    def test_rejects_non_mm(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("hello\n1 1 0\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_rectangular(self, tmp_path):
        path = tmp_path / "rect.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)


class TestStats:
    def test_bfs_levels_grid(self, grid_graph):
        lv = bfs_levels(grid_graph, 0)
        # manhattan distance on the mesh
        assert lv[0] == 0
        assert lv[7] == 7
        assert lv[63] == 14

    def test_bfs_unreachable(self):
        g = Graph.from_edges([0], [1], n=4)
        lv = bfs_levels(g, 0)
        assert lv.tolist() == [0, 1, -1, -1]

    def test_connected_components(self):
        g = Graph.from_edges([0, 2], [1, 3], n=5, directed=False)
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len(set(labels.tolist())) == 3

    def test_graph_stats_fields(self, grid_graph):
        s = graph_stats(grid_graph)
        assert s.num_vertices == 64
        assert s.num_components == 1
        assert s.unit_weights
        assert s.bfs_eccentricity_from_0 == 14
        assert "graph" in s.as_row()


class TestDatasets:
    def test_catalog_nonempty(self):
        assert len(datasets.catalog()) >= 10

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            datasets.load("no-such-graph")

    def test_load_is_cached_but_weights_are_fresh(self):
        a = datasets.load("grid-tiny")
        b = datasets.load("grid-tiny")
        assert np.array_equal(a.indices, b.indices)
        a.weights[:] = 5.0  # mutating one copy must not poison the cache
        c = datasets.load("grid-tiny")
        assert c.has_unit_weights()

    def test_weighted_load(self):
        g = datasets.load("grid-tiny", weights="uniform")
        assert not g.has_unit_weights()

    def test_suites_sorted_by_node_count(self):
        for kind in ("ci", "paper"):
            names = datasets.suite_names(kind)
            sizes = [datasets.load(n).num_vertices for n in names]
            assert sizes == sorted(sizes)

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            datasets.suite_names("nightly")

    def test_specs_carry_provenance(self):
        g = datasets.load("facebook-sim")
        assert "mimics" in g.meta


class TestValidation:
    def test_valid_graph_passes(self, diamond_graph):
        assert validate_graph(diamond_graph) is diamond_graph

    def test_detects_negative_weight(self):
        g = Graph.from_edges([0], [1], [1.0], n=2)
        g.weights[0] = -1.0
        with pytest.raises(GraphInvariantError):
            validate_graph(g)

    def test_detects_asymmetric_undirected(self):
        g = Graph.from_edges([0], [1], [1.0], n=2, directed=True)
        g.directed = False  # lie about symmetry
        with pytest.raises(GraphInvariantError):
            validate_graph(g)

    def test_detects_broken_indptr(self, diamond_graph):
        diamond_graph.indptr[-1] = 99
        with pytest.raises(GraphInvariantError):
            validate_graph(diamond_graph)

    def test_detects_self_loop(self):
        g = Graph.from_edges([0], [1], n=2)
        g.indices[0] = 0
        with pytest.raises(GraphInvariantError):
            validate_graph(g)

"""Unit tests for the Graph container."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestFromEdges:
    def test_basic_csr(self, diamond_graph):
        g = diamond_graph
        assert g.num_vertices == 4
        assert g.num_edges == 4
        tgts, wts = g.neighbors(0)
        assert tgts.tolist() == [1, 2]
        assert wts.tolist() == [2.0, 7.0]

    def test_default_unit_weights(self):
        g = Graph.from_edges([0], [1], n=2)
        assert g.weights.tolist() == [1.0]
        assert g.has_unit_weights()

    def test_infers_n(self):
        g = Graph.from_edges([0, 5], [3, 2])
        assert g.num_vertices == 6

    def test_undirected_symmetrizes(self):
        g = Graph.from_edges([0], [1], [4.0], n=2, directed=False)
        assert g.num_edges == 2
        assert g.neighbors(1)[0].tolist() == [0]

    def test_self_loops_removed(self):
        g = Graph.from_edges([0, 1], [0, 0], n=2)
        assert g.num_edges == 1

    def test_duplicate_edges_keep_min_weight(self):
        g = Graph.from_edges([0, 0], [1, 1], [5.0, 2.0], n=2)
        assert g.weights.tolist() == [2.0]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Graph.from_edges([0], [5], n=2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Graph.from_edges([0, 1], [1], n=2)
        with pytest.raises(ValueError):
            Graph.from_edges([0], [1], [1.0, 2.0], n=2)


class TestConversions:
    def test_to_matrix_roundtrip(self, diamond_graph):
        A = diamond_graph.to_matrix()
        assert A.shape == (4, 4)
        assert A.extract_element(0, 2) == 7.0
        g2 = Graph.from_matrix(A)
        assert np.array_equal(g2.indices, diamond_graph.indices)

    def test_to_edges_roundtrip(self, diamond_graph):
        src, dst, w = diamond_graph.to_edges()
        g2 = Graph.from_edges(src, dst, w, n=4)
        assert np.array_equal(g2.weights, diamond_graph.weights)

    def test_reverse(self, diamond_graph):
        r = diamond_graph.reverse()
        tgts, wts = r.neighbors(2)
        assert tgts.tolist() == [0, 1]
        assert sorted(wts.tolist()) == [3.0, 7.0]

    def test_csr_views(self, diamond_graph):
        indptr, indices, weights = diamond_graph.csr()
        assert indptr[-1] == len(indices) == len(weights)

    def test_with_weights(self, diamond_graph):
        g2 = diamond_graph.with_weights(np.full(4, 9.0))
        assert g2.max_weight == 9.0
        assert diamond_graph.max_weight == 7.0
        with pytest.raises(ValueError):
            diamond_graph.with_weights(np.ones(3))

    def test_from_matrix_requires_square(self):
        from repro.graphblas import FP64, Matrix

        with pytest.raises(ValueError):
            Graph.from_matrix(Matrix.new(FP64, 2, 3))


class TestProperties:
    def test_out_degree(self, diamond_graph):
        assert diamond_graph.out_degree().tolist() == [2, 1, 1, 0]

    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.max_weight == 0.0
        assert g.has_unit_weights()

    def test_weight_extremes(self, diamond_graph):
        assert diamond_graph.min_weight == 1.0
        assert diamond_graph.max_weight == 7.0

    def test_repr(self, diamond_graph):
        assert "diamond" in repr(diamond_graph)

"""Compatibility shim for offline environments.

``pip install -e .`` needs the ``wheel`` package to build modern editables;
on air-gapped machines without it, run either::

    python setup.py develop

or the dependency-free equivalent (what CI in this repo uses)::

    python -c "import site, pathlib; pathlib.Path(site.getsitepackages()[0], 'repro-editable.pth').write_text(str(pathlib.Path('src').resolve()) + '\\n')"
"""

from setuptools import find_packages, setup

setup(
    name="repro-sssp",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    entry_points={"console_scripts": ["repro-sssp=repro.cli:main"]},
)

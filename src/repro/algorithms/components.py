"""Connected components via min-label propagation.

The vertex-centric description — "every vertex repeatedly adopts the
smallest label among itself and its neighbours" — translates directly
with the paper's patterns: labels are a vector (§II.D), the neighbour
minimum is ``A (min.2nd) labels`` (§II.B; the SECOND multiplier ignores
edge weights and carries the neighbour's label, the same selection GBTL's
``MinSelect2ndSemiring`` provides), and convergence is a whole-vector
comparison.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import operations as ops
from ..graphblas.binaryop import MIN
from ..graphblas.semiring import MIN_SECOND
from ..graphblas.types import INT64
from ..graphblas.vector import Vector
from ..graphs.graph import Graph

__all__ = ["connected_components"]


def connected_components(graph: Graph, max_iterations: int | None = None) -> np.ndarray:
    """Component label per vertex (the minimum vertex id in its component).

    Treats edges as undirected (label flow uses both orientations).
    O(diameter) ``mxv`` rounds over ``(min, min)``.
    """
    n = graph.num_vertices
    A = graph.to_matrix()
    At = A.transpose()
    labels = Vector.from_coo(np.arange(n), np.arange(n), n, dtype=INT64)
    limit = max_iterations if max_iterations is not None else n + 1
    for _ in range(limit):
        nxt = Vector.new(INT64, n)
        # neighbour minimum, both edge orientations
        ops.mxv(nxt, MIN_SECOND, A, labels)
        ops.mxv(nxt, MIN_SECOND, At, labels, accum=MIN)
        # keep own label in the running minimum
        ops.ewise_add(nxt, MIN, nxt, labels)
        if nxt.isequal(labels):
            break
        labels = nxt
    return labels.to_dense(fill=0).astype(np.int64)

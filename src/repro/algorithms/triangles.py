"""Triangle counting and k-truss: the paper's edge-centric exemplar.

§II.C uses exactly this computation to motivate fill-in elimination:

    "the edge values in the adjacency matrix are the output of a series
     of linear algebra operations … S = AᵀA ∘ A"

Triangle counting reads the support matrix once; k-truss iterates it,
filtering out edges whose support drops below ``k - 2`` (the paper's
reference [14], Low et al.).  Both use the masked ``mxm`` push-down in
:func:`repro.graphblas.operations.mxm`.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import operations as ops
from ..graphblas.descriptor import STRUCTURE, TRANSPOSE0
from ..graphblas.indexunaryop import VALUEGE
from ..graphblas.matrix import Matrix
from ..graphblas.monoid import PLUS_MONOID
from ..graphblas.semiring import PLUS_PAIR
from ..graphblas.types import INT64
from ..graphs.graph import Graph

__all__ = ["triangle_count", "ktruss", "edge_support"]


def _pattern_matrix(graph: Graph) -> Matrix:
    """Adjacency pattern with unit values (weights are irrelevant here)."""
    A = graph.to_matrix()
    rows, cols, _ = A.to_coo()
    return Matrix.from_coo(rows, cols, np.ones(len(rows), dtype=np.int64), A.nrows, A.ncols)


def edge_support(graph: Graph) -> Matrix:
    """``S = AᵀA ∘ A``: per-edge triangle support (§II.C).

    Implemented as a masked ``mxm`` over ``PLUS_PAIR`` with ``A`` as a
    structural mask — the Hadamard fill-in elimination fused into the
    multiply, as real GraphBLAS libraries do.
    """
    A = _pattern_matrix(graph)
    S = Matrix.new(INT64, A.nrows, A.ncols)
    desc = STRUCTURE.transposing(0)
    ops.mxm(S, PLUS_PAIR, A, A, mask=A, desc=desc)
    return S


def triangle_count(graph: Graph) -> int:
    """Number of triangles (undirected; each triangle counted once).

    For a symmetric pattern, ``Σ S / 6`` — each triangle contributes one
    support unit to each of its 3 edges in both stored orientations.
    """
    S = edge_support(graph)
    total = int(ops.reduce_matrix_to_scalar(PLUS_MONOID, S, dtype=INT64))
    return total // 6


def ktruss(graph: Graph, k: int, max_iterations: int | None = None) -> Matrix:
    """The k-truss of *graph*: maximal subgraph where every edge is in at
    least ``k - 2`` triangles.

    Iterates §II.C's support computation with a ``GrB_select`` edge
    filter until fixpoint — the translation-methodology view of the
    edge-centric "peel edges below threshold" loop.
    """
    if k < 3:
        raise ValueError("k-truss requires k >= 3")
    C = _pattern_matrix(graph)
    limit = max_iterations if max_iterations is not None else graph.num_edges + 1
    for _ in range(limit):
        S = Matrix.new(INT64, C.nrows, C.ncols)
        ops.mxm(S, PLUS_PAIR, C, C, mask=C, desc=STRUCTURE.transposing(0))
        before = C.nvals
        kept = Matrix.new(INT64, C.nrows, C.ncols)
        ops.select(kept, VALUEGE, S, k - 2)
        # back to pattern values of 1 for the next round
        rows, cols, _ = kept.to_coo()
        C = Matrix.from_coo(rows, cols, np.ones(len(rows), dtype=np.int64), C.nrows, C.ncols)
        if C.nvals == before:
            break
    return C

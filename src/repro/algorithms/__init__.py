"""Further algorithms built with the paper's translation methodology.

The paper argues its vertex/edge → linear-algebra patterns generalize
beyond delta-stepping; this package carries the receipts, each algorithm
annotated with the §II patterns it uses:

- :func:`bfs_levels` — vertex-centric frontier expansion
  (``ANY_PAIR`` vxm with complemented structural mask);
- :func:`triangle_count` — edge-centric ``AᵀA ∘ A`` with fill-in
  elimination (§II.C's k-truss example, specialized);
- :func:`ktruss` — the full iterated edge filter from the paper's
  reference [14];
- :func:`connected_components` — label propagation over ``(min, 2nd)``;
- :func:`pagerank` — rank distribution as ``vxm`` over ``(+, ×)``.
"""

from .bfs import bfs_levels, bfs_parents
from .components import connected_components
from .pagerank import pagerank
from .triangles import ktruss, triangle_count

__all__ = [
    "bfs_levels",
    "bfs_parents",
    "triangle_count",
    "ktruss",
    "connected_components",
    "pagerank",
]

"""Breadth-first search in the language of linear algebra.

The canonical vertex-centric BFS ("each frontier vertex marks its
unvisited neighbours") translates with the paper's patterns:

- frontier: a *set of vertices* → Boolean vector ``q`` (§II.D);
- expansion: operation on outgoing edges of the frontier →
  ``q' ⊕.⊗ A`` (§II.B), here over ``ANY_PAIR`` (reachability needs no
  arithmetic);
- "unvisited only": *filtering* (§II.E) with the **complemented**
  structural mask of the level vector — the mask idiom delta-stepping
  uses for buckets, inverted.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from ..graphblas.semiring import ANY_PAIR, MIN_FIRST
from ..graphblas.types import BOOL, INT64
from ..graphblas.vector import Vector
from ..graphs.graph import Graph

__all__ = ["bfs_levels", "bfs_parents"]

#: complement + structural + replace: write only where the mask has *no* entry
_PUSH_DESC = Descriptor(mask_complement=True, mask_structure=True, replace=True)


def bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """BFS level per vertex (-1 = unreachable), GraphBLAS formulation."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    A = graph.to_matrix()
    levels = Vector.new(INT64, n)  # stored ⇒ visited, value = level
    q = Vector.new(BOOL, n)
    q.set_element(source, True)
    depth = 0
    while q.nvals:
        # levels<struct(q)> = depth  (assign into the frontier)
        ops.assign_scalar_vector(
            levels, depth, indices=None, mask=q, desc=Descriptor(mask_structure=True)
        )
        # q<¬struct(levels), replace> = q ANY_PAIR A  (unvisited successors)
        ops.vxm(q, ANY_PAIR, q, A, mask=levels, desc=_PUSH_DESC)
        depth += 1
    out = np.full(n, -1, dtype=np.int64)
    idx, vals = levels.to_coo()
    out[idx] = vals
    return out


def bfs_parents(graph: Graph, source: int) -> np.ndarray:
    """BFS parent per vertex (-1 = unreachable/root), GraphBLAS formulation.

    Uses the ``MIN_FIRST`` semiring so each discovered vertex records the
    minimum-id frontier vertex that reached it (deterministic parents).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    A = graph.to_matrix()
    parents = Vector.new(INT64, n)
    parents.set_element(source, source)  # root points at itself
    # frontier carries the *vertex ids* so FIRST propagates the parent id
    q = Vector.new(INT64, n)
    q.set_element(source, source)
    while q.nvals:
        # q<¬struct(parents), replace> = q MIN_FIRST A
        ops.vxm(q, MIN_FIRST, q, A, mask=parents, desc=_PUSH_DESC)
        if q.nvals == 0:
            break
        # parents<struct(q)> = q (record discoverers)
        ops.apply(
            parents,
            _identity_int64(),
            q,
            mask=q,
            desc=Descriptor(mask_structure=True),
        )
        # next frontier carries its own ids
        idx, _ = q.to_coo()
        q = Vector.from_coo(idx, idx, n, dtype=INT64)
    out = np.full(n, -1, dtype=np.int64)
    idx, vals = parents.to_coo()
    out[idx] = vals
    out[source] = -1  # root has no parent by convention
    return out


def _identity_int64():
    from ..graphblas.unaryop import IDENTITY

    return IDENTITY

"""PageRank via the translation methodology.

The vertex-centric description — "each vertex repeatedly distributes its
rank over its out-edges and collects its neighbours' contributions" —
maps onto §II's patterns directly:

- ranks: a vector over |V| (§II.D);
- distribute-and-collect: *operation on the incoming edges of every
  vertex* (§II.B) → one ``vxm`` over ``(+, ×)`` with the column-
  stochastic adjacency ``r' · (A / outdeg)``;
- dangling vertices and teleportation: scalar corrections via reductions
  and a uniform ``apply``.

Included both as a further methodology demonstration and because the
GAP suite (which the paper cites for delta-stepping) pairs SSSP with
PageRank as its canonical kernels.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import operations as ops
from ..graphblas.semiring import PLUS_TIMES
from ..graphblas.types import FP64
from ..graphblas.unaryop import UnaryOp
from ..graphblas.vector import Vector
from ..graphs.graph import Graph

__all__ = ["pagerank"]


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iterations: int = 100,
) -> np.ndarray:
    """Power-iteration PageRank; returns a dense probability vector.

    Converges when the L1 change drops below *tol*.  Dangling mass is
    redistributed uniformly (the standard correction).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)

    outdeg = graph.out_degree().astype(np.float64)
    dangling = outdeg == 0
    # row-normalized adjacency: each edge carries 1/outdeg(src)
    src, dst, _ = graph.to_edges()
    inv = np.zeros(n)
    inv[~dangling] = 1.0 / outdeg[~dangling]
    from ..graphblas.matrix import Matrix

    P = Matrix.from_coo(src, dst, inv[src], n, n, dtype=FP64)

    rank = Vector.from_dense(np.full(n, 1.0 / n))
    teleport = (1.0 - damping) / n
    contrib = Vector.new(FP64, n)
    for _ in range(max_iterations):
        dense = rank.to_dense(0.0)
        dangling_mass = float(dense[dangling].sum())
        # r' = d * (r' P) + d * dangling/n + (1-d)/n
        ops.vxm(contrib, PLUS_TIMES, rank, P)
        base = damping * dangling_mass / n + teleport
        shift = UnaryOp.define(lambda x, _b=base, _d=damping: _d * x + _b, name="pr-shift")
        new_dense = np.full(n, base)
        idx, vals = contrib.to_coo()
        new_dense[idx] = shift(vals)
        delta = float(np.abs(new_dense - dense).sum())
        rank = Vector.from_dense(new_dense)
        if delta < tol:
            break
    out = rank.to_dense(0.0)
    return out / out.sum()

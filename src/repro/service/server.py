"""The synchronous query service: queue → coalesce → batch-solve → respond.

:class:`QueryService` is the front door of the subsystem.  Callers
``submit`` point or one-to-many queries; ``drain`` executes one planning
round — cache probes, batched exact solves (:mod:`repro.service.batch`),
landmark fallbacks (:mod:`repro.service.landmarks`) — and returns every
response in submission order.  ``query`` wraps submit+drain for the
interactive one-off case.

Graphs served here are *mutable*: :meth:`QueryService.mutate` applies an
edge-update batch through :mod:`repro.dynamic`, repairs the hot cached
distance vectors incrementally (no cold recompute), marks the landmark
index stale for lazy rebuild, and resets the planner's cost model.  The
cache keys on ``graph.epoch``, so anything not repaired simply misses.

The service keeps per-query latency samples and exposes throughput
percentiles (p50/p90/p99), which the ``serve-bench`` CLI command and the
SERVE experiment report.  Everything is synchronous and single-threaded
by design: sharding and async dispatch layer on top of exactly this
surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..dynamic.incremental import repair_sssp
from ..dynamic.mutations import AppliedUpdates, apply_edge_updates
from ..faults.breaker import (
    BREAKER_STATE_CODES,
    CircuitBreaker,
    CircuitOpenError,
    MutationShedError,
)
from ..graphs.graph import Graph
from ..obs.flight import FlightRecorder, SlowQueryLog
from ..sssp.delta import choose_delta
from .batch import batch_delta_stepping
from .cache import CacheStats, DistanceCache
from .landmarks import LandmarkIndex
from .planner import Query, QueryPlan, QueryPlanner

__all__ = ["QueryResponse", "MutationReport", "ServiceStats", "QueryService"]


@dataclass(frozen=True)
class QueryResponse:
    """The answer to one :class:`~repro.service.planner.Query`.

    ``distance`` is filled for point queries, ``distances`` (full vector)
    for one-to-many.  ``exact`` is False only for landmark estimates, in
    which case ``distance`` carries the admissible upper bound and
    ``bounds`` the full interval.  ``degraded`` marks the subset of
    approximate answers that the circuit breaker forced (the planner
    wanted an exact solve, but the solver is failing); ``deadline_missed``
    marks answers delivered after the query's latency deadline.
    """

    query: Query
    distance: float | None = None
    distances: np.ndarray | None = None
    exact: bool = True
    from_cache: bool = False
    latency_ms: float = 0.0
    bounds: tuple[float, float] | None = None
    degraded: bool = False
    deadline_missed: bool = False


@dataclass(frozen=True)
class MutationReport:
    """What one :meth:`QueryService.mutate` call did.

    ``repaired_entries`` cached distance vectors were patched in place by
    the incremental kernel and live on under the new epoch;
    ``dropped_entries`` (other weight modes, or ``repair="drop"``) were
    discarded and will re-solve on next miss.
    """

    applied: AppliedUpdates
    repaired_entries: int
    dropped_entries: int
    epoch: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutationReport<{self.applied.num_updates} updates, "
            f"repaired={self.repaired_entries}, dropped={self.dropped_entries}, "
            f"epoch={self.epoch}>"
        )


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate service counters + latency percentiles."""

    queries_served: int
    exact_answers: int
    approximate_answers: int
    batches_solved: int
    sources_solved: int
    cache: CacheStats
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    throughput_qps: float
    mutations_applied: int = 0
    entries_repaired: int = 0
    degraded_answers: int = 0
    deadline_misses: int = 0
    mutations_shed: int = 0
    breaker_state: str = "none"
    breaker_trips: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceStats<{self.queries_served} served, "
            f"p50={self.latency_p50_ms:.2f}ms p99={self.latency_p99_ms:.2f}ms, "
            f"{self.throughput_qps:.0f} qps>"
        )


class QueryService:
    """A synchronous distance-query service over one graph.

    Parameters
    ----------
    graph:
        The served graph.  Mutate it through :meth:`mutate` (which
        repairs cached answers in place); after a *raw* in-place edit
        call :meth:`invalidate` instead.
    weight_mode:
        Cache-key tag for the weight configuration of *graph*.
    delta:
        Δ for the batch engine (``None`` = auto).
    cache:
        A :class:`DistanceCache` (one is created when omitted; pass a
        shared instance to pool across services).
    landmarks:
        Optional :class:`LandmarkIndex` enabling approximate answers.
    planner:
        Optional :class:`QueryPlanner`; defaults to batches of
        *max_batch_size* with *latency_budget_ms*.
    stepper:
        Pin exact solves to one stepping-registry algorithm (any name
        accepted by :func:`repro.service.batch.batch_delta_stepping`,
        e.g. ``"rho"``).  Forwarded to the planner.
    autotune:
        Let the stepping auto-tuner pick the exact-solve algorithm per
        graph epoch: the first drain *that needs an exact solve* (and
        the first after each mutation) probes the portfolio once and
        installs the winner on the planner — cache-only drains never pay
        the probe.  A pinned ``stepper`` beats the tuned pick.
    tuner:
        Optional pre-configured :class:`repro.stepping.AutoTuner`
        (implies ``autotune``); pass a shared instance to pool probe
        results across services.
    recorder:
        A truthy :class:`repro.obs.Recorder` traces every drain round
        (``service:drain`` / ``service:plan`` / ``service:batch-solve``
        spans, forwarded into the solves), feeds the per-query and
        mutation latencies into ``service.query_ms`` /
        ``service.mutate_ms`` histograms (``latency-ms`` bucket preset:
        sub-ms resolution), and binds the cache's hit/miss/eviction
        counters to the recorder's metrics registry.  Every drain round
        additionally runs under a ``request_id`` ambient trace context,
        so each span a request produces — plan, batch-solve, and the
        sharded stepper's superstep/shard-step/exchange spans beneath
        them — carries the ids it served and the trace is filterable
        per request.  Recording never changes any answer.
    slow_query_ms:
        Latency threshold for the structured slow-query log: any
        response slower than this produces one
        :class:`repro.obs.SlowQueryLog` entry (request id, plan shape,
        stepper spec, cache verdict, work-counter deltas, and — when the
        recorder's trace is a :class:`repro.obs.FlightRecorder` — a
        flight snapshot of the spans leading up to it).  Requires a
        truthy *recorder*; ``None`` disables the log.
    slow_query_log:
        A pre-built :class:`repro.obs.SlowQueryLog` to append into
        (overrides *slow_query_ms*; pass a shared instance to pool
        across services).
    breaker:
        Optional :class:`repro.faults.CircuitBreaker` guarding the
        exact-solve path.  While open, exact solves for non-cached
        sources degrade to landmark upper bounds (responses carry
        ``degraded=True``) — or raise
        :class:`~repro.faults.CircuitOpenError` when the service has no
        landmark index — and :meth:`mutate` sheds its batch with
        :class:`~repro.faults.MutationShedError` (a failed mid-repair
        mutation while the solver is flaky is worse than a stale epoch).
        Breaker state is surfaced in :meth:`stats` and, with a recorder,
        as the ``service.degraded`` / ``service.breaker_state`` gauges.
    default_deadline_ms:
        Deadline stamped onto queries submitted without
        ``max_latency_ms``.  Deadlines steer the planner toward
        approximate answers and mark late responses
        ``deadline_missed=True`` (counted in :meth:`stats`).
    solver:
        The batch solver callable (defaults to
        :func:`repro.service.batch.batch_delta_stepping`); injectable so
        the chaos harness and tests can make the exact path fail on
        demand.  Same signature and result contract as the default.
    """

    def __init__(
        self,
        graph: Graph,
        weight_mode: str = "unit",
        delta: float | None = None,
        cache: DistanceCache | None = None,
        landmarks: LandmarkIndex | None = None,
        planner: QueryPlanner | None = None,
        max_batch_size: int = 64,
        latency_budget_ms: float | None = None,
        batch_method: str = "fused",
        stepper: str | None = None,
        autotune: bool = False,
        tuner=None,
        recorder=None,
        slow_query_ms: float | None = None,
        slow_query_log: SlowQueryLog | None = None,
        breaker: CircuitBreaker | None = None,
        default_deadline_ms: float | None = None,
        solver=None,
    ):
        self.graph = graph
        self.weight_mode = weight_mode
        self.recorder = recorder if recorder else None
        if self.recorder is not None:
            # pre-declare the latency histograms on the ms-scale preset
            # (first touch fixes the buckets; the coarse geometric
            # default cannot resolve sub-ms cache hits)
            self.recorder.metrics.histogram("service.query_ms", buckets="latency-ms")
            self.recorder.metrics.histogram("service.mutate_ms", buckets="latency-ms")
        if slow_query_log is None and slow_query_ms is not None:
            slow_query_log = SlowQueryLog(slow_query_ms)
        self.slow_query_log = slow_query_log
        self._delta_auto = delta is None
        self.delta = delta if delta is not None else choose_delta(graph)
        if cache is None:
            cache = DistanceCache(
                metrics=self.recorder.metrics if self.recorder is not None else None
            )
        elif self.recorder is not None:
            cache.bind_metrics(self.recorder.metrics)
        self.cache = cache
        self.landmarks = landmarks
        self.planner = planner if planner is not None else QueryPlanner(
            max_batch_size=max_batch_size,
            latency_budget_ms=latency_budget_ms,
            stepper=stepper,
        )
        if planner is not None and stepper is not None:
            self.planner._pinned_stepper = stepper
        if tuner is None and autotune:
            from ..stepping import AutoTuner

            tuner = AutoTuner()
        self.tuner = tuner
        self.batch_method = batch_method
        self.breaker = breaker
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be positive, got {default_deadline_ms}"
            )
        self.default_deadline_ms = default_deadline_ms
        self._solver = solver if solver is not None else batch_delta_stepping
        self._pending: list[Query] = []
        self._request_seq = 0
        self._last_plan: QueryPlan | None = None
        self._latencies_ms: list[float] = []
        self._serving_seconds = 0.0
        self._exact = 0
        self._approximate = 0
        self._batches_solved = 0
        self._sources_solved = 0
        self._mutations = 0
        self._entries_repaired = 0
        self._degraded = 0
        self._deadline_misses = 0
        self._mutations_shed = 0

    # -- request intake ----------------------------------------------------

    def submit(self, query: Query) -> int:
        """Enqueue one query; returns its position in the next drain.

        A query without a ``request_id`` gets one assigned
        (``q-NNNNNN``, service-scoped) — the id the response's ``query``
        carries, the trace spans are tagged with, and the slow-query log
        records.
        """
        n = self.graph.num_vertices
        if not 0 <= query.source < n:
            raise IndexError(f"source {query.source} out of range [0, {n})")
        if query.target is not None and not 0 <= query.target < n:
            raise IndexError(f"target {query.target} out of range [0, {n})")
        if query.request_id is None:
            self._request_seq += 1
            query = replace(query, request_id=f"q-{self._request_seq:06d}")
        if query.max_latency_ms is None and self.default_deadline_ms is not None:
            query = replace(query, max_latency_ms=self.default_deadline_ms)
        self._pending.append(query)
        return len(self._pending) - 1

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    def query(self, source: int, target: int | None = None) -> QueryResponse:
        """Submit one query and drain immediately (the interactive path)."""
        idx = self.submit(Query(source=source, target=target))
        return self.drain()[idx]

    # -- one planning/execution round --------------------------------------

    def drain(self) -> list[QueryResponse]:
        """Execute every pending query; responses in submission order."""
        queries, self._pending = self._pending, []
        if not queries:
            return []
        rec = self.recorder
        if rec is None:
            return self._drain_round(queries)
        # one synchronous round serves every pending request, so the
        # ambient id is the (deduplicated) comma-joined set — a span
        # belongs to a request iff the id appears in its request_id arg
        request_id = ",".join(
            dict.fromkeys(q.request_id for q in queries if q.request_id is not None)
        )
        counters_before = (
            rec.summary()["counters"] if self.slow_query_log is not None else None
        )
        with rec.context(request_id=request_id):
            with rec.span("service:drain", queries=len(queries)) as sp:
                responses = self._drain_round(queries)
                sp.set(exact=sum(1 for r in responses if r.exact))
        for r in responses:
            rec.observe("service.query_ms", r.latency_ms)
        rec.inc("service.queries", len(responses))
        if counters_before is not None:
            self._log_slow(responses, counters_before)
        return responses

    def _log_slow(
        self, responses: list[QueryResponse], counters_before: dict
    ) -> None:
        """Append one slow-query entry per over-threshold response."""
        rec = self.recorder
        log = self.slow_query_log
        if rec is None or log is None:
            return
        slow = [r for r in responses if r.latency_ms > log.threshold_ms]
        if not slow:
            return
        counters_after = rec.summary()["counters"]
        deltas = {
            k: v - counters_before.get(k, 0)
            for k, v in counters_after.items()
            if v != counters_before.get(k, 0)
        }
        plan = self._last_plan
        plan_shape = (
            {
                "cached": len(plan.cached),
                "batches": len(plan.batches),
                "exact_sources": plan.num_exact_sources,
                "approximate": len(plan.approximate),
            }
            if plan is not None
            else {}
        )
        stepper = (plan.stepper if plan is not None else None) or self.batch_method
        trace = rec.trace
        flight = (
            trace.snapshot(last=32) if isinstance(trace, FlightRecorder) else None
        )
        for r in slow:
            entry = {
                "request_id": r.query.request_id,
                "source": int(r.query.source),
                "target": None if r.query.target is None else int(r.query.target),
                "latency_ms": round(r.latency_ms, 3),
                "plan": plan_shape,
                "stepper": str(stepper),
                "cache_hit": bool(r.from_cache),
                "exact": bool(r.exact),
                "counters": deltas,
            }
            if flight is not None:
                entry["flight"] = flight
            log.record(entry)
        rec.inc("service.slow_queries", len(slow))

    def _drain_round(self, queries: list[Query]) -> list[QueryResponse]:
        """One planning/execution round (:meth:`drain` adds the spans)."""
        rec = self.recorder
        t0 = time.perf_counter()
        if rec is not None:
            with rec.span("service:plan", queries=len(queries)) as sp:
                plan = self.planner.plan(
                    queries,
                    cache=self.cache,
                    graph=self.graph,
                    weight_mode=self.weight_mode,
                    has_landmarks=self.landmarks is not None,
                )
                sp.set(
                    batches=len(plan.batches),
                    cached=len(plan.cached),
                    approximate=len(plan.approximate),
                )
        else:
            plan = self.planner.plan(
                queries,
                cache=self.cache,
                graph=self.graph,
                weight_mode=self.weight_mode,
                has_landmarks=self.landmarks is not None,
            )
        self._last_plan = plan
        if self.tuner is not None and plan.batches and plan.stepper is None:
            # tuned routing: probe once per graph epoch (the tuner caches),
            # install the winner; a mutation clears it for re-tuning.  The
            # probe only runs when the plan has exact solves to route —
            # cache-only drains never pay it — and inside the timed round,
            # so its cost shows in the latency stats it affects.
            pick = self.tuner.best_stepper(self.graph)
            self.planner.set_tuned_stepper(pick)
            plan.stepper = pick
        # the plan carries the fetched cache hits (a later eviction — e.g.
        # by this round's own puts into a small shared cache — can't
        # invalidate an answer already in hand)
        cached_set = set(plan.cached)
        solved = dict(plan.cached)
        exact_solved, degraded = self._execute(plan)
        solved.update(exact_solved)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        self._serving_seconds += elapsed_ms / 1e3

        # Synchronous round: every query in it observes the round's latency.
        per_query_ms = elapsed_ms
        approx_set = set(plan.approximate)
        degraded_set = set(degraded)
        responses = []
        deadline_misses = 0
        for q in queries:
            s = int(q.source)
            self._latencies_ms.append(per_query_ms)
            if s in degraded_set and s not in cached_set:
                resp = self._answer_approximate(q, per_query_ms, degraded=True)
            elif s in approx_set:
                resp = self._answer_approximate(q, per_query_ms)
            else:
                resp = self._answer_exact(
                    q, solved[s], from_cache=s in cached_set, latency_ms=per_query_ms
                )
            if q.max_latency_ms is not None and per_query_ms > q.max_latency_ms:
                resp = replace(resp, deadline_missed=True)
                deadline_misses += 1
            responses.append(resp)
        if deadline_misses:
            self._deadline_misses += deadline_misses
            if rec is not None:
                rec.inc("service.deadline_misses", deadline_misses)
        self._update_breaker_gauges()
        return responses

    def _execute(self, plan: QueryPlan) -> tuple[dict[int, np.ndarray], list[int]]:
        """Run the plan's batch solves; returns (source → distances, degraded).

        With a breaker attached, a batch whose solve fails (or arrives
        while the breaker is open) falls back to landmark answers: its
        sources are returned in the *degraded* list instead of being
        solved.  Without landmarks the failure propagates — there is
        nothing to degrade to.
        """
        solved: dict[int, np.ndarray] = {}
        degraded: list[int] = []
        rec = self.recorder
        method = plan.stepper or self.batch_method
        breaker = self.breaker
        for batch in plan.batches:
            if breaker is not None and not breaker.allow():
                if self.landmarks is None:
                    raise CircuitOpenError(
                        "exact solve refused: circuit breaker is open and the "
                        "service has no landmark index to degrade to"
                    )
                degraded.extend(int(s) for s in batch)
                if rec is not None:
                    rec.inc("service.breaker_rejections", len(batch))
                continue
            t0 = time.perf_counter()
            try:
                if rec is not None:
                    with rec.span(
                        "service:batch-solve", batch=len(batch), method=str(method)
                    ):
                        result = self._solver(
                            self.graph, batch, delta=self.delta, method=method,
                            recorder=rec,
                        )
                else:
                    result = self._solver(
                        self.graph, batch, delta=self.delta, method=method
                    )
            except Exception:
                if breaker is None:
                    raise
                breaker.record_failure()
                if rec is not None:
                    rec.inc("service.solver_failures")
                if self.landmarks is None:
                    raise
                degraded.extend(int(s) for s in batch)
                continue
            if breaker is not None:
                breaker.record_success()
            self.planner.record_solve(
                len(batch), (time.perf_counter() - t0) * 1e3
            )
            self._batches_solved += 1
            self._sources_solved += len(batch)
            for k, s in enumerate(batch):
                solved[int(s)] = self.cache.put(
                    self.graph, int(s), self.weight_mode, result.distances[k]
                )
        return solved, degraded

    def _answer_exact(self, q: Query, dist: np.ndarray, from_cache: bool, latency_ms: float) -> QueryResponse:
        self._exact += 1
        if q.target is None:
            return QueryResponse(
                query=q, distances=dist, exact=True,
                from_cache=from_cache, latency_ms=latency_ms,
            )
        return QueryResponse(
            query=q, distance=float(dist[q.target]), exact=True,
            from_cache=from_cache, latency_ms=latency_ms,
        )

    def _answer_approximate(
        self, q: Query, latency_ms: float, degraded: bool = False
    ) -> QueryResponse:
        self._approximate += 1
        if degraded:
            self._degraded += 1
            rec = self.recorder
            if rec is not None:
                rec.inc("service.degraded_answers")
        self.landmarks.ensure_fresh()  # lazy rebuild after mutations
        if q.target is None:
            # one-to-many: upper bounds to every vertex via the landmarks
            ub = np.min(
                self.landmarks.dist_to[:, q.source, None] + self.landmarks.dist_from,
                axis=0,
            )
            ub[q.source] = 0.0
            return QueryResponse(
                query=q, distances=ub, exact=False, latency_ms=latency_ms,
                degraded=degraded,
            )
        est = self.landmarks.estimate(q.source, q.target)
        return QueryResponse(
            query=q, distance=est.upper, exact=False,
            latency_ms=latency_ms, bounds=(est.lower, est.upper),
            degraded=degraded,
        )

    # -- mutation ----------------------------------------------------------

    def mutate(
        self,
        inserts=None,
        deletes=None,
        reweights=None,
        repair: str = "hot",
        strict: bool = True,
    ) -> MutationReport:
        """Apply one edge-update batch to the served graph.

        The service's cached entries are harvested *before* the mutation,
        the batch is applied through
        :func:`repro.dynamic.apply_edge_updates` (bumping the epoch the
        cache keys on), and then — under the default ``repair="hot"``
        policy — every harvested entry of this service's weight mode is
        repaired incrementally (:func:`repro.dynamic.repair_sssp`) and
        re-inserted under the new epoch, so hot sources keep answering
        from cache with zero recompute.  ``repair="drop"`` discards them
        instead (they re-solve on next miss).  Entries of *other* weight
        modes are always dropped: their weight arrays no longer describe
        this graph.

        The landmark index (if any) is marked stale and rebuilds lazily
        on the next approximate answer; the planner's calibrated cost
        model resets.  Pending (submitted, undrained) queries are
        answered against the post-mutation graph.

        With an *open* circuit breaker attached, the batch is shed with
        :class:`~repro.faults.MutationShedError` before anything is
        touched: while the solver is failing, a repair that dies
        mid-flight would only widen the blast radius, and the current
        epoch snapshot can still answer.  If a repair *does* fail
        mid-flight, the graph, epoch, Δ, and cache are rolled back to
        the pre-mutation snapshot before the error propagates.
        """
        breaker = self.breaker
        if breaker is not None and not breaker.allow_mutation():
            self._mutations_shed += 1
            shed_rec = self.recorder
            if shed_rec is not None:
                shed_rec.inc("service.mutations_shed")
            raise MutationShedError(
                "mutation shed: circuit breaker is open — the service keeps "
                "answering from the current epoch snapshot; retry after the "
                "breaker closes"
            )
        rec = self.recorder
        if rec is None:
            return self._mutate(inserts, deletes, reweights, repair, strict)
        t0 = time.perf_counter()
        with rec.span("service:mutate") as sp:
            report = self._mutate(inserts, deletes, reweights, repair, strict)
            sp.set(
                updates=report.applied.num_updates,
                repaired=report.repaired_entries,
                epoch=report.epoch,
            )
        rec.observe("service.mutate_ms", (time.perf_counter() - t0) * 1e3)
        rec.inc("service.mutations")
        return report

    def _mutate(self, inserts, deletes, reweights, repair, strict) -> MutationReport:
        """:meth:`mutate` body (the public wrapper adds span + histogram)."""
        if repair not in ("hot", "drop"):
            raise ValueError(f"unknown repair policy {repair!r}; known: hot, drop")
        harvested = self.cache.take_entries(self.graph)
        # weights are the one array mutations may edit in place (pure
        # reweights); indptr/indices are only ever replaced wholesale
        snapshot = (
            self.graph.indptr,
            self.graph.indices,
            self.graph.weights.copy(),
            self.graph.epoch,
            self.delta,
        )
        try:
            applied = apply_edge_updates(
                self.graph, inserts=inserts, deletes=deletes, reweights=reweights, strict=strict
            )
        except Exception:
            # batch rejected before the graph changed (epoch untouched):
            # the harvested entries are still valid — put them back
            for (source, wmode), dist in harvested.items():
                self.cache.put(self.graph, source, wmode, dist)
            raise
        if self._delta_auto:
            self.delta = choose_delta(self.graph)
        repaired = 0
        try:
            for (source, wmode), dist in harvested.items():
                if repair != "hot" or wmode != self.weight_mode:
                    continue
                result = repair_sssp(
                    self.graph, source, dist, applied, delta=self.delta,
                    recorder=self.recorder,
                )
                self.cache.put(self.graph, source, wmode, result.distances)
                repaired += 1
        except Exception:
            # mid-repair failure: the epoch already advanced and some
            # entries were re-put under it — rewind everything to the
            # pre-mutation snapshot so the service keeps answering
            # exactly what it answered before the call
            self._rollback_mutation(snapshot, harvested)
            raise
        if self.landmarks is not None:
            self.landmarks.mark_stale()
        self.planner.note_mutation()
        self._mutations += 1
        self._entries_repaired += repaired
        return MutationReport(
            applied=applied,
            repaired_entries=repaired,
            dropped_entries=len(harvested) - repaired,
            epoch=self.graph.epoch,
        )

    def _rollback_mutation(self, snapshot, harvested) -> None:
        """Rewind a mid-repair mutation failure to the pre-mutation state.

        Restores the CSR arrays, epoch, and Δ from *snapshot*, drops
        anything cached under the aborted epoch (including partially
        repaired entries this call re-put), clears derived ``meta``
        caches built against the aborted arrays, and re-inserts the
        *harvested* pre-mutation entries — so every source that answered
        from cache before the call still does, with identical vectors.
        """
        indptr, indices, weights, epoch, delta = snapshot
        g = self.graph
        # evict the aborted epoch's entries before rewinding the counter
        # (afterwards they would key as current and shadow the snapshot)
        self.cache.take_entries(g)
        g.indptr = indptr
        g.indices = indices
        g.weights = weights
        g.epoch = epoch
        self.delta = delta
        for key in [k for k in g.meta if isinstance(k, str) and k.startswith("_")]:
            del g.meta[key]
        for (source, wmode), dist in harvested.items():
            self.cache.put(g, source, wmode, dist)

    # -- maintenance & reporting -------------------------------------------

    def invalidate(self) -> int:
        """Drop cached answers after a *raw* in-place graph mutation.

        Batches applied through :meth:`mutate` never need this — the
        epoch keying retires old entries automatically.
        """
        return self.cache.invalidate(self.graph)

    def stats(self) -> ServiceStats:
        rec = self.recorder
        if rec is not None:
            # the bound recorder's histogram is the source of truth: the
            # same distribution the OpenMetrics scrape and the SLO engine
            # read, including its NaN sentinel when nothing was observed
            summary = rec.metrics.histogram("service.query_ms").summary()
            p50, p90, p99 = summary["p50"], summary["p90"], summary["p99"]
        else:
            lat = np.asarray(self._latencies_ms, dtype=np.float64)
            p50, p90, p99 = (
                tuple(np.percentile(lat, [50, 90, 99]))
                if len(lat)
                else (0.0, 0.0, 0.0)
            )
        served = self._exact + self._approximate
        qps = served / self._serving_seconds if self._serving_seconds > 0 else 0.0
        breaker = self.breaker
        return ServiceStats(
            queries_served=served,
            exact_answers=self._exact,
            approximate_answers=self._approximate,
            batches_solved=self._batches_solved,
            sources_solved=self._sources_solved,
            cache=self.cache.stats(),
            latency_p50_ms=float(p50),
            latency_p90_ms=float(p90),
            latency_p99_ms=float(p99),
            throughput_qps=qps,
            mutations_applied=self._mutations,
            entries_repaired=self._entries_repaired,
            degraded_answers=self._degraded,
            deadline_misses=self._deadline_misses,
            mutations_shed=self._mutations_shed,
            breaker_state=breaker.state if breaker is not None else "none",
            breaker_trips=breaker.trips if breaker is not None else 0,
        )

    def _update_breaker_gauges(self) -> None:
        """Refresh ``service.degraded`` / ``service.breaker_state`` gauges."""
        rec = self.recorder
        breaker = self.breaker
        if rec is None or breaker is None:
            return
        state = breaker.state
        rec.set_gauge("service.degraded", 1.0 if state != "closed" else 0.0)
        rec.set_gauge("service.breaker_state", float(BREAKER_STATE_CODES[state]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryService<{self.graph.name}, pending={self.num_pending}, "
            f"cache={len(self.cache)}>"
        )

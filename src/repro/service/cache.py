"""An LRU cache of full distance vectors, keyed by (graph, source, weights).

One SSSP run answers *every* point query from its source, so the natural
cache unit is the whole distance array.  Keys combine the graph identity
— ``id`` plus the graph's own :attr:`~repro.graphs.graph.Graph.epoch`
counter, which :func:`repro.dynamic.apply_edge_updates` bumps on every
mutation batch, so topology changes invalidate implicitly — the source
vertex, and the weight mode, because the same catalog graph is routinely
queried under both unit and distribution weights.  A manual epoch
(:meth:`DistanceCache.invalidate`) remains for in-place array mutations
that bypass the mutation API.

Cached arrays are stored read-only: handing out a mutable view of a
shared answer would let one caller corrupt every later hit.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph

__all__ = ["CacheStats", "DistanceCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters since construction (or the last :meth:`DistanceCache.clear`)."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats<{self.size}/{self.capacity} entries, "
            f"hit_rate={self.hit_rate:.2%} ({self.hits}h/{self.misses}m), "
            f"evictions={self.evictions}>"
        )


class DistanceCache:
    """LRU map ``(graph, source, weight_mode) → distance array``.

    Thread-safe (one lock around the ordered map — lookups are tiny next
    to the SSSP runs they save).  Graph identity is ``id(graph)`` paired
    with two epochs: the graph's own ``epoch`` attribute (bumped by the
    mutation API, so every pre-mutation entry mismatches at once with no
    call into the cache) and a cache-local manual epoch that
    :meth:`invalidate` bumps for raw in-place mutations.  A
    ``weakref.finalize`` per graph drops its entries when the graph is
    garbage-collected (which also protects against ``id`` reuse).  The
    finalize callback can fire from the garbage collector at any
    allocation point — possibly while this very cache holds its lock — so
    it only *enqueues* the dead id; the locked public methods purge the
    queue.
    """

    def __init__(self, capacity: int = 128, metrics=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._epochs: dict[int, int] = {}
        self._dead_gids: deque[int] = deque()  # filled lock-free by finalizers
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._metrics = metrics  # a repro.obs MetricsRegistry, or None

    # -- metrics mirror ----------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Mirror the counters into a :class:`repro.obs.MetricsRegistry`.

        ``cache.hits`` / ``cache.misses`` / ``cache.evictions`` /
        ``cache.invalidations`` counters plus a ``cache.size`` gauge.
        A no-op when a registry is already bound (the first binding
        wins, so a shared cache is not double-counted).
        """
        if self._metrics is None and metrics is not None:
            self._metrics = metrics

    def _tick(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.inc(f"cache.{name}", amount)

    def _gauge_size(self) -> None:
        if self._metrics is not None:
            self._metrics.set_gauge("cache.size", len(self._entries))

    # -- graph identity ----------------------------------------------------

    def _graph_token(self, graph: Graph) -> tuple[int, int, int]:
        gid = id(graph)
        manual = self._epochs.get(gid)
        if manual is None:
            manual = 0
            self._epochs[gid] = manual
            weakref.finalize(graph, self._dead_gids.append, gid)
        return gid, getattr(graph, "epoch", 0), manual

    def _purge_dead(self) -> None:
        """Drop entries of collected graphs (called under the lock)."""
        while self._dead_gids:
            gid = self._dead_gids.popleft()
            self._epochs.pop(gid, None)
            for key in [k for k in self._entries if k[0] == gid]:
                del self._entries[key]

    # -- the cache proper --------------------------------------------------

    def get(self, graph: Graph, source: int, weight_mode: str = "unit") -> np.ndarray | None:
        """The cached distance array, or ``None`` on a miss."""
        with self._lock:
            self._purge_dead()
            key = (*self._graph_token(graph), int(source), weight_mode)
            dist = self._entries.get(key)
            if dist is None:
                self._misses += 1
                self._tick("misses")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._tick("hits")
            return dist

    def put(self, graph: Graph, source: int, weight_mode: str, distances: np.ndarray) -> np.ndarray:
        """Insert (or refresh) one distance array; returns the stored view."""
        dist = np.asarray(distances, dtype=np.float64)
        if dist.ndim != 1 or len(dist) != graph.num_vertices:
            raise ValueError(
                f"expected a length-{graph.num_vertices} distance array, got shape {dist.shape}"
            )
        dist = dist.copy()
        dist.flags.writeable = False
        with self._lock:
            self._purge_dead()
            key = (*self._graph_token(graph), int(source), weight_mode)
            self._entries[key] = dist
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._tick("evictions")
            self._gauge_size()
        return dist

    def invalidate(self, graph: Graph) -> int:
        """Drop every entry of *graph* (call after raw in-place mutation).

        Mutations through :func:`repro.dynamic.apply_edge_updates` do not
        need this — they bump ``graph.epoch``, which is part of the key.
        Returns the number of entries dropped.  The manual epoch is
        bumped, so any concurrent holder of the old token also misses.
        Only *real* invalidations — calls that actually dropped entries —
        are counted in :class:`CacheStats`, so the counter stays truthful
        for graphs the cache has never seen.
        """
        with self._lock:
            self._purge_dead()
            gid = id(graph)
            if gid in self._epochs:
                self._epochs[gid] += 1
            stale = [k for k in self._entries if k[0] == gid]
            for key in stale:
                del self._entries[key]
            if stale:
                self._invalidations += 1
                self._tick("invalidations")
                self._gauge_size()
            return len(stale)

    def take_entries(self, graph: Graph) -> dict[tuple[int, str], np.ndarray]:
        """Remove and return *graph*'s **current-epoch** entries as
        ``{(source, weight_mode): distances}``.

        The mutation path harvests the hot entries *before* mutating,
        repairs them against the new topology, and re-puts them under the
        new epoch — answers move forward rather than going stale, so this
        is not counted as an invalidation.  Only entries matching the
        graph's *current* token qualify: anything parked under an older
        epoch describes a graph that no longer exists and would poison a
        repair if handed out as a baseline, so it is dropped here
        instead.  The returned arrays are the stored read-only views.
        """
        with self._lock:
            self._purge_dead()
            token = self._graph_token(graph)
            taken: dict[tuple[int, str], np.ndarray] = {}
            for key in [k for k in self._entries if k[0] == token[0]]:
                entry = self._entries.pop(key)
                if key[:3] == token:
                    taken[(key[3], key[4])] = entry
            self._gauge_size()
            return taken

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = self._invalidations = 0
            self._gauge_size()

    def __len__(self) -> int:
        with self._lock:
            self._purge_dead()
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            self._purge_dead()
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceCache<{len(self._entries)}/{self.capacity}>"

"""Query planning: coalesce pending queries into batches, route exact vs approximate.

The planner is the pure-decision half of the service (the server executes
the plan).  Given the pending queries it:

1. deduplicates sources — fifty point queries from one source need one
   distance vector;
2. answers whatever the cache already holds;
3. routes the rest: *exact* sources are packed into batch-engine groups
   of at most ``max_batch_size``; when a latency budget is present, a
   cost model (calibrated from observed solve times) predicts the exact
   cost, and sources that would blow the budget fall back to *approximate*
   landmark answers — if a landmark index exists, otherwise exact anyway
   (correctness beats the budget).

Keeping this logic free of I/O and timing makes it unit-testable: the
tests drive it with a synthetic cost model and assert the routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Query", "QueryPlan", "QueryPlanner"]


@dataclass(frozen=True)
class Query:
    """One request: distances from *source* to *target* (or to everything).

    ``target=None`` asks for the full one-to-many distance vector.
    ``max_latency_ms`` (optional) lets a single query demand a tighter
    budget than the service default.  ``request_id`` names the request
    for tracing — :meth:`QueryService.submit` assigns one (``q-NNNNNN``)
    when the caller didn't, and the service stamps it onto every span
    the request produces, down to the sharded stepper's per-shard work.
    """

    source: int
    target: int | None = None
    max_latency_ms: float | None = None
    request_id: str | None = None


@dataclass
class QueryPlan:
    """The planner's decision, in source granularity.

    ``cached`` carries the distance arrays the cache probe already
    fetched (probing and fetching are one operation — the server must
    not re-fetch, both for honest hit counting and because a shared
    cache could evict between plan and execution); ``batches`` are
    source groups to hand to the batch engine; ``approximate`` sources
    get landmark estimates.  ``stepper`` is the planner's algorithm
    choice for the exact solves (``None`` = the server's default batch
    engine) — pinned by the caller or tuned per graph by the stepping
    auto-tuner.
    """

    cached: dict[int, "np.ndarray"] = field(default_factory=dict)
    batches: list[np.ndarray] = field(default_factory=list)
    approximate: list[int] = field(default_factory=list)
    stepper: str | None = None

    @property
    def num_exact_sources(self) -> int:
        return sum(len(b) for b in self.batches)


class QueryPlanner:
    """Routes queries between cache, batch engine, and landmark estimates.

    Parameters
    ----------
    max_batch_size:
        Upper bound on the K of one batch solve (bounds the K×n state).
    latency_budget_ms:
        Budget for one drain round.  Exact solves are admitted while the
        *cumulative* predicted cost stays within it; once the round's
        budget is spent, remaining sources fall back to landmark
        estimates (when available).  ``None`` means always exact.
    stepper:
        Pin the exact-solve algorithm to one stepping-registry spec —
        a name or a parameterized form like ``"sharded(shards=4)"``
        (stamped onto every plan).  ``None`` leaves the choice to the
        tuned pick (:meth:`set_tuned_stepper`) or, failing that, the
        server's default batch engine.
    """

    def __init__(
        self,
        max_batch_size: int = 64,
        latency_budget_ms: float | None = None,
        stepper: str | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.latency_budget_ms = latency_budget_ms
        self._pinned_stepper = stepper
        self._tuned_stepper: str | None = None
        # EWMA of per-source exact solve cost, calibrated by the server
        self._ms_per_source: float | None = None

    # -- cost model --------------------------------------------------------

    def record_solve(self, num_sources: int, elapsed_ms: float) -> None:
        """Feed an observed batch solve back into the cost model."""
        if num_sources < 1 or elapsed_ms < 0:
            return
        per_source = elapsed_ms / num_sources
        if self._ms_per_source is None:
            self._ms_per_source = per_source
        else:
            self._ms_per_source = 0.7 * self._ms_per_source + 0.3 * per_source

    def predicted_exact_ms(self, num_sources: int) -> float | None:
        """Predicted cost of an exact solve for *num_sources* new sources."""
        if self._ms_per_source is None:
            return None
        return self._ms_per_source * num_sources

    def note_mutation(self) -> None:
        """Drop the calibrated cost model after a graph mutation.

        Observed per-source solve times are a function of the topology;
        once the graph changes they may mispredict in either direction,
        so the planner returns to uncalibrated routing (always exact)
        until the server feeds it fresh observations.  The *tuned*
        stepper choice falls with it (topology-dependent too); a pinned
        choice survives — it encodes caller intent, not measurement.
        """
        self._ms_per_source = None
        self._tuned_stepper = None

    # -- stepper routing ----------------------------------------------------

    def set_tuned_stepper(self, name: str | None) -> None:
        """Install the auto-tuner's per-graph pick (cleared on mutation)."""
        self._tuned_stepper = name

    @property
    def stepper(self) -> str | None:
        """The effective exact-solve algorithm: pinned beats tuned."""
        return self._pinned_stepper or self._tuned_stepper

    # -- planning ----------------------------------------------------------

    def plan(self, queries, cache=None, graph=None, weight_mode: str = "unit", has_landmarks: bool = False) -> QueryPlan:
        """Coalesce *queries* into a :class:`QueryPlan`.

        ``cache``/``graph`` enable the cache probe (either may be ``None``
        for a cold plan); ``has_landmarks`` enables the approximate route.
        """
        plan = QueryPlan(stepper=self.stepper)
        seen: dict[int, None] = {}
        budgets: dict[int, float] = {}
        for q in queries:
            s = int(q.source)
            if s not in seen:
                seen[s] = None
            if q.max_latency_ms is not None:
                budgets[s] = min(budgets.get(s, q.max_latency_ms), q.max_latency_ms)

        pending: list[int] = []
        for s in seen:
            hit = cache.get(graph, s, weight_mode) if cache is not None and graph is not None else None
            if hit is not None:
                plan.cached[s] = hit
            else:
                pending.append(s)

        exact: list[int] = []
        per_source = self.predicted_exact_ms(1)
        committed_ms = 0.0  # cumulative predicted cost of this round
        for s in pending:
            budget = budgets.get(s, self.latency_budget_ms)
            tight = (
                budget is not None
                and per_source is not None
                and committed_ms + per_source > budget
            )
            if tight and has_landmarks:
                plan.approximate.append(s)
            else:
                exact.append(s)
                if per_source is not None:
                    committed_ms += per_source

        for lo in range(0, len(exact), self.max_batch_size):
            plan.batches.append(
                np.asarray(exact[lo : lo + self.max_batch_size], dtype=np.int64)
            )
        return plan

"""Landmark (ALT-style) distance estimation for budget-constrained queries.

Precompute exact distances between a handful of *landmark* vertices and
everything else (one batch SSSP per direction), then answer arbitrary
``s → t`` queries in O(L) from the triangle inequality:

- **upper bound** — routing through the best landmark:
  ``min_L  d(s→L) + d(L→t)``;
- **lower bound** — the ALT bound used to steer A*:
  ``max_L  max(d(L→t) − d(L→s),  d(s→L) − d(t→L), 0)``.

The upper bound is *admissible* in the service's sense: it is a length of
a real walk, so it never undershoots the true distance — an approximate
answer the planner can hand out when the latency budget won't cover an
exact batch solve.  Undirected graphs need one distance table; directed
graphs also need the reverse-graph table for the ``d(·→L)`` terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..sssp.fused import fused_delta_stepping
from ..sssp.result import INF
from .batch import batch_delta_stepping

__all__ = ["DistanceEstimate", "LandmarkIndex", "select_landmarks", "LANDMARK_STRATEGIES"]


@dataclass(frozen=True)
class DistanceEstimate:
    """An interval certain to contain the true shortest distance."""

    lower: float
    upper: float

    @property
    def midpoint(self) -> float:
        if not np.isfinite(self.upper):
            return self.upper
        return 0.5 * (self.lower + self.upper)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceEstimate<[{self.lower:g}, {self.upper:g}]>"


def _farthest_point_landmarks(graph: Graph, k: int, seed: int) -> np.ndarray:
    """Greedy farthest-point sampling (the classic ALT selection).

    Start from the highest-degree vertex (a hub reaches most of the
    graph), then repeatedly add the vertex maximizing the minimum distance
    to the chosen set.  Unreachable vertices are skipped — a landmark in
    another component estimates nothing.
    """
    deg = graph.out_degree()
    first = int(deg.argmax()) if len(deg) else 0
    chosen = [first]
    closest = fused_delta_stepping(graph, first).distances.copy()
    while len(chosen) < k:
        finite = np.isfinite(closest)
        candidates = finite & ~np.isin(np.arange(graph.num_vertices), chosen)
        if not candidates.any():
            break
        nxt = int(np.where(candidates, closest, -1.0).argmax())
        chosen.append(nxt)
        np.minimum(closest, fused_delta_stepping(graph, nxt).distances, out=closest)
    return np.asarray(chosen, dtype=np.int64)


def _degree_landmarks(graph: Graph, k: int, seed: int) -> np.ndarray:
    deg = graph.out_degree()
    k = min(k, len(deg))
    return np.argsort(-deg, kind="stable")[:k].astype(np.int64)


def _random_landmarks(graph: Graph, k: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    k = min(k, graph.num_vertices)
    return np.sort(rng.choice(graph.num_vertices, size=k, replace=False)).astype(np.int64)


LANDMARK_STRATEGIES = {
    "farthest": _farthest_point_landmarks,
    "degree": _degree_landmarks,
    "random": _random_landmarks,
}


def select_landmarks(graph: Graph, k: int = 8, strategy: str = "farthest", seed: int = 0) -> np.ndarray:
    """Pick up to *k* landmark vertices with the named strategy."""
    if k < 1:
        raise ValueError("need at least one landmark")
    if strategy not in LANDMARK_STRATEGIES:
        known = ", ".join(sorted(LANDMARK_STRATEGIES))
        raise ValueError(f"unknown landmark strategy {strategy!r}; known: {known}")
    if graph.num_vertices == 0:
        raise ValueError("cannot select landmarks on an empty graph")
    return LANDMARK_STRATEGIES[strategy](graph, k, seed)


class LandmarkIndex:
    """Precomputed landmark distance tables + O(L) triangle-inequality bounds.

    Attributes
    ----------
    landmarks:
        The selected vertex ids, shape ``(L,)``.
    dist_from:
        ``dist_from[j, v] = d(landmarks[j] → v)``, shape ``(L, n)``.
    dist_to:
        ``dist_to[j, v] = d(v → landmarks[j])`` (same array as
        ``dist_from`` for undirected graphs).

    Indexes built with :meth:`build` stay bound to their graph and
    support the *lazy rebuild* policy for dynamic graphs: a mutation
    marks the index stale (:meth:`mark_stale`, an O(1) flag flip), and
    the distance tables are re-solved only when the next approximate
    answer actually needs them (:meth:`ensure_fresh`).  The landmark
    *selection* is kept — re-selecting on every batch would churn the
    tables for marginal quality — only the two batch solves repeat.
    """

    def __init__(
        self,
        landmarks: np.ndarray,
        dist_from: np.ndarray,
        dist_to: np.ndarray,
        graph: Graph | None = None,
        delta: float | None = None,
    ):
        self.landmarks = np.asarray(landmarks, dtype=np.int64)
        self.dist_from = dist_from
        self.dist_to = dist_to
        self._graph = graph
        self._delta = delta
        self._stale = False
        self.rebuilds = 0

    @classmethod
    def build(
        cls,
        graph: Graph,
        num_landmarks: int = 8,
        strategy: str = "farthest",
        seed: int = 0,
        delta: float | None = None,
    ) -> "LandmarkIndex":
        """Select landmarks and solve their distance tables in two batches."""
        landmarks = select_landmarks(graph, num_landmarks, strategy=strategy, seed=seed)
        dist_from = batch_delta_stepping(graph, landmarks, delta=delta).distances
        if graph.directed:
            dist_to = batch_delta_stepping(graph.reverse(), landmarks, delta=delta).distances
        else:
            dist_to = dist_from
        return cls(landmarks, dist_from, dist_to, graph=graph, delta=delta)

    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    # -- staleness (dynamic graphs) ----------------------------------------

    @property
    def stale(self) -> bool:
        """True when the bound graph mutated after the last table solve."""
        return self._stale

    def mark_stale(self) -> None:
        """Note a graph mutation; tables rebuild lazily on next use."""
        self._stale = True

    def ensure_fresh(self) -> bool:
        """Re-solve the distance tables if stale; returns True on a rebuild.

        The lazy half of the rebuild policy: mutation batches stay cheap
        and the (two batch solves) rebuild cost lands on the first
        approximate answer that needs current tables.  Raises
        ``RuntimeError`` for a stale index that was constructed directly
        without a bound graph — it has nothing to rebuild from.
        """
        if not self._stale:
            return False
        if self._graph is None:
            raise RuntimeError(
                "stale LandmarkIndex has no bound graph to rebuild from; "
                "construct with LandmarkIndex.build() to enable lazy rebuilds"
            )
        self.dist_from = batch_delta_stepping(self._graph, self.landmarks, delta=self._delta).distances
        if self._graph.directed:
            self.dist_to = batch_delta_stepping(
                self._graph.reverse(), self.landmarks, delta=self._delta
            ).distances
        else:
            self.dist_to = self.dist_from
        self._stale = False
        self.rebuilds += 1
        return True

    def upper_bound(self, source: int, target: int) -> float:
        """``min_L d(s→L) + d(L→t)`` — the length of a real s→L→t walk."""
        if source == target:
            return 0.0
        via = self.dist_to[:, source] + self.dist_from[:, target]
        return float(via.min()) if len(via) else INF

    def lower_bound(self, source: int, target: int) -> float:
        """The ALT lower bound (0 when no landmark separates the pair)."""
        if source == target:
            return 0.0
        # a landmark reaching neither endpoint yields inf - inf; the NaN
        # (and its RuntimeWarning) is expected and filtered out below
        with np.errstate(invalid="ignore"):
            fwd = self.dist_from[:, target] - self.dist_from[:, source]
            bwd = self.dist_to[:, source] - self.dist_to[:, target]
        bounds = np.concatenate([fwd, bwd])
        bounds = bounds[np.isfinite(bounds)]
        return float(max(bounds.max(initial=0.0), 0.0))

    def estimate(self, source: int, target: int) -> DistanceEstimate:
        """Both bounds as one interval (``[lower, inf]`` when no landmark
        connects the pair)."""
        n = self.dist_from.shape[1]
        if not (0 <= source < n and 0 <= target < n):
            raise IndexError(f"query vertex out of range [0, {n})")
        return DistanceEstimate(
            lower=self.lower_bound(source, target),
            upper=self.upper_bound(source, target),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LandmarkIndex<L={self.num_landmarks}, n={self.dist_from.shape[1]}>"

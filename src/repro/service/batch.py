"""Multi-source batched delta-stepping: K searches per relaxation wave.

The paper expresses a relaxation wave as ``tReq = A_Lᵀ (min.+) (t ∘ tBi)``
— a ``vxm`` over one frontier *vector*.  Stacking K frontiers as the rows
of a K×n matrix lifts the same wave to one ``mxm``: every phase relaxes
the light (or heavy) edges of **all K searches simultaneously**, so the
per-phase fixed costs (bucket filtering, candidate grouping, the Python
dispatch itself) are paid once per wave instead of once per source.  That
amortization is where the batch throughput win comes from — the same
bucket-fusion observation as Dong et al. 2021 ("Efficient Stepping
Algorithms and Implementations for Parallel Shortest Paths").

Two engines, mirroring the repo's single-source pair:

- ``method="fused"`` (default) — the throughput engine.  State is one
  flattened dense array over the K×n key space (``key = k·n + v``); each
  wave expands CSR rows for every (row, frontier-vertex) pair, offsets
  targets into the owning source's row, and **scatter-mins** the
  candidates into a reusable dense request buffer (``np.minimum.at`` —
  an indexed ufunc loop, linear in candidates, no per-wave sort).  The
  single-source fused kernel pays a sort per wave to group candidates;
  the batch engine replaces it with O(candidates) scatter against the
  dense key space that batching makes affordable.
- ``method="graphblas"`` — the linear-algebraic form, written call-by-call
  with :mod:`repro.graphblas.operations` matrix kernels (``mxm`` with the
  ``(min, +)`` semiring, masked ``apply``, ``ewise_add``).  Slower, but
  it *is* the paper's formulation lifted to matrices, and the tests pin
  both engines to per-source Dijkstra.

Bucket synchronization: all K sources share the global bucket index
``i`` (bucket = ``[iΔ, (i+1)Δ)``).  Relaxations never cross rows, so each
row's bucket sequence is identical to its own single-source run; sources
with nothing in bucket ``i`` simply contribute no frontier entries and
wait.  Distances are therefore *exactly* those of K independent runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph
from ..kernels import RelaxWorkspace, check_kernel, min_by_target
from ..sssp.delta import choose_delta
from ..sssp.fused import split_csr_light_heavy
from ..sssp.result import INF, SSSPResult

__all__ = [
    "BatchSSSPResult",
    "batch_delta_stepping",
    "batch_fused_delta_stepping",
    "batch_graphblas_delta_stepping",
    "batch_stepper_loop",
    "BATCH_METHODS",
]

#: flattened K·n state-size guard — past this, chunk the sources instead
#: (the service planner does; see :mod:`repro.service.planner`)
MAX_STATE_ENTRIES = 1 << 27

#: shared empty frontier for the batch relax's edgeless-wave return (the
#: ``hot-loop-alloc`` rule's module-constant whitelist pattern)
_EMPTY_V = np.empty(0, dtype=np.int64)


@dataclass
class BatchSSSPResult:
    """Distances from K sources plus aggregate work counters.

    ``distances[k, v]`` is the shortest distance from ``sources[k]`` to
    ``v`` (``inf`` when unreachable).  Counters aggregate over the whole
    batch; phases count shared waves, not per-source waves — that gap is
    the batching win.
    """

    distances: np.ndarray
    sources: np.ndarray
    delta: float
    method: str
    buckets_processed: int = 0
    phases: int = 0
    relaxations: int = 0
    updates: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def num_sources(self) -> int:
        return len(self.sources)

    @property
    def n(self) -> int:
        return self.distances.shape[1]

    def result_for(self, k: int) -> SSSPResult:
        """Row *k* repackaged as a single-source :class:`SSSPResult`."""
        if not 0 <= k < self.num_sources:
            raise IndexError(f"batch row {k} out of range [0, {self.num_sources})")
        return SSSPResult(
            distances=self.distances[k].copy(),
            source=int(self.sources[k]),
            delta=self.delta,
            method=self.method,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchSSSPResult<{self.method}: K={self.num_sources}, n={self.n}, "
            f"phases={self.phases}>"
        )


def _check_sources(graph: Graph, sources) -> np.ndarray:
    src = np.asarray(sources, dtype=np.int64).reshape(-1)
    if len(src) == 0:
        raise ValueError("batch needs at least one source")
    n = graph.num_vertices
    if src.min() < 0 or src.max() >= n:
        raise IndexError(f"source out of range [0, {n})")
    return src


def batch_fused_delta_stepping(
    graph: Graph, sources, delta: float = 1.0, kernel: str = "scatter"
) -> BatchSSSPResult:
    """Fused batch engine: scatter-min relaxation waves on the K·n key space.

    All state lives in one flat ``float64`` array of length K·n indexed
    by ``key = k·n + v``; relaxation targets stay inside the owning row
    (``k·n + neighbor``), so one pass of the shared scatter-min kernel
    (:func:`repro.kernels.min_by_target_scatter`, backed by a
    :class:`~repro.kernels.RelaxWorkspace` sized to the flattened state)
    resolves the requests of all K searches at once.  The workspace's
    request buffer is allocated once and only its touched keys are reset
    after each wave, keeping every wave linear in its candidate count;
    the kernel's internal thin-wave compaction replaces a full-state
    scan with a sorted-unique when a wave is sparse.  *kernel* defaults
    to ``scatter`` (the batching win); ``argsort``/``auto`` are accepted
    for parity with the single-source engines.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    check_kernel(kernel)
    src = _check_sources(graph, sources)
    K, n = len(src), graph.num_vertices
    if K * n > MAX_STATE_ENTRIES:
        raise ValueError(
            f"batch state K*n = {K * n} exceeds {MAX_STATE_ENTRIES}; "
            "chunk the sources (the service planner does this)"
        )

    (ALp, ALi, ALw), (AHp, AHi, AHw) = split_csr_light_heavy(graph, delta)
    # K·n ≤ MAX_STATE_ENTRIES < 2^31, so int32 keys are safe and halve the
    # index traffic of the expansion (the hot path's memory bound)
    ALi32, AHi32 = ALi.astype(np.int32), AHi.astype(np.int32)

    t = np.full(K * n, INF, dtype=np.float64)
    t[np.arange(K, dtype=np.int64) * n + src] = 0.0
    ws = RelaxWorkspace(K * n)  # request buffer + touched mask, reused per wave
    in_bucket = np.zeros(K * n, dtype=bool)
    settled_set = np.zeros(K * n, dtype=bool)
    # shared 0..total ramp, grown on demand (a wave's total can reach K·E);
    # kept int32 here — half the index traffic of the workspace's int64 ramp
    iota = [np.arange(max(len(ALi), len(AHi), 1), dtype=np.int32)]
    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}

    # repro: hot
    def relax(indptr, indices, weights, frontier, lo, hi, track_bucket):
        verts = frontier % n
        base = (frontier - verts).astype(np.int32)  # k·n offset of each entry's row
        starts = indptr[verts].astype(np.int32)
        lengths = (indptr[verts + 1] - indptr[verts]).astype(np.int32)
        total = int(lengths.sum())
        if total == 0:
            return _EMPTY_V
        if total >= 2**31:  # pragma: no cover - int32 expansion guard
            raise ValueError("relaxation wave too large; reduce the batch size")
        if total > len(iota[0]):
            # repro: alloc-ok — geometric-style ramp regrowth, amortized away
            iota[0] = np.arange(total, dtype=np.int32)
        offsets = np.repeat(np.cumsum(lengths, dtype=np.int32) - lengths, lengths)
        flat = iota[0][:total] - offsets + np.repeat(starts, lengths)
        targets = np.repeat(base, lengths) + indices[flat]
        dists = np.repeat(t[frontier], lengths) + weights[flat]
        counters["relaxations"] += total
        # tReq = A' (min.+) frontier — the shared per-target min kernel
        # over the dense key space (batching makes the buffer pay rent)
        uts, ubest = min_by_target(targets, dists, workspace=ws, kernel=kernel)
        improved = ubest < t[uts]
        uts, ubest = uts[improved], ubest[improved]
        counters["updates"] += len(uts)
        t[uts] = ubest
        if track_bucket:
            reenter = (ubest >= lo) & (ubest < hi)
            return uts[reenter]
        return uts

    i = 0
    while True:
        finite = np.isfinite(t)
        remaining = finite & (t >= i * delta)
        if not remaining.any():
            break
        i = max(i, int(t[remaining].min() // delta))
        lo, hi = i * delta, (i + 1) * delta
        counters["buckets"] += 1
        np.logical_and(t >= lo, t < hi, out=in_bucket)
        frontier = np.nonzero(in_bucket)[0]
        settled_set[:] = False
        while len(frontier):
            counters["phases"] += 1
            settled_set[frontier] = True
            frontier = relax(ALp, ALi32, ALw, frontier, lo, hi, track_bucket=True)
        settled = np.nonzero(settled_set)[0]
        if len(settled):
            counters["phases"] += 1
            relax(AHp, AHi32, AHw, settled, lo, hi, track_bucket=False)
        i += 1

    return BatchSSSPResult(
        distances=t.reshape(K, n),
        sources=src,
        delta=delta,
        method="batch-fused",
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
    )


def batch_graphblas_delta_stepping(graph: Graph, sources, delta: float = 1.0) -> BatchSSSPResult:
    """Linear-algebraic batch engine: the Fig. 2 listing with matrix frontiers.

    Every vector of the single-source listing becomes a K×n matrix and
    every ``vxm`` becomes an ``mxm``; the call sequence is otherwise
    line-for-line the unfused :func:`repro.sssp.graphblas_sssp.graphblas_delta_stepping`.
    """
    from ..graphblas import operations as ops
    from ..graphblas.binaryop import LOR, LT, MIN
    from ..graphblas.descriptor import REPLACE
    from ..graphblas.matrix import Matrix
    from ..graphblas.monoid import MIN_MONOID
    from ..graphblas.semiring import MIN_PLUS
    from ..graphblas.types import BOOL, FP64
    from ..graphblas.unaryop import IDENTITY, range_filter, threshold_geq
    from ..sssp.graphblas_sssp import build_light_heavy_matrices

    if delta <= 0:
        raise ValueError("delta must be positive")
    src = _check_sources(graph, sources)
    K, n = len(src), graph.num_vertices

    A = graph.to_matrix()
    Al, Ah = build_light_heavy_matrices(A, delta)

    # T[k, s_k] = 0 — unstored entries are implicitly infinite
    T = Matrix.new(FP64, K, n)
    for k in range(K):
        ops.assign_scalar_matrix(T, 0.0, rows=[k], cols=[int(src[k])])

    TB = Matrix.new(BOOL, K, n)
    Tmasked = Matrix.new(FP64, K, n)
    TReq = Matrix.new(FP64, K, n)
    TLess = Matrix.new(BOOL, K, n)
    S = Matrix.new(BOOL, K, n)
    Tgeq = Matrix.new(BOOL, K, n)
    Tcomp = Matrix.new(FP64, K, n)

    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}
    i = 0

    def active_count() -> int:
        ops.apply(Tgeq, threshold_geq(i * delta), T)
        ops.apply(Tcomp, IDENTITY, T, mask=Tgeq, desc=REPLACE)
        return Tcomp.nvals

    while active_count() > 0:
        smallest = ops.reduce_matrix_to_scalar(MIN_MONOID, Tcomp)
        i = max(i, int(smallest // delta))
        counters["buckets"] += 1
        S.clear()
        ops.apply(TB, range_filter(i * delta, (i + 1) * delta), T, desc=REPLACE)
        ops.apply(Tmasked, IDENTITY, T, mask=TB, desc=REPLACE)

        while Tmasked.nvals > 0:
            counters["phases"] += 1
            # TReq = (T ∘ TBi) (min.+) A_L — K relaxation waves in one mxm
            ops.mxm(TReq, MIN_PLUS, Tmasked, Al, desc=REPLACE)
            counters["relaxations"] += TReq.nvals
            ops.ewise_add(S, LOR, S, TB)
            ops.ewise_add(TLess, LT, TReq, T, mask=TReq, desc=REPLACE)
            ops.apply(TB, range_filter(i * delta, (i + 1) * delta), TReq, mask=TLess, desc=REPLACE)
            counters["updates"] += int(np.count_nonzero(TLess.values))
            ops.ewise_add(T, MIN, T, TReq)
            ops.apply(Tmasked, IDENTITY, T, mask=TB, desc=REPLACE)

        ops.apply(Tmasked, IDENTITY, T, mask=S, desc=REPLACE)
        ops.mxm(TReq, MIN_PLUS, Tmasked, Ah, desc=REPLACE)
        counters["relaxations"] += TReq.nvals
        counters["phases"] += 1
        ops.ewise_add(T, MIN, T, TReq)
        i += 1

    distances = np.full((K, n), INF, dtype=np.float64)
    rows, cols, vals = T.to_coo()
    distances[rows, cols] = vals
    return BatchSSSPResult(
        distances=distances,
        sources=src,
        delta=delta,
        method="batch-graphblas",
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
    )


def batch_stepper_loop(
    graph: Graph, sources, stepper: str = "rho", recorder=None
) -> BatchSSSPResult:
    """K independent runs of a registered stepper, packaged as a batch.

    The adapter that lets the multi-source engine dispatch to **any**
    member of the :data:`repro.stepping.STEPPERS` portfolio: no shared
    waves (each stepper owns its schedule), but the same
    :class:`BatchSSSPResult` surface, so the service planner can route a
    tuned stepper choice through the existing execution path unchanged.
    *stepper* may carry spec params (``"sharded(shards=2)"``) — the
    auto-tuner's picks arrive in that spelling.  Counters aggregate
    across the K runs; phases here count per-source waves (there is no
    batching win to report).  A truthy *recorder* (:mod:`repro.obs`)
    forwards into every per-source solve.
    """
    from ..stepping import resolve_stepper_spec

    src = _check_sources(graph, sources)
    s, params = resolve_stepper_spec(stepper)
    if recorder:
        params = {**params, "recorder": recorder}
    K, n = len(src), graph.num_vertices
    distances = np.full((K, n), INF, dtype=np.float64)
    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}
    for k in range(K):
        r = s.solve(graph, int(src[k]), **params)
        distances[k] = r.distances
        counters["buckets"] += r.buckets_processed
        counters["phases"] += r.phases
        counters["relaxations"] += r.relaxations
        counters["updates"] += r.updates
    return BatchSSSPResult(
        distances=distances,
        sources=src,
        delta=float("nan"),
        method=f"batch-loop:{stepper}",
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
    )


BATCH_METHODS = {
    "fused": batch_fused_delta_stepping,
    "graphblas": batch_graphblas_delta_stepping,
}

#: stepper names whose batched form *is* a native engine: classic
#: delta-stepping batches through the shared-wave kernel, not a loop
_STEPPER_BATCH_ALIASES = {"delta": "fused"}


def batch_delta_stepping(
    graph: Graph,
    sources,
    delta: float | None = None,
    method: str = "fused",
    recorder=None,
) -> BatchSSSPResult:
    """Run SSSP from all *sources*, batched where the method supports it.

    Parameters
    ----------
    graph:
        A :class:`repro.graphs.Graph` (non-negative weights).
    sources:
        Sequence of source vertex ids (duplicates allowed — each gets its
        own row).
    delta:
        Bucket width Δ; ``None`` selects it automatically
        (:func:`repro.sssp.delta.choose_delta`).  Ignored by
        stepper-dispatched methods (each stepper picks its own knobs).
    method:
        ``"fused"`` (shared-wave throughput engine, default),
        ``"graphblas"`` (matrix-kernel formulation), or any stepper
        spec over the :data:`repro.stepping.STEPPERS` registry — a bare
        name or a parameterized form like ``"sharded(shards=4)"``.
        ``"delta"`` maps to the native fused engine, the rest run
        through :func:`batch_stepper_loop`.
    recorder:
        A truthy :class:`repro.obs.Recorder` wraps the native batch
        engines in a ``batch:<method>`` span (sources count as an arg)
        and forwards into stepper-dispatched solves.  Recording never
        changes the distances.
    """
    from ..stepping import STEPPERS, parse_stepper_spec

    name, params = parse_stepper_spec(method)
    name = _STEPPER_BATCH_ALIASES.get(name, name)
    if name in BATCH_METHODS:
        if params:
            raise ValueError(
                f"batch method {name!r} takes no spec params (got {method!r}); "
                "pass delta= directly"
            )
        if delta is None:
            delta = choose_delta(graph)
        if recorder:
            with recorder.span(
                "batch:" + name, sources=int(np.size(np.asarray(sources)))
            ) as sp:
                result = BATCH_METHODS[name](graph, sources, delta)
                sp.set(phases=result.phases, relaxations=result.relaxations)
            return result
        return BATCH_METHODS[name](graph, sources, delta)
    if name in STEPPERS:
        return batch_stepper_loop(graph, sources, stepper=method, recorder=recorder)
    known = ", ".join(dict.fromkeys([*sorted(BATCH_METHODS), *STEPPERS]))
    raise ValueError(f"unknown batch method {method!r}; known: {known}")

"""Distance-query service: batch SSSP engine + cache + landmarks + server.

The throughput layer on top of the reproduction.  Where :mod:`repro.sssp`
answers "one source, one run", this package serves *query traffic*:

==========================  =================================================
:mod:`~repro.service.batch`      K-source delta-stepping through shared
                                 light/heavy relaxation waves (one ``mxm``
                                 per wave instead of K ``vxm``)
:mod:`~repro.service.cache`      LRU cache of full distance vectors with
                                 mutation invalidation
:mod:`~repro.service.landmarks`  ALT-style triangle-inequality bounds for
                                 budget-constrained approximate answers
:mod:`~repro.service.planner`    coalesces pending queries, routes
                                 exact vs approximate under a latency budget
:mod:`~repro.service.server`     the synchronous request queue tying it all
                                 together, with latency percentiles and the
                                 ``mutate()`` entry point for dynamic graphs
==========================  =================================================

Entry points::

    from repro.service import batch_delta_stepping, QueryService, Query

    res = batch_delta_stepping(graph, sources=[0, 7, 42])   # K×n distances
    svc = QueryService(graph)
    print(svc.query(source=0, target=99).distance)
    svc.mutate(reweights=[(0, 99, 0.5)])   # repairs hot cache entries in place
"""

from __future__ import annotations

from .batch import (
    BATCH_METHODS,
    BatchSSSPResult,
    batch_delta_stepping,
    batch_fused_delta_stepping,
    batch_graphblas_delta_stepping,
)
from .cache import CacheStats, DistanceCache
from .landmarks import (
    LANDMARK_STRATEGIES,
    DistanceEstimate,
    LandmarkIndex,
    select_landmarks,
)
from .planner import Query, QueryPlan, QueryPlanner
from .server import MutationReport, QueryResponse, QueryService, ServiceStats

__all__ = [
    "BatchSSSPResult",
    "batch_delta_stepping",
    "batch_fused_delta_stepping",
    "batch_graphblas_delta_stepping",
    "BATCH_METHODS",
    "DistanceCache",
    "CacheStats",
    "LandmarkIndex",
    "DistanceEstimate",
    "select_landmarks",
    "LANDMARK_STRATEGIES",
    "Query",
    "QueryPlan",
    "QueryPlanner",
    "QueryService",
    "QueryResponse",
    "MutationReport",
    "ServiceStats",
]

"""Dynamic graphs: mutation batches + incremental SSSP repair.

The dynamic-SSSP layer (the SSSP-Del direction) on top of the
reproduction.  Where :mod:`repro.service` treats graphs as frozen, this
package makes them *mutable* and distance answers *repairable*:

==============================  =============================================
:mod:`~repro.dynamic.mutations`    ``apply_edge_updates`` — insert / delete /
                                   reweight batches that keep the CSR
                                   canonical and bump ``graph.epoch``
:mod:`~repro.dynamic.incremental`  ``repair_sssp`` — delta-stepping repair
                                   waves seeded from the update batch,
                                   bit-identical to a full recompute
==============================  =============================================

Entry points::

    from repro.dynamic import apply_edge_updates, repair_sssp

    applied = apply_edge_updates(graph, reweights=[(u, v, 0.2)])
    repaired = repair_sssp(graph, source, old_distances, applied)

The service layer drives both through
:meth:`repro.service.QueryService.mutate`, which repairs hot cache
entries in place and lazily rebuilds the landmark index.
"""

from __future__ import annotations

from .incremental import RepairResult, affected_vertices, repair_sssp
from .mutations import AppliedUpdates, apply_edge_updates

__all__ = [
    "AppliedUpdates",
    "apply_edge_updates",
    "RepairResult",
    "repair_sssp",
    "affected_vertices",
]

"""The graph mutation API: edge inserts, deletes, and reweights in batches.

:func:`apply_edge_updates` is the only sanctioned way to change a
:class:`~repro.graphs.graph.Graph` after construction.  It rewrites the
CSR *consistently* — rows stay sorted by target, duplicate targets stay
min-combined — and bumps :attr:`Graph.epoch`, the monotone counter that
epoch-keyed caches (:class:`repro.service.cache.DistanceCache`) and the
landmark staleness policy hang off.  Pure reweight batches take an
in-place fast path (the row structure is untouched, only ``weights``
entries are overwritten); anything that changes the sparsity pattern
rebuilds the three CSR arrays in one vectorized merge.

The returned :class:`AppliedUpdates` records the batch in *stored-edge*
granularity (undirected updates appear once per orientation) together
with the old weights, which is exactly what the incremental repair
kernel (:mod:`repro.dynamic.incremental`) needs to classify the batch
into improving (insert/decrease) and worsening (delete/increase) parts.

The vertex set is fixed: endpoints must lie in ``[0, n)``.  Growing the
graph is a different (re-allocation) operation, out of scope here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph, build_canonical_csr

__all__ = ["AppliedUpdates", "apply_edge_updates"]

_EMPTY_IDX = np.empty(0, dtype=np.int64)
_EMPTY_W = np.empty(0, dtype=np.float64)


@dataclass(frozen=True)
class AppliedUpdates:
    """One applied mutation batch, recorded per stored (directed) edge.

    Attributes
    ----------
    inserted:
        ``(src, dst, w_new)`` arrays of edges added to the CSR.
    deleted:
        ``(src, dst, w_old)`` arrays of edges removed.
    increased:
        ``(src, dst, w_old, w_new)`` arrays of reweights with
        ``w_new > w_old``.
    decreased:
        ``(src, dst, w_old, w_new)`` arrays of reweights with
        ``w_new < w_old`` (no-change reweights are dropped).
    epoch:
        The graph's epoch *after* this batch applied.
    """

    inserted: tuple[np.ndarray, np.ndarray, np.ndarray]
    deleted: tuple[np.ndarray, np.ndarray, np.ndarray]
    increased: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    decreased: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    epoch: int

    @property
    def num_updates(self) -> int:
        """Stored-edge update count (undirected edges count twice)."""
        return (
            len(self.inserted[0])
            + len(self.deleted[0])
            + len(self.increased[0])
            + len(self.decreased[0])
        )

    @property
    def decrease_only(self) -> bool:
        """True when no update can lengthen any shortest path.

        Decrease-only batches admit the cheap repair mode: cached
        distances stay valid upper bounds, so repair seeds buckets from
        the affected heads only, with no invalidation phase.
        """
        return len(self.deleted[0]) == 0 and len(self.increased[0]) == 0

    def improving_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inserted + decreased edges as ``(src, dst, w_new)``."""
        return (
            np.concatenate([self.inserted[0], self.decreased[0]]),
            np.concatenate([self.inserted[1], self.decreased[1]]),
            np.concatenate([self.inserted[2], self.decreased[3]]),
        )

    def worsening_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deleted + increased edges as ``(src, dst, w_old)``."""
        return (
            np.concatenate([self.deleted[0], self.increased[0]]),
            np.concatenate([self.deleted[1], self.increased[1]]),
            np.concatenate([self.deleted[2], self.increased[2]]),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AppliedUpdates<+{len(self.inserted[0])} -{len(self.deleted[0])} "
            f"↑{len(self.increased[0])} ↓{len(self.decreased[0])}, "
            f"epoch={self.epoch}>"
        )


def _as_edge_arrays(spec, n: int, kind: str, with_weights: bool):
    """Normalize an update spec into ``(src, dst[, w])`` int64/float64 arrays.

    Accepts a tuple/list of parallel arrays or an iterable of per-edge
    tuples; validates endpoint range and (for weighted specs) weight
    non-negativity.
    """
    width = 3 if with_weights else 2
    empty = (_EMPTY_IDX, _EMPTY_IDX, _EMPTY_W) if with_weights else (_EMPTY_IDX, _EMPTY_IDX)
    if spec is None:
        return empty
    if isinstance(spec, tuple):
        # tuple of parallel arrays: (src, dst[, w])
        if len(spec) != width:
            raise ValueError(f"{kind} expects {width} parallel arrays, got {len(spec)}")
        src = np.asarray(spec[0], dtype=np.int64).reshape(-1)
        dst = np.asarray(spec[1], dtype=np.int64).reshape(-1)
        w = np.asarray(spec[2], dtype=np.float64).reshape(-1) if with_weights else None
        if len(src) != len(dst) or (w is not None and len(w) != len(src)):
            raise ValueError(f"{kind} arrays must have equal length")
    else:
        arr = np.asarray(list(spec), dtype=np.float64)
        if arr.size == 0:
            return empty
        arr = np.atleast_2d(arr)
        if arr.shape[1] != width:
            raise ValueError(f"{kind} entries must be {width}-tuples, got shape {arr.shape}")
        src = arr[:, 0].astype(np.int64)
        dst = arr[:, 1].astype(np.int64)
        w = arr[:, 2].astype(np.float64) if with_weights else None
    if len(src) and (src.min() < 0 or dst.min() < 0 or src.max() >= n or dst.max() >= n):
        raise ValueError(f"{kind} endpoint out of range [0, {n})")
    if np.any(src == dst):
        raise ValueError(f"{kind} contains a self-loop (graphs are simple)")
    if w is not None:
        if np.any(w < 0):
            raise ValueError(f"{kind} contains a negative weight")
        return src, dst, w
    return src, dst


def _symmetrize(src, dst, *parallel):
    """Duplicate each update with swapped endpoints (undirected storage)."""
    out = [np.concatenate([src, dst]), np.concatenate([dst, src])]
    for p in parallel:
        out.append(np.concatenate([p, p]))
    return tuple(out)


def apply_edge_updates(
    graph: Graph,
    inserts=None,
    deletes=None,
    reweights=None,
    strict: bool = True,
) -> AppliedUpdates:
    """Apply one batch of edge updates to *graph*, in place.

    Parameters
    ----------
    graph:
        The graph to mutate.  Its CSR arrays are replaced (or, for pure
        reweights, overwritten in place) and :attr:`Graph.epoch` is
        bumped by one.
    inserts:
        New edges as ``(src, dst, w)`` — parallel arrays or an iterable
        of triples.  Inserting an existing edge is an error under
        ``strict``; otherwise it min-combines with the stored weight
        (recorded as a decrease when it wins, dropped when it loses).
    deletes:
        Edges to remove as ``(src, dst)``.  Missing edges are an error
        under ``strict``, silently skipped otherwise.
    reweights:
        ``(src, dst, w_new)`` weight overwrites for existing edges.
        Missing edges are an error under ``strict``, skipped otherwise.
    strict:
        Raise on inconsistent requests (default) instead of coercing.

    For undirected graphs every update is applied to both stored
    orientations automatically, so callers describe each undirected edge
    once (either orientation).

    Returns the :class:`AppliedUpdates` record consumed by
    :func:`repro.dynamic.incremental.repair_sssp`.

    Notes
    -----
    An edge may appear in at most one category per batch; the same edge
    in two categories (e.g. deleted and reweighted) raises ``ValueError``
    regardless of ``strict`` — the composite semantics would be
    order-dependent.
    """
    n = graph.num_vertices
    ins_s, ins_d, ins_w = _as_edge_arrays(inserts, n, "inserts", with_weights=True)
    del_s, del_d = _as_edge_arrays(deletes, n, "deletes", with_weights=False)
    rw_s, rw_d, rw_w = _as_edge_arrays(reweights, n, "reweights", with_weights=True)

    if not graph.directed:
        ins_s, ins_d, ins_w = _symmetrize(ins_s, ins_d, ins_w)
        del_s, del_d = _symmetrize(del_s, del_d)
        rw_s, rw_d, rw_w = _symmetrize(rw_s, rw_d, rw_w)

    graph.canonicalize_rows()  # binary-searchable edge keys
    src_all = graph.row_sources()
    edge_keys = src_all * np.int64(n) + graph.indices  # ascending (canonical CSR)

    def locate(s, d, kind):
        """Positions of requested edges in the CSR; -1 where absent."""
        keys = s * np.int64(n) + d
        if len(np.unique(keys)) != len(keys):
            raise ValueError(f"duplicate edge in {kind} batch")
        if len(edge_keys) == 0:  # empty graph: nothing to find
            return np.full(len(keys), -1, dtype=np.int64)
        pos = np.searchsorted(edge_keys, keys)
        in_range = pos < len(edge_keys)
        found = in_range & (edge_keys[np.minimum(pos, len(edge_keys) - 1)] == keys)
        return np.where(found, pos, -1)

    ins_pos = locate(ins_s, ins_d, "inserts")
    del_pos = locate(del_s, del_d, "deletes")
    rw_pos = locate(rw_s, rw_d, "reweights")

    # cross-category conflicts are order-dependent nonsense: reject always
    ins_keys = ins_s * np.int64(n) + ins_d
    del_keys = del_s * np.int64(n) + del_d
    rw_keys = rw_s * np.int64(n) + rw_d
    for a, b, what in (
        (ins_keys, del_keys, "inserted and deleted"),
        (ins_keys, rw_keys, "inserted and reweighted"),
        (del_keys, rw_keys, "deleted and reweighted"),
    ):
        if len(a) and len(b) and len(np.intersect1d(a, b)):
            raise ValueError(f"the same edge is {what} in one batch")

    if strict:
        if np.any(ins_pos >= 0):
            k = int(np.nonzero(ins_pos >= 0)[0][0])
            raise ValueError(
                f"insert of existing edge {ins_s[k]} -> {ins_d[k]} (use reweights)"
            )
        if np.any(del_pos < 0):
            k = int(np.nonzero(del_pos < 0)[0][0])
            raise ValueError(f"delete of missing edge {del_s[k]} -> {del_d[k]}")
        if np.any(rw_pos < 0):
            k = int(np.nonzero(rw_pos < 0)[0][0])
            raise ValueError(f"reweight of missing edge {rw_s[k]} -> {rw_d[k]}")
    else:
        # coerce: existing "inserts" become reweight candidates via
        # min-combine; missing deletes/reweights are dropped
        exist = ins_pos >= 0
        if exist.any():
            keep_new = ins_w[exist] < graph.weights[ins_pos[exist]]
            rw_s = np.concatenate([rw_s, ins_s[exist][keep_new]])
            rw_d = np.concatenate([rw_d, ins_d[exist][keep_new]])
            rw_w = np.concatenate([rw_w, ins_w[exist][keep_new]])
            rw_pos = np.concatenate([rw_pos, ins_pos[exist][keep_new]])
            ins_s, ins_d, ins_w = ins_s[~exist], ins_d[~exist], ins_w[~exist]
        miss = del_pos < 0
        del_s, del_d, del_pos = del_s[~miss], del_d[~miss], del_pos[~miss]
        miss = rw_pos < 0
        rw_s, rw_d, rw_w, rw_pos = rw_s[~miss], rw_d[~miss], rw_w[~miss], rw_pos[~miss]

    # classify reweights against the stored weights
    w_old_rw = graph.weights[rw_pos] if len(rw_pos) else _EMPTY_W
    up = rw_w > w_old_rw
    down = rw_w < w_old_rw
    increased = (rw_s[up], rw_d[up], w_old_rw[up], rw_w[up])
    decreased = (rw_s[down], rw_d[down], w_old_rw[down], rw_w[down])
    deleted = (del_s, del_d, graph.weights[del_pos] if len(del_pos) else _EMPTY_W)
    inserted = (ins_s, ins_d, ins_w)

    if len(ins_s) == 0 and len(del_s) == 0:
        # pure-reweight fast path: sparsity pattern untouched, overwrite
        # the weight entries in place
        if len(rw_pos):
            graph.weights[rw_pos] = rw_w
    else:
        keep = np.ones(graph.num_edges, dtype=bool)
        keep[del_pos] = False
        new_w = graph.weights.copy()
        if len(rw_pos):
            new_w[rw_pos] = rw_w
        # one merge pass back to canonical CSR (kept edges are already
        # key-sorted; the argsort is dominated by the insert tail, and the
        # keys are unique by construction — no dedupe scan needed)
        graph.indptr, graph.indices, graph.weights = build_canonical_csr(
            np.concatenate([src_all[keep], ins_s]),
            np.concatenate([graph.indices[keep], ins_d]),
            np.concatenate([new_w[keep], ins_w]),
            n,
            dedupe=False,
        )

    graph.epoch += 1
    return AppliedUpdates(
        inserted=inserted,
        deleted=deleted,
        increased=increased,
        decreased=decreased,
        epoch=graph.epoch,
    )

"""Incremental SSSP repair: delta-stepping waves seeded from an update batch.

Given a distance vector solved against the *pre-mutation* graph and the
:class:`~repro.dynamic.mutations.AppliedUpdates` record of one batch,
:func:`repair_sssp` produces the distance vector of the *post-mutation*
graph — bit-identical to a full :func:`repro.sssp.fused.fused_delta_stepping`
recompute — while touching only the region the updates actually reach.
The repair waves are the same light/heavy bucket machinery as the fused
solver (the stepping-algorithm view of Dong et al. 2021); what changes is
the seeding, following the dynamic-SSSP decomposition of SSSP-Del
(Javanrood & Ripeanu):

- **decrease-only batches** (inserts, weight decreases): the cached
  distances remain valid upper bounds, so the repair scatter-mins
  ``d[u] ⊕ w_new`` through the improving edges and seeds buckets with
  only the heads that actually improved;
- **general batches** (deletes, weight increases): distances downstream
  of a lost shortest path are stale-low and must be *invalidated* first.
  The affected set is found on the predecessor structure — the tight-edge
  DAG ``{(u, v) : d[v] == d[u] ⊕ w(u, v)}``, i.e. every vertex's full set
  of shortest-path predecessors, not one spanning tree — by support
  counting: a vertex is affected once every tight in-edge it had comes
  from an affected vertex (Kahn's algorithm over the DAG; exact for
  positive weights).  Zero-weight edges can close tight *cycles*, where
  support counting under-marks, so their presence switches to the
  conservative closure (affected if *any* tight predecessor is affected)
  — a superset, so repair stays exact, just larger.  Affected distances
  are reset to ``inf`` and re-seeded from the one vectorized pass that
  gathers every edge crossing from the intact region into the hole.

Bit-identity with the full recompute is not a coincidence: both
algorithms run min-plus relaxation with the same float additions to
quiescence, and the quiescent point — ``d[v] ≤ d[u] ⊕ w`` on every edge,
every value witnessed by a path — is unique because IEEE addition is
monotone.  Processing order cannot change the answer, only the work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..kernels import gather_candidates, min_by_target, workspace_for
from ..sssp.delta import choose_delta
from ..sssp.fused import split_csr_light_heavy
from ..sssp.result import INF
from .mutations import AppliedUpdates

__all__ = ["RepairResult", "repair_sssp", "affected_vertices"]


@dataclass(frozen=True)
class RepairResult:
    """The repaired distances plus the work the repair actually did.

    ``mode`` is ``"noop"`` (empty batch), ``"decrease-only"`` (no
    invalidation phase), or ``"general"``.  ``affected`` counts vertices
    invalidated through the predecessor structure; ``seeds`` counts the
    vertices whose tentative distance the seeding phase touched —
    together they bound the repaired region.  Bucket/phase/relaxation
    counters mirror :class:`repro.sssp.result.SSSPResult`.
    """

    distances: np.ndarray
    source: int
    delta: float
    mode: str
    affected: int = 0
    seeds: int = 0
    buckets: int = 0
    phases: int = 0
    relaxations: int = 0
    updates: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RepairResult<{self.mode}: affected={self.affected}, "
            f"seeds={self.seeds}, buckets={self.buckets}, phases={self.phases}>"
        )


def _expand_targets(indptr: np.ndarray, targets: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """All entries of *targets* in the rows of *frontier* (CSR expansion)."""
    starts = indptr[frontier]
    lengths = indptr[frontier + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lengths)
    return targets[flat]


def affected_vertices(
    graph: Graph,
    distances: np.ndarray,
    changed: tuple[np.ndarray, np.ndarray, np.ndarray],
    source: int,
    edges: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Boolean mask of vertices whose cached distance lost its support.

    *changed* is ``(src, dst, w_old)`` of every stored edge that no
    longer exists at its old weight — deleted, increased, **and
    decreased** edges alike.  A decreased edge cannot worsen its head by
    itself, but in a mixed batch its head's old support evaporates just
    the same (the edge is no longer tight at ``w_old``), and if the tail
    is worsened the head must re-derive its distance — omitting
    decreases here is exactly the under-marking that lets stale-low
    distances survive.  *graph* is the post-mutation graph; *distances*
    the pre-mutation solution.  Support counting over the tight-edge DAG
    of the new graph (see module docstring); falls back to the
    conservative closure when zero-weight edges could close tight
    cycles.  The source is never affected.  *edges* lets the caller pass
    an already-materialized ``to_edges()`` triple so the O(E) export is
    paid once per repair.
    """
    n = graph.num_vertices
    d = distances
    w_src, w_dst, w_old = changed
    aff = np.zeros(n, dtype=bool)
    if len(w_src) == 0:
        return aff
    # roots: heads of worsened edges that were tight (supporting) at the
    # old weight — float equality is exact because the old solve computed
    # d[dst] as d[src] ⊕ w_old along supporting edges
    finite = np.isfinite(d[w_src])
    root_mask = finite & (d[w_dst] == d[w_src] + w_old)
    roots = np.unique(w_dst[root_mask])
    roots = roots[roots != source]
    if len(roots) == 0:
        return aff

    # the tight-edge DAG of the post-mutation graph (one O(E) pass); CSR
    # order keeps tsrc sorted, so the DAG is itself CSR-addressable
    srcs, dsts, w = edges if edges is not None else graph.to_edges()
    tight = np.isfinite(d[srcs]) & (d[dsts] == d[srcs] + w)
    tsrc, tdst = srcs[tight], dsts[tight]
    t_indptr = np.concatenate(
        [[0], np.cumsum(np.bincount(tsrc, minlength=n))]
    ).astype(np.int64)

    exact = not bool((graph.weights == 0).any())
    if exact:
        # Kahn over the tight DAG: a root with surviving support is NOT
        # affected; a vertex is affected once its support count hits zero
        support = np.bincount(tdst, minlength=n)
        frontier = roots[support[roots] == 0]
        aff[frontier] = True
        while len(frontier):
            hit = _expand_targets(t_indptr, tdst, frontier)
            if len(hit) == 0:
                break
            np.subtract.at(support, hit, 1)
            newly = np.unique(hit)
            newly = newly[(support[newly] == 0) & ~aff[newly]]
            newly = newly[newly != source]
            aff[newly] = True
            frontier = newly
    else:
        # zero-weight tight cycles defeat support counting: take the
        # closure instead (over-marking is exact, only more work)
        aff[roots] = True
        frontier = roots
        while len(frontier):
            hit = _expand_targets(t_indptr, tdst, frontier)
            newly = np.unique(hit)
            newly = newly[~aff[newly] & (newly != source)]
            aff[newly] = True
            frontier = newly
        aff[source] = False
    return aff


def repair_sssp(
    graph: Graph,
    source: int,
    distances: np.ndarray,
    updates: AppliedUpdates,
    delta: float | None = None,
    validate: bool = False,
    stepper: str | None = None,
    recorder=None,
) -> RepairResult:
    """Repair a cached distance vector after one applied update batch.

    Parameters
    ----------
    graph:
        The **post-mutation** graph (as left by
        :func:`repro.dynamic.apply_edge_updates`).
    source:
        The solve's source vertex.
    distances:
        The distance vector solved against the pre-mutation graph (not
        modified; cached read-only arrays are accepted).
    updates:
        The :class:`AppliedUpdates` record of the batch.
    delta:
        Bucket width for the repair waves (``None``: auto-chosen on the
        new graph).  Any positive Δ yields the same distances.
    validate:
        Also run the full recompute and raise ``RuntimeError`` on any
        mismatch (for tests and paranoid callers).
    stepper:
        Run the repair waves on a :data:`repro.stepping.STEPPERS`
        algorithm instead of the built-in Δ-bucket loop — any member
        whose ``supports_resolve`` is true (``"rho"``, ``"radius"``,
        ``"delta-star"``, ``"sharded"``; specs with params like
        ``"sharded(shards=4)"`` are accepted).  The seeded state is
        identical either way; only the re-relaxation schedule changes,
        so the repaired distances do not.  ``None`` (and ``"delta"``)
        keep the built-in loop.
    recorder:
        A truthy :class:`repro.obs.Recorder` wraps the repair in a
        ``repair`` span (mode, affected, seeds, phases as args),
        observes the wall time into a ``repair.ms`` histogram, and
        forwards into the stepper's resolve path.  Recording never
        changes the repaired distances.

    Returns a :class:`RepairResult` whose ``distances`` are bit-identical
    to ``fused_delta_stepping(graph, source, delta).distances``.
    """
    if not recorder:
        return _repair_sssp(
            graph, source, distances, updates,
            delta=delta, validate=validate, stepper=stepper,
        )
    t0 = time.perf_counter()
    # first touch fixes the buckets: repairs are ms-scale, so pin the
    # sub-ms "latency-ms" preset before the first observe
    recorder.metrics.histogram("repair.ms", buckets="latency-ms")
    with recorder.span("repair", source=int(source)) as sp:
        result = _repair_sssp(
            graph, source, distances, updates,
            delta=delta, validate=validate, stepper=stepper, recorder=recorder,
        )
        sp.set(
            mode=result.mode, affected=result.affected,
            seeds=result.seeds, phases=result.phases,
        )
    recorder.observe("repair.ms", (time.perf_counter() - t0) * 1e3)
    recorder.inc("repair.runs")
    return result


def _repair_sssp(
    graph: Graph,
    source: int,
    distances: np.ndarray,
    updates: AppliedUpdates,
    delta: float | None = None,
    validate: bool = False,
    stepper: str | None = None,
    recorder=None,
) -> RepairResult:
    """:func:`repair_sssp` body (the public wrapper adds the span)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    d = np.array(distances, dtype=np.float64)  # private writable copy
    if d.ndim != 1 or len(d) != n:
        raise ValueError(f"expected a length-{n} distance vector, got shape {d.shape}")
    if delta is None:
        delta = choose_delta(graph)
    if delta <= 0:
        raise ValueError("delta must be positive")

    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}
    dirty = np.zeros(n, dtype=bool)
    mode = "noop"
    affected_count = 0
    seed_count = 0

    # -- invalidation phase (deletes / increases) ---------------------------
    worsened = updates.worsening_edges()
    if len(worsened[0]):
        mode = "general"
        # support loss is keyed on *old-weight* tightness, which decreased
        # edges forfeit too — fold them into the root candidates
        dec_s, dec_d, dec_wold, _ = updates.decreased
        changed = (
            np.concatenate([worsened[0], dec_s]),
            np.concatenate([worsened[1], dec_d]),
            np.concatenate([worsened[2], dec_wold]),
        )
        edges = graph.to_edges()  # shared by affected set + boundary seeding
        aff = affected_vertices(graph, d, changed, source, edges=edges)
        affected_count = int(aff.sum())
        if affected_count:
            d[aff] = INF
            # boundary seeding: every edge from the intact region into the
            # hole, in one vectorized pass
            srcs, dsts, w = edges
            into = aff[dsts] & ~aff[srcs] & np.isfinite(d[srcs])
            if into.any():
                heads = dsts[into]
                np.minimum.at(d, heads, d[srcs[into]] + w[into])
                dirty[heads] = True

    # -- improvement seeding (inserts / decreases) --------------------------
    imp_src, imp_dst, imp_w = updates.improving_edges()
    if len(imp_src):
        if mode == "noop":
            mode = "decrease-only"
        ok = np.isfinite(d[imp_src])
        s, t, w = imp_src[ok], imp_dst[ok], imp_w[ok]
        cand = d[s] + w
        better = cand < d[t]
        if better.any():
            np.minimum.at(d, t[better], cand[better])
            dirty[t[better]] = True

    seed_count = int(dirty.sum())

    # -- repair waves: dirty-driven re-relaxation ---------------------------
    if dirty.any() and stepper not in (None, "delta"):
        # tuned-stepper repair: the seeded (d, dirty) state is exactly the
        # resolve() contract of the stepping framework
        from ..stepping import resolve_stepper_spec

        s, params = resolve_stepper_spec(stepper)
        if not s.supports_resolve:
            raise ValueError(
                f"stepper {stepper!r} cannot run seeded repair (no resolve support)"
            )
        if recorder:
            params = {**params, "recorder": recorder}
        c = s.resolve(graph, d, dirty, **params)
        counters["buckets"] += c["steps"]
        counters["phases"] += c["phases"]
        counters["relaxations"] += c["relaxations"]
        counters["updates"] += c["updates"]
    elif dirty.any():
        (ALp, ALi, ALw), (AHp, AHi, AHw) = split_csr_light_heavy(graph, delta)
        ws = workspace_for(graph)

        def relax(indptr, indices, weights, frontier):
            targets, dists = gather_candidates(indptr, indices, weights, frontier, d, ws)
            if targets is None:
                return np.empty(0, dtype=np.int64)
            counters["relaxations"] += len(targets)
            uts, ubest = min_by_target(targets, dists, workspace=ws)
            improved = ubest < d[uts]
            uts, ubest = uts[improved], ubest[improved]
            counters["updates"] += len(uts)
            d[uts] = ubest
            return uts

        settled_set = np.zeros(n, dtype=bool)
        i = 0
        while True:
            rem = dirty & np.isfinite(d)
            if not rem.any():
                break
            i = max(i, int(d[rem].min() // delta))
            lo, hi = i * delta, (i + 1) * delta
            counters["buckets"] += 1
            in_bucket = rem & (d >= lo) & (d < hi)
            frontier = np.nonzero(in_bucket)[0]
            dirty[frontier] = False
            settled_set[:] = False
            while len(frontier):
                counters["phases"] += 1
                settled_set[frontier] = True
                newly = relax(ALp, ALi, ALw, frontier)
                if len(newly) == 0:
                    break
                in_cur = (d[newly] >= lo) & (d[newly] < hi)
                frontier = newly[in_cur]
                # re-entrants are being handled now — clear any pending
                # dirty flag or the outer loop would wait on them forever
                dirty[frontier] = False
                dirty[newly[~in_cur]] = True
            settled = np.nonzero(settled_set)[0]
            if len(settled):
                counters["phases"] += 1
                newly = relax(AHp, AHi, AHw, settled)
                dirty[newly] = True
            i += 1

    if validate:
        from ..sssp.fused import fused_delta_stepping

        oracle = fused_delta_stepping(graph, source, delta).distances
        if not np.array_equal(d, oracle):
            bad = int(np.nonzero(d != oracle)[0][0])
            raise RuntimeError(
                f"incremental repair diverged from recompute at vertex {bad}: "
                f"{d[bad]} != {oracle[bad]}"
            )

    return RepairResult(
        distances=d,
        source=source,
        delta=float(delta),
        mode=mode,
        affected=affected_count,
        seeds=seed_count,
        buckets=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
    )

"""Command-line interface: ``python -m repro <command>`` / ``repro-sssp``.

Commands map one-to-one onto the experiment registry plus a few
utilities:

==========  ==================================================================
fig3        regenerate Figure 3 (unfused vs fused sequential runtime)
fig4        regenerate Figure 4 (task-parallel speedup; simulated by default)
profile     regenerate the §VI.C operation-share breakdown
run         one SSSP run with any implementation or stepper, printing the summary
query       answer distance queries through the service layer (cache + batch)
trace       record one traced run (solve + queries) as Chrome trace JSON
report      render a recorded run (or a saved trace JSON) as a markdown/HTML report
metrics     OpenMetrics exposition of a recorded run, optionally served for scraping
bench-diff  diff fresh BENCH_*.json against committed baselines (regression gate)
serve-bench regenerate the SERVE experiment (batched vs looped throughput)
mutate-bench regenerate the DYN experiment (incremental repair vs recompute)
step-bench  regenerate the STEP experiment (stepping portfolio + tuner pick)
shard-bench regenerate the SHARD experiment (partition-parallel speedup + comm volume)
kernel-bench regenerate the KERNEL experiment (relaxation kernels vs the seed loop)
steppers    list the stepping-algorithm registry and Δ strategies
suite       list the dataset suite with structural statistics
translate   show the IR translation pipeline + fusion report
lint        run the repo's static-analysis rules (repro.analysis.lint)
chaos       run the fault-tolerance matrix + serving-tier breaker drill
==========  ==================================================================

``run``, ``query``, and ``serve-bench`` take ``--stepper SPEC`` to pin a
stepping algorithm — a registry name or a parameterized spec such as
``"sharded(shards=4,partitioner=bfs)"`` or ``"delta(kernel=scatter)"`` —
and ``--auto`` to let the per-graph auto-tuner pick.  ``run`` and
``query`` take ``--trace PATH`` to record the run through
:mod:`repro.obs` (Chrome trace JSON, loadable in Perfetto); ``trace`` is
the dedicated command for that, and its ``--overhead-smoke`` mode is the
CI gate keeping the disabled recording path under 3%.

Every bench runner (``serve-bench``, ``mutate-bench``, ``step-bench``,
``shard-bench``, ``kernel-bench``) also writes its rows as
``BENCH_<NAME>.json`` next to the repo root through the shared writer in
:mod:`repro.bench.registry` — the machine-readable perf trajectory.
``bench-diff`` is the consumer: it compares a fresh run's JSON against
the committed baselines (and the ``BENCH_HISTORY.jsonl`` noise ledger)
and exits non-zero on regression; ``report`` turns a recorded run into
a shareable document; ``metrics`` exposes the same run's registry as
OpenMetrics text (``--serve`` keeps a scrape endpoint up).
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-sssp",
        description="Delta-stepping SSSP / GraphBLAS reproduction harness",
    )
    sub = p.add_subparsers(dest="command", required=True)

    for fig in ("fig3", "fig4", "profile"):
        sp = sub.add_parser(fig, help=f"regenerate {fig.upper()} from the paper")
        sp.add_argument("--suite", default="ci", choices=["ci", "paper"], help="graph suite (default: ci)")
        if fig == "fig3":
            sp.add_argument("--repeats", type=int, default=3)
        if fig == "fig4":
            sp.add_argument("--real", action="store_true", help="time real threads instead of the simulated schedule")
            sp.add_argument("--threads", type=int, nargs="+", default=[2, 4])

    def add_stepper_flags(sp):
        sp.add_argument("--stepper", default=None,
                        help="pin a stepping algorithm: a registry name or a spec "
                             "like 'sharded(shards=4,partitioner=bfs)' (see `steppers`)")
        sp.add_argument("--auto", action="store_true",
                        help="let the per-graph auto-tuner pick the stepper")

    def add_trace_flag(sp):
        sp.add_argument("--trace", metavar="PATH", default=None,
                        help="record a Chrome-trace JSON of the run to PATH "
                             "(open in Perfetto / chrome://tracing)")

    sp = sub.add_parser("run", help="run one SSSP configuration")
    sp.add_argument("graph", help="dataset name (see `suite`)")
    sp.add_argument("--method", default="fused")
    sp.add_argument("--source", type=int, default=None, help="default: largest-component vertex")
    sp.add_argument("--delta", type=float, default=None)
    sp.add_argument("--weights", default="unit")
    sp.add_argument("--verify", action="store_true", help="validate against Dijkstra")
    add_stepper_flags(sp)
    add_trace_flag(sp)

    sp = sub.add_parser("query", help="answer distance queries via the service layer")
    sp.add_argument("graph", help="dataset name (see `suite`)")
    sp.add_argument("--source", type=int, default=None, help="default: largest-component vertex")
    sp.add_argument("--target", type=int, default=None, help="point query target (default: distance summary)")
    sp.add_argument("--weights", default="unit")
    sp.add_argument("--repeat", type=int, default=2, help="ask the same query N times (shows the cache working)")
    sp.add_argument("--landmarks", type=int, default=0, help="build an ALT index with N landmarks and print bounds")
    add_stepper_flags(sp)
    add_trace_flag(sp)

    sp = sub.add_parser(
        "trace",
        help="record one traced run (solve + service queries) as Chrome trace JSON",
    )
    sp.add_argument("graph", nargs="?", default="ci-ws",
                    help="dataset name (default: ci-ws; see `suite`)")
    sp.add_argument("--stepper", default="delta",
                    help="stepper spec to trace, e.g. 'sharded(shards=4,partitioner=bfs)' "
                         "(default: delta)")
    sp.add_argument("--weights", default="unit")
    sp.add_argument("--queries", type=int, default=8,
                    help="also serve N point queries through a recorded QueryService "
                         "(0 disables; default: 8)")
    sp.add_argument("--out", default="trace.json", help="output path (default: trace.json)")
    sp.add_argument("--overhead-smoke", action="store_true",
                    help="CI gate instead of tracing: time the fused solver with recording "
                         "disabled vs without a recorder at all and exit non-zero if the "
                         "disabled path costs more than 3%%")
    sp.add_argument("--flight-smoke", action="store_true",
                    help="CI gate instead of tracing: serve queries end-to-end with a "
                         "flight recorder enabled vs NO_RECORDER and exit non-zero if "
                         "always-on recording costs more than 5%%")

    sp = sub.add_parser(
        "report",
        help="render a recorded run (or a saved trace JSON) as a run report",
    )
    sp.add_argument("graph", nargs="?", default="ci-ws",
                    help="dataset name to run and report (default: ci-ws; ignored with --trace)")
    sp.add_argument("--stepper", default="sharded(shards=4,partitioner=bfs)",
                    help="stepper spec to record, e.g. 'sharded(shards=4,partitioner=bfs)' "
                         "(default: sharded(shards=4,partitioner=bfs) — the per-superstep "
                         "exchange ledger needs a sharded run)")
    sp.add_argument("--weights", default="unit")
    sp.add_argument("--queries", type=int, default=8,
                    help="also serve N point queries through a recorded QueryService "
                         "(0 disables; default: 8)")
    sp.add_argument("--trace", metavar="PATH", default=None,
                    help="render a saved Chrome-trace JSON instead of running anything")
    sp.add_argument("--format", dest="fmt", default="md", choices=["md", "html"],
                    help="output format (default: md)")
    sp.add_argument("--out", default=None,
                    help="write the report to PATH instead of stdout")
    sp.add_argument("--title", default=None, help="report title")
    sp.add_argument("--request", metavar="ID", default=None,
                    help="narrow the report to one request's spans "
                         "(matches the request_id span arg, live or from --trace)")
    sp.add_argument("--slow-ms", type=float, default=None,
                    help="record a slow-query log at this threshold during the run "
                         "and render the 'Slow queries' section")
    sp.add_argument("--slow-log", metavar="PATH", default=None,
                    help="render the 'Slow queries' section from a saved JSONL log "
                         "(SlowQueryLog.write output)")

    sp = sub.add_parser(
        "metrics",
        help="OpenMetrics exposition of a recorded run (optionally served)",
    )
    sp.add_argument("graph", nargs="?", default="ci-ws",
                    help="dataset name (default: ci-ws; see `suite`)")
    sp.add_argument("--stepper", default="delta",
                    help="stepper spec to record (default: delta)")
    sp.add_argument("--weights", default="unit")
    sp.add_argument("--queries", type=int, default=8,
                    help="also serve N point queries through a recorded QueryService "
                         "(0 disables; default: 8)")
    sp.add_argument("--out", default=None,
                    help="write the exposition to PATH instead of stdout")
    sp.add_argument("--serve", metavar="SECONDS", type=float, default=None,
                    help="keep a /metrics scrape endpoint up for SECONDS after the run")
    sp.add_argument("--port", type=int, default=0,
                    help="scrape-endpoint port for --serve (default: 0 = ephemeral)")

    sp = sub.add_parser(
        "bench-diff",
        help="diff fresh BENCH_*.json against committed baselines (regression gate)",
    )
    sp.add_argument("names", nargs="*", metavar="NAME",
                    help="experiments to diff, e.g. KERNEL SHARD (default: every "
                         "BENCH_*.json present in both directories)")
    sp.add_argument("--baseline", default=".",
                    help="directory holding the committed baselines (default: .)")
    sp.add_argument("--fresh", default=None,
                    help="directory holding the fresh run's JSON "
                         "(default: $REPRO_BENCH_DIR, else .)")
    sp.add_argument("--history", default=None,
                    help="BENCH_HISTORY.jsonl path for noise-aware thresholds "
                         "(default: resolved next to the fresh files)")
    sp.add_argument("--no-history", action="store_true",
                    help="disable noise widening from the history ledger")
    sp.add_argument("--record", action="store_true",
                    help="append the fresh payloads to the history ledger after diffing")
    sp.add_argument("--time-tolerance", type=float, default=0.5,
                    help="relative tolerance for wall-clock metrics (default: 0.5)")
    sp.add_argument("--ratio-tolerance", type=float, default=0.25,
                    help="relative tolerance for ratio/volume metrics (default: 0.25)")
    sp.add_argument("--absolute", default="auto", choices=["auto", "always", "never"],
                    help="gate wall-clock metrics: auto = only when baseline and fresh "
                         "are certified same-host (default)")
    sp.add_argument("--verbose", action="store_true",
                    help="show every compared metric, not just regressions")

    sp = sub.add_parser(
        "slo-check",
        help="evaluate an SLO file against a live smoke run or a saved summary "
             "(exit 1 on breach)",
    )
    sp.add_argument("slo", nargs="?", default="slo.toml",
                    help="SLO spec file (TOML; default: slo.toml)")
    sp.add_argument("--summary", metavar="PATH", default=None,
                    help="evaluate a saved Recorder.summary() JSON instead of "
                         "running a traced smoke")
    sp.add_argument("--graph", default="ci-ws",
                    help="dataset for the smoke run (default: ci-ws)")
    sp.add_argument("--stepper", default="delta",
                    help="stepper spec for the smoke run (default: delta)")
    sp.add_argument("--weights", default="unit")
    sp.add_argument("--queries", type=int, default=32,
                    help="queries served by the smoke run (default: 32)")
    sp.add_argument("--slow-ms", type=float, default=25.0,
                    help="slow-query-log threshold for the smoke run (default: 25)")
    sp.add_argument("--slow-log-out", metavar="PATH", default=None,
                    help="write the smoke run's slow-query log as JSONL "
                         "(the CI artifact)")
    sp.add_argument("--metrics-out", metavar="PATH", default=None,
                    help="write the post-evaluation OpenMetrics exposition "
                         "(includes the slo.* verdict gauges)")
    sp.add_argument("--inject-latency-ms", type=float, default=None,
                    help="test hook: record one synthetic observation into every "
                         "SLO metric before evaluating (forces a breach)")

    sp = sub.add_parser("serve-bench", help="run the SERVE throughput experiment")
    sp.add_argument("--suite", default="ci", choices=["ci", "paper"], help="graph suite (default: ci)")
    sp.add_argument("--queries", type=int, default=64, help="queries per graph (default: 64)")
    sp.add_argument("--repeats", type=int, default=3)
    add_stepper_flags(sp)

    sp = sub.add_parser("step-bench", help="run the STEP stepping-portfolio experiment")
    sp.add_argument("--suite", default="ci", choices=["ci", "paper"], help="graph suite (default: ci)")
    sp.add_argument("--repeats", type=int, default=3)
    sp.add_argument("--smoke", action="store_true",
                    help="fast CI mode: two smallest suite graphs, one repeat")

    sp = sub.add_parser("shard-bench", help="run the SHARD partition-parallel experiment")
    sp.add_argument("--suite", default="ci", choices=["ci", "paper"], help="graph suite (default: ci)")
    sp.add_argument("--shards", type=int, nargs="+", default=[2, 4],
                    help="shard counts to measure (default: 2 4)")
    sp.add_argument("--partitioners", nargs="+", default=None,
                    help="partitioners to measure (default: all registered)")
    sp.add_argument("--transport", default="threads",
                    help="shard transport: inline, threads, or threads:N (default: threads)")
    sp.add_argument("--repeats", type=int, default=3)
    sp.add_argument("--smoke", action="store_true",
                    help="fast CI mode: two smallest suite graphs, one repeat")

    sp = sub.add_parser("kernel-bench", help="run the KERNEL relaxation-kernel experiment")
    sp.add_argument("--suite", default="ci", choices=["ci", "paper"], help="graph suite (default: ci)")
    sp.add_argument("--repeats", type=int, default=5)
    sp.add_argument("--smoke", action="store_true",
                    help="fast CI gate: two smallest suite graphs; exits non-zero if "
                         "verification fails or the scatter kernel trails seed by >10%%")

    sp = sub.add_parser("steppers", help="list the stepping-algorithm registry")
    sp.add_argument("--list", action="store_true",
                    help="enumerate registered steppers and Δ strategies (the default mode)")
    sp.add_argument("--probe", metavar="GRAPH", default=None,
                    help="race the default candidates on a dataset and print the tuner report")
    sp.add_argument("--weights", default="unit", help="weight mode for --probe")

    sp = sub.add_parser("mutate-bench", help="run the DYN incremental-repair experiment")
    sp.add_argument("--suite", default="ci", choices=["ci", "paper"], help="graph suite (default: ci)")
    sp.add_argument("--fractions", type=float, nargs="+", default=[0.002, 0.01, 0.05],
                    help="update-batch sizes as fractions of the edge count")
    sp.add_argument("--repeats", type=int, default=3)

    sp = sub.add_parser("suite", help="list dataset suites with statistics")
    sp.add_argument("--suite", default="ci", choices=["ci", "paper"])

    sub.add_parser("translate", help="show the IR translation pipeline and fusion report")

    sp = sub.add_parser("lint", help="run the repo's static-analysis rules")
    sp.add_argument("--select", metavar="RULE", action="append", default=None,
                    help="run only this rule (repeatable; default: all rules)")
    sp.add_argument("--format", dest="fmt", default="text", choices=["text", "json"],
                    help="findings output format (default: text)")
    sp.add_argument("--list", action="store_true",
                    help="list the registered rules and exit")

    sp = sub.add_parser(
        "chaos",
        help="run the fault-tolerance matrix: every fault plan over every "
             "transport must match Dijkstra bit-for-bit (exit 1 otherwise)",
    )
    sp.add_argument("--smoke", action="store_true",
                    help="fast CI gate: the two smallest suite graphs only")
    sp.add_argument("--suite", default="ci", choices=["ci", "paper"],
                    help="graph suite for the matrix (default: ci)")
    sp.add_argument("--seed", type=int, default=7,
                    help="fault-plan / retry-jitter seed (default: 7)")
    sp.add_argument("--transports", nargs="+", default=None,
                    help="inner transports under the chaos layer "
                         "(default: inline threads:2)")
    sp.add_argument("--shards", type=int, default=4,
                    help="shard count for every cell (default: 4)")
    sp.add_argument("--checkpoint-every", type=int, default=2,
                    help="superstep checkpoint cadence (default: 2)")
    sp.add_argument("--max-attempts", type=int, default=4,
                    help="retry attempts per shard step (default: 4)")
    sp.add_argument("--metrics-out", metavar="PATH", default=None,
                    help="write the fleet-wide OpenMetrics exposition (merged "
                         "per-cell registries: faults/retry/checkpoint counters)")
    return p


def _cmd_fig(args) -> int:
    from .bench.registry import run_experiment

    exp = {"fig3": "FIG3", "fig4": "FIG4", "profile": "SEC6C"}[args.command]
    kwargs = {}
    if args.command == "fig3":
        kwargs["repeats"] = args.repeats
    if args.command == "fig4":
        kwargs["simulate"] = not args.real
        kwargs["threads"] = tuple(args.threads)
    print(run_experiment(exp, suite=args.suite, **kwargs))
    return 0


def _cmd_run(args) -> int:
    from .bench.workloads import workload_for
    from .sssp import delta_stepping, check_against_dijkstra

    wl = workload_for(args.graph, weights=args.weights)
    source = args.source if args.source is not None else wl.source
    rec = None
    if args.trace:
        from .obs import Recorder

        rec = Recorder()
    if args.auto or args.stepper:
        from .stepping import best_stepper, resolve_stepper_spec

        if args.stepper:
            spec = args.stepper  # a pin beats the tuner
        else:
            spec = best_stepper(wl.graph)
            print(f"{'auto-tuned':14s} {spec}")
        stepper, kwargs = resolve_stepper_spec(spec)
        if args.delta is not None:
            # only steppers that advertise a Δ knob take one
            if "delta" in stepper.default_params(wl.graph):
                kwargs["delta"] = args.delta
            else:
                print(f"warning: stepper {stepper.name!r} takes no delta; --delta ignored",
                      file=sys.stderr)
        if rec is not None:
            kwargs["recorder"] = rec
        result = stepper.solve(wl.graph, source, **kwargs)
    elif rec is not None and args.method == "fused":
        result = delta_stepping(
            wl.graph, source, args.delta, method=args.method, recorder=rec
        )
    elif rec is not None:
        # methods without an internal recorder hook still get a whole-run span
        with rec.span(f"run:{args.method}", graph=wl.name):
            result = delta_stepping(wl.graph, source, args.delta, method=args.method)
    else:
        result = delta_stepping(wl.graph, source, args.delta, method=args.method)
    for k, v in result.summary().items():
        print(f"{k:14s} {v}")
    if args.verify:
        check_against_dijkstra(wl.graph, result)
        print("verified        OK (matches Dijkstra)")
    if rec is not None:
        print(f"{'trace':14s} wrote {rec.write_trace(args.trace)} ({len(rec.trace)} events)")
    return 0


def _cmd_query(args) -> int:
    from .bench.workloads import workload_for
    from .service import LandmarkIndex, QueryService

    wl = workload_for(args.graph, weights=args.weights)
    source = args.source if args.source is not None else wl.source
    landmarks = LandmarkIndex.build(wl.graph, args.landmarks) if args.landmarks else None
    rec = None
    if args.trace:
        from .obs import Recorder

        rec = Recorder()
    svc = QueryService(
        wl.graph, weight_mode=args.weights, landmarks=landmarks,
        stepper=args.stepper, autotune=args.auto, recorder=rec,
    )
    for _ in range(max(args.repeat, 1)):
        resp = svc.query(source, args.target)
        origin = "cache" if resp.from_cache else "batch solve"
        if args.target is not None:
            print(f"d({source} -> {args.target}) = {resp.distance:g}   "
                  f"[{origin}, {resp.latency_ms:.2f} ms]")
        else:
            import numpy as np

            reached = int(np.isfinite(resp.distances).sum())
            finite = resp.distances[np.isfinite(resp.distances)]
            print(f"d({source} -> *): reached {reached}/{wl.graph.num_vertices}, "
                  f"max {finite.max():g}, mean {finite.mean():.3f}   "
                  f"[{origin}, {resp.latency_ms:.2f} ms]")
    if landmarks is not None and args.target is not None:
        est = landmarks.estimate(source, args.target)
        print(f"landmark bounds: [{est.lower:g}, {est.upper:g}] "
              f"({landmarks.num_landmarks} landmarks)")
    stats = svc.stats()
    print(f"service: {stats.queries_served} served, "
          f"cache hit rate {stats.cache.hit_rate:.0%}, "
          f"p50 {stats.latency_p50_ms:.2f} ms")
    if rec is not None:
        print(f"trace: wrote {rec.write_trace(args.trace)} ({len(rec.trace)} events)")
    return 0


def _cmd_trace(args) -> int:
    if args.overhead_smoke:
        return _trace_overhead_smoke()
    if args.flight_smoke:
        return _flight_overhead_smoke()

    from collections import Counter

    from .bench.workloads import workload_for
    from .obs import Recorder
    from .service import QueryService
    from .stepping import solve_with

    wl = workload_for(args.graph, weights=args.weights)
    rec = Recorder()
    result = solve_with(args.stepper, wl.graph, wl.source, recorder=rec)
    print(f"solved {wl.name} with {args.stepper}: "
          f"{result.phases} phases, {result.relaxations} relaxations")
    if args.queries > 0:
        svc = QueryService(wl.graph, weight_mode=args.weights, recorder=rec)
        n = wl.graph.num_vertices
        for i in range(args.queries):
            # every source is asked twice, so the second round hits the cache
            svc.query((wl.source + i // 2) % n)
        stats = svc.stats()
        print(f"served {stats.queries_served} queries, "
              f"cache hit rate {stats.cache.hit_rate:.0%}")
    path = rec.write_trace(args.out)
    counts = Counter(s["name"] for s in rec.trace.spans())
    print(f"wrote {path} ({len(rec.trace)} events)")
    for name in sorted(counts):
        print(f"  {counts[name]:6d}  {name}")
    snap = rec.metrics.as_dict()
    if snap["counters"] or snap["histograms"]:
        print("metrics:")
        for name, v in sorted(snap["counters"].items()):
            print(f"  {name} = {v}")
        for name, h in sorted(snap["histograms"].items()):
            print(f"  {name}: count={h['count']} p50={h['p50']:.3f} "
                  f"p90={h['p90']:.3f} p99={h['p99']:.3f}")
    return 0


def _trace_overhead_smoke() -> int:
    """The CI gate behind ``repro trace --overhead-smoke``.

    Times the fused solver (scatter kernel pinned, the KERNEL bench's hot
    configuration) on the two smallest ci workloads, once with no
    recorder argument and once with the disabled :data:`NO_RECORDER`
    threaded through every choke point; both paths must run the same
    code, so the gate fails if the guards themselves cost more than 3%.
    """
    from .bench.timing import time_callable
    from .bench.workloads import suite_workloads
    from .obs import NO_RECORDER
    from .stepping import solve_with

    gate = 0.03
    worst = 0.0
    for wl in suite_workloads("ci")[:2]:
        fn_base = lambda: solve_with("delta(kernel=scatter)", wl.graph, wl.source)
        fn_off = lambda: solve_with(
            "delta(kernel=scatter)", wl.graph, wl.source, recorder=NO_RECORDER
        )
        # the runs are sub-millisecond, so alternate A/B rounds and keep
        # each side's best — min-of-N cancels scheduler and cache drift
        # that a single back-to-back pair would misread as overhead; if
        # the gate is still exceeded, keep adding rounds (minima only
        # converge downward, so jitter burns off while a real regression
        # keeps failing)
        best_base = best_off = float("inf")
        for round_idx in range(8):
            best_base = min(
                best_base,
                time_callable(fn_base, repeats=5, warmup=2, min_total_seconds=0.05).best,
            )
            best_off = min(
                best_off,
                time_callable(fn_off, repeats=5, warmup=2, min_total_seconds=0.05).best,
            )
            if round_idx >= 2 and best_off / best_base - 1.0 <= gate:
                break
        overhead = best_off / best_base - 1.0
        worst = max(worst, overhead)
        print(f"{wl.name:10s} baseline {best_base * 1e3:8.3f} ms   "
              f"disabled-recorder {best_off * 1e3:8.3f} ms   overhead {overhead:+.2%}")
    if worst > gate:
        print(f"obs overhead smoke FAILED: worst disabled-path overhead "
              f"{worst:+.2%} exceeds {gate:.0%}", file=sys.stderr)
        return 1
    print(f"obs overhead smoke OK: worst disabled-path overhead {worst:+.2%} "
          f"(gate {gate:.0%})")
    return 0


def _flight_overhead_smoke() -> int:
    """The CI gate behind ``repro trace --flight-smoke``.

    Times the end-to-end serving path (construct a service, solve +
    answer 8 point queries) with :data:`NO_RECORDER` vs a live
    :class:`FlightRecorder`-backed recorder — the always-on production
    configuration, spans and histograms included — and fails if leaving
    the flight recorder on costs more than 5%.  Same min-of-alternating-
    rounds discipline as ``--overhead-smoke``.
    """
    from .bench.timing import time_callable
    from .bench.workloads import suite_workloads
    from .obs import NO_RECORDER, Recorder
    from .service import QueryService

    gate = 0.05
    worst = 0.0
    # the two *largest* ci workloads: the serving tier's unit of work is
    # a batch solve, and on the sub-ms toy graphs the span count (fixed
    # per wave) dwarfs the solve it measures — a share no production
    # graph exhibits
    for wl in suite_workloads("ci")[-2:]:
        def serve(recorder) -> None:
            svc = QueryService(wl.graph, recorder=recorder)
            n = wl.graph.num_vertices
            for i in range(8):
                svc.query((wl.source + i // 2) % n)

        fn_base = lambda: serve(NO_RECORDER)
        fn_flight = lambda: serve(Recorder.flight(capacity=2048))
        best_base = best_flight = float("inf")
        for round_idx in range(8):
            best_base = min(
                best_base,
                time_callable(fn_base, repeats=3, warmup=1, min_total_seconds=0.05).best,
            )
            best_flight = min(
                best_flight,
                time_callable(fn_flight, repeats=3, warmup=1, min_total_seconds=0.05).best,
            )
            if round_idx >= 2 and best_flight / best_base - 1.0 <= gate:
                break
        overhead = best_flight / best_base - 1.0
        worst = max(worst, overhead)
        print(f"{wl.name:10s} no-recorder {best_base * 1e3:8.3f} ms   "
              f"flight-enabled {best_flight * 1e3:8.3f} ms   overhead {overhead:+.2%}")
    if worst > gate:
        print(f"flight overhead smoke FAILED: worst enabled-path overhead "
              f"{worst:+.2%} exceeds {gate:.0%}", file=sys.stderr)
        return 1
    print(f"flight overhead smoke OK: worst enabled-path overhead {worst:+.2%} "
          f"(gate {gate:.0%})")
    return 0


def _recorded_run(graph: str, stepper: str, weights: str, queries: int, out,
                  slow_ms: float | None = None, flight: bool = False):
    """Solve + optionally serve queries with a live Recorder (the shared
    setup behind ``report``, ``metrics``, and ``slo-check``); run info
    goes to *out*.  *flight* backs the trace with a bounded
    :class:`FlightRecorder`; *slow_ms* arms the service's slow-query log
    (returned as the third element, ``None`` when unarmed or no queries
    ran)."""
    from .bench.workloads import workload_for
    from .obs import Recorder
    from .stepping import solve_with

    wl = workload_for(graph, weights=weights)
    rec = Recorder.flight() if flight else Recorder()
    result = solve_with(stepper, wl.graph, wl.source, recorder=rec)
    print(f"solved {wl.name} with {stepper}: "
          f"{result.phases} phases, {result.relaxations} relaxations", file=out)
    slow_log = None
    if queries > 0:
        from .service import QueryService

        svc = QueryService(wl.graph, weight_mode=weights, recorder=rec,
                           slow_query_ms=slow_ms)
        n = wl.graph.num_vertices
        for i in range(queries):
            # every source is asked twice, so the second round hits the cache
            svc.query((wl.source + i // 2) % n)
        stats = svc.stats()
        print(f"served {stats.queries_served} queries, "
              f"cache hit rate {stats.cache.hit_rate:.0%}", file=out)
        slow_log = svc.slow_query_log
    return wl, rec, slow_log


def _cmd_report(args) -> int:
    from .obs import build_report, render_html, render_markdown

    # run info must not interleave with a report printed to stdout
    info = sys.stdout if args.out else sys.stderr
    if args.trace:
        title = args.title or f"repro run report — {args.trace}"
        report = build_report(args.trace, title=title,
                              request_id=args.request, slow_queries=args.slow_log)
    else:
        wl, rec, slow_log = _recorded_run(
            args.graph, args.stepper, args.weights, args.queries, info,
            slow_ms=args.slow_ms,
        )
        title = args.title or f"repro run report — {wl.name} · {args.stepper}"
        report = build_report(rec, title=title, request_id=args.request,
                              slow_queries=args.slow_log or slow_log)
    doc = render_html(report) if args.fmt == "html" else render_markdown(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(doc)
        print(f"wrote {args.out} ({report.span_count} spans, "
              f"{len(report.sections)} sections)", file=info)
    else:
        print(doc, end="")
    return 0


def _cmd_metrics(args) -> int:
    from .obs import render_openmetrics

    info = sys.stdout if (args.out or args.serve) else sys.stderr
    _wl, rec, _slow_log = _recorded_run(
        args.graph, args.stepper, args.weights, args.queries, info
    )
    text = render_openmetrics(rec)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({len(text.splitlines())} lines)", file=info)
    elif not args.serve:
        print(text, end="")
    if args.serve is not None:
        import time as _time

        from .obs import MetricsServer

        with MetricsServer(rec, port=args.port) as srv:
            print(f"scrape endpoint up at {srv.url} for {args.serve:g} s", file=info)
            _time.sleep(max(args.serve, 0.0))
    return 0


def _cmd_bench_diff(args) -> int:
    from pathlib import Path

    from .bench.history import (
        BenchHistory,
        diff_payloads,
        history_path,
        load_bench_json,
        render_diff,
    )

    baseline_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh) if args.fresh else Path(
        os.environ.get("REPRO_BENCH_DIR", ".")
    )
    if args.names:
        names = [n.upper() for n in args.names]
    else:
        # every experiment present on both sides
        names = sorted(
            p.stem.removeprefix("BENCH_")
            for p in baseline_dir.glob("BENCH_*.json")
            if (fresh_dir / p.name).exists()
        )
        if not names:
            print(f"bench-diff: no BENCH_*.json present in both {baseline_dir} "
                  f"and {fresh_dir}", file=sys.stderr)
            return 2

    history = None
    if not args.no_history:
        hp = history_path(args.history) if args.history else fresh_dir / "BENCH_HISTORY.jsonl"
        if args.history or hp.exists() or args.record:
            history = BenchHistory(hp)

    failed = False
    for name in names:
        filename = f"BENCH_{name}.json"
        try:
            baseline = load_bench_json(baseline_dir / filename)
            fresh = load_bench_json(fresh_dir / filename)
        except (OSError, ValueError) as exc:
            print(f"bench-diff: {exc}", file=sys.stderr)
            return 2
        result = diff_payloads(
            baseline, fresh, history=history,
            time_tolerance=args.time_tolerance,
            ratio_tolerance=args.ratio_tolerance,
            absolute=args.absolute,
        )
        print(render_diff(result, verbose=args.verbose))
        if args.record and history is not None:
            history.append(fresh)
            print(f"  recorded to {history.path}")
        failed = failed or not result.ok
    return 1 if failed else 0


def _cmd_slo_check(args) -> int:
    from .obs import (
        evaluate,
        evaluate_summary,
        export_slo_gauges,
        load_slo_path,
        render_openmetrics,
        render_slo_text,
    )

    try:
        specs = load_slo_path(args.slo)
    except (OSError, ValueError, KeyError) as exc:
        print(f"slo-check: cannot load {args.slo}: {exc}", file=sys.stderr)
        return 2
    print(f"{len(specs)} SLO(s) from {args.slo}: "
          + ", ".join(s.name for s in specs))

    if args.summary:
        import json as _json

        try:
            with open(args.summary) as fh:
                summary = _json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"slo-check: cannot load {args.summary}: {exc}", file=sys.stderr)
            return 2
        result = evaluate_summary(specs, summary)
        print(render_slo_text(result))
        return 0 if result.ok else 1

    # live smoke: a flight-recorded solve + serve round, evaluated in place
    wl, rec, slow_log = _recorded_run(
        args.graph, args.stepper, args.weights, args.queries, sys.stdout,
        slow_ms=args.slow_ms, flight=True,
    )
    if args.inject_latency_ms is not None and rec:
        for spec in specs:
            rec.observe(spec.metric, args.inject_latency_ms)
        print(f"injected one {args.inject_latency_ms:g} ms observation into "
              f"{len(specs)} SLO metric(s)")
    result = evaluate(specs, rec.metrics)
    export_slo_gauges(result, rec.metrics)
    print(render_slo_text(result))
    if args.slow_log_out and slow_log is not None:
        print(f"wrote {slow_log.write(args.slow_log_out)} "
              f"({len(slow_log)} slow-query entries, {slow_log.total} total)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(render_openmetrics(rec))
        print(f"wrote {args.metrics_out}")
    return 0 if result.ok else 1


def _cmd_serve_bench(args) -> int:
    from .bench.registry import render_experiment, run_experiment_rows, write_bench_json

    rows = run_experiment_rows(
        "SERVE", suite=args.suite, num_queries=args.queries, repeats=args.repeats,
        stepper=args.stepper, autotune=args.auto,
    )
    print(render_experiment("SERVE", rows))
    print(f"wrote {write_bench_json('SERVE', rows)}")
    return 0


def _cmd_step_bench(args) -> int:
    from .bench.registry import EXPERIMENTS, write_bench_json
    from .bench.step_bench import render_stepping_portfolio, stepping_portfolio_series
    from .bench.workloads import suite_workloads

    workloads = suite_workloads(args.suite)
    repeats = args.repeats
    if args.smoke:
        workloads = workloads[:2]
        repeats = 1
    rows = stepping_portfolio_series(workloads, repeats=repeats)
    print(render_stepping_portfolio(rows))
    print(f"claim: {EXPERIMENTS['STEP'].claim}")
    print(f"wrote {write_bench_json('STEP', rows)}")
    return 0


def _cmd_shard_bench(args) -> int:
    from .bench.registry import EXPERIMENTS, write_bench_json
    from .bench.shard_bench import render_sharded_scaling, sharded_scaling_series
    from .bench.workloads import suite_workloads

    workloads = suite_workloads(args.suite)
    repeats = args.repeats
    if args.smoke:
        workloads = workloads[:2]
        repeats = 1
    rows = sharded_scaling_series(
        workloads,
        shard_counts=tuple(args.shards),
        partitioners=tuple(args.partitioners) if args.partitioners else None,
        transport=args.transport,
        repeats=repeats,
    )
    print(render_sharded_scaling(rows))
    print(f"claim: {EXPERIMENTS['SHARD'].claim}")
    print(f"wrote {write_bench_json('SHARD', rows)}")
    return 0


def _cmd_kernel_bench(args) -> int:
    from .bench.kernel_bench import (
        SMOKE_TOLERANCE,
        kernel_bench_headline,
        kernel_bench_series,
        render_kernel_bench,
    )
    from .bench.registry import EXPERIMENTS, write_bench_json
    from .bench.workloads import suite_workloads

    workloads = suite_workloads(args.suite)
    repeats = args.repeats
    if args.smoke:
        workloads = workloads[:2]
    rows = kernel_bench_series(workloads, repeats=repeats)
    headline = kernel_bench_headline(rows)
    print(render_kernel_bench(rows))
    print(f"claim: {EXPERIMENTS['KERNEL'].claim}")
    print(f"wrote {write_bench_json('KERNEL', rows, headline=headline)}")
    if args.smoke and not headline["smoke_ok"]:
        print(
            f"KERNEL smoke gate FAILED: verification "
            f"{'ok' if headline['all_verified'] else 'FAILED'}, scatter worst "
            f"{headline['scatter_worst_speedup']:.2f}x vs seed "
            f"(gate: >= {SMOKE_TOLERANCE:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_steppers(args) -> int:
    from .bench.reporting import format_table
    from .sssp.delta import DELTA_STRATEGIES
    from .stepping import STEPPERS

    if args.probe is not None:
        from .bench.workloads import workload_for
        from .stepping import AutoTuner

        wl = workload_for(args.probe, weights=args.weights)
        report = AutoTuner().probe(wl.graph)
        print(f"Auto-tuner probe of {wl.name} "
              f"(sources {list(report.sources)}, epoch {report.epoch}):\n")
        rows = [
            {"stepper": r.stepper, "ms_per_source": r.ms_per_source,
             "pick": "*" if r.stepper == report.best else ""}
            for r in sorted(report.rows, key=lambda r: r.ms_per_source)
        ]
        print(format_table(rows, floatfmt=".3f"))
        print(f"\nbest_stepper -> {report.best}")
        return 0

    rows = [
        {"name": s.name, "kind": s.kind,
         "resolve": "yes" if s.supports_resolve else "no",
         "description": s.description}
        for s in STEPPERS.values()
    ]
    print("Stepping-algorithm registry (repro.stepping.STEPPERS):\n")
    print(format_table(rows))
    print("\nΔ-selection strategies (repro.sssp.delta.DELTA_STRATEGIES): "
          + ", ".join(["auto", *DELTA_STRATEGIES]))
    return 0


def _cmd_mutate_bench(args) -> int:
    from .bench.registry import render_experiment, run_experiment_rows, write_bench_json

    rows = run_experiment_rows(
        "DYN", suite=args.suite, fractions=tuple(args.fractions), repeats=args.repeats
    )
    print(render_experiment("DYN", rows))
    print(f"wrote {write_bench_json('DYN', rows)}")
    return 0


def _cmd_suite(args) -> int:
    from .bench.reporting import format_table
    from .graphs import datasets
    from .graphs.stats import graph_stats

    rows = [graph_stats(datasets.load(name)).as_row() for name in datasets.suite_names(args.suite)]
    print(format_table(rows))
    return 0


def _cmd_translate(_args) -> int:
    from .ir import count_calls, delta_stepping_program, fuse_program, lower_program

    lowered = lower_program(delta_stepping_program())
    fused, report = fuse_program(lowered)
    print("Translation pipeline: vertex/edge patterns -> IR -> GraphBLAS calls")
    print(f"  static GraphBLAS calls (unfused): {report.calls_before}")
    print(f"  static GraphBLAS calls (fused):   {report.calls_after}")
    print(f"  filter fusions applied:           {report.filters_fused}")
    print(f"  Hadamard+vxm fusions applied:     {report.masked_vxm_fused}")

    def show(calls, indent=2):
        from .ir import LoweredWhile

        for c in calls:
            if isinstance(c, LoweredWhile):
                print(" " * indent + f"while nvals({c.cond_name}) != 0:")
                show(c.pre, indent + 4)
                print(" " * (indent + 2) + "-- body --")
                show(c.body, indent + 4)
            else:
                print(" " * indent + repr(c))

    print("\nFused call tree:")
    show(fused.calls)
    return 0


def _cmd_lint(args) -> int:
    from .analysis import RULES, format_findings, run_lint

    if args.list:
        width = max(len(name) for name in RULES)
        for name, desc in sorted(RULES.items()):
            print(f"{name:{width}s}  {desc}")
        return 0
    try:
        findings = run_lint(select=args.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_findings(findings, fmt=args.fmt))
    return 1 if findings else 0


def _cmd_chaos(args) -> int:
    from .bench.reporting import format_table
    from .faults.harness import DEFAULT_TRANSPORTS, run_chaos_matrix
    from .obs import render_openmetrics

    transports = tuple(args.transports) if args.transports else DEFAULT_TRANSPORTS
    report = run_chaos_matrix(
        smoke=args.smoke,
        seed=args.seed,
        transports=transports,
        num_shards=args.shards,
        checkpoint_every=args.checkpoint_every,
        max_attempts=args.max_attempts,
        suite=args.suite,
    )
    rows = [
        {
            "workload": c.workload,
            "plan": c.plan,
            "transport": c.transport,
            "identical": "yes" if c.identical else "NO",
            "injected": c.faults_injected,
            "retries": f"{c.retry_attempts}/{c.retry_bound}",
            "restores": c.restores,
            "supersteps": c.supersteps,
        }
        for c in report.cells
    ]
    print(format_table(rows))
    drill = report.breaker
    failed_checks = [k for k, v in drill["checks"].items() if not v]
    print(
        f"\nbreaker drill [{drill['workload']}]: "
        + ("all checks passed" if drill["ok"]
           else f"FAILED: {', '.join(failed_checks)}")
        + f" (degraded={drill['degraded_answers']}, "
          f"shed={drill['mutations_shed']}, "
          f"trips={drill['breaker']['trips']})"
    )
    counters = report.metrics.snapshot()["counters"]
    fleet = {
        k: v for k, v in sorted(counters.items())
        if k.startswith(("faults.", "retry.", "checkpoint."))
    }
    print("fleet totals: " + ", ".join(f"{k}={v}" for k, v in fleet.items()))
    if args.metrics_out:
        text = render_openmetrics(report.metrics)
        with open(args.metrics_out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.metrics_out} ({len(text.splitlines())} lines)")
    bad = [c for c in report.cells if not c.ok]
    if bad or not drill["ok"]:
        print(f"\nCHAOS FAIL: {len(bad)} bad cell(s), drill ok={drill['ok']}",
              file=sys.stderr)
        return 1
    print(f"\nchaos ok: {len(report.cells)} cells bit-identical, retries bounded")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "fig3": _cmd_fig,
        "fig4": _cmd_fig,
        "profile": _cmd_fig,
        "run": _cmd_run,
        "query": _cmd_query,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "metrics": _cmd_metrics,
        "bench-diff": _cmd_bench_diff,
        "slo-check": _cmd_slo_check,
        "serve-bench": _cmd_serve_bench,
        "mutate-bench": _cmd_mutate_bench,
        "step-bench": _cmd_step_bench,
        "shard-bench": _cmd_shard_bench,
        "kernel-bench": _cmd_kernel_bench,
        "steppers": _cmd_steppers,
        "suite": _cmd_suite,
        "translate": _cmd_translate,
        "lint": _cmd_lint,
        "chaos": _cmd_chaos,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""``repro.kernels`` — the shared zero-allocation relaxation-kernel core.

The one implementation of the hot primitives every stepper in this repo
is built from, extracted from the per-solver copies that used to live in
``sssp/fused.py``, ``sssp/meyer_sanders.py``, ``sssp/reference.py``,
``shard/``, and ``service/batch.py``:

=====================================  ====================================
:mod:`~repro.kernels.minby`            per-target min-reduction kernels —
                                       the seed ``argsort`` path and the
                                       O(m) dense ``scatter`` path — one
                                       registry (:data:`KERNELS`), density
                                       ``auto`` pick, spec-overridable
                                       (``"delta(kernel=scatter)"``); plus
                                       the shared CSR candidate gather
:mod:`~repro.kernels.workspace`        :class:`RelaxWorkspace` — the
                                       reusable buffer arena (request
                                       vector + touched mask, wave
                                       buffers, iota ramp) that makes
                                       steady-state phases allocation-free;
                                       per-graph caching helpers
                                       (:func:`workspace_for`,
                                       :func:`cached_row_ids`)
:mod:`~repro.kernels.bucketq`          :class:`BucketQueue` — the lazy
                                       bucket index that replaces the
                                       per-bucket full-``t`` scans in the
                                       classic Δ-stepper's outer loop
=====================================  ====================================

The package sits *below* every solver layer (it imports only NumPy), so
``sssp``, ``stepping``, ``shard``, ``service``, and ``dynamic`` all
depend on it without cycles.  The KERNEL bench (``repro kernel-bench``)
races the kernels against the frozen seed implementation and gates on
bit-identity with Dijkstra.
"""

from __future__ import annotations

from .bucketq import BucketQueue
from .minby import (
    KERNELS,
    SCATTER_DENSITY,
    check_kernel,
    gather_candidates,
    min_by_target,
    min_by_target_scatter,
    min_by_target_sort,
)
from .workspace import RelaxWorkspace, cached_row_ids, workspace_for

__all__ = [
    "BucketQueue",
    "KERNELS",
    "SCATTER_DENSITY",
    "check_kernel",
    "gather_candidates",
    "min_by_target",
    "min_by_target_scatter",
    "min_by_target_sort",
    "RelaxWorkspace",
    "cached_row_ids",
    "workspace_for",
]

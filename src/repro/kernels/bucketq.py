"""A lazy bucket queue: the Δ-stepper's outer loop without full scans.

The seed ``fused_delta_stepping`` found each next bucket by rescanning
all *n* tentative distances — ``isfinite(t) & (t >= iΔ)`` plus a min and
a window filter, every bucket — so graphs with many thin buckets (road
meshes, the paper's hardest case) paid O(n · buckets) just to *schedule*
the work.  :class:`BucketQueue` replaces the scans with the standard
lazy bucket index (Meyer & Sanders' ``B[i]`` sets, engineered the way
Dong et al. 2021 engineer their batched PQ):

- every distance improvement is **pushed** with its bucket id
  ``⌊d/Δ⌋`` — an O(improved) append, no global state touched;
- ``pop_bucket`` pops the smallest bucket id off a heap, concatenates
  that bucket's pending chunks, and **lazily validates** against the
  current distances: an entry whose distance has since improved into an
  earlier bucket is simply dropped (its improvement pushed a fresh entry
  there), so no decrease-key ever happens.

Work is O(pushes log buckets) overall instead of O(n) per bucket, and
the frontier a pop returns is exactly the set the seed's window scan
produced (same ascending order), which is what keeps the phase,
relaxation, and update counters bit-compatible with the scan-based
implementations.  Non-empty buckets match too; the scan could
additionally visit (and count) phantom *empty* buckets where its
division-based index misrounds against its product-based window — the
queue, like the Meyer–Sanders reference, never schedules an empty
bucket.
"""

from __future__ import annotations

import heapq

import numpy as np
from numpy.typing import NDArray

__all__ = ["BucketQueue"]

_EMPTY: NDArray[np.int64] = np.empty(0, dtype=np.int64)


class BucketQueue:
    """Pending vertices indexed by distance bucket ``[iΔ, (i+1)Δ)``.

    Entries are *hints*, validated lazily at pop time against the
    authoritative distance array — the structure never needs to find or
    remove a stale entry eagerly.
    """

    def __init__(self, delta: float) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)
        self._heap: list[int] = []
        self._members: dict[int, list[NDArray[np.int64]]] = {}

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, vertices: NDArray[np.int64], dists: NDArray[np.float64]) -> None:
        """File *vertices* under the buckets of their (new) *dists*.

        Duplicates across pushes are fine (deduped at pop); distances
        must be finite.
        """
        if len(vertices) == 0:
            return
        fidx = np.floor_divide(dists, self.delta)
        if not float(fidx.max()) < 2**62:
            # int64 bucket ids stop here; fail loudly instead of wrapping
            raise OverflowError(
                "distance/delta ratio too large for bucket indexing "
                f"(max {float(fidx.max())!r}); increase delta"
            )
        idx = fidx.astype(np.int64)
        # floor_divide misrounds at bucket boundaries, and once d/Δ grows
        # past 2^53 its error can exceed ±1.  Walk each index — in INTEGER
        # steps, which always advance even where the float products are
        # ulp-starved and b*Δ == (b+1)*Δ — to the fixed point of the
        # invariant  idx*Δ <= d < (idx+1)*Δ  under the EXACT float
        # expressions pop_bucket (and the steppers' window filters) use:
        # `b * Δ` and `(b + 1) * Δ`, never the 1-ulp-different `lo + Δ`.
        # The products are monotone in the index, so a satisfying index
        # always exists; both walks take one step outside the ulp-starved
        # regime and stay bounded (≲ ulp(d)/Δ ≤ 2^11 for int64-valid
        # ratios) inside it.  Running the lower walk first means the
        # upper walk preserves its invariant.
        while True:
            over = idx.astype(np.float64) * self.delta > dists
            if not over.any():
                break
            idx[over] -= 1
        while True:
            under = (idx + 1).astype(np.float64) * self.delta <= dists
            if not under.any():
                break
            idx[under] += 1
        mn = int(idx.min())
        if int(idx.max()) == mn:
            # the common case — a relax wave's out-of-window improvements
            # land in one bucket — skips the unique/select machinery
            self._file(mn, vertices)
        else:
            for b in np.unique(idx):
                self._file(int(b), vertices[idx == b])

    def push_into(self, bucket: int, vertices: NDArray[np.int64]) -> None:
        """File *vertices* directly under *bucket* (no per-entry indexing).

        For callers that know the bucket analytically — a Δ-stepper's
        light-phase improvements that leave window ``i`` always land in
        bucket ``i + 1`` (weight ≤ Δ from a distance < (i+1)Δ) — this
        skips the floor-divide entirely.  Safe even if an entry later
        improves away: pop-time validation drops stale hints.
        """
        if len(vertices):
            self._file(bucket, vertices)

    def _file(self, b: int, chunk: NDArray[np.int64]) -> None:
        pending = self._members.get(b)
        if pending is None:
            self._members[b] = [chunk]
            heapq.heappush(self._heap, b)
        else:
            pending.append(chunk)

    def pop_bucket(
        self, dist: NDArray[np.float64]
    ) -> tuple[int | None, NDArray[np.int64]]:
        """Extract the next non-empty bucket: ``(index, frontier)``.

        The frontier is deduped, ascending, and validated against *dist*
        using the same ``[bΔ, (b+1)Δ)`` float expressions the steppers
        window with.  An entry below the window is stale — its
        improvement filed a fresh entry in an earlier bucket — and is
        dropped; an entry at or above the window's top (possible only
        through float rounding of an analytic ``push_into`` hint) is
        **refiled** under its true bucket, never dropped, so no live
        vertex can ever be lost to a 1-ulp boundary disagreement.
        Returns ``(None, empty)`` when no pending work remains.
        """
        while self._heap:
            b = heapq.heappop(self._heap)
            chunks = self._members.pop(b, None)
            if not chunks:
                continue
            if len(chunks) == 1:
                verts = chunks[0]
            else:
                verts = np.unique(np.concatenate(chunks))
            lo = b * self.delta
            hi = (b + 1) * self.delta
            d = dist[verts]
            late = d >= hi
            if late.any():
                self.push(verts[late], d[late])
            valid = (d >= lo) & ~late
            if not valid.all():
                verts = verts[valid]
            if len(verts):
                return b, verts
        return None, _EMPTY

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BucketQueue<delta={self.delta}, {len(self._heap)} pending buckets>"

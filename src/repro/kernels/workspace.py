"""The reusable relaxation arena: buffers that outlive a phase.

Every stepping algorithm in this repo spends its hot loop in the same
three-step wave — gather candidates out of a frontier, min-reduce them
per target, scatter the improvements — and the seed implementations paid
a fresh set of temporaries for every phase: candidate index/target/
distance arrays, a dense request vector, the ``0..total`` ramp, plus a
``np.repeat(np.arange(n), np.diff(indptr))`` row-id expansion per CSR
split.  At CI graph sizes the allocator overhead rivals the kernels
themselves; at scale it is pure waste (Dong et al. 2021 report the same
observation for their LAB-PQ batches: the buffers must persist).

:class:`RelaxWorkspace` owns those buffers once per solver (or once per
graph, via :func:`workspace_for`):

- ``req``/``touched`` — the dense per-target request vector and its
  touched mask, the state behind the O(m) scatter-min kernel
  (:func:`repro.kernels.minby.min_by_target_scatter`).  Invariant
  between waves: ``req`` is all-``inf`` and ``touched`` all-``False``,
  so no per-wave reset of the full vector is ever needed.
- wave buffers — three arrays (flat edge index, target, candidate
  distance) sized to the largest wave seen so far, grown geometrically
  and then stable: a steady-state phase allocates none of its named
  wave buffers, which :attr:`RelaxWorkspace.grows` lets tests assert.
  (NumPy's ``repeat`` still materializes the small offset-expansion
  temporaries per gather — the remaining allocator traffic until the
  gather moves below the ufunc layer.)
- ``iota`` — the shared ``0..total`` ramp the CSR gather subtracts
  offsets from.

:func:`cached_row_ids` is the companion per-graph cache for the CSR
row-id expansion (used by every light/heavy matrix split), keyed on the
graph's mutation epoch and stored under an underscore-prefixed
``graph.meta`` key so copies drop it, per the derived-cache convention
of :class:`repro.graphs.graph.Graph`.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = ["RelaxWorkspace", "workspace_for", "cached_row_ids"]

INF: float = float(np.inf)

#: ``graph.meta`` key of the per-graph workspace (underscore-prefixed:
#: a derived cache, dropped by ``Graph.copy``/``with_weights``)
_WORKSPACE_KEY = "_relax_workspace"
#: ``graph.meta`` key of the ``(epoch, row_ids)`` expansion cache
_ROW_IDS_KEY = "_row_ids"


class RelaxWorkspace:
    """Reusable buffers for the gather → min-by-target → scatter wave.

    Parameters
    ----------
    n:
        Size of the per-target key space — the vertex count for
        single-source solvers, ``K * n`` for the batched multi-source
        engine's flattened state.

    Attributes
    ----------
    req:
        Dense ``float64`` request vector (all ``inf`` between waves).
    touched:
        Dense bool mask over the key space (all ``False`` between
        waves); the scatter kernel's touched-list compaction.
    grows:
        Number of wave-buffer growths so far.  Stable after warmup —
        the workspace-reuse tests pin this at zero across steady-state
        phases.
    """

    __slots__ = ("n", "req", "touched", "grows", "_flat", "_targets", "_dists", "_iota")

    n: int
    req: NDArray[np.float64]
    touched: NDArray[np.bool_]
    grows: int
    _flat: NDArray[np.int64]
    _targets: NDArray[np.int64]
    _dists: NDArray[np.float64]
    _iota: NDArray[np.int64]

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("workspace size must be >= 0")
        self.n = int(n)
        self.req = np.full(self.n, INF, dtype=np.float64)
        self.touched = np.zeros(self.n, dtype=bool)
        self.grows = 0
        self._flat = np.empty(0, dtype=np.int64)
        self._targets = np.empty(0, dtype=np.int64)
        self._dists = np.empty(0, dtype=np.float64)
        self._iota = np.empty(0, dtype=np.int64)

    def _capacity_for(self, total: int) -> int:
        cap = max(16, len(self._flat))
        while cap < total:
            cap *= 2
        return cap

    def wave_buffers(
        self, total: int
    ) -> tuple[NDArray[np.int64], NDArray[np.int64], NDArray[np.float64]]:
        """``(flat, targets, dists)`` views of length *total*.

        The backing buffers grow geometrically and are then reused for
        every subsequent wave — repeated calls at steady state return
        views of the *same* arrays (asserted by the workspace tests).
        """
        if total > len(self._flat):
            cap = self._capacity_for(total)
            self._flat = np.empty(cap, dtype=np.int64)
            self._targets = np.empty(cap, dtype=np.int64)
            self._dists = np.empty(cap, dtype=np.float64)
            self.grows += 1
        return self._flat[:total], self._targets[:total], self._dists[:total]

    def iota(self, total: int) -> NDArray[np.int64]:
        """The shared ``0..total`` ramp (a view; grown on demand)."""
        if total > len(self._iota):
            self._iota = np.arange(self._capacity_for(total), dtype=np.int64)
        return self._iota[:total]

    def reset(self) -> None:
        """Restore the between-waves invariant after an aborted wave."""
        self.req.fill(INF)
        self.touched.fill(False)

    def check(self) -> None:
        """Assert the between-waves steady state; the debug invariant.

        ``req`` must be all-``inf`` and ``touched`` all-``False`` — the
        contract every kernel restores before returning (including on
        aborted waves, via ``try/finally``).  A leak here does not break
        *this* wave; it silently corrupts the **next** one that reuses
        the arena, which is why the kernels property tests and the shard
        race harness call this after every wave.  Raises
        ``AssertionError`` naming the leaked keys.
        """
        leaked = np.flatnonzero(self.req != INF)
        if len(leaked):
            raise AssertionError(
                f"workspace invariant broken: req not all-inf at keys "
                f"{leaked[:8].tolist()} ({len(leaked)} total)"
            )
        stuck = np.flatnonzero(self.touched)
        if len(stuck):
            raise AssertionError(
                f"workspace invariant broken: touched not all-False at keys "
                f"{stuck[:8].tolist()} ({len(stuck)} total)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RelaxWorkspace<n={self.n}, wave_cap={len(self._flat)}, grows={self.grows}>"


def workspace_for(graph: Any) -> RelaxWorkspace:
    """The per-graph cached :class:`RelaxWorkspace`.

    Memoized under ``graph.meta['_relax_workspace']`` so repeated solves
    (service traffic, tuner probes, repair waves) share one arena.  The
    workspace carries no graph-derived state — only size — so it
    survives mutations (the vertex set is fixed); copies drop it with
    the other underscore-prefixed derived caches.

    Not safe to share across threads: concurrent solvers must own
    private workspaces (the sharded stepper allocates one per shard).
    """
    ws: RelaxWorkspace | None = graph.meta.get(_WORKSPACE_KEY)
    if ws is None or ws.n != graph.num_vertices:
        ws = RelaxWorkspace(graph.num_vertices)
        graph.meta[_WORKSPACE_KEY] = ws
    return ws


def cached_row_ids(graph: Any) -> NDArray[np.int64]:
    """The CSR row-id expansion ``repeat(arange(n), diff(indptr))``, cached.

    Every light/heavy matrix split (and any other edge-parallel pass
    that needs each stored edge's source) used to recompute this O(m)
    expansion per call; it only changes when the sparsity pattern does,
    so it is cached per ``(graph, epoch)`` in ``graph.meta`` and
    recomputed after mutations.  Treat the result as read-only — it is
    shared by every caller.
    """
    entry: tuple[int, NDArray[np.int64]] | None = graph.meta.get(_ROW_IDS_KEY)
    if entry is not None:
        epoch, ids = entry
        if epoch == graph.epoch and len(ids) == graph.num_edges:
            return ids
    fresh: NDArray[np.int64] = graph.row_sources()
    graph.meta[_ROW_IDS_KEY] = (graph.epoch, fresh)
    return fresh

"""Per-target min-reduction kernels: the relax step's one hot primitive.

Every delta/rho/radius/sharded stepper reduces a wave of relaxation
requests ``(target, candidate distance)`` to the best candidate per
target.  The repo's seed implementations all inlined the same
O(m log m) recipe — stable argsort by target, boundary detection,
``np.minimum.reduceat`` — once per solver.  This module is the single
shared implementation, with two interchangeable kernels:

``argsort``
    The seed recipe.  Allocation-light, cache-friendly for *thin* waves
    (few candidates relative to the key space), O(m log m).

``scatter``
    The O(m) path Dong et al. 2021 and Kranjčević et al. 2016 build
    their stepping kernels on: ``np.minimum.at`` scatter-mins the
    candidates into a dense per-target request vector owned by a
    :class:`~repro.kernels.workspace.RelaxWorkspace`, then compacts the
    touched targets (touched-mask scan for dense waves, sorted-unique
    for thin ones) and restores the all-``inf`` invariant by resetting
    only the touched keys.  No sort of the wave, ever.

Both kernels return identical arrays — min over a fixed candidate
multiset is order-independent and IEEE-exact, and both emit targets in
ascending order — so swapping kernels can never change a distance
(property-tested in ``tests/kernels``).  ``auto`` picks by wave density:
the scatter kernel's dense compaction pays an O(n) mask scan, so it
wins once the wave carries more than ~1/:data:`SCATTER_DENSITY` of the
key space and loses to the sort below that.

Selection is threaded through stepper specs — ``"delta(kernel=scatter)"``,
``"rho(kernel=argsort)"`` — so the auto-tuner and the KERNEL bench can
race the kernels like any other knob.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from numpy.typing import NDArray

from .workspace import INF, RelaxWorkspace

__all__ = [
    "KERNELS",
    "SCATTER_DENSITY",
    "check_kernel",
    "min_by_target",
    "min_by_target_sort",
    "min_by_target_scatter",
    "gather_candidates",
]

#: density crossover: the scatter kernel is picked (and compacts via the
#: dense touched-mask scan) when ``candidates * SCATTER_DENSITY >= n``.
#: Measured on the CI suite: ``np.minimum.at`` beats the argsort path
#: down to waves ~1/64th of the key space; below that the O(n) scan and
#: the ufunc dispatch overhead lose to a small sort.
SCATTER_DENSITY = 64

#: the hot loops return these instead of allocating fresh empties — the
#: module-level pattern the ``hot-loop-alloc`` lint whitelists by name
_EMPTY_T: NDArray[np.int64] = np.empty(0, dtype=np.int64)
_EMPTY_D: NDArray[np.float64] = np.empty(0, dtype=np.float64)

#: shorthand for every kernel's ``(unique targets, best distances)`` pair
_MinPair = tuple[NDArray[np.int64], NDArray[np.float64]]


def min_by_target_sort(
    targets: NDArray[np.int64], dists: NDArray[np.float64]
) -> _MinPair:
    """Per-target minimum via stable argsort + ``minimum.reduceat``.

    The seed kernel, O(m log m); needs no workspace.  Deliberately *not*
    a ``# repro: hot`` block: its boundary mask is a fresh allocation by
    design (sized to the wave, not the key space), which is exactly the
    trade the scatter kernel exists to beat on dense waves.
    """
    if len(targets) == 0:
        return _EMPTY_T, _EMPTY_D
    order = np.argsort(targets, kind="stable")
    ts = targets[order]
    ds = dists[order]
    boundaries = np.empty(len(ts), dtype=bool)
    boundaries[0] = True
    np.not_equal(ts[1:], ts[:-1], out=boundaries[1:])
    starts = np.nonzero(boundaries)[0]
    best: NDArray[np.float64] = np.minimum.reduceat(ds, starts)
    return ts[starts], best


# repro: hot
def min_by_target_scatter(
    targets: NDArray[np.int64], dists: NDArray[np.float64], workspace: RelaxWorkspace
) -> _MinPair:
    """Per-target minimum via dense scatter-min, O(m).

    ``np.minimum.at`` folds the wave into ``workspace.req``; compaction
    is a touched-mask scan for dense waves (O(n), no sort) and a
    sorted-unique for thin ones (so a caller that pins ``scatter`` on a
    huge key space — the batched multi-source engine — never rescans the
    whole state for a sparse wave).  Only touched keys are reset, so the
    workspace invariant costs O(m), not O(n).
    """
    if len(targets) == 0:
        return _EMPTY_T, _EMPTY_D
    req = workspace.req
    try:
        np.minimum.at(req, targets, dists)
        if len(targets) * SCATTER_DENSITY < workspace.n:
            uts = np.unique(targets)
        else:
            touched = workspace.touched
            touched[targets] = True
            uts = np.nonzero(touched)[0]
        ubest = req[uts].copy()
    finally:
        # restore the full between-waves invariant (req all-inf, touched
        # all-False) even on an aborted wave — the workspace may be
        # graph-cached and outlive this solve
        req[targets] = INF
        workspace.touched[targets] = False
    return uts, ubest


#: kernel name → implementation; the discovery surface shared by
#: :func:`min_by_target`, stepper specs (``"delta(kernel=scatter)"``),
#: and the KERNEL bench.
KERNELS: dict[str, Callable[..., _MinPair]] = {
    "argsort": min_by_target_sort,
    "scatter": min_by_target_scatter,
}


def check_kernel(kernel: str) -> str:
    """Validate a kernel spelling early, with the registry enumerated."""
    if kernel != "auto" and kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; known: auto, {', '.join(KERNELS)}"
        )
    return kernel


# repro: hot
def min_by_target(
    targets: NDArray[np.int64],
    dists: NDArray[np.float64],
    workspace: RelaxWorkspace | None = None,
    kernel: str = "auto",
) -> _MinPair:
    """Best candidate per target: ``(unique targets asc, min distances)``.

    ``kernel="auto"`` picks scatter for dense waves (when a workspace is
    available) and the argsort path otherwise; explicit names pin one.
    Both kernels return bit-identical arrays, so the choice is purely a
    throughput knob.
    """
    if check_kernel(kernel) == "auto":
        use_scatter = (
            workspace is not None
            and len(targets) * SCATTER_DENSITY >= workspace.n
        )
        kernel = "scatter" if use_scatter else "argsort"
    if kernel == "scatter":
        if workspace is None:
            raise ValueError("the scatter kernel needs a RelaxWorkspace")
        return min_by_target_scatter(targets, dists, workspace)
    return min_by_target_sort(targets, dists)


# repro: hot
def gather_candidates(
    indptr: NDArray[np.int64],
    indices: NDArray[np.int64],
    weights: NDArray[np.float64],
    frontier: NDArray[np.int64],
    dist: NDArray[np.float64],
    workspace: RelaxWorkspace | None = None,
) -> tuple[NDArray[np.int64] | None, NDArray[np.float64] | None]:
    """All relaxation requests out of *frontier*: ``(targets, distances)``.

    The CSR row gather every stepper's relax wave starts with.  With a
    workspace, the three named wave outputs (flat edge index, targets,
    candidate distances) are written into the arena's reused buffers;
    the ``np.repeat`` offset expansions are the only per-wave
    temporaries left.  Returns ``(None, None)`` for an edgeless
    frontier.
    """
    starts = indptr[frontier]
    lengths = indptr[frontier + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return None, None
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    if workspace is None:
        # repro: alloc-ok — the documented no-arena fallback pays fresh buffers
        flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lengths)
        out_t: NDArray[np.int64] = indices[flat]
        out_d: NDArray[np.float64] = np.repeat(dist[frontier], lengths) + weights[flat]
        return out_t, out_d
    flat, targets, dists = workspace.wave_buffers(total)
    np.subtract(workspace.iota(total), offsets, out=flat)
    flat += np.repeat(starts, lengths)
    indices.take(flat, out=targets)
    weights.take(flat, out=dists)
    dists += np.repeat(dist[frontier], lengths)
    return targets, dists

"""Fault tolerance for the sharded execution path and the serving tier.

The paper's sharded delta-stepping is a bulk-synchronous loop over an
exchange whose transports, so far, could not fail.  This package makes
failure a first-class, *deterministic* input and layers three
recoveries on top — each verifiable bit-identically against Dijkstra:

- :mod:`~repro.faults.plan` / :mod:`~repro.faults.chaos` — a seeded
  :class:`FaultPlan` drives the ``chaos`` transport: injected shard-step
  failures (fail-stop lost dispatches), straggler delays, duplicated
  and reordered exchange deliveries.  Spec form:
  ``chaos(inner=threads:4,seed=7,fail_rate=0.2)``.
- :mod:`~repro.faults.retry` — the ``resilient`` transport re-runs only
  the failed shard steps under a :class:`RetryPolicy` (capped
  exponential backoff, seeded jitter, per-superstep deadline); budget
  exhaustion raises :class:`RetryExhausted`, which the stepper's
  superstep checkpoints (``checkpoint_every=K``) recover by restore +
  re-execution.
- :mod:`~repro.faults.breaker` — the serving tier's
  :class:`CircuitBreaker`: consecutive solver failures flip
  :class:`repro.service.QueryService` into degraded mode (landmark-bound
  answers, mutation shedding) until a half-open probe succeeds.

The chaos harness (:mod:`repro.faults.harness`, the ``repro chaos``
command) proves the composition: every fault plan × transport cell must
return distances bit-identical to Dijkstra with bounded retry work.  It
is imported on demand — not re-exported here — because it reaches into
the bench/service layers, which import this package.
"""

from .breaker import (
    BREAKER_STATE_CODES,
    CircuitBreaker,
    CircuitOpenError,
    MutationShedError,
)
from .chaos import ChaosTransport, chaos_from_params
from .plan import FaultInjected, FaultPlan
from .retry import (
    ResilientTransport,
    RetryExhausted,
    RetryPolicy,
    resilient_from_params,
)

__all__ = [
    "BREAKER_STATE_CODES",
    "CircuitBreaker",
    "CircuitOpenError",
    "MutationShedError",
    "ChaosTransport",
    "chaos_from_params",
    "FaultInjected",
    "FaultPlan",
    "ResilientTransport",
    "RetryExhausted",
    "RetryPolicy",
    "resilient_from_params",
]

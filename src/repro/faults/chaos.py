"""The ``chaos`` transport: seeded fault injection over any inner transport.

:class:`ChaosTransport` wraps a real transport and injects the failure
modes a wire transport will eventually face, per the plan's seeded
schedule (:mod:`repro.faults.plan`):

- **step failures** — a wrapped fn raises :class:`FaultInjected`
  *instead of* running the step body.  This is deliberately fail-stop
  *before* any write: it models a lost dispatch (the task never reached
  the worker), so a plain re-run by the retry layer is sound.  Mid-step
  crashes that leave partial writes are the checkpoint layer's
  department (:class:`repro.shard.stepper.ShardedDeltaStepper` restores
  and re-executes).
- **straggler delays** — a seeded sleep before the step body, so pooled
  runs exercise barrier skew and deadline policies.
- **duplicated / reordered deliveries** — in :meth:`before_flush`, a
  box's pending entries are re-posted into another outbox and the
  delivery order is shuffled.  Both are harmless by construction
  (:meth:`repro.shard.exchange.FrontierExchange.flush` min-combines
  across senders, and IEEE min is associative and commutative) — which
  is exactly the property the chaos matrix proves bit-identically.

All draws happen serially in the coordinator thread before dispatch, so
a chaos run is reproducible for a fixed ``(plan seed, schedule)``
regardless of how the inner transport interleaves threads.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from ..parallel.pool import WorkerPool
from ..shard.exchange import (
    FrontierExchange,
    Transport,
    make_transport,
    spec_float,
    spec_int,
)
from .plan import FaultInjected, FaultPlan

__all__ = ["ChaosTransport", "chaos_from_params"]


def _chaotic(
    fn: Callable[[], Any], shard: int, fail: bool, delay_ms: float
) -> Callable[[], Any]:
    def run() -> Any:
        if delay_ms > 0.0:
            time.sleep(delay_ms / 1e3)
        if fail:
            raise FaultInjected(
                f"injected fault: shard-step {shard} dispatch lost"
            )
        return fn()

    return run


class ChaosTransport(Transport):
    """Wrap *inner* with the fault schedule of *plan* (module docstring).

    Spec form: ``chaos(inner=threads:4,seed=7,fail_rate=0.2,...)`` — see
    :func:`chaos_from_params` for the accepted knobs.  A bound recorder
    (via :meth:`bind_recorder`) counts every injection under
    ``faults.injected`` plus per-kind breakdowns.
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        inner: Any = None,
        pool: "WorkerPool | None" = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.inner = make_transport(inner, pool=pool)
        self.name = f"chaos[{self.inner.name}]"
        self._recorder: Any = None

    def bind_recorder(self, recorder: Any) -> None:
        self._recorder = recorder if recorder else None
        self.inner.bind_recorder(recorder)

    def run(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        plan = self.plan
        wrapped: list[Callable[[], Any]] = []
        failures = 0
        delays = 0
        for i, fn in enumerate(fns):
            fail, delay_ms = plan.draw_step(i)
            if fail or delay_ms > 0.0:
                failures += 1 if fail else 0
                delays += 1 if delay_ms > 0.0 else 0
                wrapped.append(_chaotic(fn, i, fail, delay_ms))
            else:
                wrapped.append(fn)
        rec = self._recorder
        if rec is not None and (failures or delays):
            rec.inc("faults.injected", failures + delays)
            if failures:
                rec.inc("faults.step_failures", failures)
            if delays:
                rec.inc("faults.straggler_delays", delays)
        return self.inner.run(wrapped)

    def before_flush(self, exchange: FrontierExchange) -> None:
        plan = self.plan
        boxes = exchange.outboxes
        duplicated = 0
        for src, dst in plan.draw_duplications(len(boxes)):
            keys, vals = boxes[src].peek()
            if len(keys) == 0:
                continue
            boxes[dst].post(keys, vals)
            duplicated += 1
        perm = plan.draw_reorder(len(boxes))
        if perm is not None:
            # permuting the box *objects* reorders this flush's delivery
            # and re-routes future posts through different buffers — the
            # mapping stays bijective, so the one-writer-per-box rule
            # holds and min-combine makes the order irrelevant
            exchange.outboxes[:] = [boxes[i] for i in perm]
        rec = self._recorder
        if rec is not None and (duplicated or perm is not None):
            rec.inc("faults.injected", duplicated + (1 if perm is not None else 0))
            if duplicated:
                rec.inc("faults.dup_deliveries", duplicated)
            if perm is not None:
                rec.inc("faults.reorders")
        self.inner.before_flush(exchange)


def chaos_from_params(
    params: dict[str, str],
    pool: "WorkerPool | None" = None,
    spec: str = "chaos",
) -> ChaosTransport:
    """Build a :class:`ChaosTransport` from ``chaos(...)`` spec params.

    Knobs (all optional): ``inner`` (any transport spec; values may
    contain colons, e.g. ``threads:4``), ``seed``, ``fail_rate``,
    ``delay_ms``, ``delay_rate``, ``dup_rate``, ``reorder_rate``,
    ``max_failures``.  Bad values raise ``ValueError`` naming *spec*.
    """
    params = dict(params)
    inner = params.pop("inner", None)
    plan = FaultPlan(
        seed=spec_int(params.pop("seed", "0"), spec, "seed"),
        fail_rate=spec_float(
            params.pop("fail_rate", "0"), spec, "fail_rate", lo=0.0, hi=1.0
        ),
        delay_ms=spec_float(params.pop("delay_ms", "0"), spec, "delay_ms", lo=0.0),
        delay_rate=spec_float(
            params.pop("delay_rate", "0.25"), spec, "delay_rate", lo=0.0, hi=1.0
        ),
        dup_rate=spec_float(
            params.pop("dup_rate", "0"), spec, "dup_rate", lo=0.0, hi=1.0
        ),
        reorder_rate=spec_float(
            params.pop("reorder_rate", "0"), spec, "reorder_rate", lo=0.0, hi=1.0
        ),
        max_failures=spec_int(
            params.pop("max_failures", "64"), spec, "max_failures", minimum=0
        ),
    )
    if params:
        raise ValueError(
            f"transport spec {spec!r}: unknown parameter(s): "
            f"{', '.join(sorted(params))}"
        )
    return ChaosTransport(plan, inner=inner, pool=pool)

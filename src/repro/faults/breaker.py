"""A circuit breaker for the serving tier's exact-solve path.

Classic three-state breaker (closed → open → half-open), tuned for
:class:`repro.service.server.QueryService`: consecutive solver failures
trip it, a wall-clock cooldown admits one half-open probe, and while
open the service answers from landmark upper bounds (degraded mode)
instead of burning latency on a failing solver — and sheds mutations,
because a repair that fails mid-flight is strictly worse than a stale
answer the epoch snapshot can still serve.

The clock is injectable (``clock=time.monotonic`` by default) so tests
and the chaos harness drive state transitions without sleeping.  All
transitions are lock-guarded; the service calls :meth:`allow` /
:meth:`record_success` / :meth:`record_failure` around each batch solve.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = [
    "BREAKER_STATE_CODES",
    "CircuitBreaker",
    "CircuitOpenError",
    "MutationShedError",
]

#: breaker state → the numeric code the ``service.breaker_state`` gauge
#: exposes (OpenMetrics gauges are floats; keep the mapping stable)
BREAKER_STATE_CODES: dict[str, int] = {"closed": 0, "half-open": 1, "open": 2}


class CircuitOpenError(RuntimeError):
    """An exact solve was refused: breaker open and no fallback exists."""


class MutationShedError(RuntimeError):
    """A mutation batch was shed because the breaker is open."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a timed half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (successes reset the count) that trip the
        breaker open.
    reset_after_s:
        Cooldown after tripping; once elapsed, the breaker turns
        half-open and :meth:`allow` admits exactly one probe.  A failed
        probe re-opens (restarting the cooldown), a success closes.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s < 0:
            raise ValueError(f"reset_after_s must be >= 0, got {reset_after_s}")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: total closed→open transitions (monotone; surfaced in stats)
        self.trips = 0

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = "half-open"
            self._probing = False
        return self._state

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (cooldown applied)."""
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """May an exact solve be attempted now?

        Mutating: when half-open, the first caller claims the single
        probe slot (subsequent callers are refused until the probe
        reports via :meth:`record_success` / :meth:`record_failure`).
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open" and not self._probing:
                self._probing = True
                return True
            return False

    def allow_mutation(self) -> bool:
        """Mutations are shed only while fully open (a half-open breaker
        is probing its way back; repairs may proceed)."""
        return self.state != "open"

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            self._consecutive_failures += 1
            trip = (
                state == "half-open"
                or self._consecutive_failures >= self.failure_threshold
            )
            if trip:
                if self._state != "open":
                    self.trips += 1
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False

    def as_dict(self) -> dict[str, int | str]:
        """State snapshot for ``QueryService.stats()`` and reports."""
        with self._lock:
            state = self._state_locked()
            return {
                "state": state,
                "state_code": BREAKER_STATE_CODES[state],
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker<{self.state}, trips={self.trips}>"

"""Deterministic, seeded fault plans — the schedule a chaos run replays.

A :class:`FaultPlan` is the single source of randomness for one chaos
run: step failures, straggler delays, duplicated deliveries, and outbox
reordering are all drawn from one ``random.Random(seed)``.  Two
properties make the schedule reproducible and the runs terminating:

- **Serial draws.**  Every draw happens in the coordinator thread —
  :class:`repro.faults.chaos.ChaosTransport` draws per-step decisions
  *before* dispatching the wrapped fns and exchange perturbations
  *before* the flush — so the schedule depends only on ``(seed, call
  sequence)``, never on thread interleaving.  (The lock is a belt for
  embedders that share a plan across transports; the stepper itself is
  single-coordinator.)
- **A failure budget.**  ``max_failures`` caps the injected step
  failures over the plan's lifetime.  Retried and re-executed steps
  draw fresh decisions, so without the cap an adversarial rate could
  starve a retry loop forever; with it, every run reaches quiescence.

Injected failures raise :class:`FaultInjected` *instead of* running the
step body (fail-stop before any write), which is what makes a plain
re-run of the failed step sound — see the chaos module docstring.
"""

from __future__ import annotations

import random
import threading

__all__ = ["FaultInjected", "FaultPlan"]


class FaultInjected(RuntimeError):
    """Raised by a chaos transport in place of an injected-failure step."""


class FaultPlan:
    """A seeded schedule of injected faults (see module docstring).

    Parameters
    ----------
    seed:
        The RNG seed; two plans with equal parameters produce identical
        schedules for identical draw sequences.
    fail_rate:
        Per shard-step probability of raising :class:`FaultInjected`
        instead of running the step (capped by *max_failures*).
    delay_ms:
        Maximum straggler sleep injected before a step body; the actual
        delay is uniform in ``[0, delay_ms)``.
    delay_rate:
        Per shard-step probability of injecting a straggler delay
        (only meaningful when ``delay_ms > 0``).
    dup_rate:
        Per-outbox, per-superstep probability of duplicating its pending
        deliveries into a (seeded-randomly chosen) outbox.
    reorder_rate:
        Per-superstep probability of shuffling the outbox delivery
        order before the flush.
    max_failures:
        Lifetime cap on injected step failures — the termination budget.
    """

    def __init__(
        self,
        seed: int = 0,
        fail_rate: float = 0.0,
        delay_ms: float = 0.0,
        delay_rate: float = 0.25,
        dup_rate: float = 0.0,
        reorder_rate: float = 0.0,
        max_failures: int = 64,
    ) -> None:
        for knob, value in (
            ("fail_rate", fail_rate),
            ("delay_rate", delay_rate),
            ("dup_rate", dup_rate),
            ("reorder_rate", reorder_rate),
        ):
            if not 0.0 <= float(value) <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1], got {value!r}")
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms!r}")
        if max_failures < 0:
            raise ValueError(f"max_failures must be >= 0, got {max_failures!r}")
        self.seed = int(seed)
        self.fail_rate = float(fail_rate)
        self.delay_ms = float(delay_ms)
        self.delay_rate = float(delay_rate)
        self.dup_rate = float(dup_rate)
        self.reorder_rate = float(reorder_rate)
        self.max_failures = int(max_failures)
        self._lock = threading.Lock()
        self._rng = random.Random(self.seed)
        self.failures_injected = 0
        self.delays_injected = 0
        self.dups_injected = 0
        self.reorders_injected = 0

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Re-seed and zero the injection counters (fresh run, same plan)."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self.failures_injected = 0
            self.delays_injected = 0
            self.dups_injected = 0
            self.reorders_injected = 0

    @property
    def injected(self) -> int:
        """Total injections of every kind so far."""
        return (
            self.failures_injected
            + self.delays_injected
            + self.dups_injected
            + self.reorders_injected
        )

    # -- draws (all serial; see module docstring) ----------------------------

    def draw_step(self, shard: int) -> tuple[bool, float]:
        """One shard-step's fate: ``(inject_failure, delay_ms)``.

        *shard* is informational (kept for symmetry with the exchange
        draws); the decision comes from the serial draw sequence alone.
        """
        with self._lock:
            fail = (
                self.fail_rate > 0.0
                and self.failures_injected < self.max_failures
                and self._rng.random() < self.fail_rate
            )
            if fail:
                self.failures_injected += 1
            delay = 0.0
            if self.delay_ms > 0.0 and self._rng.random() < self.delay_rate:
                delay = self._rng.random() * self.delay_ms
                self.delays_injected += 1
            return fail, delay

    def draw_duplications(self, num_outboxes: int) -> list[tuple[int, int]]:
        """Per-superstep duplicate-delivery draws: ``(src, dst)`` outbox
        pairs whose pending entries should be re-posted (``src == dst``
        is a legal duplicate — it re-delivers within one box)."""
        if self.dup_rate <= 0.0 or num_outboxes == 0:
            return []
        with self._lock:
            pairs = [
                (src, self._rng.randrange(num_outboxes))
                for src in range(num_outboxes)
                if self._rng.random() < self.dup_rate
            ]
            self.dups_injected += len(pairs)
            return pairs

    def draw_reorder(self, num_outboxes: int) -> list[int] | None:
        """Per-superstep reorder draw: a delivery-order permutation, or
        ``None`` to leave the order alone."""
        if self.reorder_rate <= 0.0 or num_outboxes < 2:
            return None
        with self._lock:
            if self._rng.random() >= self.reorder_rate:
                return None
            perm = list(range(num_outboxes))
            self._rng.shuffle(perm)
            self.reorders_injected += 1
            return perm

    # -- reporting -----------------------------------------------------------

    def as_dict(self) -> dict[str, float | int]:
        """Parameters + injection counters, for harness reports."""
        return {
            "seed": self.seed,
            "fail_rate": self.fail_rate,
            "delay_ms": self.delay_ms,
            "delay_rate": self.delay_rate,
            "dup_rate": self.dup_rate,
            "reorder_rate": self.reorder_rate,
            "max_failures": self.max_failures,
            "failures_injected": self.failures_injected,
            "delays_injected": self.delays_injected,
            "dups_injected": self.dups_injected,
            "reorders_injected": self.reorders_injected,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan<seed={self.seed}, fail={self.fail_rate}, "
            f"delay={self.delay_ms}ms@{self.delay_rate}, dup={self.dup_rate}, "
            f"reorder={self.reorder_rate}, injected={self.injected}>"
        )

"""The chaos harness: fault-plan × transport matrix + breaker drill.

This is the executable form of the robustness claim: for **every**
named fault plan, over **every** inner transport, the sharded stepper
behind a ``resilient(chaos(...))`` stack returns distances
**bit-identical** to Dijkstra, with retry work bounded by the plan's
failure budget.  :func:`run_chaos_matrix` runs the matrix (the
``repro chaos`` CLI command and the CI ``chaos`` job call it);
:func:`run_breaker_drill` exercises the serving tier's degraded mode —
breaker trip, landmark-bound answers, mutation shedding, half-open
probe, recovery — against a deterministic fake clock and a scripted
flaky solver.

Everything is seeded: the same ``(seed, suite, transports)`` triple
reproduces the same injections, the same retries, and the same report.
Per-cell recorder registries are folded into one fleet-wide
:class:`~repro.obs.metrics.MetricsRegistry` (counter add, histogram
bucket-merge) so the report's telemetry is the sum of what every cell
actually did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..bench.workloads import Workload, suite_workloads
from ..obs import Recorder
from ..obs.metrics import MetricsRegistry
from ..shard.stepper import ShardedDeltaStepper
from ..sssp.reference import dijkstra
from .breaker import CircuitBreaker, MutationShedError
from .chaos import ChaosTransport
from .plan import FaultPlan
from .retry import ResilientTransport, RetryPolicy

__all__ = [
    "named_fault_plans",
    "ChaosCell",
    "ChaosReport",
    "run_chaos_cell",
    "run_chaos_matrix",
    "run_breaker_drill",
]

#: inner transports every matrix cell is run over by default: the
#: serial reference and a pooled one (barrier skew, real concurrency)
DEFAULT_TRANSPORTS: tuple[str, ...] = ("inline", "threads:2")


def named_fault_plans(seed: int = 7) -> dict[str, FaultPlan]:
    """The named fault plans the chaos matrix iterates, freshly built.

    ``clean`` (control: no injection), ``failures`` (lost dispatches),
    ``stragglers`` (delayed steps), ``duplicates`` (duplicated +
    reordered deliveries), ``mixed`` (all of the above).  Plans carry
    RNG state, so callers get fresh instances each call.
    """
    return {
        "clean": FaultPlan(seed=seed),
        "failures": FaultPlan(seed=seed, fail_rate=0.3, max_failures=32),
        "stragglers": FaultPlan(seed=seed, delay_ms=2.0, delay_rate=0.5),
        "duplicates": FaultPlan(seed=seed, dup_rate=0.5, reorder_rate=0.5),
        "mixed": FaultPlan(
            seed=seed,
            fail_rate=0.2,
            delay_ms=1.0,
            delay_rate=0.25,
            dup_rate=0.3,
            reorder_rate=0.3,
            max_failures=32,
        ),
    }


@dataclass(frozen=True)
class ChaosCell:
    """One (workload, fault plan, inner transport) matrix cell's verdict."""

    workload: str
    plan: str
    transport: str
    identical: bool
    retries_bounded: bool
    faults_injected: int
    retry_attempts: int
    retry_bound: int
    restores: int
    supersteps: int

    @property
    def ok(self) -> bool:
        return self.identical and self.retries_bounded

    def as_dict(self) -> dict[str, Any]:
        d = dict(self.__dict__)
        d["ok"] = self.ok
        return d


@dataclass
class ChaosReport:
    """Everything one :func:`run_chaos_matrix` run established."""

    cells: list[ChaosCell] = field(default_factory=list)
    breaker: dict[str, Any] = field(default_factory=dict)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def ok(self) -> bool:
        """Bit-identity + bounded retries in every cell, drill passed."""
        return all(c.ok for c in self.cells) and bool(self.breaker.get("ok"))

    def as_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "cells": [c.as_dict() for c in self.cells],
            "breaker": self.breaker,
            "counters": self.metrics.snapshot()["counters"],
        }


def run_chaos_cell(
    workload: Workload,
    plan_name: str,
    plan: FaultPlan,
    transport: str,
    num_shards: int = 4,
    checkpoint_every: int = 2,
    max_attempts: int = 4,
    seed: int = 7,
    fleet_metrics: MetricsRegistry | None = None,
) -> ChaosCell:
    """Run one matrix cell: resilient(chaos(inner)) vs Dijkstra.

    The retry budget bound is structural, not tuned: the chaos plan
    injects at most ``max_failures`` step failures total, and each can
    cost at most ``max_attempts`` executions, so ``retry.attempts`` (the
    count of *re*-executions) can never exceed their product.
    """
    cell_rec = Recorder()
    chaos = ChaosTransport(plan, inner=transport)
    policy = RetryPolicy(
        max_attempts=max_attempts, base_delay_ms=0.1, max_delay_ms=2.0, seed=seed
    )
    stack = ResilientTransport(inner=chaos, policy=policy)
    result = ShardedDeltaStepper().solve(
        workload.graph,
        workload.source,
        delta=workload.delta,
        num_shards=num_shards,
        transport=stack,
        checkpoint_every=checkpoint_every,
        max_restores=max(8, plan.max_failures),
        recorder=cell_rec,
    )
    expected = dijkstra(workload.graph, workload.source).distances
    counters = cell_rec.metrics.snapshot()["counters"]
    retry_attempts = int(counters.get("retry.attempts", 0))
    retry_bound = plan.max_failures * max_attempts
    if fleet_metrics is not None:
        fleet_metrics.merge(cell_rec.metrics)
    return ChaosCell(
        workload=workload.name,
        plan=plan_name,
        transport=transport,
        identical=bool(np.array_equal(result.distances, expected)),
        retries_bounded=retry_attempts <= retry_bound,
        faults_injected=plan.injected,
        retry_attempts=retry_attempts,
        retry_bound=retry_bound,
        restores=int(result.extra.get("restores", 0)),
        supersteps=int(result.buckets_processed),
    )


def run_breaker_drill(seed: int = 7) -> dict[str, Any]:
    """Drive the serving tier through a full breaker episode.

    A scripted solver fails its first calls; a fake clock drives the
    cooldown.  Checks, in order: failures degrade to landmark answers,
    the breaker trips, an open breaker sheds mutations, the half-open
    probe's failure re-opens, and after recovery the exact path returns
    distances bit-identical to Dijkstra.  Returns per-check booleans
    plus the final breaker/stats snapshot; ``"ok"`` ands them all.
    """
    from ..service.batch import batch_delta_stepping
    from ..service.landmarks import LandmarkIndex
    from ..service.server import QueryService

    workload = suite_workloads("ci")[0]
    g = workload.graph
    landmarks = LandmarkIndex.build(g, num_landmarks=4, seed=seed)

    calls = {"n": 0}

    def flaky_solver(graph: Any, batch: Any, **kwargs: Any) -> Any:
        calls["n"] += 1
        if calls["n"] <= 3:
            raise RuntimeError("scripted solver outage")
        return batch_delta_stepping(graph, batch, **kwargs)

    clock = {"t": 0.0}
    breaker = CircuitBreaker(
        failure_threshold=2, reset_after_s=10.0, clock=lambda: clock["t"]
    )
    drill_rec = Recorder()
    service = QueryService(
        g,
        landmarks=landmarks,
        breaker=breaker,
        solver=flaky_solver,
        recorder=drill_rec,
    )
    n = g.num_vertices
    sources = [workload.source, (workload.source + 1) % n, (workload.source + 2) % n]

    checks: dict[str, bool] = {}
    r1 = service.query(sources[0])
    checks["failure_degrades"] = bool(r1.degraded and not r1.exact)
    r2 = service.query(sources[1])
    checks["breaker_trips"] = breaker.state == "open" and breaker.trips >= 1
    checks["second_failure_degrades"] = bool(r2.degraded)
    try:
        service.mutate(reweights=[(0, int(g.indices[0]), 2.0)], strict=False)
        checks["mutation_shed"] = False
    except MutationShedError:
        checks["mutation_shed"] = True
    clock["t"] = 11.0  # past the cooldown: next query is the probe
    r3 = service.query(sources[2])
    checks["failed_probe_reopens"] = bool(r3.degraded) and breaker.state == "open"
    clock["t"] = 22.0  # solver has recovered (scripted failures spent)
    r4 = service.query(sources[0])
    expected = dijkstra(g, sources[0]).distances
    checks["recovery_exact"] = bool(
        r4.exact
        and not r4.degraded
        and breaker.state == "closed"
        and np.array_equal(r4.distances, expected)
    )
    stats = service.stats()
    return {
        "ok": all(checks.values()),
        "checks": checks,
        "workload": workload.name,
        "degraded_answers": stats.degraded_answers,
        "mutations_shed": stats.mutations_shed,
        "breaker": breaker.as_dict(),
        "counters": drill_rec.metrics.snapshot()["counters"],
    }


def run_chaos_matrix(
    smoke: bool = False,
    seed: int = 7,
    transports: Sequence[str] = DEFAULT_TRANSPORTS,
    num_shards: int = 4,
    checkpoint_every: int = 2,
    max_attempts: int = 4,
    suite: str = "ci",
) -> ChaosReport:
    """Run the full fault-plan × transport matrix plus the breaker drill.

    ``smoke`` restricts the matrix to the two smallest suite workloads
    (the CI gate); the full run covers the whole suite.  Per-cell
    recorder registries are merged into ``report.metrics``, so e.g.
    ``retry.attempts`` / ``faults.injected`` / ``checkpoint.restores``
    in the report are fleet totals.
    """
    workloads = suite_workloads(suite)
    if smoke:
        workloads = workloads[:2]
    report = ChaosReport()
    for workload in workloads:
        for transport in transports:
            for plan_name, plan in named_fault_plans(seed).items():
                report.cells.append(
                    run_chaos_cell(
                        workload,
                        plan_name,
                        plan,
                        transport,
                        num_shards=num_shards,
                        checkpoint_every=checkpoint_every,
                        max_attempts=max_attempts,
                        seed=seed,
                        fleet_metrics=report.metrics,
                    )
                )
    report.breaker = run_breaker_drill(seed)
    return report

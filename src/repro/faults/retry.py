"""The ``resilient`` transport: retry/backoff over any inner transport.

:class:`ResilientTransport` gives the sharded stepper its first
recovery layer: when the inner transport reports per-step failures
(a :class:`repro.parallel.pool.BatchError` with indices attached — the
contract every transport carries), only the failed shard steps are
re-run, after a capped exponential backoff with seeded jitter.  The
completed siblings' results are kept — min-plus relaxation makes
re-running a *failed* step sound (injected failures are fail-stop
before the step body) and re-running a *completed* one harmless, but
not re-running completed work is what keeps retries cheap.

One ``run()`` call is one superstep, so :class:`RetryPolicy.deadline_ms`
is the per-superstep recovery budget: when the next backoff would cross
it, the transport stops retrying and declares the superstep lost.
Exhaustion (attempts or deadline) raises :class:`RetryExhausted` — a
:class:`~repro.shard.exchange.TransportFailure` — which the stepper's
checkpoint layer treats as "restore and re-execute" and everything else
treats as fatal.

Telemetry (via :meth:`~repro.shard.exchange.Transport.bind_recorder`):
``retry.attempts`` counts re-executed shard steps, ``retry.exhausted``
counts supersteps declared lost, ``retry.backoff_ms`` accumulates time
spent backing off.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..parallel.pool import BatchError, WorkerPool
from ..shard.exchange import (
    FrontierExchange,
    Transport,
    TransportFailure,
    make_transport,
    spec_float,
    spec_int,
)

__all__ = ["RetryPolicy", "RetryExhausted", "ResilientTransport", "resilient_from_params"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`ResilientTransport` retries failed shard steps.

    ``max_attempts`` bounds executions per step per superstep (first try
    included).  Backoff before retry *k* (1-based) is
    ``min(base_delay_ms * 2**(k-1), max_delay_ms)``, with up to a
    *jitter* fraction subtracted by the seeded RNG — jitter is
    subtractive so ``max_delay_ms`` is also the worst case.
    ``deadline_ms`` is the per-superstep budget (``None`` = unbounded):
    a retry whose backoff would cross it is not attempted.
    """

    max_attempts: int = 4
    base_delay_ms: float = 1.0
    max_delay_ms: float = 50.0
    jitter: float = 0.5
    seed: int = 0
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")

    def backoff_ms(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry *attempt* (1-based; serial, seeded draw)."""
        base = min(self.base_delay_ms * (2.0 ** (attempt - 1)), self.max_delay_ms)
        if self.jitter <= 0.0:
            return base
        return base * (1.0 - self.jitter * rng.random())


class RetryExhausted(TransportFailure):
    """A superstep's failed shard steps survived every allowed retry.

    ``failures`` holds ``(shard index, last exception)`` pairs,
    ``attempts`` the executions the worst step got, and
    ``deadline_hit`` whether the superstep deadline (rather than the
    attempt cap) ended the recovery.
    """

    def __init__(
        self,
        failures: Sequence[tuple[int, BaseException]],
        attempts: int,
        deadline_hit: bool = False,
    ) -> None:
        self.failures = list(failures)
        self.attempts = attempts
        self.deadline_hit = deadline_hit
        ids = ", ".join(str(i) for i, _ in self.failures)
        last = self.failures[0][1] if self.failures else None
        why = "superstep deadline reached" if deadline_hit else "attempt cap reached"
        super().__init__(
            f"shard step(s) [{ids}] still failing after {attempts} attempt(s) "
            f"({why}); last error: {type(last).__name__}: {last}"
        )


class ResilientTransport(Transport):
    """Retry failed shard steps on any inner transport (module docstring).

    Spec form: ``resilient(inner=threads:4,attempts=4,...)`` — see
    :func:`resilient_from_params`.
    """

    def __init__(
        self,
        inner: Any = None,
        policy: RetryPolicy | None = None,
        pool: "WorkerPool | None" = None,
    ) -> None:
        self.inner = make_transport(inner, pool=pool)
        self.policy = policy if policy is not None else RetryPolicy()
        self.name = f"resilient[{self.inner.name}]"
        self._rng = random.Random(self.policy.seed)
        self._recorder: Any = None

    def bind_recorder(self, recorder: Any) -> None:
        self._recorder = recorder if recorder else None
        self.inner.bind_recorder(recorder)

    def before_flush(self, exchange: FrontierExchange) -> None:
        self.inner.before_flush(exchange)

    def run(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        policy = self.policy
        rec = self._recorder
        t0 = time.monotonic()
        results: list[Any] = [None] * len(fns)
        pending = list(range(len(fns)))
        attempt = 0
        deadline_hit = False
        while True:
            attempt += 1
            failures: list[tuple[int, BaseException]] = []
            try:
                outs = self.inner.run([fns[i] for i in pending])
            except BatchError as exc:
                failed_local = dict(exc.failures)
                for j, value in enumerate(exc.results):
                    if j in failed_local:
                        failures.append((pending[j], failed_local[j]))
                    else:
                        results[pending[j]] = value
            else:
                for j, value in enumerate(outs):
                    results[pending[j]] = value
            if not failures:
                return results
            if attempt >= policy.max_attempts:
                break
            delay_ms = policy.backoff_ms(attempt, self._rng)
            if policy.deadline_ms is not None:
                elapsed_ms = (time.monotonic() - t0) * 1e3
                if elapsed_ms + delay_ms > policy.deadline_ms:
                    deadline_hit = True
                    break
            if delay_ms > 0.0:
                time.sleep(delay_ms / 1e3)
            if rec is not None:
                rec.inc("retry.attempts", len(failures))
                rec.observe("retry.backoff_ms", delay_ms)
            pending = [i for i, _ in failures]
        if rec is not None:
            rec.inc("retry.exhausted")
        raise RetryExhausted(failures, attempt, deadline_hit=deadline_hit)


def resilient_from_params(
    params: dict[str, str],
    pool: "WorkerPool | None" = None,
    spec: str = "resilient",
) -> ResilientTransport:
    """Build a :class:`ResilientTransport` from ``resilient(...)`` params.

    Knobs (all optional): ``inner`` (any transport spec, including a
    ``chaos`` one constructed in code), ``attempts``, ``base_ms``,
    ``max_ms``, ``jitter``, ``seed``, ``deadline_ms``.  Bad values raise
    ``ValueError`` naming *spec*.
    """
    params = dict(params)
    inner = params.pop("inner", None)
    deadline_raw = params.pop("deadline_ms", None)
    policy = RetryPolicy(
        max_attempts=spec_int(params.pop("attempts", "4"), spec, "attempts", minimum=1),
        base_delay_ms=spec_float(params.pop("base_ms", "1"), spec, "base_ms", lo=0.0),
        max_delay_ms=spec_float(params.pop("max_ms", "50"), spec, "max_ms", lo=0.0),
        jitter=spec_float(params.pop("jitter", "0.5"), spec, "jitter", lo=0.0, hi=1.0),
        seed=spec_int(params.pop("seed", "0"), spec, "seed"),
        deadline_ms=(
            None
            if deadline_raw is None
            else spec_float(deadline_raw, spec, "deadline_ms", lo=0.0)
        ),
    )
    if params:
        raise ValueError(
            f"transport spec {spec!r}: unknown parameter(s): "
            f"{', '.join(sorted(params))}"
        )
    return ResilientTransport(inner=inner, policy=policy, pool=pool)

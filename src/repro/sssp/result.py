"""The result object shared by every SSSP implementation.

All five implementations (canonical Meyer–Sanders, Pythonic GraphBLAS,
C-facade GraphBLAS, fused, task-parallel) and both baselines (Dijkstra,
Bellman–Ford) return an :class:`SSSPResult`, so tests and benchmarks
compare them uniformly.  Unreachable vertices carry ``inf``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SSSPResult", "INF"]

INF = np.inf


@dataclass
class SSSPResult:
    """Distances plus the work counters the paper's analysis talks about.

    Attributes
    ----------
    distances:
        Dense ``float64`` array, ``inf`` for unreachable vertices.
    source, delta, method:
        Run parameters (``delta`` is ``nan`` for non-delta algorithms).
    buckets_processed:
        Outer-loop iterations that processed a non-empty bucket.
    phases:
        Processing phases — simultaneous relaxations of all light (or all
        heavy) edges; the unit of parallelism in Meyer–Sanders.
    relaxations:
        Relaxation requests generated (size of all ``Req`` sets).
    updates:
        Requests that improved a tentative distance.
    profile:
        Optional per-stage seconds (filled when instrumentation is on);
        the §VI.C time-breakdown experiment reads this.
    """

    distances: np.ndarray
    source: int
    delta: float
    method: str
    buckets_processed: int = 0
    phases: int = 0
    relaxations: int = 0
    updates: int = 0
    profile: dict[str, float] | None = None
    extra: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.distances)

    def reached(self) -> np.ndarray:
        """Boolean mask of vertices with a finite distance."""
        return np.isfinite(self.distances)

    @property
    def num_reached(self) -> int:
        return int(np.isfinite(self.distances).sum())

    def distance_to(self, v: int) -> float:
        return float(self.distances[v])

    def same_distances(self, other: "SSSPResult", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Distance-array equality with tolerance (``inf`` matches ``inf``)."""
        a, b = self.distances, other.distances
        if a.shape != b.shape:
            return False
        fin_a, fin_b = np.isfinite(a), np.isfinite(b)
        if not np.array_equal(fin_a, fin_b):
            return False
        return bool(np.allclose(a[fin_a], b[fin_b], rtol=rtol, atol=atol))

    def max_abs_difference(self, other: "SSSPResult") -> float:
        """Largest |Δdistance| over mutually-reached vertices (diagnostics)."""
        both = np.isfinite(self.distances) & np.isfinite(other.distances)
        if not both.any():
            return 0.0
        return float(np.max(np.abs(self.distances[both] - other.distances[both])))

    def summary(self) -> dict:
        """Flat dict for reports."""
        return {
            "method": self.method,
            "source": self.source,
            "delta": self.delta,
            "reached": self.num_reached,
            "buckets": self.buckets_processed,
            "phases": self.phases,
            "relaxations": self.relaxations,
            "updates": self.updates,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SSSPResult<{self.method}: src={self.source}, delta={self.delta}, "
            f"reached={self.num_reached}/{self.n}, phases={self.phases}>"
        )

"""Cross-validation of SSSP results.

Three independent checks, used by tests and by ``EXPERIMENTS.md``'s
correctness appendix:

1. **Oracle comparison** — distances must match Dijkstra exactly
   (tolerance for float addition order).
2. **Bellman optimality conditions** — a distance array is *the* shortest
   path solution iff ``d[src]=0``, every edge satisfies
   ``d[v] ≤ d[u] + w(u,v)``, and every reached vertex other than the
   source has a tight incoming edge.  This check needs no oracle.
3. **networkx comparison** — an external implementation, when available.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from .reference import dijkstra
from .result import SSSPResult

__all__ = ["check_against_dijkstra", "check_optimality_conditions", "check_against_networkx"]


class ValidationError(AssertionError):
    """An SSSP result failed validation."""


def check_against_dijkstra(graph: Graph, result: SSSPResult, rtol: float = 1e-9) -> None:
    """Raise :class:`ValidationError` unless *result* matches the oracle."""
    oracle = dijkstra(graph, result.source)
    if not result.same_distances(oracle, rtol=rtol):
        bad = np.nonzero(
            ~np.isclose(result.distances, oracle.distances, rtol=rtol, equal_nan=True)
            & ~(np.isinf(result.distances) & np.isinf(oracle.distances))
        )[0]
        sample = bad[:5].tolist()
        raise ValidationError(
            f"{result.method}: {len(bad)} distances differ from Dijkstra; "
            f"first offenders {sample}; max |Δ| = {result.max_abs_difference(oracle)}"
        )


def check_optimality_conditions(graph: Graph, result: SSSPResult, atol: float = 1e-9) -> None:
    """Oracle-free Bellman optimality check (see module docstring)."""
    d = result.distances
    src_v = result.source
    if d[src_v] != 0.0:
        raise ValidationError(f"d[source] = {d[src_v]}, expected 0")
    srcs, dsts, w = graph.to_edges()
    du = d[srcs]
    dv = d[dsts]
    finite_u = np.isfinite(du)
    # feasibility: no edge can shortcut the claimed distances
    violation = finite_u & (dv > du + w + atol)
    if violation.any():
        k = int(np.nonzero(violation)[0][0])
        raise ValidationError(
            f"edge ({srcs[k]} -> {dsts[k]}, w={w[k]}) violates triangle "
            f"inequality: d[{dsts[k]}]={dv[k]} > {du[k]} + {w[k]}"
        )
    # reachability closure: finite u with an edge to v forces v finite
    leaks = finite_u & ~np.isfinite(dv)
    if leaks.any():
        k = int(np.nonzero(leaks)[0][0])
        raise ValidationError(
            f"vertex {dsts[k]} unreached despite edge from reached {srcs[k]}"
        )
    # tightness: every reached non-source vertex has a predecessor edge
    # achieving its distance
    reached = np.isfinite(d)
    reached[src_v] = False
    tight_targets = np.zeros(graph.num_vertices, dtype=bool)
    tight = finite_u & np.isclose(dv, du + w, atol=atol, rtol=1e-12)
    tight_targets[dsts[tight]] = True
    loose = reached & ~tight_targets
    if loose.any():
        k = int(np.nonzero(loose)[0][0])
        raise ValidationError(
            f"vertex {k} has d={d[k]} but no incoming edge achieves it"
        )


def check_against_networkx(graph: Graph, result: SSSPResult, rtol: float = 1e-9) -> None:
    """Compare against networkx's Dijkstra (skipped if networkx missing)."""
    try:
        import networkx as nx
    except ImportError:  # pragma: no cover - optional dependency
        return
    G = nx.DiGraph()
    G.add_nodes_from(range(graph.num_vertices))
    srcs, dsts, w = graph.to_edges()
    G.add_weighted_edges_from(zip(srcs.tolist(), dsts.tolist(), w.tolist()))
    lengths = nx.single_source_dijkstra_path_length(G, result.source)
    expected = np.full(graph.num_vertices, np.inf)
    for v, dist in lengths.items():
        expected[v] = dist
    fin = np.isfinite(expected)
    if not np.array_equal(fin, np.isfinite(result.distances)):
        raise ValidationError(f"{result.method}: reachability differs from networkx")
    if not np.allclose(result.distances[fin], expected[fin], rtol=rtol):
        raise ValidationError(f"{result.method}: distances differ from networkx")

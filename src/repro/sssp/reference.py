"""Baseline SSSP algorithms: Dijkstra and Bellman–Ford.

Dijkstra (binary-heap, lazy deletion) is the correctness oracle for every
delta-stepping implementation and the §VII comparison point (Δ=1 on unit
weights makes delta-stepping process vertices in exactly Dijkstra's
distance order).  Bellman–Ford is the fully edge-centric label-correcting
baseline — delta-stepping with Δ=∞ degenerates to it, which the Δ-sweep
ablation exercises.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graphs.graph import Graph
from ..kernels import check_kernel, min_by_target, workspace_for
from .result import INF, SSSPResult

__all__ = ["dijkstra", "bellman_ford"]


class NegativeWeightError(ValueError):
    """Dijkstra requires non-negative weights; Bellman–Ford found a
    negative cycle."""


def dijkstra(graph: Graph, source: int, return_predecessors: bool = False) -> SSSPResult:
    """Textbook Dijkstra with a binary heap and lazy deletion.

    O((V+E) log V).  Python-loop based on purpose: it is the *trusted
    oracle*, written for obviousness rather than speed, and structurally
    independent of all the vectorized implementations it validates.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    if len(graph.weights) and graph.weights.min() < 0:
        raise NegativeWeightError("Dijkstra requires non-negative weights")
    dist = np.full(n, INF, dtype=np.float64)
    pred = np.full(n, -1, dtype=np.int64) if return_predecessors else None
    dist[source] = 0.0
    settled = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, indices, weights = graph.csr()
    relaxations = 0
    updates = 0
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        lo, hi = indptr[u], indptr[u + 1]
        for v, w in zip(indices[lo:hi].tolist(), weights[lo:hi].tolist()):
            relaxations += 1
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                updates += 1
                if pred is not None:
                    pred[v] = u
                heapq.heappush(heap, (nd, v))
    result = SSSPResult(
        distances=dist,
        source=source,
        delta=float("nan"),
        method="dijkstra",
        relaxations=relaxations,
        updates=updates,
        phases=int(settled.sum()),
    )
    if pred is not None:
        result.extra["predecessors"] = pred
    return result


def bellman_ford(
    graph: Graph, source: int, max_rounds: int | None = None, kernel: str = "auto"
) -> SSSPResult:
    """Edge-centric Bellman–Ford, one vectorized pass over all edges per
    round.

    Each round performs the paper's §II.C "operation on all edges
    simultaneously": candidate distances ``dist[src] + w`` are grouped by
    target with a min-reduction (the shared :mod:`repro.kernels`
    primitive — *kernel* picks argsort vs dense scatter-min; the fat
    all-edge waves here are where the scatter path shines), then merged.
    Converges in at most ``V - 1`` rounds; a change in round ``V`` means
    a negative cycle.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    check_kernel(kernel)
    ws = workspace_for(graph)
    src, dst, w = graph.to_edges()
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    rounds = 0
    relaxations = 0
    updates = 0
    limit = max_rounds if max_rounds is not None else n
    for _ in range(limit):
        rounds += 1
        active = np.isfinite(dist[src])
        if not active.any():
            break
        cand_dst = dst[active]
        cand_val = dist[src[active]] + w[active]
        relaxations += len(cand_dst)
        targets, best = min_by_target(cand_dst, cand_val, workspace=ws, kernel=kernel)
        improved = best < dist[targets]
        if not improved.any():
            break
        dist[targets[improved]] = best[improved]
        updates += int(improved.sum())
    else:
        # ran the full V rounds without convergence check firing
        if max_rounds is None:
            raise NegativeWeightError("negative cycle reachable from source")
    return SSSPResult(
        distances=dist,
        source=source,
        delta=float("inf"),
        method="bellman-ford",
        phases=rounds,
        relaxations=relaxations,
        updates=updates,
    )

"""Line-by-line transliteration of the paper's Fig. 2 SuiteSparse listing.

Every statement below carries the corresponding C line as a comment; the
only deviations are Python syntax (``Ref`` cells for output pointers) and
the termination-of-unreachable-graphs guard the C code gets for free from
its sparse ``t``.  Functionally identical to
:func:`repro.sssp.graphblas_sssp.graphblas_delta_stepping` — the
equivalence test in ``tests/sssp/test_capi_sssp.py`` asserts it — but
written against :mod:`repro.graphblas.capi` to demonstrate that the C API
surface is sufficient, pitfalls included.
"""

from __future__ import annotations

import numpy as np

from ..graphblas.capi import (
    GrB_DESC_R,
    GrB_FP64,
    GrB_BOOL,
    GrB_IDENTITY_BOOL,
    GrB_IDENTITY_FP64,
    GrB_LOR,
    GrB_LT_FP64,
    GrB_MIN_FP64,
    GrB_MIN_PLUS_SEMIRING_FP64,
    GrB_NULL,
    GrB_Matrix_new,
    GrB_Vector_apply,
    GrB_Vector_clear,
    GrB_Vector_new,
    GrB_Vector_nvals,
    GrB_Vector_setElement,
    GrB_apply,
    GrB_eWiseAdd,
    GrB_vxm,
    Info,
    Ref,
)
from ..graphblas.matrix import Matrix
from ..graphblas.unaryop import UnaryOp, range_filter, threshold_geq, threshold_gt, threshold_leq
from ..graphs.graph import Graph
from .result import INF, SSSPResult

__all__ = ["capi_delta_stepping"]


class GrBCallFailed(RuntimeError):
    """A GrB_* call returned a non-SUCCESS Info code."""


def _ok(info: Info) -> None:
    if info != Info.SUCCESS:
        raise GrBCallFailed(f"GraphBLAS call failed: {info!r}")


def capi_delta_stepping(graph: Graph, source: int, delta: float = 1.0) -> SSSPResult:
    """``sssp_delta_step`` from Fig. 2, transliterated.

    Increments ``i`` by exactly one per outer iteration, as the listing
    does (fine for the paper's unit-weight/Δ=1 runs; for sparse weighted
    bucket ranges prefer the ``skip_empty_buckets`` option of the Pythonic
    version).
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    A = graph.to_matrix()
    n, m = A.nrows, A.ncols
    src = source
    if not 0 <= src < n:
        raise IndexError(f"source {src} out of range [0, {n})")

    # // Global scalars: delta = d
    d = float(delta)
    # // Define operators, scalar, vectors, and matrices
    delta_leq: UnaryOp = threshold_leq(d)
    delta_gt: UnaryOp = threshold_gt(d)
    clear_desc = GrB_DESC_R

    t_ref, tB_ref, tmasked_ref, tReq_ref = Ref(), Ref(), Ref(), Ref()
    tless_ref, s_ref, tgeq_ref, tcomp_ref = Ref(), Ref(), Ref(), Ref()
    _ok(GrB_Vector_new(t_ref, GrB_FP64, n))
    _ok(GrB_Vector_new(tB_ref, GrB_BOOL, n))
    _ok(GrB_Vector_new(tmasked_ref, GrB_FP64, n))
    _ok(GrB_Vector_new(tReq_ref, GrB_FP64, n))
    _ok(GrB_Vector_new(tless_ref, GrB_BOOL, n))
    _ok(GrB_Vector_new(s_ref, GrB_BOOL, n))
    _ok(GrB_Vector_new(tgeq_ref, GrB_BOOL, n))
    _ok(GrB_Vector_new(tcomp_ref, GrB_FP64, n))
    t, tB, tmasked, tReq = t_ref.value, tB_ref.value, tmasked_ref.value, tReq_ref.value
    tless, s, tgeq, tcomp = tless_ref.value, s_ref.value, tgeq_ref.value, tcomp_ref.value

    # // t[src] = 0
    _ok(GrB_Vector_setElement(t, 0, src))

    # // Create A_L and A_H based on delta:
    Ah_ref, Al_ref, Ab_ref = Ref(), Ref(), Ref()
    _ok(GrB_Matrix_new(Ah_ref, GrB_FP64, n, m))
    _ok(GrB_Matrix_new(Al_ref, GrB_FP64, n, m))
    _ok(GrB_Matrix_new(Ab_ref, GrB_BOOL, n, m))
    Ah: Matrix = Ah_ref.value
    Al: Matrix = Al_ref.value
    Ab: Matrix = Ab_ref.value

    # // A_L = A .* (A .<= delta)
    _ok(GrB_apply(Ab, GrB_NULL, GrB_NULL, delta_leq, A, GrB_NULL))
    _ok(GrB_apply(Al, Ab, GrB_NULL, GrB_IDENTITY_FP64, A, GrB_NULL))

    # // A_H = A .* (A .> delta)
    _ok(GrB_apply(Ab, GrB_NULL, GrB_NULL, delta_gt, A, GrB_NULL))
    _ok(GrB_apply(Ah, Ab, GrB_NULL, GrB_IDENTITY_FP64, A, GrB_NULL))

    # // init i = 0
    i_global = 0
    buckets = phases = relaxations = 0

    # // Outer loop: while (t .>= i*delta) != 0 do
    delta_igeq = threshold_geq(i_global * d)
    _ok(GrB_Vector_apply(tgeq, GrB_NULL, GrB_NULL, delta_igeq, t, GrB_NULL))
    _ok(GrB_Vector_apply(tcomp, tgeq, GrB_NULL, GrB_IDENTITY_BOOL, t, GrB_NULL))
    tcomp_size = Ref()
    _ok(GrB_Vector_nvals(tcomp_size, tcomp))
    while tcomp_size.value > 0:
        buckets += 1
        # // s = 0
        _ok(GrB_Vector_clear(s))

        # // tBi = (i*delta .<= t .< (i+1)*delta)
        delta_irange = range_filter(i_global * d, (i_global + 1) * d)
        _ok(GrB_Vector_apply(tB, GrB_NULL, GrB_NULL, delta_irange, t, clear_desc))
        # // t .* tBi
        _ok(GrB_Vector_apply(tmasked, tB, GrB_NULL, GrB_IDENTITY_FP64, t, clear_desc))

        # // Inner loop: while tBi != 0 do
        tm_size = Ref()
        _ok(GrB_Vector_nvals(tm_size, tmasked))
        while tm_size.value > 0:
            phases += 1
            # // tReq = A_L' (min.+) (t .* tBi)
            _ok(GrB_vxm(tReq, GrB_NULL, GrB_NULL, GrB_MIN_PLUS_SEMIRING_FP64, tmasked, Al, clear_desc))
            relaxations += tReq.nvals
            # // s = s + tBi
            _ok(GrB_eWiseAdd(s, GrB_NULL, GrB_NULL, GrB_LOR, s, tB, GrB_NULL))

            # // tBi = (i*delta .<= tReq .< (i+1)*delta) .* (tReq .< t)
            _ok(GrB_eWiseAdd(tless, tReq, GrB_NULL, GrB_LT_FP64, tReq, t, clear_desc))
            _ok(GrB_Vector_apply(tB, tless, GrB_NULL, delta_irange, tReq, clear_desc))

            # // t = min(t, tReq)
            _ok(GrB_eWiseAdd(t, GrB_NULL, GrB_NULL, GrB_MIN_FP64, t, tReq, GrB_NULL))

            _ok(GrB_Vector_apply(tmasked, tB, GrB_NULL, GrB_IDENTITY_FP64, t, clear_desc))
            _ok(GrB_Vector_nvals(tm_size, tmasked))

        # // tReq = A_H' (min.+) (t .* s)
        _ok(GrB_Vector_apply(tmasked, s, GrB_NULL, GrB_IDENTITY_FP64, t, clear_desc))
        _ok(GrB_vxm(tReq, GrB_NULL, GrB_NULL, GrB_MIN_PLUS_SEMIRING_FP64, tmasked, Ah, clear_desc))
        relaxations += tReq.nvals
        phases += 1

        # // t = min(t, tReq)
        _ok(GrB_eWiseAdd(t, GrB_NULL, GrB_NULL, GrB_MIN_FP64, t, tReq, GrB_NULL))

        # // i = i+1
        i_global += 1
        delta_igeq = threshold_geq(i_global * d)
        _ok(GrB_apply(tgeq, GrB_NULL, GrB_NULL, delta_igeq, t, clear_desc))
        _ok(GrB_apply(tcomp, tgeq, GrB_NULL, GrB_IDENTITY_BOOL, t, clear_desc))
        _ok(GrB_Vector_nvals(tcomp_size, tcomp))

    # // Set the return paths
    distances = np.full(n, INF, dtype=np.float64)
    idx, vals = t.to_coo()
    distances[idx] = vals
    return SSSPResult(
        distances=distances,
        source=src,
        delta=d,
        method="graphblas-capi",
        buckets_processed=buckets,
        phases=phases,
        relaxations=relaxations,
    )

"""Canonical Meyer–Sanders delta-stepping over vertices, edges, and buckets.

This is the *input* of the paper's translation methodology: the algorithm
exactly as Fig. 1 (right column) states it — explicit bucket sets, light
and heavy edge sets per vertex, a ``relax`` procedure that moves vertices
between buckets:

.. code-block:: none

    procedure relax(v, new_dist)
        if new_dist < tent(v)
            B[⌊tent(v)/Δ⌋]    -= {v}
            B[⌊new_dist/Δ⌋]   += {v}
            tent(v) = new_dist

    heavy(v) = {(v,w) ∈ E : c(v,w) > Δ};  light(v) = {(v,w) ∈ E : c(v,w) ≤ Δ}
    tent(v) = ∞;  relax(s, 0);  i = 0
    while ¬isEmpty(B):
        S = ∅
        while ¬isEmpty(B[i]):
            Req = {(w, tent(v)+c(v,w)) : v ∈ B[i] ∧ (v,w) ∈ light(v)}
            S = S ∪ B[i];  B[i] = ∅
            foreach (v,x) ∈ Req: relax(v, x)
        Req = {(w, tent(v)+c(v,w)) : v ∈ S ∧ (v,w) ∈ heavy(v)}
        foreach (v,x) ∈ Req: relax(v, x)
        i = i + 1

Two execution modes:

- ``strict=True`` — the literal per-request Python loop above (the
  faithful canonical form; used by equivalence tests).
- ``strict=False`` (default) — identical bucket/phase structure, but each
  ``Req`` set is generated and min-reduced with NumPy before the relax
  sweep.  Same distances, same phase counts, usable on the full suite.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from ..graphs.graph import Graph
from ..kernels import min_by_target
from .result import INF, SSSPResult

__all__ = ["meyer_sanders_delta_stepping"]


def _split_light_heavy(graph: Graph, delta: float):
    """Per-vertex light/heavy out-edge sets, as CSR masks."""
    indptr, indices, weights = graph.csr()
    light = weights <= delta
    return indptr, indices, weights, light


def meyer_sanders_delta_stepping(
    graph: Graph,
    source: int,
    delta: float = 1.0,
    strict: bool = False,
) -> SSSPResult:
    """Run canonical delta-stepping; see module docstring for the algorithm."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    indptr, indices, weights, light = _split_light_heavy(graph, delta)

    tent = np.full(n, INF, dtype=np.float64)
    buckets: dict[int, set[int]] = defaultdict(set)
    counters = {"relaxations": 0, "updates": 0, "phases": 0, "buckets": 0}

    def relax(v: int, new_dist: float) -> None:
        counters["relaxations"] += 1
        if new_dist < tent[v]:
            if math.isfinite(tent[v]):
                buckets[int(tent[v] // delta)].discard(v)
            buckets[int(new_dist // delta)].add(v)
            tent[v] = new_dist
            counters["updates"] += 1

    relax(source, 0.0)
    counters["relaxations"] = 0  # the seeding relax is not a request
    counters["updates"] = 0

    def gen_requests_strict(vertices, edge_mask):
        req = []
        for v in vertices:
            lo, hi = indptr[v], indptr[v + 1]
            for k in range(lo, hi):
                if edge_mask[k]:
                    req.append((int(indices[k]), float(tent[v] + weights[k])))
        return req

    def gen_requests_vectorized(vertices, edge_mask):
        vs = np.fromiter(vertices, dtype=np.int64, count=len(vertices))
        starts, ends = indptr[vs], indptr[vs + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return []
        offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
        flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lengths)
        sel = edge_mask[flat]
        flat = flat[sel]
        num_requests = len(flat)
        src_dist = np.repeat(tent[vs], lengths)[sel]
        targets = indices[flat]
        dists = src_dist + weights[flat]
        # per-target min before the relax sweep (same result, fewer calls);
        # the shared argsort kernel from repro.kernels
        uts, best = min_by_target(targets, dists)
        # relax() below counts one per unique target; account the folded
        # duplicates here so strict and vectorized report identical totals
        counters["relaxations"] += num_requests - len(uts)
        return list(zip(uts.tolist(), best.tolist()))

    gen_requests = gen_requests_strict if strict else gen_requests_vectorized
    heavy_mask = ~light

    while buckets:
        i = min(buckets)
        if not buckets[i]:
            del buckets[i]
            continue
        counters["buckets"] += 1
        settled: set[int] = set()
        while buckets.get(i):
            current = buckets[i]
            buckets[i] = set()
            settled |= current
            counters["phases"] += 1
            for v, x in gen_requests(sorted(current), light):
                relax(v, x)
        buckets.pop(i, None)
        if settled:
            counters["phases"] += 1
            for v, x in gen_requests(sorted(settled), heavy_mask):
                relax(v, x)
        # empty buckets left behind by re-relaxed vertices are pruned lazily
        for j in [j for j, b in buckets.items() if not b]:
            del buckets[j]

    return SSSPResult(
        distances=tent,
        source=source,
        delta=delta,
        method="meyer-sanders" + ("-strict" if strict else ""),
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
    )

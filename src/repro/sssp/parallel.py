"""Task-parallel fused delta-stepping (the paper's OpenMP-task version).

§VI.C: "the creation of the light and heavy edges are independent and
were each made into a task.  The computation and filtering of vectors was
performed by splitting the vector into evenly-sized tasks."  This module
reproduces that decomposition exactly:

- ``A_L`` and ``A_H`` construction: **one coarse task each** (hence ≤2-way
  parallelism for the 35-40% filtering share — the reason Fig. 4's
  4-thread bars barely beat the 2-thread bars);
- every dense vector op in the bucket loop: ``num_threads`` evenly-sized
  chunk tasks;
- the relaxation gather/min: chunked by frontier edge count, with a
  sequential merge of per-chunk partial minima.

Two executors share this decomposition:

- real threads (:class:`repro.parallel.pool.WorkerPool`) — NumPy kernels
  release the GIL, so chunks overlap on real cores;
- the deterministic simulator
  (:class:`repro.parallel.simulate.SimulatedExecutor`) — each task is
  measured serially and the parallel makespan is computed by list
  scheduling, making the Fig. 4 reproduction independent of host core
  count.
"""

from __future__ import annotations

import time

import numpy as np

from ..graphs.graph import Graph
from ..kernels import min_by_target
from ..parallel.partition import chunk_by_cost, chunk_ranges
from ..parallel.pool import get_pool
from ..parallel.simulate import SimulatedExecutor
from .fused import build_heavy_csr, build_light_csr
from .result import INF, SSSPResult

__all__ = ["parallel_delta_stepping"]

#: real-thread minimum edge work for a chunked relaxation batch (below
#: this, Python task-dispatch overhead exceeds the kernel time)
MIN_PARALLEL_SIZE = 1 << 16
#: real-thread minimum vector length for chunked dense vector ops — these
#: are ~µs-scale ufunc sweeps, so the bar is much higher than for relax
MIN_VECTOR_PARALLEL_SIZE = 1 << 17


class _RealExecutor:
    """Runs task batches on the shared thread pool."""

    def __init__(self, num_threads: int):
        self.num_threads = num_threads
        self.pool = get_pool(num_threads)

    def batch(self, fns):
        return self.pool.run_batch(fns)

    def finalize(self, result: SSSPResult) -> None:
        result.extra["num_threads"] = self.num_threads
        result.extra["mode"] = "threads"


class _SimulatedExecutor:
    """Runs tasks serially, measuring each; accumulates simulated makespan."""

    def __init__(self, num_threads: int):
        self.num_threads = num_threads
        self.sim = SimulatedExecutor(threads=num_threads)
        self._outside_start = time.perf_counter()

    def batch(self, fns):
        # account code between batches as sequential time
        now = time.perf_counter()
        self.sim.sequential(now - self._outside_start)
        results = []
        costs = []
        for fn in fns:
            t0 = time.perf_counter()
            results.append(fn())
            costs.append(time.perf_counter() - t0)
        self.sim.batch(costs)
        self._outside_start = time.perf_counter()
        return results

    def finalize(self, result: SSSPResult) -> None:
        self.sim.sequential(time.perf_counter() - self._outside_start)
        rep = self.sim.report
        result.extra["num_threads"] = self.num_threads
        result.extra["mode"] = "simulated"
        result.extra["simulated_seconds"] = rep.simulated_seconds
        result.extra["serial_seconds"] = rep.serial_seconds
        result.extra["simulated_speedup"] = rep.speedup
        result.extra["task_batches"] = rep.task_batches


def parallel_delta_stepping(
    graph: Graph,
    source: int,
    delta: float = 1.0,
    num_threads: int = 2,
    simulate: bool = False,
    min_parallel_size: int | None = None,
) -> SSSPResult:
    """Delta-stepping with the paper's OpenMP-task decomposition.

    Parameters
    ----------
    num_threads:
        Worker count (the paper reports 2 and 4).
    simulate:
        Use the deterministic simulated-time executor; the simulated
        makespan and speedup land in ``result.extra``.
    min_parallel_size:
        Arrays below this size run as one inline task.  Defaults to
        :data:`MIN_PARALLEL_SIZE` on real threads (dispatch overhead) and
        0 under simulation (the simulator models dispatch itself, so the
        paper's always-chunked decomposition is used verbatim).
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    if min_parallel_size is None:
        min_parallel_size = 0 if simulate else MIN_PARALLEL_SIZE
    vec_min_size = min_parallel_size if simulate else max(min_parallel_size, MIN_VECTOR_PARALLEL_SIZE)
    ex = _SimulatedExecutor(num_threads) if simulate else _RealExecutor(num_threads)

    # -- matrix split: one coarse task per matrix (the paper's decomposition)
    split_results = ex.batch(
        [
            lambda: build_light_csr(graph, delta),
            lambda: build_heavy_csr(graph, delta),
        ]
    )
    (ALp, ALi, ALw), (AHp, AHi, AHw) = split_results

    t = np.full(n, INF, dtype=np.float64)
    t[source] = 0.0
    in_bucket = np.zeros(n, dtype=bool)
    settled_set = np.zeros(n, dtype=bool)
    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}

    vec_chunks = chunk_ranges(n, num_threads) if n >= vec_min_size else [(0, n)]

    def bucket_filter(lo_val: float, hi_val: float):
        """tBi = (lo ≤ t < hi), chunked over the vector."""

        def work(lo, hi):
            np.logical_and(t[lo:hi] >= lo_val, t[lo:hi] < hi_val, out=in_bucket[lo:hi])

        ex.batch([_bind_range(work, lo, hi) for lo, hi in vec_chunks])
        return np.nonzero(in_bucket)[0]

    def remaining_min(i_val: float):
        """min over finite t ≥ i·Δ, chunked with per-chunk partials."""

        def work(lo, hi):
            seg = t[lo:hi]
            m = seg[np.isfinite(seg) & (seg >= i_val)]
            return m.min() if len(m) else INF

        partials = ex.batch([_bind_range(work, lo, hi) for lo, hi in vec_chunks])
        return min(partials)

    def relax(indptr, indices, weights, frontier, lo_val, hi_val, track_bucket):
        """Chunked fused relaxation with a sequential partial merge."""
        edge_costs = indptr[frontier + 1] - indptr[frontier]
        total = int(edge_costs.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        counters["relaxations"] += total
        nchunks = num_threads if total >= min_parallel_size else 1
        spans = chunk_by_cost(edge_costs, nchunks)

        def work(flo, fhi):
            part = frontier[flo:fhi]
            starts = indptr[part]
            lengths = indptr[part + 1] - starts
            tot = int(lengths.sum())
            if tot == 0:
                return None
            offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
            flat = np.arange(tot, dtype=np.int64) - offsets + np.repeat(starts, lengths)
            targets = indices[flat]
            dists = np.repeat(t[part], lengths) + weights[flat]
            # chunk tasks run concurrently: no shared workspace, so the
            # allocation-free argsort kernel is the right default here
            return min_by_target(targets, dists)

        partials = [p for p in ex.batch([_bind_range(work, flo, fhi) for flo, fhi in spans]) if p is not None]
        if not partials:
            return np.empty(0, dtype=np.int64)
        if len(partials) == 1:
            uts, ubest = partials[0]
        else:
            # sequential merge of per-chunk minima (small: ≤ unique targets)
            all_t = np.concatenate([p[0] for p in partials])
            all_d = np.concatenate([p[1] for p in partials])
            uts, ubest = min_by_target(all_t, all_d)
        improved = ubest < t[uts]
        uts, ubest = uts[improved], ubest[improved]
        counters["updates"] += len(uts)
        t[uts] = ubest
        if track_bucket:
            reenter = (ubest >= lo_val) & (ubest < hi_val)
            return uts[reenter]
        return uts

    i = 0
    while True:
        finite_min = remaining_min(i * delta)
        if not np.isfinite(finite_min):
            break
        i = max(i, int(finite_min // delta))
        lo_val, hi_val = i * delta, (i + 1) * delta
        counters["buckets"] += 1
        frontier = bucket_filter(lo_val, hi_val)
        settled_set[:] = False
        while len(frontier):
            counters["phases"] += 1
            settled_set[frontier] = True
            frontier = relax(ALp, ALi, ALw, frontier, lo_val, hi_val, track_bucket=True)
        settled = np.nonzero(settled_set)[0]
        if len(settled):
            counters["phases"] += 1
            relax(AHp, AHi, AHw, settled, lo_val, hi_val, track_bucket=False)
        i += 1

    result = SSSPResult(
        distances=t,
        source=source,
        delta=delta,
        method=f"parallel[{num_threads}]" + ("-sim" if simulate else ""),
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
    )
    ex.finalize(result)
    return result


def _bind_range(fn, lo, hi):
    return lambda: fn(lo, hi)

"""Linear-algebraic delta-stepping on the GraphBLAS API (the *unfused* form).

This is the output of the paper's translation (Fig. 1 left column),
implemented exactly as the SuiteSparse listing in Fig. 2 structures it —
every algorithmic step is its own GraphBLAS call, every filter costs two
``apply`` calls (predicate + masked identity), every temporary is a real
sparse object.  That is the point: this version is the *unfused* baseline
of Fig. 3, and its call-by-call shape is what the fused implementation
(:mod:`repro.sssp.fused`) collapses.

Correspondence to Fig. 1 (left) / Fig. 2:

====================================  ======================================
Linear algebra                        Here
====================================  ======================================
``A_L = A ∘ (0 < A ≤ Δ)``             two ``apply`` calls on the matrix
``A_H = A ∘ (A > Δ)``                 two ``apply`` calls on the matrix
``t = ∞; t[s] = 0``                   sparse ``t`` with only ``s`` stored
                                      (unstored ⇒ ∞, as in Fig. 2 line 8)
``while (t ≥ iΔ) ≠ 0``                filter + ``nvals`` (Fig. 2 ll. 27-30)
``tBi = (iΔ ≤ t < (i+1)Δ)``           ``apply`` with ``delta_irange``
``tReq = A_Lᵀ (min.+) (t ∘ tBi)``     masked identity ``apply`` + ``vxm``
``S = (S + tBi) > 0``                 ``eWiseAdd`` with LOR
``tBi = (iΔ ≤ tReq < (i+1)Δ)
        ∘ (tReq < t)``                ``eWiseAdd`` LT with **tReq as mask**
                                      (the §V.B workaround) + ``apply``
``t = min(t, tReq)``                  ``eWiseAdd`` with MIN
====================================  ======================================
"""

from __future__ import annotations

import numpy as np

from ..graphblas import operations as ops
from ..graphblas.binaryop import LOR, LT, MIN
from ..graphblas.descriptor import REPLACE
from ..graphblas.matrix import Matrix
from ..graphblas.monoid import MIN_MONOID
from ..graphblas.semiring import MIN_PLUS
from ..graphblas.types import BOOL, FP64
from ..graphblas.unaryop import IDENTITY, range_filter, threshold_geq, threshold_gt, threshold_leq
from ..graphblas.vector import Vector
from ..graphs.graph import Graph
from ..obs.stage import NO_TIMER, StageTimer
from .result import INF, SSSPResult

__all__ = ["graphblas_delta_stepping", "build_light_heavy_matrices"]


def build_light_heavy_matrices(A: Matrix, delta: float, timer=NO_TIMER):
    """``A_L = A ∘ (0 < A ≤ Δ)`` and ``A_H = A ∘ (A > Δ)``.

    Each split is two ``GrB_apply`` calls — predicate, then masked
    identity — exactly as Fig. 2 lines 15-21 (the §VI.C hotspot: these
    four whole-matrix passes are 35-40% of sequential runtime).
    """
    n, m = A.nrows, A.ncols
    with timer.stage("filter:AL"):
        Ab = Matrix.new(BOOL, n, m)
        ops.apply(Ab, threshold_leq(delta), A)  # A .<= delta
        Al = Matrix.new(FP64, n, m)
        ops.apply(Al, IDENTITY, A, mask=Ab)  # A .* (A .<= delta)
    with timer.stage("filter:AH"):
        ops.apply(Ab, threshold_gt(delta), A)  # A .> delta
        Ah = Matrix.new(FP64, n, m)
        ops.apply(Ah, IDENTITY, A, mask=Ab)  # A .* (A .> delta)
    return Al, Ah


def graphblas_delta_stepping(
    graph: Graph,
    source: int,
    delta: float = 1.0,
    skip_empty_buckets: bool = True,
    instrument: bool = False,
) -> SSSPResult:
    """Unfused GraphBLAS delta-stepping (the Fig. 3 baseline).

    Parameters
    ----------
    skip_empty_buckets:
        When True, ``i`` jumps to the next non-empty bucket instead of
        incrementing by one (identical results; relevant only for
        non-unit weights where buckets can be sparse).
    instrument:
        Attach a per-stage time breakdown to ``result.profile``.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    timer = StageTimer() if instrument else NO_TIMER

    A = graph.to_matrix()
    Al, Ah = build_light_heavy_matrices(A, delta, timer)

    # t[src] = 0 — unstored entries are implicitly infinite (Fig. 2 l. 8)
    t = Vector.new(FP64, n)
    t.set_element(source, 0.0)

    tB = Vector.new(BOOL, n)
    tmasked = Vector.new(FP64, n)
    tReq = Vector.new(FP64, n)
    tless = Vector.new(BOOL, n)
    s = Vector.new(BOOL, n)
    tgeq = Vector.new(BOOL, n)
    tcomp = Vector.new(FP64, n)

    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}
    i = 0

    def active_count() -> int:
        """``(t ≥ iΔ) ≠ 0`` via filter + nvals (Fig. 2 ll. 27-30, 67-69)."""
        with timer.stage("outer:check"):
            ops.apply(tgeq, threshold_geq(i * delta), t)
            ops.apply(tcomp, IDENTITY, t, mask=tgeq, desc=REPLACE)
        return tcomp.nvals

    while active_count() > 0:
        if skip_empty_buckets and tcomp.nvals:
            # jump to the bucket of the smallest remaining distance
            smallest = ops.reduce_vector_to_scalar(MIN_MONOID, tcomp)
            i = max(i, int(smallest // delta))
        counters["buckets"] += 1
        with timer.stage("vector:clear"):
            s.clear()  # s = 0
        with timer.stage("filter:bucket"):
            # tBi = (iΔ .<= t .< (i+1)Δ)
            ops.apply(tB, range_filter(i * delta, (i + 1) * delta), t, desc=REPLACE)
            # t .* tBi
            ops.apply(tmasked, IDENTITY, t, mask=tB, desc=REPLACE)

        while tmasked.nvals > 0:
            counters["phases"] += 1
            with timer.stage("vxm:light"):
                # tReq = A_L' (min.+) (t .* tBi)
                ops.vxm(tReq, MIN_PLUS, tmasked, Al, desc=REPLACE)
            counters["relaxations"] += tReq.nvals
            with timer.stage("vector:S"):
                # s = s + tBi
                ops.ewise_add(s, LOR, s, tB)
            with timer.stage("filter:reenter"):
                # tBi = (iΔ .<= tReq .< (i+1)Δ) .* (tReq .< t)
                # tReq as output mask — the §V.B workaround for eWiseAdd's
                # union semantics with the non-commutative LT
                ops.ewise_add(tless, LT, tReq, t, mask=tReq, desc=REPLACE)
                ops.apply(tB, range_filter(i * delta, (i + 1) * delta), tReq, mask=tless, desc=REPLACE)
            counters["updates"] += int(np.count_nonzero(tless.values))
            with timer.stage("vector:minmerge"):
                # t = min(t, tReq)
                ops.ewise_add(t, MIN, t, tReq)
            with timer.stage("filter:bucket"):
                ops.apply(tmasked, IDENTITY, t, mask=tB, desc=REPLACE)

        with timer.stage("vxm:heavy"):
            # tReq = A_H' (min.+) (t .* s)
            ops.apply(tmasked, IDENTITY, t, mask=s, desc=REPLACE)
            ops.vxm(tReq, MIN_PLUS, tmasked, Ah, desc=REPLACE)
        counters["relaxations"] += tReq.nvals
        counters["phases"] += 1
        with timer.stage("vector:minmerge"):
            # t = min(t, tReq)
            ops.ewise_add(t, MIN, t, tReq)
        i += 1

    distances = np.full(n, INF, dtype=np.float64)
    idx, vals = t.to_coo()
    distances[idx] = vals
    return SSSPResult(
        distances=distances,
        source=source,
        delta=delta,
        method="graphblas-unfused",
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
        profile=timer.as_dict() if instrument else None,
    )

"""Single-source shortest paths: the paper's algorithm in all its forms.

Five delta-stepping implementations spanning the paper's translation
pipeline, plus two classical baselines:

==========================  =================================================
``meyer-sanders``           canonical vertices/edges/buckets (Fig. 1 right)
``graphblas``               linear-algebraic, unfused GraphBLAS (Fig. 1 left,
                            structured like the Fig. 2 listing)
``capi``                    line-by-line Fig. 2 transliteration on the
                            C-facade (``GrB_*`` + Info codes)
``fused``                   direct fused kernels (the paper's fast C impl.)
``parallel``                OpenMP-task-style chunked parallel fused
``dijkstra``                binary-heap oracle
``bellman-ford``            edge-centric label-correcting baseline
==========================  =================================================

Entry point::

    from repro.sssp import delta_stepping
    result = delta_stepping(graph, source=0, delta=1.0, method="fused")
"""

from __future__ import annotations

from ..graphs.graph import Graph
from .capi_sssp import capi_delta_stepping
from .delta import choose_delta
from .fused import fused_delta_stepping
from .graphblas_sssp import graphblas_delta_stepping
from .meyer_sanders import meyer_sanders_delta_stepping
from .parallel import parallel_delta_stepping
from .paths import path_weight, predecessor_tree, reconstruct_path
from .reference import bellman_ford, dijkstra
from .result import SSSPResult
from .validate import (
    check_against_dijkstra,
    check_against_networkx,
    check_optimality_conditions,
)

__all__ = [
    "delta_stepping",
    "METHODS",
    "SSSPResult",
    "dijkstra",
    "bellman_ford",
    "choose_delta",
    "meyer_sanders_delta_stepping",
    "graphblas_delta_stepping",
    "capi_delta_stepping",
    "fused_delta_stepping",
    "parallel_delta_stepping",
    "check_against_dijkstra",
    "check_optimality_conditions",
    "check_against_networkx",
    "predecessor_tree",
    "reconstruct_path",
    "path_weight",
]

#: method name → implementation (all share the ``(graph, source, delta)``
#: leading signature and return :class:`SSSPResult`)
METHODS = {
    "meyer-sanders": meyer_sanders_delta_stepping,
    "graphblas": graphblas_delta_stepping,
    "capi": capi_delta_stepping,
    "fused": fused_delta_stepping,
    "parallel": parallel_delta_stepping,
}


def delta_stepping(
    graph: Graph,
    source: int = 0,
    delta: float | None = None,
    method: str = "fused",
    **kwargs,
) -> SSSPResult:
    """Run delta-stepping SSSP.

    Parameters
    ----------
    graph:
        A :class:`repro.graphs.Graph` (non-negative weights).
    source:
        Source vertex id.
    delta:
        Bucket width Δ; ``None`` selects it automatically
        (:func:`repro.sssp.delta.choose_delta` — 1.0 on unit weights,
        matching the paper).
    method:
        One of :data:`METHODS`.
    kwargs:
        Forwarded to the implementation (e.g. ``num_threads=4`` for
        ``"parallel"``, ``instrument=True`` for ``"graphblas"``/``"fused"``,
        ``strict=True`` for ``"meyer-sanders"``).
    """
    if method not in METHODS:
        known = ", ".join(sorted(METHODS))
        raise ValueError(f"unknown method {method!r}; known: {known}")
    if delta is None:
        delta = choose_delta(graph)
    return METHODS[method](graph, source, delta, **kwargs)

"""Shortest-path reconstruction from a distance array.

Delta-stepping (like the paper's formulation) produces *distances*, not
predecessors.  The Bellman optimality conditions recover routes after the
fact: every reached vertex has at least one incoming *tight* edge
(``d[v] == d[u] + w(u, v)``), and any chain of tight edges back to the
source is a shortest path.  These helpers build the predecessor tree and
individual routes that way — one vectorized pass over the edges, no
changes to the solvers.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from .result import SSSPResult

__all__ = ["predecessor_tree", "reconstruct_path", "path_weight"]


def predecessor_tree(graph: Graph, result: SSSPResult, atol: float = 1e-9) -> np.ndarray:
    """Predecessor of every vertex on some shortest-path tree.

    Returns an ``int64`` array: ``-1`` for the source and for unreachable
    vertices; otherwise a vertex ``u`` with a tight edge ``u → v``.  Ties
    resolve to the smallest ``u`` (deterministic output).  The scan works
    in COO order, so it is independent of CSR row ordering; consumers
    that look up the tree edge's weight should use
    :meth:`Graph.edge_weight` rather than a binary search for the same
    reason.
    """
    d = result.distances
    n = graph.num_vertices
    pred = np.full(n, -1, dtype=np.int64)
    srcs, dsts, w = graph.to_edges()
    finite = np.isfinite(d[srcs])
    tight = finite & np.isclose(d[dsts], d[srcs] + w, atol=atol, rtol=1e-12)
    t_src, t_dst = srcs[tight], dsts[tight]
    # smallest-u tie-break: sort by (dst, src) and keep the first per dst
    order = np.lexsort((t_src, t_dst))
    t_src, t_dst = t_src[order], t_dst[order]
    if len(t_dst):
        first = np.empty(len(t_dst), dtype=bool)
        first[0] = True
        np.not_equal(t_dst[1:], t_dst[:-1], out=first[1:])
        pred[t_dst[first]] = t_src[first]
    pred[result.source] = -1
    return pred


def reconstruct_path(graph: Graph, result: SSSPResult, target: int) -> list[int]:
    """The vertex sequence of one shortest path ``source → target``.

    Returns ``[]`` when *target* is unreachable; ``[source]`` when target
    is the source.
    """
    d = result.distances
    if not 0 <= target < graph.num_vertices:
        raise IndexError(f"target {target} out of range")
    if not np.isfinite(d[target]):
        return []
    pred = predecessor_tree(graph, result)
    route = [target]
    v = target
    seen = {target}
    while v != result.source:
        v = int(pred[v])
        if v < 0 or v in seen:  # pragma: no cover - corrupted input guard
            raise RuntimeError("predecessor chain broken; distances inconsistent")
        seen.add(v)
        route.append(v)
    return route[::-1]


def path_weight(graph: Graph, path: list[int]) -> float:
    """Total weight along a vertex sequence (validates edges exist).

    Uses :meth:`Graph.edge_weight` — a membership scan, not a binary
    search — so adopted CSR structures with unsorted rows (e.g. via
    ``Graph.from_matrix`` before canonicalization) are handled correctly
    instead of falsely reporting a missing edge.
    """
    total = 0.0
    for u, v in zip(path, path[1:]):
        w = graph.edge_weight(u, v)
        if w is None:
            raise ValueError(f"no edge {u} -> {v} in graph")
        total += w
    return total

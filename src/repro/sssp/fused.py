"""Fused delta-stepping: the paper's direct-C implementation, in NumPy.

The paper's fastest sequential version (§VI.B) abandons per-operation
GraphBLAS calls and fuses:

1. **Hadamard + vxm** — ``tReq = A_Lᵀ (min.+) (t ∘ tBi)`` becomes one
   kernel: gather the CSR rows of the frontier, add the frontier's
   tentative distances, min-reduce by target.  No ``t ∘ tBi`` temporary,
   no sparse-vector materialization of ``tReq``.
2. **The vector triple** — computing ``tBi`` (re-entrants), ``S``
   (settled set) and ``t`` (min-merge) in one pass over the relaxation
   candidates instead of three full-vector operations with temporaries.

On top of Fig. 2's structure this removes every intermediate sparse
object from the hot loop.  The primitives themselves live in
:mod:`repro.kernels` and are shared by every stepper in the repo:

- the per-target min runs on either the ``argsort`` kernel (the seed's
  sort + ``reduceat``) or the O(m) dense ``scatter`` kernel, picked by
  wave density or pinned via ``kernel=`` (spec spelling:
  ``"delta(kernel=scatter)"``);
- all wave temporaries come out of a reusable
  :class:`~repro.kernels.RelaxWorkspace` arena (per-graph cached), so a
  steady-state phase allocates no wave-sized array;
- the outer loop walks a lazy :class:`~repro.kernels.BucketQueue`
  instead of rescanning all *n* tentative distances per bucket — the
  phase schedule (and the phase/relaxation/update counters) is
  unchanged, only the scheduling cost drops from O(n · buckets) to
  O(improvements).  (``buckets_processed`` counts only non-empty
  buckets, like the Meyer–Sanders reference; the seed's scan could
  additionally count phantom empty buckets at misrounded float
  boundaries.)

Both paper fusions stay independently toggleable so the fusion ablation
(ABL-FUSE in DESIGN.md) can attribute the speedup:

- ``fuse_relax=False`` materializes ``tReq``/``tless``/``tB`` as full
  dense temporaries with one pass each (the unfused op sequence, minus
  sparse-object overhead);
- ``fuse_matrix_split=False`` builds ``A_L``/``A_H`` GrB-style — boolean
  predicate pass, then masked-copy pass, per matrix (4 sweeps), instead
  of one shared-predicate pass (2 sweeps).
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..kernels import (
    BucketQueue,
    RelaxWorkspace,
    cached_row_ids,
    check_kernel,
    gather_candidates,
    min_by_target,
    workspace_for,
)
from ..obs.stage import NO_TIMER, StageTimer
from .result import INF, SSSPResult

__all__ = [
    "fused_delta_stepping",
    "split_csr_light_heavy",
    "build_light_csr",
    "build_heavy_csr",
]

#: shared empty frontier — the fused relax's edgeless-wave return, so the
#: hot loop never constructs a fresh empty array (``hot-loop-alloc`` rule)
_EMPTY_V = np.empty(0, dtype=np.int64)


def _compact_csr(graph: Graph, keep: np.ndarray):
    """Compact the kept adjacency entries into a new CSR triple.

    The row-id expansion is the per-graph cache
    (:func:`repro.kernels.cached_row_ids`) — computed once per epoch and
    shared by the light and heavy builds instead of re-expanded per call.
    """
    indices, weights = graph.indices, graph.weights
    n = graph.num_vertices
    counts = np.bincount(cached_row_ids(graph)[keep], minlength=n)
    sub_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return sub_indptr, indices[keep], weights[keep]


def split_csr_light_heavy(graph: Graph, delta: float, fused: bool = True, timer=NO_TIMER):
    """Split the CSR adjacency into light (≤Δ) and heavy (>Δ) CSR triples.

    ``fused=True``: one predicate pass shared by both outputs.
    ``fused=False``: mimics the GraphBLAS call sequence — each output
    recomputes its own predicate and materializes a masked intermediate.
    """
    weights = graph.weights

    if fused:
        with timer.stage("filter:split"):
            light = weights <= delta
            AL = _compact_csr(graph, light)
            AH = _compact_csr(graph, ~light)
    else:
        with timer.stage("filter:AL"):
            pred_light = weights <= delta  # pass 1: predicate
            masked_light = np.where(pred_light, weights, 0.0)  # pass 2: Hadamard
            AL = _compact_csr(graph, masked_light > 0)  # pass 3: compact
        with timer.stage("filter:AH"):
            pred_heavy = weights > delta
            masked_heavy = np.where(pred_heavy, weights, 0.0)
            AH = _compact_csr(graph, masked_heavy > 0)
    return AL, AH


def build_light_csr(graph: Graph, delta: float):
    """``A_L`` alone — one coarse task of the parallel decomposition."""
    return _compact_csr(graph, graph.weights <= delta)


def build_heavy_csr(graph: Graph, delta: float):
    """``A_H`` alone — the other coarse task."""
    return _compact_csr(graph, graph.weights > delta)


def fused_delta_stepping(
    graph: Graph,
    source: int,
    delta: float = 1.0,
    fuse_relax: bool = True,
    fuse_matrix_split: bool = True,
    instrument: bool = False,
    kernel: str = "auto",
    workspace: RelaxWorkspace | None = None,
    recorder=None,
) -> SSSPResult:
    """Sequential fused delta-stepping (the Fig. 3 "Fused C impl." series).

    *kernel* picks the per-target min kernel (``auto``/``argsort``/
    ``scatter``, see :mod:`repro.kernels.minby`); *workspace* overrides
    the per-graph cached buffer arena (embedders that manage their own).
    A truthy *recorder* (:mod:`repro.obs`) turns the :class:`StageTimer`
    stages into trace spans and adds one ``bucket`` span per non-empty
    bucket (index, frontier size, phase count) — the per-bucket timeline
    the §VI.C stage totals can't show.  Recording never changes the
    schedule or the distances.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    check_kernel(kernel)
    timer = StageTimer(recorder=recorder) if (instrument or recorder) else NO_TIMER
    ws = workspace if workspace is not None else workspace_for(graph)

    (ALp, ALi, ALw), (AHp, AHi, AHw) = split_csr_light_heavy(
        graph, delta, fused=fuse_matrix_split, timer=timer
    )

    t = np.full(n, INF, dtype=np.float64)
    t[source] = 0.0
    # dense scratch for the unfused ablation only; the fused relax needs
    # no full-length temporaries at all
    in_bucket = np.zeros(n, dtype=bool) if not fuse_relax else None
    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}
    bq = BucketQueue(delta)
    bq.push(np.array([source], dtype=np.int64), np.array([0.0]))

    def relax_unfused(indptr, indices, weights, frontier, lo, hi, track_bucket):
        """Unfused variant: full-length dense temporaries, one op per pass
        (the op-by-op shape of Fig. 2, on dense storage)."""
        targets, dists = gather_candidates(indptr, indices, weights, frontier, t, ws)
        if targets is None:
            return np.empty(0, dtype=np.int64)
        counters["relaxations"] += len(targets)
        # tReq materialized densely (the vxm output temporary)
        with timer.stage("relax:tReq"):
            tReq = np.full(n, INF, dtype=np.float64)
            uts, ubest = min_by_target(targets, dists, workspace=ws, kernel=kernel)
            tReq[uts] = ubest
        # tless = tReq < t (full-vector pass)
        with timer.stage("relax:tless"):
            tless = tReq < t
        # tBi = (lo <= tReq < hi) ∘ tless (full-vector pass)
        with timer.stage("relax:tB"):
            if track_bucket:
                np.logical_and(tReq >= lo, tReq < hi, out=in_bucket)
                np.logical_and(in_bucket, tless, out=in_bucket)
        # t = min(t, tReq) (full-vector pass)
        with timer.stage("relax:minmerge"):
            counters["updates"] += int(np.count_nonzero(tless))
            np.minimum(t, tReq, out=t)
        if track_bucket:
            # improvements that left the window wait in the bucket queue;
            # a light edge (≤Δ) out of a window-i vertex can only land in
            # bucket i+1, so the hint needs no per-entry bucket index.
            # in-window ones re-relax this phase loop
            outside = tless & ~in_bucket
            bq.push_into(i + 1, np.nonzero(outside)[0])
            return np.nonzero(in_bucket)[0]
        improved_v = np.nonzero(tless)[0]
        bq.push(improved_v, t[improved_v])
        return improved_v

    # repro: hot
    def relax_fused(indptr, indices, weights, frontier, lo, hi, track_bucket):
        """Fused variant: candidates → per-target min → filtered scatter,
        one pass, no dense temporaries."""
        with timer.stage("relax:fused", kernel=kernel, wave=int(len(frontier))):
            targets, dists = gather_candidates(indptr, indices, weights, frontier, t, ws)
            if targets is None:
                return _EMPTY_V
            counters["relaxations"] += len(targets)
            uts, ubest = min_by_target(targets, dists, workspace=ws, kernel=kernel)
            improved = ubest < t[uts]
            uts = uts[improved]
            ubest = ubest[improved]
            counters["updates"] += len(uts)
            t[uts] = ubest
            if track_bucket:
                # every in-window candidate is >= lo (non-negative light
                # edges out of window-i vertices), so < hi alone decides
                # re-entry, and non-re-entrants land exactly in bucket i+1
                reenter = ubest < hi
                bq.push_into(i + 1, uts[~reenter])
                return uts[reenter]
            bq.push(uts, ubest)
            return uts

    relax = relax_fused if fuse_relax else relax_unfused

    while True:
        with timer.stage("outer:check"):
            # the lazy bucket queue hands back the next non-empty bucket
            # (and its frontier) without rescanning the distance vector
            i, frontier = bq.pop_bucket(t)
            if i is None:
                break
            lo, hi = i * delta, (i + 1) * delta
        counters["buckets"] += 1
        bspan = None
        if recorder:
            p0 = counters["phases"]
            bspan = recorder.span(
                "bucket", index=int(i), frontier=int(len(frontier))
            ).__enter__()
        # the paper's S, accumulated as the union of this bucket's phase
        # frontiers — O(settled) per bucket, not an O(n) mask reset + scan
        settled_chunks = []
        while len(frontier):
            counters["phases"] += 1
            settled_chunks.append(frontier)
            frontier = relax(ALp, ALi, ALw, frontier, lo, hi, track_bucket=True)
            # vertices already settled this bucket do not re-enter the
            # frontier unless their distance actually dropped into range —
            # relax() guarantees improvement, so re-entry is correct.
        with timer.stage("filter:settled"):
            if len(settled_chunks) <= 1:
                # a phase frontier is already unique and ascending
                settled = settled_chunks[0] if settled_chunks else np.empty(0, dtype=np.int64)
            else:
                settled = np.unique(np.concatenate(settled_chunks))
        if len(settled):
            counters["phases"] += 1
            relax(AHp, AHi, AHw, settled, lo, hi, track_bucket=False)
        if bspan is not None:
            bspan.set(phases=counters["phases"] - p0, settled=int(len(settled)))
            bspan.__exit__(None, None, None)

    return SSSPResult(
        distances=t,
        source=source,
        delta=delta,
        method="fused",
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
        profile=timer.as_dict() if instrument else None,
    )

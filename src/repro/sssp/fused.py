"""Fused delta-stepping: the paper's direct-C implementation, in NumPy.

The paper's fastest sequential version (§VI.B) abandons per-operation
GraphBLAS calls and fuses:

1. **Hadamard + vxm** — ``tReq = A_Lᵀ (min.+) (t ∘ tBi)`` becomes one
   kernel: gather the CSR rows of the frontier, add the frontier's
   tentative distances, min-reduce by target.  No ``t ∘ tBi`` temporary,
   no sparse-vector materialization of ``tReq``.
2. **The vector triple** — computing ``tBi`` (re-entrants), ``S``
   (settled set) and ``t`` (min-merge) in one pass over the relaxation
   candidates instead of three full-vector operations with temporaries.

On top of Fig. 2's structure this removes every intermediate sparse
object from the hot loop; state lives in three dense arrays (``t``,
bucket membership, ``S``).  Both fusions are independently toggleable so
the fusion ablation (ABL-FUSE in DESIGN.md) can attribute the speedup:

- ``fuse_relax=False`` materializes ``tReq``/``tless``/``tB`` as full
  dense temporaries with one pass each (the unfused op sequence, minus
  sparse-object overhead);
- ``fuse_matrix_split=False`` builds ``A_L``/``A_H`` GrB-style — boolean
  predicate pass, then masked-copy pass, per matrix (4 sweeps), instead
  of one shared-predicate pass (2 sweeps).
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from .instrument import NO_TIMER, StageTimer
from .result import INF, SSSPResult

__all__ = [
    "fused_delta_stepping",
    "split_csr_light_heavy",
    "build_light_csr",
    "build_heavy_csr",
]


def split_csr_light_heavy(graph: Graph, delta: float, fused: bool = True, timer=NO_TIMER):
    """Split the CSR adjacency into light (≤Δ) and heavy (>Δ) CSR triples.

    ``fused=True``: one predicate pass shared by both outputs.
    ``fused=False``: mimics the GraphBLAS call sequence — each output
    recomputes its own predicate and materializes a masked intermediate.
    """
    indptr, indices, weights = graph.csr()
    n = graph.num_vertices

    def build(keep: np.ndarray):
        counts = np.bincount(
            np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))[keep],
            minlength=n,
        )
        sub_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return sub_indptr, indices[keep], weights[keep]

    if fused:
        with timer.stage("filter:split"):
            light = weights <= delta
            AL = build(light)
            AH = build(~light)
    else:
        with timer.stage("filter:AL"):
            pred_light = weights <= delta  # pass 1: predicate
            masked_light = np.where(pred_light, weights, 0.0)  # pass 2: Hadamard
            AL = build(masked_light > 0)  # pass 3: compact
        with timer.stage("filter:AH"):
            pred_heavy = weights > delta
            masked_heavy = np.where(pred_heavy, weights, 0.0)
            AH = build(masked_heavy > 0)
    return AL, AH


def _build_sub_csr(graph: Graph, keep: np.ndarray):
    """Compact the kept entries of the adjacency into a new CSR triple."""
    indptr, indices, weights = graph.csr()
    n = graph.num_vertices
    counts = np.bincount(
        np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))[keep],
        minlength=n,
    )
    sub_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return sub_indptr, indices[keep], weights[keep]


def build_light_csr(graph: Graph, delta: float):
    """``A_L`` alone — one coarse task of the parallel decomposition."""
    return _build_sub_csr(graph, graph.weights <= delta)


def build_heavy_csr(graph: Graph, delta: float):
    """``A_H`` alone — the other coarse task."""
    return _build_sub_csr(graph, graph.weights > delta)


def _gather_candidates(indptr, indices, weights, frontier, t):
    """All relaxation requests out of *frontier*: (targets, new distances)."""
    starts = indptr[frontier]
    lengths = indptr[frontier + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return None, None
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lengths)
    targets = indices[flat]
    dists = np.repeat(t[frontier], lengths) + weights[flat]
    return targets, dists


def _min_by_target(targets, dists):
    """Per-target minimum of the candidate distances (sort + reduceat)."""
    order = np.argsort(targets, kind="stable")
    ts = targets[order]
    ds = dists[order]
    boundaries = np.empty(len(ts), dtype=bool)
    boundaries[0] = True
    np.not_equal(ts[1:], ts[:-1], out=boundaries[1:])
    starts = np.nonzero(boundaries)[0]
    return ts[starts], np.minimum.reduceat(ds, starts)


def fused_delta_stepping(
    graph: Graph,
    source: int,
    delta: float = 1.0,
    fuse_relax: bool = True,
    fuse_matrix_split: bool = True,
    instrument: bool = False,
) -> SSSPResult:
    """Sequential fused delta-stepping (the Fig. 3 "Fused C impl." series)."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    timer = StageTimer() if instrument else NO_TIMER

    (ALp, ALi, ALw), (AHp, AHi, AHw) = split_csr_light_heavy(
        graph, delta, fused=fuse_matrix_split, timer=timer
    )

    t = np.full(n, INF, dtype=np.float64)
    t[source] = 0.0
    in_bucket = np.zeros(n, dtype=bool)
    settled_set = np.zeros(n, dtype=bool)  # the paper's S
    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}

    def relax_unfused(indptr, indices, weights, frontier, lo, hi, track_bucket):
        """Unfused variant: full-length dense temporaries, one op per pass
        (the op-by-op shape of Fig. 2, on dense storage)."""
        targets, dists = _gather_candidates(indptr, indices, weights, frontier, t)
        if targets is None:
            return np.empty(0, dtype=np.int64)
        counters["relaxations"] += len(targets)
        # tReq materialized densely (the vxm output temporary)
        with timer.stage("relax:tReq"):
            tReq = np.full(n, INF, dtype=np.float64)
            uts, ubest = _min_by_target(targets, dists)
            tReq[uts] = ubest
        # tless = tReq < t (full-vector pass)
        with timer.stage("relax:tless"):
            tless = tReq < t
        # tBi = (lo <= tReq < hi) ∘ tless (full-vector pass)
        with timer.stage("relax:tB"):
            if track_bucket:
                np.logical_and(tReq >= lo, tReq < hi, out=in_bucket)
                np.logical_and(in_bucket, tless, out=in_bucket)
        # t = min(t, tReq) (full-vector pass)
        with timer.stage("relax:minmerge"):
            counters["updates"] += int(np.count_nonzero(tless))
            np.minimum(t, tReq, out=t)
        return np.nonzero(tless)[0] if not track_bucket else np.nonzero(in_bucket)[0]

    def relax_fused(indptr, indices, weights, frontier, lo, hi, track_bucket):
        """Fused variant: candidates → per-target min → filtered scatter,
        one pass, no dense temporaries."""
        with timer.stage("relax:fused"):
            targets, dists = _gather_candidates(indptr, indices, weights, frontier, t)
            if targets is None:
                return np.empty(0, dtype=np.int64)
            counters["relaxations"] += len(targets)
            uts, ubest = _min_by_target(targets, dists)
            improved = ubest < t[uts]
            uts = uts[improved]
            ubest = ubest[improved]
            counters["updates"] += len(uts)
            t[uts] = ubest
            if track_bucket:
                reenter = (ubest >= lo) & (ubest < hi)
                return uts[reenter]
            return uts

    relax = relax_fused if fuse_relax else relax_unfused

    i = 0
    while True:
        with timer.stage("outer:check"):
            finite = np.isfinite(t)
            remaining = finite & (t >= i * delta)
            if not remaining.any():
                break
            # jump to the next non-empty bucket
            i = max(i, int(t[remaining].min() // delta))
            lo, hi = i * delta, (i + 1) * delta
        counters["buckets"] += 1
        with timer.stage("filter:bucket"):
            np.logical_and(t >= lo, t < hi, out=in_bucket)
            frontier = np.nonzero(in_bucket)[0]
        settled_set[:] = False
        while len(frontier):
            counters["phases"] += 1
            settled_set[frontier] = True
            frontier = relax(ALp, ALi, ALw, frontier, lo, hi, track_bucket=True)
            # vertices already settled this bucket do not re-enter the
            # frontier unless their distance actually dropped into range —
            # relax() guarantees improvement, so re-entry is correct.
        with timer.stage("filter:settled"):
            settled = np.nonzero(settled_set)[0]
        if len(settled):
            counters["phases"] += 1
            relax(AHp, AHi, AHw, settled, lo, hi, track_bucket=False)
        i += 1

    return SSSPResult(
        distances=t,
        source=source,
        delta=delta,
        method="fused",
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
        profile=timer.as_dict() if instrument else None,
    )

"""Stage-level timing instrumentation — now a thin alias of :mod:`repro.obs.stage`.

:class:`StageTimer` / :data:`NO_TIMER` moved into the unified
observability substrate (:mod:`repro.obs`) so the §VI.C per-stage
accounting and the trace/metrics layer share one implementation; every
existing ``from repro.sssp.instrument import ...`` keeps working through
this module.  New code should import from :mod:`repro.obs` directly.
"""

from __future__ import annotations

from ..obs.stage import NO_TIMER, NullTimer, StageTimer

__all__ = ["StageTimer", "NullTimer", "NO_TIMER"]

"""Deprecated alias of :mod:`repro.obs.stage` — import from there instead.

:class:`StageTimer` / :data:`NO_TIMER` moved into the unified
observability substrate (:mod:`repro.obs`) so the §VI.C per-stage
accounting and the trace/metrics layer share one implementation; every
existing ``from repro.sssp.instrument import ...`` keeps working through
this module, at the price of a :class:`DeprecationWarning` on first
import.  In-repo code is already migrated (the ``no-deprecated-import``
lint rule keeps it that way); this alias exists only for external
importers and will be removed once the deprecation has aged.
"""

from __future__ import annotations

import warnings

from ..obs.stage import NO_TIMER, NullTimer, StageTimer

__all__ = ["StageTimer", "NullTimer", "NO_TIMER"]

warnings.warn(
    "repro.sssp.instrument is deprecated; import StageTimer/NullTimer/NO_TIMER "
    "from repro.obs.stage (or repro.obs) instead",
    DeprecationWarning,
    stacklevel=2,
)

"""Δ selection heuristics.

The paper runs Δ=1 on unit-weight graphs and observes (§VII) that this
makes delta-stepping "analogous to the original Dijkstra's algorithm"
(every bucket is a single distance level).  For weighted graphs the
choice trades work against parallelism — Meyer & Sanders suggest
Δ = Θ(1/d) for maximum degree d under random uniform weights.  These
heuristics back the Δ-sweep ablation (ABL-DELTA in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph

__all__ = ["choose_delta", "DELTA_STRATEGIES", "dijkstra_equivalent_delta", "bellman_ford_equivalent_delta"]


def dijkstra_equivalent_delta(graph: Graph) -> float:
    """Δ that degenerates delta-stepping towards Dijkstra.

    For unit weights, Δ=1 (the paper's setting): each bucket holds exactly
    one distance level.  In general the smallest edge weight guarantees at
    most one relaxation wave per bucket re-entry.
    """
    if graph.has_unit_weights():
        return 1.0
    positive = graph.weights[graph.weights > 0]
    # all-zero weights leave no positive minimum; Δ=1.0 keeps every
    # solver valid (all distances are 0, bucket 0 holds everything)
    return float(positive.min()) if len(positive) else 1.0


def bellman_ford_equivalent_delta(graph: Graph) -> float:
    """Δ that degenerates delta-stepping to Bellman–Ford (one big bucket).

    Any Δ strictly above the largest possible path weight works; we use
    ``n · max_weight + 1`` so every vertex lands in bucket 0 forever.
    On huge weights that product overflows float64 to ``inf``, which no
    solver accepts as a bucket width — clamp to the largest finite
    float, which still exceeds every representable path weight (any path
    summing past it is itself ``inf``, i.e. unreachable).
    """
    delta = graph.num_vertices * max(graph.max_weight, 1.0) + 1.0
    if not np.isfinite(delta):
        return float(np.finfo(np.float64).max)
    return float(delta)


def _meyer_sanders_delta(graph: Graph) -> float:
    """Δ = Θ(1/d): max weight over average out-degree."""
    if graph.max_weight <= 0:
        return 1.0  # zero-weight graph: any positive Δ degenerates cleanly
    deg = graph.out_degree()
    avg_deg = float(deg.mean()) if len(deg) else 1.0
    return max(graph.max_weight / max(avg_deg, 1.0), 1e-9)


def _average_weight_delta(graph: Graph) -> float:
    mean = float(graph.weights.mean()) if graph.num_edges else 1.0
    return mean if mean > 0 else 1.0


DELTA_STRATEGIES = {
    "unit": lambda g: 1.0,
    "dijkstra": dijkstra_equivalent_delta,
    "bellman-ford": bellman_ford_equivalent_delta,
    "meyer-sanders": _meyer_sanders_delta,
    "avg-weight": _average_weight_delta,
}


def choose_delta(graph: Graph, strategy: str = "auto") -> float:
    """Pick Δ for *graph*.

    ``"auto"``: 1.0 for unit-weight graphs (the paper's configuration),
    otherwise the Meyer–Sanders Θ(1/d) heuristic.  Other strategies:
    ``"unit"``, ``"dijkstra"``, ``"bellman-ford"``, ``"meyer-sanders"``,
    ``"avg-weight"``.
    """
    if strategy == "auto":
        if graph.has_unit_weights():
            return 1.0
        return _meyer_sanders_delta(graph)
    try:
        return float(DELTA_STRATEGIES[strategy](graph))
    except KeyError:
        known = ", ".join(["auto", *DELTA_STRATEGIES])
        raise ValueError(f"unknown delta strategy {strategy!r}; known: {known}") from None

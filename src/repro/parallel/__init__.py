"""OpenMP-task-like parallel runtime.

The paper parallelizes its fused C implementation with OpenMP *tasks*
(§VI.C): the A_L/A_H matrix filters become one coarse task each, and the
per-phase vector/filter operations are split into evenly-sized chunk
tasks.  This package reproduces that execution model twice over:

- :mod:`repro.parallel.pool` — real threads.  NumPy ufunc inner loops
  release the GIL, so chunked kernels genuinely overlap on multicore
  hosts.
- :mod:`repro.parallel.simulate` — a deterministic simulated-time
  executor.  Tasks carry measured serial costs; a greedy list scheduler
  computes the makespan for any thread count.  This decouples the Fig. 4
  reproduction from the host's core count (this repo's CI box has 2
  cores; the paper's i7-7700K had 4).

:mod:`repro.parallel.tasks` provides the task-graph layer shared by both,
and :mod:`repro.parallel.partition` the chunking/balancing helpers.
"""

from .partition import chunk_ranges, balanced_partition
from .pool import BatchError, WorkerPool, get_pool, parallel_map
from .simulate import SimulatedExecutor, simulate_makespan
from .tasks import Task, TaskGraph, run_task_graph

__all__ = [
    "chunk_ranges",
    "balanced_partition",
    "BatchError",
    "WorkerPool",
    "get_pool",
    "parallel_map",
    "SimulatedExecutor",
    "simulate_makespan",
    "Task",
    "TaskGraph",
    "run_task_graph",
]

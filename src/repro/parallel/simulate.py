"""Deterministic simulated-time execution of task schedules.

Reproducing Fig. 4 requires 2- and 4-thread runs; a host may have fewer
cores (this one has 2), and Python thread timing is noisy.  The simulator
separates the *schedule* question from the *host* question: run every task
once serially to measure its cost, then compute the parallel makespan
under greedy list scheduling (the LPT model of an OpenMP runtime) for any
thread count.  The model:

    makespan(T) = max over threads of Σ(assigned task costs)
                  + per-task dispatch overhead · (tasks on critical thread)

Sequential phases (code between task regions) are added verbatim.  The
model deliberately reproduces the paper's observed ceiling: the two
coarse matrix-filter tasks (35–40 % of sequential runtime, §VI.C) cannot
use more than two threads, capping 4-thread speedup just above the
2-thread number — exactly the 1.44×→1.5× plateau in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .partition import balanced_partition

__all__ = ["simulate_makespan", "SimulatedExecutor", "SimReport"]

#: dispatch cost per task, seconds (OpenMP task spawn ≈ microseconds; the
#: Python-thread equivalent is larger — calibrated by tests)
DEFAULT_TASK_OVERHEAD = 5e-6


def simulate_makespan(costs: list[float], threads: int, overhead: float = DEFAULT_TASK_OVERHEAD) -> float:
    """Makespan of independent tasks on *threads* under LPT scheduling."""
    if not costs:
        return 0.0
    if threads <= 1:
        return sum(costs) + overhead * len(costs)
    assignment = balanced_partition(costs, threads)
    return max(
        (sum(costs[k] for k in bucket) + overhead * len(bucket))
        for bucket in assignment
        if bucket
    )


@dataclass
class SimReport:
    """Accumulated simulated wall-clock per thread count."""

    threads: int
    simulated_seconds: float = 0.0
    serial_seconds: float = 0.0
    task_batches: int = 0
    tasks: int = 0

    @property
    def speedup(self) -> float:
        """Serial time over simulated parallel time."""
        return self.serial_seconds / self.simulated_seconds if self.simulated_seconds else 1.0


@dataclass
class SimulatedExecutor:
    """Accumulates a run's schedule: sequential sections + task batches.

    Drive it from instrumented algorithm code::

        sim = SimulatedExecutor(threads=4)
        sim.sequential(0.002)            # code outside task regions
        sim.batch([0.010, 0.011])        # two independent tasks
        print(sim.report.speedup)
    """

    threads: int
    overhead: float = DEFAULT_TASK_OVERHEAD
    report: SimReport = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        self.report = SimReport(threads=self.threads)

    def sequential(self, seconds: float) -> None:
        """Account a sequential section (runs on one thread regardless)."""
        self.report.simulated_seconds += seconds
        self.report.serial_seconds += seconds

    def batch(self, costs: list[float]) -> None:
        """Account one task region: tasks run concurrently, then barrier."""
        if not costs:
            return
        self.report.simulated_seconds += simulate_makespan(costs, self.threads, self.overhead)
        self.report.serial_seconds += sum(costs)
        self.report.task_batches += 1
        self.report.tasks += len(costs)

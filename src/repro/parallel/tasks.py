"""Task-graph layer: OpenMP-style tasks with dependencies.

The paper's parallelization is expressed in OpenMP task pragmas: spawn
independent tasks (A_L filter, A_H filter), spawn chunked tasks for each
vector op, synchronize at phase boundaries.  :class:`TaskGraph` captures
that structure explicitly — nodes are :class:`Task` objects, edges are
dependencies — and can be executed on real threads
(:func:`run_task_graph`) or handed to the simulator for deterministic
makespan analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from .pool import get_pool

__all__ = ["Task", "TaskGraph", "run_task_graph"]


@dataclass
class Task:
    """One unit of work.

    Attributes
    ----------
    name:
        Diagnostic label (``"filter:AL"``, ``"relax[0:8192]"``...).
    fn:
        Zero-argument callable.
    cost_hint:
        Optional relative cost for balanced scheduling / simulation.
    measured:
        Wall-clock seconds of the last execution (filled by the runners).
    """

    name: str
    fn: Callable[[], object]
    cost_hint: float = 1.0
    measured: float | None = None
    result: object = field(default=None, repr=False)

    def run(self) -> object:
        t0 = time.perf_counter()
        self.result = self.fn()
        self.measured = time.perf_counter() - t0
        return self.result


class TaskGraph:
    """A DAG of tasks executed level-by-level (topological waves).

    Dependencies are declared by name; each wave's ready tasks run
    concurrently, then the graph barriers before releasing the next wave —
    the structure of an OpenMP task region with ``taskwait`` at joins.
    """

    def __init__(self):
        self._tasks: dict[str, Task] = {}
        self._deps: dict[str, set[str]] = {}

    def add(self, task: Task, after: list[str] | None = None) -> Task:
        """Insert *task*; ``after`` lists names it must wait for."""
        if task.name in self._tasks:
            raise ValueError(f"duplicate task name {task.name!r}")
        for dep in after or []:
            if dep not in self._tasks:
                raise ValueError(f"unknown dependency {dep!r} for {task.name!r}")
        self._tasks[task.name] = task
        self._deps[task.name] = set(after or [])
        return task

    def spawn(self, name: str, fn: Callable[[], object], cost_hint: float = 1.0, after: list[str] | None = None) -> Task:
        """Convenience: build and :meth:`add` a task in one call."""
        return self.add(Task(name=name, fn=fn, cost_hint=cost_hint), after=after)

    def waves(self) -> list[list[Task]]:
        """Topological levels: tasks in a wave are mutually independent."""
        remaining = dict(self._deps)
        done: set[str] = set()
        order: list[list[Task]] = []
        while remaining:
            ready = [name for name, deps in remaining.items() if deps <= done]
            if not ready:
                raise ValueError("task graph has a cycle")
            order.append([self._tasks[name] for name in sorted(ready)])
            done.update(ready)
            for name in ready:
                del remaining[name]
        return order

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)


def run_task_graph(graph: TaskGraph, num_threads: int) -> dict[str, object]:
    """Execute the graph on the shared pool; returns name → result.

    Each topological wave is one parallel batch followed by a barrier.
    """
    pool = get_pool(num_threads)
    results: dict[str, object] = {}
    for wave in graph.waves():
        pool.run_batch([task.run for task in wave])
        for task in wave:
            results[task.name] = task.result
    return results

"""Work partitioning: even chunking and cost-balanced task assignment."""

from __future__ import annotations

import numpy as np

__all__ = ["chunk_ranges", "chunk_by_cost", "balanced_partition"]


def chunk_ranges(n: int, num_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into up to *num_chunks* contiguous, evenly-sized
    half-open ranges — the paper's "evenly-sized tasks" for vector ops."""
    if n <= 0 or num_chunks <= 0:
        return []
    num_chunks = min(num_chunks, n)
    bounds = np.linspace(0, n, num_chunks + 1).astype(np.int64)
    return [(int(bounds[k]), int(bounds[k + 1])) for k in range(num_chunks) if bounds[k + 1] > bounds[k]]


def chunk_by_cost(costs: np.ndarray, num_chunks: int) -> list[tuple[int, int]]:
    """Split items into contiguous ranges of roughly equal total *cost*.

    Used to chunk CSR rows so each task sees a similar number of edges
    (plain ``chunk_ranges`` over rows would be badly skewed on power-law
    graphs).
    """
    n = len(costs)
    if n == 0 or num_chunks <= 0:
        return []
    total = float(np.sum(costs))
    if total <= 0:
        return chunk_ranges(n, num_chunks)
    cum = np.cumsum(costs, dtype=np.float64)
    targets = np.linspace(0, total, num_chunks + 1)[1:-1]
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.unique(np.concatenate([[0], cuts, [n]]))
    # a run of zero-cost items between cuts (or at the tail) would become
    # its own zero-work chunk, wasting a worker/shard slot: keep a cut
    # only while it advances the cumulative cost, and fold a zero-cost
    # tail into the last real chunk
    csum = np.concatenate([[0.0], cum])
    merged = [0]
    for b in bounds[1:-1]:
        if csum[b] > csum[merged[-1]]:
            merged.append(int(b))
    if len(merged) > 1 and csum[n] <= csum[merged[-1]]:
        merged.pop()
    merged.append(n)
    return [(merged[k], merged[k + 1]) for k in range(len(merged) - 1)]


def balanced_partition(costs: list[float], bins: int) -> list[list[int]]:
    """Greedy LPT (longest processing time first) assignment of task
    indices to *bins*, minimizing the maximum bin load.

    This is the list-scheduling model used by the simulated executor; it
    also mirrors how an OpenMP runtime's work-stealing converges for
    independent tasks.
    """
    if bins <= 0:
        return []
    order = sorted(range(len(costs)), key=lambda k: -costs[k])
    loads = [0.0] * bins
    assignment: list[list[int]] = [[] for _ in range(bins)]
    for k in order:
        # ties broken by item count, then index: an all-zero cost array
        # round-robins instead of piling every task onto bin 0
        b = min(range(bins), key=lambda j: (loads[j], len(assignment[j]), j))
        assignment[b].append(k)
        loads[b] += costs[k]
    return assignment

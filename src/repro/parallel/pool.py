"""A persistent worker pool executing chunked NumPy kernels on threads.

NumPy releases the GIL inside ufunc inner loops and most gather/scatter
kernels, so chunked array work genuinely overlaps across threads — the
same memory-bandwidth-bound regime as the paper's OpenMP vector tasks.
The pool is persistent (created once per thread count) because the SSSP
inner loop issues thousands of small task batches; per-batch executor
creation would swamp the measurement exactly like spawning OpenMP teams
per loop would.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, Iterable, Sequence

__all__ = ["BatchError", "WorkerPool", "get_pool", "parallel_map", "shutdown_all_pools"]

_POOLS: dict[int, "WorkerPool"] = {}
_POOLS_LOCK = threading.Lock()

#: how many per-task errors the aggregate message spells out verbatim
_MAX_NAMED_FAILURES = 4


class BatchError(RuntimeError):
    """Aggregate failure of one task batch, every failed task named.

    A batch is a barrier of *independent* tasks (one per shard in the
    sharded stepper), so raising the first exception blind would discard
    the sibling results and hide simultaneous failures.  Instead the
    whole batch runs to the barrier and this error collects:

    - ``failures`` — ``(index, exception)`` per failed task, ascending
      by index (for shard batches the index *is* the shard id);
    - ``results`` — the full results list with ``None`` at failed slots,
      so a retrying caller can keep the completed work and re-run only
      the failed indices.
    """

    def __init__(self, failures, results):
        self.failures: list = list(failures)
        self.results: list = list(results)
        named = "; ".join(
            f"[{i}] {type(exc).__name__}: {exc}"
            for i, exc in self.failures[:_MAX_NAMED_FAILURES]
        )
        if len(self.failures) > _MAX_NAMED_FAILURES:
            named += f"; … {len(self.failures) - _MAX_NAMED_FAILURES} more"
        super().__init__(
            f"{len(self.failures)}/{len(self.results)} tasks failed: {named}"
        )

    @property
    def failed_indices(self) -> list[int]:
        return [i for i, _ in self.failures]


class WorkerPool:
    """Thin wrapper over :class:`ThreadPoolExecutor` with batch submit.

    ``num_threads=1`` short-circuits to inline execution so sequential
    baselines pay zero scheduling overhead (important for honest Fig. 4
    speedup denominators).
    """

    def __init__(self, num_threads: int):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._shutdown_lock = threading.Lock()
        self._closed = False
        self._executor = (
            ThreadPoolExecutor(max_workers=num_threads, thread_name_prefix="repro-worker")
            if num_threads > 1
            else None
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def run_batch(self, fns: Sequence[Callable[[], object]]) -> list[object]:
        """Execute a batch of zero-argument tasks; returns their results in
        submission order.  Blocks until all complete (a task barrier —
        ``#pragma omp taskwait``).

        Tasks are independent, so one failure does not cancel the rest:
        every task runs to the barrier, and if any raised, a
        :class:`BatchError` aggregates all of them by task index (with
        the completed siblings' results attached for retrying callers).
        """
        if self._closed:
            raise RuntimeError("WorkerPool is shut down")
        results: list[object] = []
        failures: list[tuple[int, BaseException]] = []
        if self._executor is None or len(fns) <= 1:
            for i, fn in enumerate(fns):
                try:
                    results.append(fn())
                except Exception as exc:
                    results.append(None)
                    failures.append((i, exc))
        else:
            futures = [self._executor.submit(fn) for fn in fns]
            wait(futures)
            for i, f in enumerate(futures):
                exc = f.exception()
                if exc is None:
                    results.append(f.result())
                else:
                    results.append(None)
                    failures.append((i, exc))
        if failures:
            raise BatchError(failures, results)
        return results

    def map_chunks(self, fn: Callable, chunks: Iterable[tuple[int, int]]) -> list[object]:
        """Run ``fn(lo, hi)`` for each chunk in parallel."""
        return self.run_batch([_bind(fn, lo, hi) for lo, hi in chunks])

    def shutdown(self) -> None:
        """Tear down the executor.  Idempotent and thread-safe: the pool
        is shut down both explicitly (tests, embedders) and via ``atexit``,
        and only the first caller touches the executor."""
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerPool<threads={self.num_threads}>"


def _bind(fn, lo, hi):
    return lambda: fn(lo, hi)


def get_pool(num_threads: int) -> WorkerPool:
    """Fetch (or lazily create) the persistent pool for *num_threads*.

    A pool that was shut down (directly or via
    :func:`shutdown_all_pools`) is replaced with a fresh one, so callers
    after an explicit teardown keep working.
    """
    with _POOLS_LOCK:
        pool = _POOLS.get(num_threads)
        if pool is None or pool.closed:
            pool = WorkerPool(num_threads)
            _POOLS[num_threads] = pool
        return pool


def parallel_map(fn: Callable, chunks: Sequence[tuple[int, int]], num_threads: int) -> list[object]:
    """One-shot helper: ``fn(lo, hi)`` over chunks on the shared pool."""
    return get_pool(num_threads).map_chunks(fn, chunks)


def shutdown_all_pools() -> None:
    """Tear down every cached pool (registered at interpreter exit).

    Idempotent: safe to call explicitly from tests *and* again via the
    ``atexit`` hook.  The registry is detached under the lock first, so a
    concurrent :func:`get_pool` either sees the old pool before shutdown
    or creates a fresh one — and per-pool ``shutdown`` guards itself.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_all_pools)

"""A persistent worker pool executing chunked NumPy kernels on threads.

NumPy releases the GIL inside ufunc inner loops and most gather/scatter
kernels, so chunked array work genuinely overlaps across threads — the
same memory-bandwidth-bound regime as the paper's OpenMP vector tasks.
The pool is persistent (created once per thread count) because the SSSP
inner loop issues thousands of small task batches; per-batch executor
creation would swamp the measurement exactly like spawning OpenMP teams
per loop would.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, Iterable, Sequence

__all__ = ["WorkerPool", "get_pool", "parallel_map", "shutdown_all_pools"]

_POOLS: dict[int, "WorkerPool"] = {}
_POOLS_LOCK = threading.Lock()


class WorkerPool:
    """Thin wrapper over :class:`ThreadPoolExecutor` with batch submit.

    ``num_threads=1`` short-circuits to inline execution so sequential
    baselines pay zero scheduling overhead (important for honest Fig. 4
    speedup denominators).
    """

    def __init__(self, num_threads: int):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self._shutdown_lock = threading.Lock()
        self._closed = False
        self._executor = (
            ThreadPoolExecutor(max_workers=num_threads, thread_name_prefix="repro-worker")
            if num_threads > 1
            else None
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def run_batch(self, fns: Sequence[Callable[[], object]]) -> list[object]:
        """Execute a batch of zero-argument tasks; returns their results in
        submission order.  Blocks until all complete (a task barrier —
        ``#pragma omp taskwait``)."""
        if self._closed:
            raise RuntimeError("WorkerPool is shut down")
        if self._executor is None or len(fns) <= 1:
            return [fn() for fn in fns]
        futures = [self._executor.submit(fn) for fn in fns]
        wait(futures)
        return [f.result() for f in futures]

    def map_chunks(self, fn: Callable, chunks: Iterable[tuple[int, int]]) -> list[object]:
        """Run ``fn(lo, hi)`` for each chunk in parallel."""
        return self.run_batch([_bind(fn, lo, hi) for lo, hi in chunks])

    def shutdown(self) -> None:
        """Tear down the executor.  Idempotent and thread-safe: the pool
        is shut down both explicitly (tests, embedders) and via ``atexit``,
        and only the first caller touches the executor."""
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerPool<threads={self.num_threads}>"


def _bind(fn, lo, hi):
    return lambda: fn(lo, hi)


def get_pool(num_threads: int) -> WorkerPool:
    """Fetch (or lazily create) the persistent pool for *num_threads*.

    A pool that was shut down (directly or via
    :func:`shutdown_all_pools`) is replaced with a fresh one, so callers
    after an explicit teardown keep working.
    """
    with _POOLS_LOCK:
        pool = _POOLS.get(num_threads)
        if pool is None or pool.closed:
            pool = WorkerPool(num_threads)
            _POOLS[num_threads] = pool
        return pool


def parallel_map(fn: Callable, chunks: Sequence[tuple[int, int]], num_threads: int) -> list[object]:
    """One-shot helper: ``fn(lo, hi)`` over chunks on the shared pool."""
    return get_pool(num_threads).map_chunks(fn, chunks)


def shutdown_all_pools() -> None:
    """Tear down every cached pool (registered at interpreter exit).

    Idempotent: safe to call explicitly from tests *and* again via the
    ``atexit`` hook.  The registry is detached under the lock first, so a
    concurrent :func:`get_pool` either sees the old pool before shutdown
    or creates a fresh one — and per-pool ``shutdown`` guards itself.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_all_pools)

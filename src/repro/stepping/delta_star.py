"""Δ*-stepping: sliding buckets with lazy Bellman–Ford batching inside.

Dong et al. 2021's tuned Δ-variant.  Two changes over the paper's classic
Δ-stepping (:func:`repro.sssp.fused.fused_delta_stepping`):

1. **Sliding window.**  The classic bucket grid is fixed at
   ``[iΔ, (i+1)Δ)`` from distance 0, so a cluster of distances straddling
   a grid line splits into two buckets and sparse distance ranges leave
   empty buckets to skip.  Δ* anchors each step at the current nearest
   active distance: the window is ``[dmin, dmin + Δ]``.  Every step is
   guaranteed non-empty and windows land where the distances are.

2. **Lazy Bellman–Ford batching inside the bucket.**  The classic inner
   loop splits edges into light (relaxed per phase) and heavy (relaxed
   once at bucket close) to avoid useless heavy re-relaxations.  Δ*
   instead relaxes *all* out-edges of the window batch every phase —
   plain Bellman–Ford iterations restricted to the window — and relies
   on lazy re-entry (a vertex re-relaxes only when its distance actually
   improves) to bound the waste.  The phases lose the light/heavy
   bookkeeping and the split's two extra CSR passes, which on the NumPy
   substrate is the larger cost.

With the anchor sliding, Δ* tolerates a much larger Δ than the classic
grid — the default is 4× the Meyer–Sanders choice — pushing it toward
the Bellman–Ford end of the spectrum where fewer, fatter waves win.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..kernels import check_kernel, workspace_for
from ..sssp.delta import choose_delta
from ..sssp.result import SSSPResult
from .base import Stepper, new_counters, relax_wave
from .frontier import LazyFrontier

__all__ = ["delta_star_stepping", "default_delta_star", "DeltaStarStepper"]

#: Δ* widening factor over the classic Δ heuristic (sliding windows make
#: wide buckets cheap; see module docstring)
WIDEN = 4.0


def default_delta_star(graph: Graph) -> float:
    """Δ* heuristic: the classic auto-Δ, widened by :data:`WIDEN`."""
    return WIDEN * choose_delta(graph)


def delta_star_stepping(graph: Graph, source: int, delta: float | None = None) -> SSSPResult:
    """Run Δ*-stepping SSSP from *source* (``delta=None`` → auto, widened)."""
    return DeltaStarStepper().solve(graph, source, delta=delta)


class DeltaStarStepper(Stepper):
    """The Δ*-stepping member of the framework (see module docstring)."""

    name = "delta-star"
    description = "sliding buckets, lazy Bellman-Ford inside (Dong et al. 2021)"

    def solve(
        self, graph: Graph, source: int, delta: float | None = None, kernel: str = "auto",
        recorder=None,
    ) -> SSSPResult:
        delta = delta if delta is not None else default_delta_star(graph)
        return self._seeded_solve(
            graph, source, method="delta-star", delta=delta, kernel=kernel, recorder=recorder
        )

    def resolve(
        self,
        graph: Graph,
        dist: np.ndarray,
        active: np.ndarray,
        delta: float | None = None,
        kernel: str = "auto",
        recorder=None,
    ) -> dict:
        delta = delta if delta is not None else default_delta_star(graph)
        if delta <= 0:
            raise ValueError("delta must be positive")
        check_kernel(kernel)
        ws = workspace_for(graph)
        indptr, indices, weights = graph.csr()
        frontier = LazyFrontier(dist, active)
        active[:] = False  # ownership transferred to the frontier
        counters = new_counters()
        while frontier:
            counters["steps"] += 1
            # the window anchors at the nearest active distance — every
            # step is non-empty by construction (no empty-bucket skipping)
            bound = frontier.peek_min() + delta
            batch = frontier.pop_below(bound)
            while len(batch):
                counters["phases"] += 1
                improved, new_d = relax_wave(
                    indptr, indices, weights, batch, dist, counters, workspace=ws,
                    kernel=kernel, recorder=recorder,
                )
                in_window = new_d <= bound
                frontier.push(improved[~in_window])
                batch = improved[in_window]
                # in-window improvements re-relax this phase loop, so they
                # must not also wait as pending frontier entries
                frontier.active[batch] = False
        return counters

    def default_params(self, graph: Graph) -> dict:
        return {"delta": default_delta_star(graph)}

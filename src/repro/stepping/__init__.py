"""Generalized stepping algorithms: the Δ ↔ ρ ↔ radius spectrum, unified.

The paper positions Δ-stepping between Dijkstra (Δ → min weight) and
Bellman–Ford (Δ → ∞); this package generalizes that one dial into an
algorithm *portfolio* behind a single step/relax contract, plus a tuner
that picks per graph.  It is the repo's pluggable-algorithm surface:
backends register here and every consumer — service planner, batch
engine, dynamic repair, CLI, STEP bench — picks them up for free.  The
partition-parallel sharded backend (:mod:`repro.shard`) registers as
``"sharded"``; GPU and multi-machine steppers are the next plug-ins.

Module map
----------
=====================================  =======================================
:mod:`~repro.stepping.base`            the :class:`Stepper` contract
                                       (solve/resolve), the shared relax
                                       wave, and the :data:`STEPPERS`
                                       registry every consumer enumerates
:mod:`~repro.stepping.frontier`        :class:`LazyFrontier` — dense
                                       lazy-batched priority frontier with
                                       decrease-key-free updates
:mod:`~repro.stepping.rho_stepping`    ρ-stepping: extract the ρ nearest
                                       active vertices per step
:mod:`~repro.stepping.radius_stepping` radius-stepping: per-vertex k-radius
                                       precompute bounds each step
:mod:`~repro.stepping.delta_star`      Δ*-stepping: sliding buckets with
                                       lazy Bellman–Ford batching inside
:mod:`~repro.stepping.autotune`        sampling auto-tuner: probe the
                                       portfolio, fit per-graph costs,
                                       expose the best pick
=====================================  =======================================

Entry points::

    from repro.stepping import get_stepper, solve_with, AutoTuner

    res = solve_with("rho", graph, source=0)          # any registry name
    pick = AutoTuner().best_stepper(graph)            # tuned per graph
    res = solve_with(pick, graph, source=0)

The legacy implementations are registered alongside the new steppers
("delta" = the paper's fused kernel, "graphblas", "dijkstra",
"bellman-ford"), so the portfolio spans the whole repo.
"""

from __future__ import annotations

from ..sssp.fused import fused_delta_stepping
from ..sssp.graphblas_sssp import graphblas_delta_stepping
from ..sssp.delta import choose_delta
from ..sssp.reference import bellman_ford, dijkstra
from ..sssp.result import SSSPResult
from .autotune import DEFAULT_CANDIDATES, AutoTuner, ProbeRow, TuningReport, best_stepper
from .base import (
    STEPPERS,
    FunctionStepper,
    Stepper,
    format_known,
    get_stepper,
    parse_stepper_spec,
    register_stepper,
    resolve_stepper_spec,
    stepper_names,
)
from .delta_star import DeltaStarStepper, default_delta_star, delta_star_stepping
from .frontier import LazyFrontier
from .radius_stepping import RadiusStepper, radius_stepping, vertex_radii
from .rho_stepping import RhoStepper, default_rho, rho_stepping

__all__ = [
    "Stepper",
    "FunctionStepper",
    "STEPPERS",
    "register_stepper",
    "get_stepper",
    "stepper_names",
    "format_known",
    "parse_stepper_spec",
    "resolve_stepper_spec",
    "solve_with",
    "LazyFrontier",
    "rho_stepping",
    "default_rho",
    "RhoStepper",
    "radius_stepping",
    "vertex_radii",
    "RadiusStepper",
    "delta_star_stepping",
    "default_delta_star",
    "DeltaStarStepper",
    "AutoTuner",
    "TuningReport",
    "ProbeRow",
    "DEFAULT_CANDIDATES",
    "best_stepper",
]


def solve_with(stepper: str, graph, source: int, **params) -> SSSPResult:
    """Run SSSP with any registered stepper: ``solve_with("rho", g, 0)``.

    *stepper* may be a bare registry name or a parameterized spec like
    ``"sharded(shards=4, partitioner=bfs)"`` (explicit ``**params`` win
    over spec params).
    """
    s, spec_params = resolve_stepper_spec(stepper)
    return s.solve(graph, source, **{**spec_params, **params})


def _fused_auto(graph, source, delta=None, **kw):
    return fused_delta_stepping(
        graph, source, delta if delta is not None else choose_delta(graph), **kw
    )


def _graphblas_auto(graph, source, delta=None, **kw):
    return graphblas_delta_stepping(
        graph, source, delta if delta is not None else choose_delta(graph), **kw
    )


# -- registry assembly: new framework members + adopted legacy solvers -------

register_stepper(RhoStepper())
register_stepper(RadiusStepper())
register_stepper(DeltaStarStepper())
register_stepper(FunctionStepper(
    "delta", _fused_auto,
    description="classic fixed-grid delta-stepping, fused kernel (the paper's fast impl.)",
    defaults={"delta": None},  # None = choose_delta; advertises the Δ knob
    kernel_capable=True,  # "delta(kernel=scatter)" pins the min-by-target kernel
    recorder_capable=True,  # fused emits its own per-bucket/per-stage spans
))
register_stepper(FunctionStepper(
    "graphblas", _graphblas_auto,
    description="classic delta-stepping, unfused GraphBLAS formulation (Fig. 2)",
    defaults={"delta": None},
))
register_stepper(FunctionStepper(
    "dijkstra", dijkstra,
    description="binary-heap Dijkstra oracle (Python loop; trusted, slow)",
))
register_stepper(FunctionStepper(
    "bellman-ford", bellman_ford,
    description="edge-centric Bellman-Ford, one vectorized wave per round",
    kernel_capable=True,
))

# the sharded backend registers itself at the bottom of its module; the
# import order is cycle-safe from either entry point because this line
# runs after every stepping submodule the shard package depends on
from ..shard import stepper as _shard_stepper  # noqa: E402,F401  (registration side effect)

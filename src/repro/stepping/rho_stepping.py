"""ρ-stepping: extract the ρ nearest frontier vertices per step.

Dong et al. 2021's headline algorithm.  Where Δ-stepping batches by a
*distance window* (everything in ``[iΔ, (i+1)Δ)``), ρ-stepping batches by
*count*: each step extracts the ρ active vertices with the smallest
tentative distances and relaxes **all** of their out-edges in one wave —
no light/heavy split, no bucket re-entry loop.  ρ interpolates the other
axis of the Dijkstra ↔ Bellman–Ford spectrum:

- ρ = 1  → Dijkstra's settle-one-vertex order (with re-relaxation instead
  of a decrease-key heap);
- ρ = ∞  → Bellman–Ford (every active vertex relaxes every step).

The win over Δ-stepping is shape-robustness: a step's work is bounded by
the degree mass of ρ vertices regardless of how distances cluster, so
there is no Δ to mistune on graphs whose edge-weight scale varies across
regions.  The price is that an extracted vertex may be re-extracted after
a later improvement — the same label-correcting bet Δ-stepping makes
inside a bucket, here made globally and paid for by the lazy frontier's
O(active) batch extraction (:mod:`repro.stepping.frontier`).
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..kernels import check_kernel, workspace_for
from ..sssp.result import SSSPResult
from .base import Stepper, new_counters, relax_wave
from .frontier import LazyFrontier

__all__ = ["rho_stepping", "default_rho", "RhoStepper"]


def default_rho(graph: Graph) -> int:
    """ρ heuristic: a constant fraction of the vertex set, floored.

    Dong et al. pick ρ so a step saturates the machine while keeping the
    wasted (re-relaxed) work low; sequentially the same trade reads
    "large enough to amortize the extraction scan, small enough to stay
    near the Dijkstra order".  n/8 with a floor of 64 lands there across
    the suite; the auto-tuner covers per-graph residuals.
    """
    return max(64, graph.num_vertices // 8)


def rho_stepping(graph: Graph, source: int, rho: int | None = None) -> SSSPResult:
    """Run ρ-stepping SSSP from *source* (``rho=None`` → :func:`default_rho`)."""
    return RhoStepper().solve(graph, source, rho=rho)


class RhoStepper(Stepper):
    """The ρ-stepping member of the framework (see module docstring)."""

    name = "rho"
    description = "extract the rho nearest active vertices per step (Dong et al. 2021)"

    def solve(
        self, graph: Graph, source: int, rho: int | None = None, kernel: str = "auto",
        recorder=None,
    ) -> SSSPResult:
        result = self._seeded_solve(
            graph, source, method="rho-stepping", rho=rho, kernel=kernel, recorder=recorder
        )
        result.extra["rho"] = rho if rho is not None else default_rho(graph)
        return result

    def resolve(
        self,
        graph: Graph,
        dist: np.ndarray,
        active: np.ndarray,
        rho: int | None = None,
        kernel: str = "auto",
        recorder=None,
    ) -> dict:
        rho = rho if rho is not None else default_rho(graph)
        if rho < 1:
            raise ValueError("rho must be >= 1")
        check_kernel(kernel)
        ws = workspace_for(graph)
        indptr, indices, weights = graph.csr()
        frontier = LazyFrontier(dist, active)
        active[:] = False  # ownership transferred to the frontier
        counters = new_counters()
        while frontier:
            counters["steps"] += 1
            counters["phases"] += 1
            batch = frontier.pop_nearest(rho)
            improved, _ = relax_wave(
                indptr, indices, weights, batch, dist, counters, workspace=ws, kernel=kernel,
                recorder=recorder,
            )
            frontier.push(improved)
        return counters

    def default_params(self, graph: Graph) -> dict:
        return {"rho": default_rho(graph)}

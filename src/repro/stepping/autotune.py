"""The per-graph stepping auto-tuner: probe, fit, pick.

No stepper dominates: ρ-stepping wins on power-law graphs (frontiers
explode past any Δ window), Δ-variants win on meshes (frontiers stay
thin and windowed), Bellman–Ford wins on tiny-diameter graphs (two fat
waves beat any scheduling).  Rather than guess from structure, the tuner
*measures*: it solves from a few sampled sources with every candidate
stepper, fits a per-source cost model (mean ms per source, per stepper —
SSSP cost is per-source affine once the graph is fixed), and
:meth:`AutoTuner.best_stepper` returns the cheapest.

Probes are cached per ``(graph identity, epoch)`` — the same key the
service's :class:`~repro.service.cache.DistanceCache` uses — so a served
graph is probed once, and a mutation (which bumps the epoch) triggers a
re-probe on next use.  The service planner consults this pick for exact
solves; ``repro step-bench`` reports it next to the full measurement.

Candidates are stepper *specs*: a bare registry name, or a name with
pinned parameters (``"sharded(shards=2,transport=threads)"``) so one
algorithm can race under several configurations — that is how shard
count and partitioner become tunable knobs.  Probes execute each spec
**verbatim**, exactly as a consumer resolving the winning spec later
will, so pick and execution always see the same configuration; pooled
transports resolve through :func:`~repro.parallel.pool.get_pool`, whose
process-wide memoized pools mean a probe round reuses one shared worker
pool instead of spawning its own.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph
from .base import STEPPERS, format_known, parse_stepper_spec, resolve_stepper_spec

__all__ = ["DEFAULT_CANDIDATES", "ProbeRow", "TuningReport", "AutoTuner", "best_stepper"]

#: the portfolio a bare tuner races.  ``graphblas`` and ``dijkstra`` are
#: registered steppers but not default candidates: the first is the
#: paper's deliberately-unfused formulation, the second a Python-loop
#: oracle — both lose by construction, so probing them is pure overhead.
#: The sharded backend races at two shard counts (partition-parallel is
#: only worth picking when the exchange volume stays paid for); its specs
#: pin ``transport=threads`` so a consumer executing the pick runs the
#: same pooled configuration the probe measured — the probe's shared
#: pool and the spec's transport resolve to the same ``get_pool`` pool.
#: ``delta(kernel=scatter)`` races the classic stepper with the O(m)
#: scatter-min kernel pinned, so the per-target-min kernel is one more
#: knob the tuner settles per graph (the bare names use the density
#: ``auto`` pick).
DEFAULT_CANDIDATES = (
    "delta",
    "delta(kernel=scatter)",
    "delta-star",
    "rho",
    "radius",
    "bellman-ford",
    "sharded(shards=2,transport=threads)",
    "sharded(shards=4,partitioner=bfs,transport=threads)",
)


@dataclass(frozen=True)
class ProbeRow:
    """One candidate's measurement on one graph."""

    stepper: str
    ms_per_source: float
    sources_probed: int

    def predicted_ms(self, num_sources: int) -> float:
        return self.ms_per_source * num_sources


@dataclass(frozen=True)
class TuningReport:
    """The tuner's evidence and verdict for one graph epoch."""

    graph_name: str
    epoch: int
    sources: tuple[int, ...]
    rows: tuple[ProbeRow, ...] = field(default_factory=tuple)

    @property
    def best(self) -> str:
        """The winning stepper name."""
        return min(self.rows, key=lambda r: r.ms_per_source).stepper

    def row_for(self, stepper: str) -> ProbeRow:
        for r in self.rows:
            if r.stepper == stepper:
                return r
        raise KeyError(stepper)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TuningReport<{self.graph_name}@e{self.epoch}: best={self.best} "
            f"of {len(self.rows)}>"
        )


class AutoTuner:
    """Samples sources, races the candidate steppers, remembers the winner.

    Parameters
    ----------
    candidates:
        Registry names to race (default :data:`DEFAULT_CANDIDATES`).
    num_sources:
        Sources sampled per probe.  One is usually enough — per-source
        cost varies far less than per-stepper cost — and keeps the
        service's first-drain probe overhead near one extra solve.
    repeats:
        Timed repetitions per (stepper, source); the minimum is kept.
    seed:
        Source-sampling seed (probes are deterministic given the graph).
    """

    def __init__(
        self,
        candidates: tuple[str, ...] | None = None,
        num_sources: int = 1,
        repeats: int = 1,
        seed: int = 23,
    ):
        self.candidates = tuple(candidates) if candidates is not None else DEFAULT_CANDIDATES
        unknown = [c for c in self.candidates if parse_stepper_spec(c)[0] not in STEPPERS]
        if unknown:
            raise ValueError(
                f"unknown stepper(s) {unknown!r}; known: {format_known(STEPPERS)}"
            )
        if not self.candidates:
            raise ValueError("need at least one candidate stepper")
        if num_sources < 1:
            raise ValueError("num_sources must be >= 1")
        self.num_sources = num_sources
        self.repeats = max(1, repeats)
        self.seed = seed
        # keyed on (id(graph), epoch), same as the service's DistanceCache;
        # a weakref.finalize per graph retires its reports on collection —
        # which also protects against id reuse handing graph B the report
        # probed for a dead graph A.  The callback may fire at any
        # allocation point, so it only enqueues; lookups purge the queue.
        self._reports: dict[tuple[int, int], TuningReport] = {}
        self._tracked_gids: set[int] = set()
        self._dead_gids: deque[int] = deque()

    # -- probing ------------------------------------------------------------

    def _sample_sources(self, graph: Graph) -> tuple[int, ...]:
        n = graph.num_vertices
        rng = np.random.default_rng(self.seed)
        # bias toward vertices that have out-edges: an isolated source
        # measures dispatch overhead, not the stepper
        deg = graph.out_degree()
        pool = np.nonzero(deg > 0)[0]
        if len(pool) == 0:
            pool = np.arange(n)
        take = min(self.num_sources, len(pool))
        return tuple(int(s) for s in rng.choice(pool, size=take, replace=False))

    def probe(self, graph: Graph, sources=None) -> TuningReport:
        """Race every candidate on *graph*; returns (and caches) the report.

        *sources* overrides the sampled probe sources (the STEP bench
        passes its own measurement source so pick and measurement agree).
        """
        from ..bench.timing import time_callable

        sources = tuple(sources) if sources is not None else self._sample_sources(graph)
        if not sources:
            raise ValueError("probe needs at least one source")
        # each spec runs verbatim — the same resolution path a consumer
        # executing the winning pick takes — so measured and served
        # configurations can never drift apart.  Pooled transports go
        # through get_pool's memoized pools: one shared worker set per
        # thread count, never a per-probe spawn.
        resolved = [(spec, *resolve_stepper_spec(spec)) for spec in self.candidates]
        rows = []
        for spec, stepper, params in resolved:
            per_source = []
            for s in sources:
                stats = time_callable(
                    lambda: stepper.solve(graph, s, **params),
                    repeats=self.repeats, warmup=0,
                )
                per_source.append(stats.best_ms)
            rows.append(
                ProbeRow(
                    stepper=spec,
                    ms_per_source=float(np.mean(per_source)),
                    sources_probed=len(sources),
                )
            )
        report = TuningReport(
            graph_name=graph.name,
            epoch=graph.epoch,
            sources=sources,
            rows=tuple(rows),
        )
        self._purge_dead()
        gid = id(graph)
        if gid not in self._tracked_gids:
            self._tracked_gids.add(gid)
            weakref.finalize(graph, self._dead_gids.append, gid)
        # a re-probe for the same epoch supersedes; older epochs of this
        # graph can never be asked for again (epochs are monotone)
        for key in [k for k in self._reports if k[0] == gid]:
            del self._reports[key]
        self._reports[(gid, graph.epoch)] = report
        return report

    def _purge_dead(self) -> None:
        """Drop reports of collected graphs (guards id reuse too)."""
        while self._dead_gids:
            gid = self._dead_gids.popleft()
            self._tracked_gids.discard(gid)
            for key in [k for k in self._reports if k[0] == gid]:
                del self._reports[key]

    # -- the fitted model ---------------------------------------------------

    def report_for(self, graph: Graph) -> TuningReport:
        """The cached report for *graph*'s current epoch (probing on miss)."""
        self._purge_dead()
        cached = self._reports.get((id(graph), graph.epoch))
        return cached if cached is not None else self.probe(graph)

    def best_stepper(self, graph: Graph) -> str:
        """The cheapest candidate for *graph* (probes on first use per epoch)."""
        return self.report_for(graph).best

    def predict_ms(self, graph: Graph, stepper: str, num_sources: int = 1) -> float:
        """Predicted exact-solve cost from the fitted per-source model."""
        return self.report_for(graph).row_for(stepper).predicted_ms(num_sources)


#: process-wide default tuner (the CLI's ``--auto`` and the service's
#: ``autotune=True`` share its probe cache)
_DEFAULT_TUNER: AutoTuner | None = None


def best_stepper(graph: Graph, tuner: AutoTuner | None = None) -> str:
    """Module-level convenience: the tuned pick from a shared default tuner."""
    global _DEFAULT_TUNER
    if tuner is not None:
        return tuner.best_stepper(graph)
    if _DEFAULT_TUNER is None:
        _DEFAULT_TUNER = AutoTuner()
    return _DEFAULT_TUNER.best_stepper(graph)

"""A lazy-batched priority frontier with decrease-key-free updates.

Every stepping algorithm needs "the active vertices nearest the source",
but none needs a strict priority queue: batches are extracted, and a
vertex whose tentative distance improves mid-step can simply be examined
again.  Dong et al. 2021 exploit this with a *lazy batched* priority
queue (their LAB-PQ); :class:`LazyFrontier` is the dense-array reduction
of the same idea, sized for the NumPy substrate this repo runs on:

- state is one boolean ``active`` mask plus a *reference* to the solver's
  tentative-distance array — there is no heap, so there is no
  decrease-key: an improvement overwrites ``dist[v]`` and re-pushes ``v``,
  and the mask makes duplicate pushes free;
- ``pop_nearest(rho)`` extracts the ρ active vertices with the smallest
  tentative distances via ``np.partition`` — O(active) per step, not
  O(log n) per update — which is exactly the extract primitive
  ρ-stepping is built on;
- ``pop_below(bound)`` extracts every active vertex with
  ``dist ≤ bound``, the primitive behind radius- and Δ*-stepping.

Popped vertices leave the structure; only an actual distance improvement
(a ``push``) brings one back, which is what makes the steppers'
label-correcting loops terminate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LazyFrontier"]


class LazyFrontier:
    """The active-vertex set of a stepping solver, over shared distances.

    Parameters
    ----------
    dist:
        The solver's tentative-distance array.  Held by reference — the
        frontier always ranks by the *current* distances, so there are no
        stale priorities to lazily delete.
    active:
        Optional initial boolean mask (copied).
    """

    def __init__(self, dist: np.ndarray, active: np.ndarray | None = None):
        self.dist = dist
        n = len(dist)
        if active is None:
            self.active = np.zeros(n, dtype=bool)
        else:
            if active.shape != dist.shape:
                raise ValueError("active mask must match the distance array")
            self.active = active.astype(bool, copy=True)

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return int(self.active.sum())

    def __bool__(self) -> bool:
        return bool(self.active.any())

    def vertices(self) -> np.ndarray:
        """The active vertex ids (ascending)."""
        return np.nonzero(self.active)[0]

    def peek_min(self) -> float:
        """Smallest tentative distance among active vertices (``inf`` when
        empty)."""
        if not self:
            return float("inf")
        return float(self.dist[self.active].min())

    # -- updates ------------------------------------------------------------

    def push(self, vertices: np.ndarray) -> None:
        """(Re-)activate *vertices*; duplicates and already-active are free."""
        self.active[vertices] = True

    # -- batch extraction ---------------------------------------------------

    def pop_nearest(self, rho: int) -> np.ndarray:
        """Extract (up to) the ρ active vertices nearest the source.

        Ties at the ρ-th distance are all included, so a batch is always
        closed under "same priority" — the property that keeps ρ-stepping's
        step count independent of tie-breaking order.
        """
        if rho < 1:
            raise ValueError("rho must be >= 1")
        verts = self.vertices()
        if len(verts) <= rho:
            self.active[verts] = False
            return verts
        d = self.dist[verts]
        # the ρ-th smallest distance is the batch's admission bound
        bound = np.partition(d, rho - 1)[rho - 1]
        take = verts[d <= bound]
        self.active[take] = False
        return take

    def pop_below(self, bound: float) -> np.ndarray:
        """Extract every active vertex with ``dist <= bound``."""
        take = np.nonzero(self.active & (self.dist <= bound))[0]
        self.active[take] = False
        return take

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LazyFrontier<{len(self)} active of {len(self.dist)}>"

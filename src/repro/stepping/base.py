"""The stepping-algorithm contract and its registry.

The paper treats Δ-stepping as a single algorithm; Dong, Gu, Sun & Zhang
("Efficient Stepping Algorithms and Implementations for Parallel Shortest
Paths", 2021) show it is one point in a *family*: every member repeats

1. **step** — pick a batch of active vertices (a bucket, the ρ nearest,
   a radius-bounded range …);
2. **relax** — generate the batch's relaxation requests and min-merge
   them into the tentative distances;
3. re-activate whichever vertices improved.

:class:`Stepper` pins that loop down as an interface.  The load-bearing
method is :meth:`Stepper.resolve`: *run the schedule from an arbitrary
seeded state* — tentative distances plus an active mask — to quiescence.
``solve`` (fresh single-source run) is just ``resolve`` seeded with
``{source: 0}``, and the dynamic layer's incremental repair is ``resolve``
seeded with the dirty region, so one implementation serves both entry
points.  Legacy solvers (the paper's fused kernel, the GraphBLAS form,
Dijkstra, Bellman–Ford) are wrapped as steppers too, so the auto-tuner
(:mod:`repro.stepping.autotune`) can race the whole portfolio.

Discovery follows the ``DELTA_STRATEGIES`` idiom of
:mod:`repro.sssp.delta`: one module-level registry (:data:`STEPPERS`),
one accessor (:func:`get_stepper`) whose ``ValueError`` enumerates every
member, and one CLI (``repro steppers --list``) rendering the same table.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable

import numpy as np
from numpy.typing import NDArray

from ..graphs.graph import Graph
from ..kernels import RelaxWorkspace, gather_candidates, min_by_target
from ..sssp.result import INF, SSSPResult

__all__ = [
    "Stepper",
    "FunctionStepper",
    "STEPPERS",
    "register_stepper",
    "get_stepper",
    "stepper_names",
    "format_known",
    "relax_wave",
    "new_counters",
    "parse_stepper_spec",
    "resolve_stepper_spec",
]


def format_known(names: Iterable[str]) -> str:
    """Render a registry's keys for an error message (shared idiom with
    :func:`repro.sssp.delta.choose_delta`)."""
    return ", ".join(names)


def new_counters() -> dict[str, Any]:
    """A fresh work-counter dict in :class:`~repro.sssp.result.SSSPResult`
    vocabulary: ``steps`` are outer batches (buckets for Δ-steppers),
    ``phases`` inner relaxation waves."""
    return {"steps": 0, "phases": 0, "relaxations": 0, "updates": 0}


def relax_wave(
    indptr: NDArray[np.int64],
    indices: NDArray[np.int64],
    weights: NDArray[np.float64],
    frontier: NDArray[np.int64],
    dist: NDArray[np.float64],
    counters: dict[str, Any],
    workspace: RelaxWorkspace | None = None,
    kernel: str = "auto",
    recorder: Any = None,
) -> tuple[NDArray[np.int64], NDArray[np.float64]]:
    """One relaxation wave: all requests out of *frontier*, min-merged.

    The shared relax half of the step/relax contract — the same fused
    gather → per-target min → filtered scatter as the paper's kernel
    (:func:`repro.sssp.fused.fused_delta_stepping`), operating in place
    on *dist*.  Both halves run on :mod:`repro.kernels`: *workspace*
    supplies the reusable wave buffers and *kernel* picks the per-target
    min implementation (``auto``/``argsort``/``scatter``).  Returns
    ``(improved_targets, their_new_distances)``.

    This is also the observability choke point shared by every
    framework stepper: a truthy *recorder* (:mod:`repro.obs`) gets one
    ``relax-wave`` span per call carrying the kernel name, wave size,
    and relaxation/touched counts; the disabled path costs one falsy
    check.
    """
    if recorder:
        r0 = counters["relaxations"]
        with recorder.span("relax-wave", kernel=kernel, wave=int(len(frontier))) as sp:
            uts, ubest = _relax_wave(
                indptr, indices, weights, frontier, dist, counters, workspace, kernel
            )
            sp.set(relaxations=counters["relaxations"] - r0, touched=int(len(uts)))
        return uts, ubest
    return _relax_wave(indptr, indices, weights, frontier, dist, counters, workspace, kernel)


def _relax_wave(
    indptr: NDArray[np.int64],
    indices: NDArray[np.int64],
    weights: NDArray[np.float64],
    frontier: NDArray[np.int64],
    dist: NDArray[np.float64],
    counters: dict[str, Any],
    workspace: RelaxWorkspace | None,
    kernel: str,
) -> tuple[NDArray[np.int64], NDArray[np.float64]]:
    targets, dists = gather_candidates(indptr, indices, weights, frontier, dist, workspace)
    if targets is None or dists is None:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    counters["relaxations"] += len(targets)
    uts, ubest = min_by_target(targets, dists, workspace=workspace, kernel=kernel)
    improved = ubest < dist[uts]
    uts, ubest = uts[improved], ubest[improved]
    counters["updates"] += len(uts)
    dist[uts] = ubest
    return uts, ubest


class Stepper(ABC):
    """One member of the stepping-algorithm family.

    Attributes
    ----------
    name:
        Registry key (also the CLI / bench spelling).
    kind:
        ``"stepping"`` for the generalized-framework solvers,
        ``"legacy"`` for wrapped pre-framework implementations.
    description:
        One-line summary for ``repro steppers --list``.
    supports_resolve:
        Whether :meth:`resolve` is implemented (the dynamic layer's
        repair path requires it).
    parallel_capable:
        Whether ``solve``/``resolve`` accept a ``pool=`` keyword
        (a :class:`repro.parallel.pool.WorkerPool`) for embedders that
        manage their own worker pool; transport specs resolved without
        one fall back to the shared :func:`repro.parallel.pool.get_pool`
        pools.
    kernel_capable:
        Whether ``solve``/``resolve`` accept a ``kernel=`` keyword
        selecting the :mod:`repro.kernels` per-target-min kernel
        (``"rho(kernel=scatter)"`` in spec spelling); the kernel-
        equivalence tests race every capable stepper under both kernels.

    Every registry member additionally accepts ``recorder=`` on
    ``solve`` (and, where implemented, ``resolve``): a truthy
    :class:`repro.obs.Recorder` receives trace spans and metrics;
    ``None`` / ``NO_RECORDER`` is the zero-cost disabled path, and the
    obs test suite pins recorded runs bit-identical to unrecorded ones.
    """

    name: str = "?"
    kind: str = "stepping"
    description: str = ""
    supports_resolve: bool = True
    parallel_capable: bool = False
    kernel_capable: bool = True
    #: short spec-parameter spellings → the solve() keyword they set
    #: (``"sharded(shards=4)"`` → ``num_shards=4``); consulted by
    #: :func:`resolve_stepper_spec`, empty for most steppers
    spec_param_aliases: dict[str, str] = {}

    @abstractmethod
    def solve(self, graph: Graph, source: int, **params: Any) -> SSSPResult:
        """Fresh single-source run; implementations share the
        ``(graph, source)`` leading signature of :data:`repro.sssp.METHODS`."""

    def resolve(
        self,
        graph: Graph,
        dist: NDArray[np.float64],
        active: NDArray[np.bool_],
        **params: Any,
    ) -> dict[str, Any]:
        """Run the schedule from a seeded state to quiescence.

        *dist* is modified in place; *active* is a boolean mask of
        vertices whose out-edges still need relaxing (consumed).
        Returns the work counters (:func:`new_counters` keys).
        """
        raise NotImplementedError(f"stepper {self.name!r} does not support resolve()")

    def default_params(self, graph: Graph) -> dict[str, Any]:
        """The parameter values a bare ``solve(graph, source)`` will use
        (reported by the bench so runs are reproducible)."""
        return {}

    def _seeded_solve(
        self, graph: Graph, source: int, method: str, **params: Any
    ) -> SSSPResult:
        """``resolve`` seeded with ``{source: 0}``, packaged as a result."""
        n = graph.num_vertices
        if not 0 <= source < n:
            raise IndexError(f"source {source} out of range [0, {n})")
        dist = np.full(n, INF, dtype=np.float64)
        dist[source] = 0.0
        active = np.zeros(n, dtype=bool)
        active[source] = True
        recorder = params.get("recorder")
        if recorder:
            with recorder.span(f"solve:{self.name}", stepper=self.name, source=int(source)):
                counters = self.resolve(graph, dist, active, **params)
        else:
            counters = self.resolve(graph, dist, active, **params)
        return SSSPResult(
            distances=dist,
            source=source,
            delta=float(params.get("delta", float("nan"))),
            method=method,
            buckets_processed=counters["steps"],
            phases=counters["phases"],
            relaxations=counters["relaxations"],
            updates=counters["updates"],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stepper<{self.name} ({self.kind})>"


class FunctionStepper(Stepper):
    """A pre-framework solver adopted into the registry.

    Wraps any ``(graph, source, **kw) -> SSSPResult`` callable (the fused
    Δ kernel, Dijkstra, Bellman–Ford …) so the auto-tuner and the CLI can
    treat the whole portfolio uniformly.  ``resolve`` is unavailable:
    these implementations own their seeding.
    """

    kind = "legacy"
    supports_resolve = False
    kernel_capable = False

    def __init__(
        self,
        name: str,
        fn: Callable[..., SSSPResult],
        description: str = "",
        defaults: dict[str, Any] | None = None,
        kernel_capable: bool = False,
        recorder_capable: bool = False,
    ) -> None:
        self.name = name
        self.description = description
        self._fn = fn
        self._defaults = dict(defaults or {})
        self.kernel_capable = kernel_capable
        #: whether the wrapped fn takes ``recorder=`` itself (the fused
        #: kernel does, emitting per-bucket/per-stage spans); otherwise a
        #: recording run still gets one whole-solve span from the wrapper
        self.recorder_capable = recorder_capable

    def solve(self, graph: Graph, source: int, **params: Any) -> SSSPResult:
        kw = {**self._defaults, **params}
        recorder = kw.pop("recorder", None)
        if recorder:
            if self.recorder_capable:
                return self._fn(graph, source, recorder=recorder, **kw)
            with recorder.span(f"solve:{self.name}", stepper=self.name, source=int(source)):
                return self._fn(graph, source, **kw)
        return self._fn(graph, source, **kw)

    def default_params(self, graph: Graph) -> dict[str, Any]:
        return dict(self._defaults)


#: name → :class:`Stepper`; the one discovery surface shared by
#: :func:`get_stepper`, the auto-tuner, ``repro steppers --list``, the
#: STEP bench, and the service batch dispatch.
STEPPERS: dict[str, Stepper] = {}


def register_stepper(stepper: Stepper) -> Stepper:
    """Add *stepper* to :data:`STEPPERS` (last registration wins)."""
    STEPPERS[stepper.name] = stepper
    return stepper


def get_stepper(name: str) -> Stepper:
    """Look up a stepper by registry name.

    Raises ``ValueError`` naming every registered algorithm — the same
    contract as :func:`repro.sssp.delta.choose_delta` for Δ strategies.
    """
    try:
        return STEPPERS[name]
    except KeyError:
        raise ValueError(
            f"unknown stepper {name!r}; known: {format_known(STEPPERS)}"
        ) from None


def stepper_names(kind: str | None = None) -> list[str]:
    """Registered stepper names, optionally filtered by ``kind``."""
    return [s.name for s in STEPPERS.values() if kind is None or s.kind == kind]


def _parse_value(text: str) -> int | float | str:
    """A spec parameter value: int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_stepper_spec(spec: str) -> tuple[str, dict[str, int | float | str]]:
    """Split a stepper spec into ``(registry name, solve params)``.

    A *spec* is a registry name with optional call-style parameters —
    ``"sharded(shards=4, partitioner=bfs)"`` — the spelling the
    auto-tuner uses to race one algorithm under several configurations
    and the CLI accepts anywhere a stepper name goes.  Values parse as
    int, float, or bare string.  A bare name passes through unchanged
    with empty params; the name is *not* validated here (use
    :func:`resolve_stepper_spec` for lookup + validation).
    """
    spec = spec.strip()
    if "(" not in spec:
        return spec, {}
    name, _, rest = spec.partition("(")
    rest = rest.strip()
    if not rest.endswith(")"):
        raise ValueError(f"malformed stepper spec {spec!r} (missing ')')")
    params: dict[str, int | float | str] = {}
    body = rest[:-1].strip()
    if body:
        for item in body.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key.strip() or not value.strip():
                raise ValueError(
                    f"malformed stepper spec {spec!r} (expected key=value, got {item!r})"
                )
            params[key.strip()] = _parse_value(value.strip())
    return name.strip(), params


def resolve_stepper_spec(spec: str) -> tuple[Stepper, dict[str, int | float | str]]:
    """Look up a spec's stepper and normalize its params.

    Param spellings go through the stepper's own
    :attr:`Stepper.spec_param_aliases`, so short CLI-friendly names
    (``shards=4``) map onto the solve keyword (``num_shards``) without
    the framework hardcoding any stepper's vocabulary.  Raises the same
    registry-enumerating ``ValueError`` as :func:`get_stepper` for
    unknown names.
    """
    name, params = parse_stepper_spec(spec)
    stepper = get_stepper(name)
    aliases = stepper.spec_param_aliases
    return stepper, {aliases.get(k, k): v for k, v in params.items()}

"""Radius-stepping: per-vertex radii bound each step's settle range.

Blelloch, Gu, Sun & Tangwongsan ("Parallel Shortest-Paths Using Radius
Stepping", 2016).  Δ-stepping's fixed window assumes one edge-weight
scale fits the whole graph; radius-stepping derives the window from the
graph itself.  Each vertex ``v`` precomputes a radius ``r(v)`` — the
distance to its k-th nearest out-neighbor, i.e. the k-th smallest
out-edge weight — and a step settles everything up to

    bound = min over active v of  ( d(v) + r(v) )

Any vertex whose final distance is ≤ bound is discoverable by relaxing
only vertices ≤ bound: a shortest path entering the range from outside
would have to leave some active ``u`` through an edge shorter than
``r(u)``, which the bound already accounts for.  So one step settles the
whole range after an inner substep loop reaches quiescence below the
bound (re-relaxing only vertices that actually improve, exactly like a
Δ-bucket's phase loop — correctness needs only ``bound ≥ min active
distance``, which holds because ``r ≥ 0``).

``k`` trades precompute against step count: larger k → larger radii →
fewer, fatter steps.  k = average degree makes ``r(v)`` the "full
neighborhood" radius for typical vertices and is the default.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..kernels import cached_row_ids, check_kernel, workspace_for
from ..sssp.result import SSSPResult
from .base import Stepper, new_counters, relax_wave
from .frontier import LazyFrontier

__all__ = ["radius_stepping", "vertex_radii", "default_k", "RadiusStepper"]


def default_k(graph: Graph) -> int:
    """k heuristic: the average out-degree (≥ 1)."""
    if graph.num_vertices == 0:
        return 1
    return max(1, int(round(graph.num_edges / graph.num_vertices)))


def vertex_radii(graph: Graph, k: int | None = None) -> np.ndarray:
    """``r(v)``: the k-th smallest out-edge weight of every vertex.

    Vertices with fewer than k out-edges get an infinite radius — they
    never constrain the bound (their whole neighborhood is reachable in
    one wave).  One vectorized pass: sort weights *within* CSR rows, then
    gather each row's (k-1)-th entry.
    """
    if k is None:
        k = default_k(graph)
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.num_vertices
    radii = np.full(n, np.inf, dtype=np.float64)
    if graph.num_edges == 0:
        return radii
    # sort weights within rows: argsort the (row, weight) pairs; row ids
    # are the primary key so each row's weights come out ascending
    rows = cached_row_ids(graph)
    order = np.lexsort((graph.weights, rows))
    sorted_w = graph.weights[order]
    deg = np.diff(graph.indptr)
    has_k = deg >= k
    if has_k.any():
        starts = graph.indptr[:-1][has_k]
        radii[has_k] = sorted_w[starts + (k - 1)]
    return radii


def radius_stepping(graph: Graph, source: int, k: int | None = None) -> SSSPResult:
    """Run radius-stepping SSSP from *source* (``k=None`` → :func:`default_k`)."""
    return RadiusStepper().solve(graph, source, k=k)


class RadiusStepper(Stepper):
    """The radius-stepping member of the framework (see module docstring)."""

    name = "radius"
    description = "per-vertex k-radius precompute bounds each step (Blelloch et al. 2016)"

    def solve(
        self, graph: Graph, source: int, k: int | None = None, kernel: str = "auto",
        recorder=None,
    ) -> SSSPResult:
        result = self._seeded_solve(
            graph, source, method="radius-stepping", k=k, kernel=kernel, recorder=recorder
        )
        result.extra["k"] = k if k is not None else default_k(graph)
        return result

    def resolve(
        self,
        graph: Graph,
        dist: np.ndarray,
        active: np.ndarray,
        k: int | None = None,
        kernel: str = "auto",
        recorder=None,
    ) -> dict:
        check_kernel(kernel)
        ws = workspace_for(graph)
        indptr, indices, weights = graph.csr()
        radii = vertex_radii(graph, k)
        frontier = LazyFrontier(dist, active)
        active[:] = False  # ownership transferred to the frontier
        counters = new_counters()
        while frontier:
            counters["steps"] += 1
            verts = frontier.vertices()
            d_active = dist[verts]
            # the step bound; the max() keeps it >= the nearest active
            # vertex (all correctness needs) when every radius is infinite
            bound = max(float(np.min(d_active + radii[verts])), float(d_active.min()))
            batch = frontier.pop_below(bound)
            while len(batch):
                counters["phases"] += 1
                improved, new_d = relax_wave(
                    indptr, indices, weights, batch, dist, counters, workspace=ws,
                    kernel=kernel, recorder=recorder,
                )
                # improvements inside the range re-relax this step; the
                # rest wait in the frontier for a later step
                in_range = new_d <= bound
                frontier.push(improved[~in_range])
                batch = improved[in_range]
                # a pending frontier vertex pulled into range is handled
                # by this substep loop now, not by a later extraction
                frontier.active[batch] = False
        return counters

    def default_params(self, graph: Graph) -> dict:
        return {"k": default_k(graph)}

"""Step 2 of the paper's methodology: IR → GraphBLAS call sequence.

Lowering turns each IR statement into explicit :class:`GrBCall` records —
one per GraphBLAS C API invocation — preserving the paper's observation
that *filters cost two calls* and every operation materializes its
output.  The result is a call tree (straight-line lists plus
:class:`LoweredWhile` nodes) that the interpreter executes and the fusion
pass (:mod:`repro.ir.fusion`) rewrites.

Nested expressions are flattened through generated temporaries
(``_tmp0``, ``_tmp1``, ...), mirroring how a C programmer against the
GraphBLAS API must introduce scratch objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .nodes import (
    ApplyUnary,
    Assign,
    Clear,
    Declare,
    EWiseAdd,
    EWiseMult,
    Expr,
    MxM,
    MxV,
    Program,
    Reduce,
    Ref,
    SelectExpr,
    SetElement,
    SetScalar,
    TransposeExpr,
    VxM,
    While,
)

__all__ = ["GrBCall", "LoweredWhile", "LoweredProgram", "lower_program", "count_calls"]


@dataclass
class GrBCall:
    """One GraphBLAS API invocation.

    ``fn`` is the operation name (``apply``, ``ewise_add``, ``vxm``...),
    ``out`` the destination object, ``args`` the operation-specific
    payload (operator/semiring references, input names, mask/accum/desc
    flags).  ``fused_from`` records provenance after the fusion pass.
    """

    fn: str
    out: str
    args: dict = field(default_factory=dict)
    mask: str | None = None
    accum: object = None
    replace: bool = False
    complement: bool = False
    structural: bool = False
    fused_from: tuple[str, ...] = ()

    def reads(self) -> set[str]:
        """Names this call reads (inputs + mask)."""
        names = {v for k, v in self.args.items() if k.startswith("in") and isinstance(v, str)}
        if self.mask:
            names.add(self.mask)
        return names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(str(v) for k, v in sorted(self.args.items()) if k.startswith("in"))
        m = f", mask={self.mask}" if self.mask else ""
        return f"{self.fn}({self.out} <- {ins}{m})"


@dataclass
class LoweredWhile:
    """A lowered loop: run *pre*, test nvals(cond_name) ≠ 0, run *body*."""

    cond_name: str
    pre: list
    body: list


@dataclass
class LoweredProgram:
    """Call tree plus the declarations needed to run it."""

    calls: list
    name: str = "program"


class _Lowerer:
    def __init__(self):
        self._tmp = 0

    def fresh(self) -> str:
        name = f"_tmp{self._tmp}"
        self._tmp += 1
        return name

    # -- expressions --------------------------------------------------------

    def lower_expr(self, expr: Expr, out: str, calls: list, *, mask=None, accum=None, replace=False, complement=False, structural=False) -> None:
        """Emit calls computing *expr* into *out* (with write modifiers)."""
        kw = dict(mask=mask, accum=accum, replace=replace, complement=complement, structural=structural)
        if isinstance(expr, Ref):
            calls.append(GrBCall("apply", out, {"op": "IDENTITY", "in0": expr.name}, **kw))
        elif isinstance(expr, ApplyUnary):
            a = self._operand(expr.a, calls)
            calls.append(GrBCall("apply", out, {"op": expr.op, "in0": a}, **kw))
        elif isinstance(expr, EWiseAdd):
            a = self._operand(expr.a, calls)
            b = self._operand(expr.b, calls)
            calls.append(GrBCall("ewise_add", out, {"op": expr.op, "in0": a, "in1": b}, **kw))
        elif isinstance(expr, EWiseMult):
            a = self._operand(expr.a, calls)
            b = self._operand(expr.b, calls)
            calls.append(GrBCall("ewise_mult", out, {"op": expr.op, "in0": a, "in1": b}, **kw))
        elif isinstance(expr, VxM):
            v = self._operand(expr.v, calls)
            m = self._operand(expr.m, calls)
            calls.append(GrBCall("vxm", out, {"semiring": expr.semiring, "in0": v, "in1": m}, **kw))
        elif isinstance(expr, MxV):
            m = self._operand(expr.m, calls)
            v = self._operand(expr.v, calls)
            calls.append(GrBCall("mxv", out, {"semiring": expr.semiring, "in0": m, "in1": v}, **kw))
        elif isinstance(expr, MxM):
            a = self._operand(expr.a, calls)
            b = self._operand(expr.b, calls)
            calls.append(GrBCall("mxm", out, {"semiring": expr.semiring, "in0": a, "in1": b}, **kw))
        elif isinstance(expr, Reduce):
            a = self._operand(expr.a, calls)
            calls.append(GrBCall("reduce", out, {"monoid": expr.monoid, "in0": a}, **kw))
        elif isinstance(expr, TransposeExpr):
            a = self._operand(expr.a, calls)
            calls.append(GrBCall("transpose", out, {"in0": a}, **kw))
        elif isinstance(expr, SelectExpr):
            a = self._operand(expr.a, calls)
            calls.append(GrBCall("select", out, {"op": expr.op, "in0": a, "thunk": expr.thunk}, **kw))
        else:
            raise TypeError(f"cannot lower expression {expr!r}")

    def _operand(self, expr: Expr, calls: list) -> str:
        """Flatten a sub-expression to a name, materializing temporaries."""
        if isinstance(expr, Ref):
            return expr.name
        tmp = self.fresh()
        self.lower_expr(expr, tmp, calls)
        return tmp

    # -- statements -----------------------------------------------------------

    def lower_statements(self, statements) -> list:
        calls: list = []
        for st in statements:
            if isinstance(st, Declare):
                calls.append(
                    GrBCall(
                        "declare",
                        st.name,
                        {
                            "kind": st.kind,
                            "dtype": st.dtype,
                            "size_of": st.size_of,
                            "size": st.size,
                            "shape": st.shape,
                        },
                    )
                )
            elif isinstance(st, Assign):
                self.lower_expr(
                    st.expr,
                    st.target,
                    calls,
                    mask=st.mask,
                    accum=st.accum,
                    replace=st.replace,
                    complement=st.complement,
                    structural=st.structural,
                )
            elif isinstance(st, SetElement):
                calls.append(GrBCall("set_element", st.target, {"index": st.index, "value": st.value}))
            elif isinstance(st, Clear):
                calls.append(GrBCall("clear", st.target, {}))
            elif isinstance(st, SetScalar):
                calls.append(GrBCall("set_scalar", st.name, {"value": st.value}))
            elif isinstance(st, While):
                calls.append(
                    LoweredWhile(
                        cond_name=st.cond.name,
                        pre=self.lower_statements(st.pre),
                        body=self.lower_statements(st.body),
                    )
                )
            else:
                raise TypeError(f"cannot lower statement {st!r}")
        return calls


def lower_program(program: Program) -> LoweredProgram:
    """Lower a full IR program to its GraphBLAS call tree."""
    return LoweredProgram(calls=_Lowerer().lower_statements(program), name=program.name)


def count_calls(calls, *, include_bookkeeping: bool = False) -> int:
    """Static GraphBLAS call count (loops counted once — the *program
    text* size, which is what fusion shrinks)."""
    bookkeeping = {"declare", "set_scalar"}
    total = 0
    for c in calls:
        if isinstance(c, LoweredWhile):
            total += count_calls(c.pre, include_bookkeeping=include_bookkeeping)
            total += count_calls(c.body, include_bookkeeping=include_bookkeeping)
        elif include_bookkeeping or c.fn not in bookkeeping:
            total += 1
    return total

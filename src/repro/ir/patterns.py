"""Step 1 of the paper's methodology: vertex/edge patterns → linear algebra.

§II of the paper catalogues the design patterns graph-algorithm authors
write in, and gives each a linear-algebraic equivalent.  This module is
that catalogue as executable constructors — each function takes
pattern-level arguments (vertex sets, edge predicates) and emits IR
expressions/statements from :mod:`repro.ir.nodes`:

=============================================  ==============================
Vertex/edge construct (paper §)                Linear-algebra form
=============================================  ==============================
set of vertices (II.D)                         vector of size |V|
set of edges (II.D)                            |V|×|V| matrix
op on incoming edges of all v (II.B)           op over columns of A
op on outgoing edges of all v (II.B)           op over columns of Aᵀ
op applied to every edge (II.C)                point-wise βA
edge values from matrix algebra (II.C)         result ∘ A to kill fill-in
filter vertices by predicate (II.E)            b ∘ v (Hadamard with mask)
filter edges by predicate (II.E)               B ∘ A
set union S ∪ B (III.D)                        (S + B) > 0
simultaneous relaxation (IV.C)                 Aᵀ (min.+) (t ∘ b)
bucket membership (IV.B)                       iΔ ≤ t < (i+1)Δ
=============================================  ==============================
"""

from __future__ import annotations

from ..graphblas.binaryop import LOR, MIN
from ..graphblas.semiring import MIN_PLUS
from ..graphblas.unaryop import IDENTITY, UnaryOp, range_filter
from .nodes import (
    ApplyUnary,
    Assign,
    EWiseAdd,
    EWiseMult,
    Expr,
    Ref,
    Statement,
    VxM,
)

__all__ = [
    "vertex_set",
    "edge_set",
    "filter_vertices",
    "filter_edges",
    "edge_pointwise",
    "eliminate_fillin",
    "set_union",
    "relax_edges",
    "bucket_membership",
    "min_merge",
]


def _ref(x) -> Expr:
    return x if isinstance(x, Expr) else Ref(str(x))


def vertex_set(name: str) -> Ref:
    """A set of vertices is a vector of size |V| (§II.D)."""
    return Ref(name)


def edge_set(name: str) -> Ref:
    """A set of edges is a |V|×|V| matrix (§II.D)."""
    return Ref(name)


def filter_vertices(target: str, source, predicate: UnaryOp) -> list[Statement]:
    """Vertex filtering (§II.E): keep vertices satisfying *predicate*.

    Emits the two-call idiom the paper highlights (§V.B): one ``apply``
    computing the Boolean predicate, then a masked identity ``apply`` so
    falsified entries are not stored.  ``target`` receives the filtered
    *values*; ``target + "_pred"`` holds the predicate vector.
    """
    pred_name = f"{target}_pred"
    return [
        Assign(pred_name, ApplyUnary(predicate, _ref(source))),
        Assign(target, ApplyUnary(IDENTITY, _ref(source)), mask=pred_name, replace=True),
    ]


def filter_edges(target: str, source, predicate: UnaryOp) -> list[Statement]:
    """Edge filtering (§II.E): ``A_G1 = B ∘ A_G`` with ``B = predicate(A)``."""
    pred_name = f"{target}_pred"
    return [
        Assign(pred_name, ApplyUnary(predicate, _ref(source))),
        Assign(target, ApplyUnary(IDENTITY, _ref(source)), mask=pred_name, replace=True),
    ]


def edge_pointwise(op: UnaryOp, edges) -> Expr:
    """Apply *op* to every edge simultaneously (§II.C: ``βA``)."""
    return ApplyUnary(op, _ref(edges))


def eliminate_fillin(computed, original) -> Expr:
    """§II.C: Hadamard with the original adjacency to kill spurious
    fill-in, e.g. k-truss's ``S = AᵀA ∘ A``."""
    return EWiseMult(MIN, _ref(computed), _ref(original))  # any op; mask kills fill-in


def set_union(target: str, a, b) -> Statement:
    """Set union via saturating add (§III.D): ``S = ((S + B) > 0)``.

    With Boolean vectors LOR is the saturating add, which is exactly what
    Fig. 2 line 45 uses.
    """
    return Assign(target, EWiseAdd(LOR, _ref(a), _ref(b)))


def relax_edges(tent, bucket_filtered, edges, semiring=MIN_PLUS) -> Expr:
    """Simultaneous edge relaxation (§IV.C):
    ``Req = A' (min.+) (t ∘ tBi)`` — *bucket_filtered* is the already
    masked ``t ∘ tBi`` vector."""
    return VxM(semiring, _ref(bucket_filtered), _ref(edges))


def bucket_membership(i_times_delta: str = "lo", next_boundary: str = "hi"):
    """Bucket filter factory (§IV.B): ``iΔ ≤ t < (i+1)Δ`` as a thunked
    unary op reading the current loop scalars from the environment."""

    def thunk(env) -> UnaryOp:
        return range_filter(env[i_times_delta], env[next_boundary])

    return thunk


def min_merge(target: str, other) -> Statement:
    """``t = min(t, tReq)`` (§IV.C) via eWiseAdd on the MIN operator."""
    return Assign(target, EWiseAdd(MIN, _ref(target), _ref(other)))

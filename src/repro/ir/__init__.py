"""The paper's translation methodology, executable.

Pipeline: vertex/edge patterns (:mod:`~repro.ir.patterns`) → linear
algebra IR (:mod:`~repro.ir.nodes`) → GraphBLAS call tree
(:mod:`~repro.ir.lower`) → optional fusion rewrites
(:mod:`~repro.ir.fusion`) → execution on the substrate
(:mod:`~repro.ir.interpreter`).  :mod:`~repro.ir.translate` assembles the
paper's worked example — the complete delta-stepping program.
"""

from .fusion import FusionReport, fuse_program
from .interpreter import Interpreter, run_program
from .lower import GrBCall, LoweredProgram, LoweredWhile, count_calls, lower_program
from .nodes import (
    ApplyUnary,
    Assign,
    Clear,
    Declare,
    EWiseAdd,
    EWiseMult,
    Expr,
    MxM,
    MxV,
    NvalsNonzero,
    Program,
    Reduce,
    Ref,
    SelectExpr,
    SetElement,
    SetScalar,
    Statement,
    TransposeExpr,
    VxM,
    While,
)
from .patterns import (
    bucket_membership,
    edge_pointwise,
    edge_set,
    eliminate_fillin,
    filter_edges,
    filter_vertices,
    min_merge,
    relax_edges,
    set_union,
    vertex_set,
)
from .translate import delta_stepping_program, run_delta_stepping_ir

__all__ = [
    # nodes
    "Expr",
    "Ref",
    "ApplyUnary",
    "EWiseAdd",
    "EWiseMult",
    "VxM",
    "MxV",
    "MxM",
    "Reduce",
    "TransposeExpr",
    "SelectExpr",
    "Statement",
    "Declare",
    "Assign",
    "SetElement",
    "Clear",
    "SetScalar",
    "While",
    "NvalsNonzero",
    "Program",
    # patterns
    "vertex_set",
    "edge_set",
    "filter_vertices",
    "filter_edges",
    "edge_pointwise",
    "eliminate_fillin",
    "set_union",
    "relax_edges",
    "bucket_membership",
    "min_merge",
    # pipeline
    "lower_program",
    "count_calls",
    "GrBCall",
    "LoweredProgram",
    "LoweredWhile",
    "fuse_program",
    "FusionReport",
    "Interpreter",
    "run_program",
    "delta_stepping_program",
    "run_delta_stepping_ir",
]

"""Executes lowered GraphBLAS call trees against the real substrate.

The interpreter is the runtime of the translation pipeline: it walks the
call tree from :mod:`repro.ir.lower` (possibly rewritten by
:mod:`repro.ir.fusion`), resolves operator thunks against the scalar
environment, materializes outputs on demand with inferred shapes/domains,
and dispatches to :mod:`repro.graphblas.operations`.  It also counts
executed calls — the dynamic complement to the static call counts the
fusion report quotes.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import operations as ops
from ..graphblas.binaryop import BinaryOp
from ..graphblas.descriptor import Descriptor, NULL_DESC
from ..graphblas.indexunaryop import IndexUnaryOp
from ..graphblas.matrix import Matrix
from ..graphblas.monoid import Monoid
from ..graphblas.semiring import Semiring
from ..graphblas.types import BOOL, FP64
from ..graphblas.unaryop import IDENTITY, UnaryOp
from ..graphblas.vector import Vector
from .lower import GrBCall, LoweredProgram, LoweredWhile

__all__ = ["Interpreter", "run_program"]

_OP_TYPES = (UnaryOp, BinaryOp, Monoid, Semiring, IndexUnaryOp)


class Interpreter:
    """Stateful executor for one program run.

    ``env`` maps names to Vector/Matrix objects and Python scalars.  Seed
    it with the graph's adjacency (``{"A": matrix}``) and any run
    parameters before calling :meth:`run`.
    """

    def __init__(self, env: dict | None = None):
        self.env: dict = dict(env or {})
        self.calls_executed = 0
        self.calls_by_fn: dict[str, int] = {}

    # -- helpers ------------------------------------------------------------

    def _resolve_op(self, op):
        """Literal operator, named builtin, or thunk(env) → operator."""
        if op == "IDENTITY":
            return IDENTITY
        if isinstance(op, _OP_TYPES):
            return op
        if callable(op):
            return op(self.env)
        raise TypeError(f"cannot resolve operator {op!r}")

    def _resolve_value(self, value):
        return value(self.env) if callable(value) else value

    def _obj(self, name: str):
        try:
            return self.env[name]
        except KeyError:
            raise KeyError(f"IR object {name!r} not defined") from None

    def _ensure_out(self, name: str, like, dtype) -> object:
        """Materialize the output object if the name is unbound."""
        if name in self.env:
            return self.env[name]
        if isinstance(like, Vector):
            obj = Vector(dtype, like.size)
        elif isinstance(like, Matrix):
            obj = Matrix(dtype, like.nrows, like.ncols)
        else:
            raise TypeError(f"cannot infer output shape for {name!r}")
        self.env[name] = obj
        return obj

    def _desc(self, call: GrBCall) -> Descriptor:
        if not (call.replace or call.complement or call.structural):
            return NULL_DESC
        return Descriptor(
            replace=call.replace,
            mask_complement=call.complement,
            mask_structure=call.structural,
        )

    def _mask(self, call: GrBCall):
        return self._obj(call.mask) if call.mask else None

    # -- dispatch -------------------------------------------------------------

    def run(self, program: LoweredProgram | list) -> dict:
        """Execute and return the environment."""
        calls = program.calls if isinstance(program, LoweredProgram) else program
        self._run_calls(calls)
        return self.env

    def _run_calls(self, calls) -> None:
        for call in calls:
            if isinstance(call, LoweredWhile):
                self._run_while(call)
            else:
                self._dispatch(call)

    def _run_while(self, loop: LoweredWhile) -> None:
        while True:
            self._run_calls(loop.pre)
            cond_obj = self._obj(loop.cond_name)
            if cond_obj.nvals == 0:
                return
            self._run_calls(loop.body)

    def _count(self, fn: str) -> None:
        self.calls_executed += 1
        self.calls_by_fn[fn] = self.calls_by_fn.get(fn, 0) + 1

    def _dispatch(self, call: GrBCall) -> None:
        fn = call.fn
        if fn == "declare":
            self._declare(call)
            return
        if fn == "set_scalar":
            self.env[call.out] = self._resolve_value(call.args["value"])
            return
        self._count(fn)
        if fn == "clear":
            self._obj(call.out).clear()
        elif fn == "set_element":
            self._obj(call.out).set_element(
                self._resolve_value(call.args["index"]),
                self._resolve_value(call.args["value"]),
            )
        elif fn == "apply":
            op = self._resolve_op(call.args["op"])
            a = self._obj(call.args["in0"])
            out = self._ensure_out(call.out, a, op.result_type(a.dtype))
            ops.apply(out, op, a, mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        elif fn == "select":
            op = self._resolve_op(call.args["op"])
            a = self._obj(call.args["in0"])
            out = self._ensure_out(call.out, a, a.dtype)
            ops.select(out, op, a, call.args.get("thunk"), mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        elif fn in ("ewise_add", "ewise_mult"):
            op = self._resolve_op(call.args["op"])
            a = self._obj(call.args["in0"])
            b = self._obj(call.args["in1"])
            binop = op.binaryop if isinstance(op, Monoid) else op
            out = self._ensure_out(call.out, a, binop.result_type(a.dtype, b.dtype))
            impl = ops.ewise_add if fn == "ewise_add" else ops.ewise_mult
            impl(out, op, a, b, mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        elif fn == "vxm":
            sr = self._resolve_op(call.args["semiring"])
            v = self._obj(call.args["in0"])
            m = self._obj(call.args["in1"])
            out = self.env.get(call.out)
            if out is None:
                out = Vector(sr.result_type(v.dtype, m.dtype), m.ncols)
                self.env[call.out] = out
            ops.vxm(out, sr, v, m, mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        elif fn == "mxv":
            sr = self._resolve_op(call.args["semiring"])
            m = self._obj(call.args["in0"])
            v = self._obj(call.args["in1"])
            out = self.env.get(call.out)
            if out is None:
                out = Vector(sr.result_type(m.dtype, v.dtype), m.nrows)
                self.env[call.out] = out
            ops.mxv(out, sr, m, v, mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        elif fn == "mxm":
            sr = self._resolve_op(call.args["semiring"])
            a = self._obj(call.args["in0"])
            b = self._obj(call.args["in1"])
            out = self.env.get(call.out)
            if out is None:
                out = Matrix(sr.result_type(a.dtype, b.dtype), a.nrows, b.ncols)
                self.env[call.out] = out
            ops.mxm(out, sr, a, b, mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        elif fn == "reduce":
            monoid = self._resolve_op(call.args["monoid"])
            a = self._obj(call.args["in0"])
            if isinstance(a, Vector):
                self.env[call.out] = ops.reduce_vector_to_scalar(monoid, a)
            else:
                self.env[call.out] = ops.reduce_matrix_to_scalar(monoid, a)
        elif fn == "transpose":
            a = self._obj(call.args["in0"])
            out = self.env.get(call.out)
            if out is None:
                out = Matrix(a.dtype, a.ncols, a.nrows)
                self.env[call.out] = out
            ops.transpose(out, a, mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        elif fn == "fused_filter":
            # fusion.py product: predicate+masked-identity in one select
            op = self._resolve_op(call.args["op"])
            a = self._obj(call.args["in0"])
            pred = IndexUnaryOp.define(lambda v, i, j, t, _u=op: _u(v), name=f"sel[{op.name}]")
            out = self._ensure_out(call.out, a, a.dtype)
            ops.select(out, pred, a, None, mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        elif fn == "fused_masked_vxm":
            # fusion.py product: (t ∘ b) feeding vxm without a temporary
            sr = self._resolve_op(call.args["semiring"])
            v = self._obj(call.args["in0"])
            mask_vec = self._obj(call.args["in_mask"])
            m = self._obj(call.args["in1"])
            masked = Vector(v.dtype, v.size)
            ops.apply(masked, IDENTITY, v, mask=mask_vec, desc=Descriptor(replace=True))
            out = self.env.get(call.out)
            if out is None:
                out = Vector(sr.result_type(v.dtype, m.dtype), m.ncols)
                self.env[call.out] = out
            ops.vxm(out, sr, masked, m, mask=self._mask(call), accum=call.accum, desc=self._desc(call))
        else:
            raise ValueError(f"unknown call {fn!r}")

    def _declare(self, call: GrBCall) -> None:
        args = call.args
        dtype = args["dtype"] or FP64
        if args["kind"] == "vector":
            if args["size_of"] is not None:
                ref = self._obj(args["size_of"])
                size = ref.size if isinstance(ref, Vector) else ref.nrows
            else:
                size = args["size"]
            self.env[call.out] = Vector(dtype, size)
        else:
            if args["size_of"] is not None:
                ref = self._obj(args["size_of"])
                shape = (ref.nrows, ref.ncols)
            else:
                shape = args["shape"]
            self.env[call.out] = Matrix(dtype, *shape)


def run_program(program, env: dict | None = None) -> Interpreter:
    """Convenience: build an :class:`Interpreter`, run, return it."""
    interp = Interpreter(env)
    interp.run(program)
    return interp

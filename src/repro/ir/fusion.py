"""Call-level fusion pass (§VI.B, as a program transformation).

The paper identifies two fusion opportunities in the unfused call
sequence and reports a 3.7× average speedup from applying them by hand in
C.  This pass applies the same rewrites mechanically on the lowered call
tree:

1. **Filter fusion** — the two-call filter idiom

   .. code-block:: none

       apply(P, pred, X)            # predicate materialized
       apply(Y<P, REPLACE>, IDENTITY, X)

   becomes one ``fused_filter(Y, pred, X)`` (a ``GrB_select``), provided
   the predicate temporary ``P`` is dead afterwards.

2. **Hadamard + vxm fusion** — the relaxation input

   .. code-block:: none

       apply(M<B, REPLACE>, IDENTITY, T)    # t ∘ tBi materialized
       vxm(R, semiring, M, A)

   becomes ``fused_masked_vxm(R, semiring, T, B, A)``, eliding the
   masked temporary ``M``.

Liveness is loop-aware: eliding a temporary is only legal if no later
read observes it — including reads at *earlier* textual positions that
re-execute on the next iteration of an enclosing loop.  A later read is
harmless when a *clobbering* write (unmasked, or masked with REPLACE and
no accumulator — i.e. one whose result is independent of the old value)
reaches it first.  The equivalence tests run both pipelines on real
graphs and compare distances, guarding the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lower import GrBCall, LoweredProgram, LoweredWhile, count_calls

__all__ = ["fuse_program", "FusionReport"]


@dataclass
class FusionReport:
    """What the pass did — quoted by the fusion example and EXPERIMENTS.md."""

    calls_before: int
    calls_after: int
    filters_fused: int
    masked_vxm_fused: int

    @property
    def calls_removed(self) -> int:
        return self.calls_before - self.calls_after


def _is_identity(op) -> bool:
    """Accept both the literal IDENTITY operator and its lowered name."""
    if op == "IDENTITY":
        return True
    return getattr(op, "name", None) == "IDENTITY"


def _clobbers(call: GrBCall, name: str) -> bool:
    """True when *call* overwrites *name* with no dependence on its old
    value (unmasked, or masked REPLACE without accumulate)."""
    if call.out != name or call.fn in ("declare", "set_scalar"):
        return False
    if call.fn == "clear":
        return True
    if call.accum is not None:
        return False
    return call.mask is None or call.replace


def _first_event(calls, name: str) -> str | None:
    """First observation of *name* in execution order of a call sequence.

    Returns ``"read"``, ``"clobber"``, or ``None`` (no event).  Loops are
    walked as pre → cond-read → body (one unrolling is enough: if the
    first event in an iteration is a clobber, every iteration's reads see
    the new value; if it is a read, the elision is unsafe regardless).
    """
    for c in calls:
        if isinstance(c, LoweredWhile):
            ev = _first_event(c.pre, name)
            if ev:
                return ev
            if c.cond_name == name:
                return "read"
            ev = _first_event(c.body, name)
            if ev:
                return ev
        else:
            if name in c.reads():
                return "read"
            if _clobbers(c, name):
                return "clobber"
    return None


class _Fuser:
    def __init__(self):
        self.filters = 0
        self.masked_vxm = 0

    def fuse_calls(self, calls: list, loop_scopes: tuple[list, ...]) -> list:
        """Rewrite one call sequence.

        *loop_scopes* holds the full (pre, cond, body) call lists of every
        enclosing loop, innermost first — the sequences that re-execute
        after this one finishes an iteration.
        """
        out: list = []
        k = 0
        while k < len(calls):
            cur = calls[k]
            nxt = calls[k + 1] if k + 1 < len(calls) else None
            if isinstance(cur, LoweredWhile):
                inner_scope = (cur,)
                out.append(
                    LoweredWhile(
                        cond_name=cur.cond_name,
                        pre=self.fuse_calls(cur.pre, loop_scopes + inner_scope),
                        body=self.fuse_calls(cur.body, loop_scopes + inner_scope),
                    )
                )
                k += 1
                continue
            rest = calls[k + 2 :]
            if isinstance(nxt, GrBCall) and self._dead_after(cur.out, rest, loop_scopes):
                fused = self._try_fuse_pair(cur, nxt)
                if fused is not None:
                    out.append(fused)
                    k += 2
                    continue
            out.append(cur)
            k += 1
        return out

    def _dead_after(self, name: str, rest: list, loop_scopes: tuple) -> bool:
        """Is *name* dead once the candidate pair completes?"""
        ev = _first_event(rest, name)
        if ev == "read":
            return False
        if ev == "clobber":
            return True
        # fell off the end of this sequence: enclosing loops re-execute
        for scope in loop_scopes:
            ev = _first_event([scope], name)
            if ev == "read":
                return False
            if ev == "clobber":
                return True
        return True

    def _try_fuse_pair(self, cur: GrBCall, nxt: GrBCall) -> GrBCall | None:
        # Pattern 1: predicate apply + masked identity apply → select
        if (
            cur.fn == "apply"
            and nxt.fn == "apply"
            and _is_identity(nxt.args.get("op"))
            and nxt.mask == cur.out
            and not nxt.complement
            and not nxt.structural
            and nxt.accum is None
            and nxt.replace  # full overwrite: select-without-mask is equivalent
            and nxt.args.get("in0") == cur.args.get("in0")
            and cur.mask is None
            and cur.accum is None
        ):
            self.filters += 1
            return GrBCall(
                "fused_filter",
                nxt.out,
                {"op": cur.args["op"], "in0": cur.args["in0"]},
                replace=nxt.replace,
                fused_from=("apply", "apply"),
            )
        # Pattern 2: masked identity apply + vxm → fused masked vxm
        if (
            cur.fn == "apply"
            and _is_identity(cur.args.get("op"))
            and cur.mask is not None
            and not cur.complement
            and cur.accum is None
            and nxt.fn == "vxm"
            and nxt.args.get("in0") == cur.out
        ):
            self.masked_vxm += 1
            return GrBCall(
                "fused_masked_vxm",
                nxt.out,
                {
                    "semiring": nxt.args["semiring"],
                    "in0": cur.args["in0"],
                    "in_mask": cur.mask,
                    "in1": nxt.args["in1"],
                },
                mask=nxt.mask,
                accum=nxt.accum,
                replace=nxt.replace,
                fused_from=("apply", "vxm"),
            )
        return None


def fuse_program(program: LoweredProgram) -> tuple[LoweredProgram, FusionReport]:
    """Apply both fusion rewrites; returns the new program and a report."""
    before = count_calls(program.calls)
    fuser = _Fuser()
    fused_calls = fuser.fuse_calls(program.calls, loop_scopes=())
    fused = LoweredProgram(calls=fused_calls, name=f"{program.name}-fused")
    report = FusionReport(
        calls_before=before,
        calls_after=count_calls(fused_calls),
        filters_fused=fuser.filters,
        masked_vxm_fused=fuser.masked_vxm,
    )
    return fused, report

"""The worked translation: delta-stepping as an IR program.

This module is the paper's Fig. 1 (left column) *as data*: the complete
linear-algebraic delta-stepping algorithm built from the pattern library,
lowerable to the unfused GraphBLAS call sequence of Fig. 2, optionally
fused (§VI.B), and executable through the interpreter.  End-to-end::

    program = delta_stepping_program()
    lowered = lower_program(program)                  # Fig. 2's call list
    fused, report = fuse_program(lowered)             # §VI.B rewrites
    result = run_delta_stepping_ir(graph, src, 1.0)   # execute either

The equivalence tests assert both pipelines produce Dijkstra's distances
and that fusion strictly reduces the static call count.
"""

from __future__ import annotations

import numpy as np

from ..graphblas.binaryop import LOR, LT, MIN
from ..graphblas.semiring import MIN_PLUS
from ..graphblas.types import BOOL, FP64
from ..graphblas.unaryop import IDENTITY, range_filter, threshold_geq, threshold_gt, threshold_leq
from ..graphs.graph import Graph
from ..sssp.result import INF, SSSPResult
from .fusion import fuse_program
from .interpreter import Interpreter
from .lower import LoweredProgram, lower_program
from .nodes import (
    ApplyUnary,
    Assign,
    Clear,
    Declare,
    EWiseAdd,
    NvalsNonzero,
    Program,
    Ref,
    SetElement,
    SetScalar,
    VxM,
    While,
)
from .patterns import min_merge, set_union

__all__ = ["delta_stepping_program", "run_delta_stepping_ir", "lower_program", "fuse_program"]


def delta_stepping_program(name: str = "delta-stepping") -> Program:
    """Build the full linear-algebraic delta-stepping IR program.

    Expects the execution environment to provide ``A`` (the adjacency
    matrix), ``delta`` (Δ), and ``src`` (source vertex id).  Produces
    distances in vector ``t`` (unstored ⇒ unreachable).
    """
    # thunked operators: their bounds read loop scalars at run time
    leq_delta = lambda env: threshold_leq(env["delta"])  # noqa: E731
    gt_delta = lambda env: threshold_gt(env["delta"])  # noqa: E731
    geq_floor = lambda env: threshold_geq(env["i"] * env["delta"])  # noqa: E731
    in_bucket = lambda env: range_filter(env["i"] * env["delta"], (env["i"] + 1) * env["delta"])  # noqa: E731

    statements = (
        # vectors and matrices (Fig. 2's declarations)
        Declare("t", "vector", FP64, size_of="A"),
        Declare("tB", "vector", BOOL, size_of="A"),
        Declare("tmasked", "vector", FP64, size_of="A"),
        Declare("tReq", "vector", FP64, size_of="A"),
        Declare("tless", "vector", BOOL, size_of="A"),
        Declare("s", "vector", BOOL, size_of="A"),
        Declare("tgeq", "vector", BOOL, size_of="A"),
        Declare("tcomp", "vector", FP64, size_of="A"),
        Declare("Ab", "matrix", BOOL, size_of="A"),
        Declare("Al", "matrix", FP64, size_of="A"),
        Declare("Ah", "matrix", FP64, size_of="A"),
        # t = ∞ (implicit: unstored); t[src] = 0
        SetElement("t", lambda env: env["src"], 0.0),
        # A_L = A ∘ (0 < A ≤ Δ): the two-call filter idiom (§V.B)
        Assign("Ab", ApplyUnary(leq_delta, Ref("A"))),
        Assign("Al", ApplyUnary(IDENTITY, Ref("A")), mask="Ab", replace=True),
        # A_H = A ∘ (A > Δ)
        Assign("Ab", ApplyUnary(gt_delta, Ref("A"))),
        Assign("Ah", ApplyUnary(IDENTITY, Ref("A")), mask="Ab", replace=True),
        # i = 0
        SetScalar("i", 0),
        # while (t ≥ iΔ) ≠ 0
        While(
            cond=NvalsNonzero("tcomp"),
            pre=(
                Assign("tgeq", ApplyUnary(geq_floor, Ref("t")), replace=True),
                Assign("tcomp", ApplyUnary(IDENTITY, Ref("t")), mask="tgeq", replace=True),
            ),
            body=(
                # s = 0
                Clear("s"),
                # tBi = (iΔ ≤ t < (i+1)Δ);  t ∘ tBi
                Assign("tB", ApplyUnary(in_bucket, Ref("t")), replace=True),
                Assign("tmasked", ApplyUnary(IDENTITY, Ref("t")), mask="tB", replace=True),
                # while tBi ≠ 0
                While(
                    cond=NvalsNonzero("tmasked"),
                    pre=(),
                    body=(
                        # tReq = A_L' (min.+) (t ∘ tBi)
                        Assign("tReq", VxM(MIN_PLUS, Ref("tmasked"), Ref("Al")), replace=True),
                        # S = (S + tBi) > 0
                        set_union("s", "s", "tB"),
                        # tBi = (iΔ ≤ tReq < (i+1)Δ) ∘ (tReq < t)
                        Assign("tless", EWiseAdd(LT, Ref("tReq"), Ref("t")), mask="tReq", replace=True),
                        Assign("tB", ApplyUnary(in_bucket, Ref("tReq")), mask="tless", replace=True),
                        # t = min(t, tReq)
                        min_merge("t", "tReq"),
                        Assign("tmasked", ApplyUnary(IDENTITY, Ref("t")), mask="tB", replace=True),
                    ),
                ),
                # heavy phase: tReq = A_H' (min.+) (t ∘ S); t = min(t, tReq)
                Assign("tmasked", ApplyUnary(IDENTITY, Ref("t")), mask="s", replace=True),
                Assign("tReq", VxM(MIN_PLUS, Ref("tmasked"), Ref("Ah")), replace=True),
                min_merge("t", "tReq"),
                # i = i + 1
                SetScalar("i", lambda env: env["i"] + 1),
            ),
        ),
    )
    return Program(statements=statements, name=name)


def run_delta_stepping_ir(
    graph: Graph,
    source: int,
    delta: float = 1.0,
    fuse: bool = False,
) -> SSSPResult:
    """Execute the translated program on *graph*; optionally fused."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    lowered = lower_program(delta_stepping_program())
    report = None
    if fuse:
        lowered, report = fuse_program(lowered)
    interp = Interpreter({"A": graph.to_matrix(), "delta": float(delta), "src": int(source)})
    interp.run(lowered)
    t = interp.env["t"]
    distances = np.full(n, INF, dtype=np.float64)
    idx, vals = t.to_coo()
    distances[idx] = vals
    result = SSSPResult(
        distances=distances,
        source=source,
        delta=delta,
        method="ir-fused" if fuse else "ir-unfused",
    )
    result.extra["calls_executed"] = interp.calls_executed
    result.extra["calls_by_fn"] = dict(interp.calls_by_fn)
    if report is not None:
        result.extra["fusion_report"] = report
    return result

"""IR node definitions for the vertex/edge → linear algebra translation.

The paper's methodology is two steps: (1) rewrite vertex- and edge-centric
constructs as linear-algebra expressions; (2) map those expressions onto
GraphBLAS calls.  This module defines the intermediate form between the
two — a small expression/statement language over named sparse objects:

Expressions (evaluate to a Vector/Matrix/Scalar):
    ``Ref``, ``ApplyUnary``, ``EWiseAdd``, ``EWiseMult``, ``VxM``, ``MxV``,
    ``MxM``, ``Reduce``, ``TransposeExpr``, ``SelectExpr``

Statements (mutate the environment):
    ``Declare``, ``Assign``, ``SetElement``, ``Clear``, ``SetScalar``,
    ``While``

Operator references inside nodes may be literal operator objects or
*thunks* — callables receiving the scalar environment — so loop-dependent
operators (the paper's ``delta_irange`` with its ``i*delta`` bounds) stay
first-class without re-building the program each iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "Expr",
    "Ref",
    "ApplyUnary",
    "EWiseAdd",
    "EWiseMult",
    "VxM",
    "MxV",
    "MxM",
    "Reduce",
    "TransposeExpr",
    "SelectExpr",
    "Statement",
    "Declare",
    "Assign",
    "SetElement",
    "Clear",
    "SetScalar",
    "While",
    "NvalsNonzero",
    "Program",
]


class Expr:
    """Base class of IR expressions."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Ref(Expr):
    """Reference to a named object in the environment."""

    name: str

    def __repr__(self) -> str:
        return self.name


def _as_expr(x) -> Expr:
    return x if isinstance(x, Expr) else Ref(str(x))


@dataclass(frozen=True)
class ApplyUnary(Expr):
    """``op(a)`` element-wise over stored values (``GrB_apply``)."""

    op: object  # UnaryOp or thunk(env) -> UnaryOp
    a: Expr

    def children(self):
        return (self.a,)


@dataclass(frozen=True)
class EWiseAdd(Expr):
    """Union element-wise combine."""

    op: object
    a: Expr
    b: Expr

    def children(self):
        return (self.a, self.b)


@dataclass(frozen=True)
class EWiseMult(Expr):
    """Intersection element-wise combine (Hadamard)."""

    op: object
    a: Expr
    b: Expr

    def children(self):
        return (self.a, self.b)


@dataclass(frozen=True)
class VxM(Expr):
    """``v' ⊕.⊗ M``."""

    semiring: object
    v: Expr
    m: Expr

    def children(self):
        return (self.v, self.m)


@dataclass(frozen=True)
class MxV(Expr):
    """``M ⊕.⊗ v``."""

    semiring: object
    m: Expr
    v: Expr

    def children(self):
        return (self.m, self.v)


@dataclass(frozen=True)
class MxM(Expr):
    """``A ⊕.⊗ B``."""

    semiring: object
    a: Expr
    b: Expr

    def children(self):
        return (self.a, self.b)


@dataclass(frozen=True)
class Reduce(Expr):
    """Monoid reduction to a scalar."""

    monoid: object
    a: Expr

    def children(self):
        return (self.a,)


@dataclass(frozen=True)
class TransposeExpr(Expr):
    """Explicit transpose."""

    a: Expr

    def children(self):
        return (self.a,)


@dataclass(frozen=True)
class SelectExpr(Expr):
    """Index-unary filtering (``GrB_select``)."""

    op: object
    a: Expr
    thunk: object = None

    def children(self):
        return (self.a,)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class of IR statements."""


@dataclass(frozen=True)
class Declare(Statement):
    """Create an empty named Vector/Matrix: ``Declare("t", "vector", FP64,
    size_of="A")`` — dimensions borrowed from an existing object or given
    literally via ``size``/``shape``."""

    name: str
    kind: str  # "vector" | "matrix"
    dtype: object
    size_of: str | None = None
    size: int | None = None
    shape: tuple[int, int] | None = None


@dataclass(frozen=True)
class Assign(Statement):
    """``target<mask> (=|accum=) expr`` with optional REPLACE semantics.

    ``mask`` is a name (or None); ``complement``/``structural`` qualify it.
    """

    target: str
    expr: Expr
    mask: str | None = None
    accum: object = None
    replace: bool = False
    complement: bool = False
    structural: bool = False


@dataclass(frozen=True)
class SetElement(Statement):
    """``target[index] = value`` (value/index may be thunks of env)."""

    target: str
    index: object
    value: object


@dataclass(frozen=True)
class Clear(Statement):
    """Drop all entries of a named object."""

    target: str


@dataclass(frozen=True)
class SetScalar(Statement):
    """Bind a scalar environment entry; ``value`` may be a thunk of env."""

    name: str
    value: object


@dataclass(frozen=True)
class NvalsNonzero:
    """Loop condition: the named object has stored entries."""

    name: str


@dataclass(frozen=True)
class While(Statement):
    """``pre; while cond: body; pre`` — *pre* computes the condition's
    inputs (the paper's outer-loop filter+nvals idiom) and re-runs after
    each body pass."""

    cond: NvalsNonzero
    pre: tuple[Statement, ...]
    body: tuple[Statement, ...]


@dataclass(frozen=True)
class Program:
    """A straight-line sequence of statements (possibly holding loops)."""

    statements: tuple[Statement, ...]
    name: str = "program"

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

"""Repo-specific AST lint rules (the ``repro lint`` driver).

Rules follow the repo's registry idiom (``DELTA_STRATEGIES``,
``STEPPERS``): one table (:data:`RULES`), one driver (:func:`run_lint`)
whose ``--select`` validation enumerates every member.  Each rule is a
pure function over parsed source — no imports of the linted modules —
except ``registry-spec``, which deliberately *imports* the registries to
cross-check them against the spec mini-language, the CLI help, the
auto-tuner portfolio, and the test suite.

The rule catalog:

``hot-loop-alloc``
    No ``np.zeros/empty/full/arange/concatenate``, no list/dict/set
    comprehensions, and no ``+``-concatenation of list/str values inside
    a function or block marked ``# repro: hot``.  Markers are trailing
    or preceding comments on the statement they cover; a line-level
    ``# repro: alloc-ok`` comment suppresses (for documented fallback
    paths), and :class:`~repro.kernels.workspace.RelaxWorkspace` methods
    plus module-level ``_EMPTY_*`` constants are whitelisted — the arena
    is *where* allocations are supposed to live.  The known hot files
    (``kernels/``, ``sssp/fused.py``, ``shard/stepper.py``,
    ``service/batch.py``) must each carry at least one marker, so the
    contract cannot rot away by deleting comments.

``recorder-guard``
    Every ``.span(`` / ``.observe(`` / ``.inc(`` / ``.instant(`` /
    ``.set_gauge(`` call on an optional recorder (a receiver named
    ``recorder``/``rec``/``metrics`` or a ``_``-prefixed form, including
    ``self.``-attributes) must sit behind a falsy guard: an enclosing
    ``if recorder:`` / ``if rec is not None:`` branch, a conditional
    expression, an ``and``-chain, or an earlier early-return
    (``if not recorder: return ...``).  This is what keeps the disabled
    telemetry path at one branch per choke point (the <3% CI gate).
    :mod:`repro.obs` itself is exempt — it *implements* the surface.

``registry-spec``
    Imports the live registries and cross-checks: every
    ``STEPPERS``/``KERNELS``/``PARTITIONERS`` key survives the stepper
    spec syntax (:func:`repro.stepping.base.parse_stepper_spec`) as a
    bare string; every auto-tuner default candidate and every
    spec-shaped string in the CLI help resolves against the registries
    (including its ``kernel=``/``partitioner=``/``transport=`` values);
    and every registry key is referenced by at least one test file.

``export-hygiene``
    ``__all__`` entries must be bound in their module, must not repeat,
    and every public name a package ``__init__`` imports from its own
    submodules (``from .mod import X``) must be listed in ``__all__``.

``no-deprecated-import``
    No imports of ``repro.sssp.instrument`` (a deprecated alias of
    :mod:`repro.obs.stage`) outside the alias module itself.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Finding", "RULES", "run_lint", "format_findings", "repo_paths"]


@dataclass(frozen=True)
class Finding:
    """One rule violation: where, which rule, and what went wrong."""

    rule: str
    path: str
    line: int
    message: str

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


#: rule name -> one-line description; the discovery surface shared by
#: ``repro lint --select`` and the README rule catalog.
RULES = {
    "hot-loop-alloc": "no allocation expressions inside `# repro: hot` blocks",
    "recorder-guard": "optional-recorder telemetry calls must sit behind a falsy guard",
    "registry-spec": "registries, stepper specs, CLI help, tuner candidates, and tests agree",
    "export-hygiene": "__all__ matches the bound / re-exported public names",
    "no-deprecated-import": "no imports of the deprecated repro.sssp.instrument alias",
}


def repo_paths() -> tuple[Path, Path, Path]:
    """``(repo root, src/repro, tests)`` resolved from this file's location."""
    pkg = Path(__file__).resolve().parent.parent  # src/repro
    root = pkg.parent.parent
    return root, pkg, root / "tests"


def _parent_map(tree: ast.AST) -> dict:
    parents: dict = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _comment_lines(source: str) -> tuple[set, set]:
    """``(hot marker lines, alloc-ok suppression lines)`` from comments."""
    hot, allow = set(), set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = re.match(r"#\s*repro:\s*(hot|alloc-ok)\b", tok.string)
            if m:
                (hot if m.group(1) == "hot" else allow).add(tok.start[0])
    except tokenize.TokenError:  # pragma: no cover - unparsable source
        pass
    return hot, allow


# -- hot-loop-alloc ----------------------------------------------------------

#: the numpy allocators banned in hot blocks (exactly the fresh-buffer
#: constructors; ``np.repeat``'s small expansion temporaries are the
#: documented remaining allocator traffic and stay legal)
_HOT_BANNED_NP = {"zeros", "empty", "full", "arange", "concatenate"}

#: files whose hot loops carry the zero-allocation contract; each must
#: contain at least one ``# repro: hot`` marker (directories: at least
#: one marker across the directory's modules)
HOT_FILES = ("kernels", "sssp/fused.py", "shard/stepper.py", "service/batch.py")


def _is_listy(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    return isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "list"


def _hot_targets(tree: ast.Module, hot_lines: set) -> list:
    """The statements each ``# repro: hot`` marker covers (same line, or
    the next statement below the marker)."""
    stmts = [n for n in ast.walk(tree) if isinstance(n, ast.stmt)]
    targets = []
    for line in sorted(hot_lines):
        covered = [s for s in stmts if s.lineno >= line]
        if covered:
            targets.append(min(covered, key=lambda s: s.lineno))
    return targets


def _check_hot_loop_alloc(path: Path, rel: str, tree: ast.Module, source: str,
                          findings: list) -> int:
    hot_lines, allow_lines = _comment_lines(source)
    for target in _hot_targets(tree, hot_lines):
        for node in ast.walk(target):
            line = getattr(node, "lineno", None)
            # a `# repro: alloc-ok` suppresses on its own line (trailing
            # comment) or on the line it directly precedes
            if line is None or line in allow_lines or (line - 1) in allow_lines:
                continue
            bad = None
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ("np", "numpy")
                    and node.func.attr in _HOT_BANNED_NP):
                bad = f"np.{node.func.attr}() allocates in a hot block"
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
                kind = type(node).__name__.replace("Comp", "").lower()
                bad = f"{kind} comprehension allocates in a hot block"
            elif (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)
                    and (_is_listy(node.left) or _is_listy(node.right))):
                bad = "`+`-concatenation allocates in a hot block"
            if bad is not None:
                findings.append(Finding(
                    "hot-loop-alloc", rel, line,
                    f"{bad} (hoist to a workspace / `_EMPTY_*` constant, "
                    "or annotate `# repro: alloc-ok` with a reason)",
                ))
    return len(hot_lines)


def _in_workspace_class(node: ast.AST, parents: dict) -> bool:
    while node in parents:
        node = parents[node]
        if isinstance(node, ast.ClassDef) and node.name == "RelaxWorkspace":
            return True
    return False


# -- recorder-guard ----------------------------------------------------------

_RECORDER_METHODS = {"span", "instant", "inc", "observe", "set_gauge"}
_RECORDER_NAME = re.compile(r"^_?(recorder|rec|metrics)$")


def _receiver_name(node: ast.expr) -> str | None:
    """The short name of a recorder-like receiver, or ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.attr  # self.recorder / self._metrics
    return None


def _same_expr(a: ast.expr, b: ast.expr) -> bool:
    return ast.dump(a) == ast.dump(b)


def _truthy_guards(test: ast.expr, receiver: ast.expr) -> bool:
    """True when *test* being truthy implies *receiver* is truthy."""
    if _same_expr(test, receiver):
        return True
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and _same_expr(test.left, receiver)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_truthy_guards(v, receiver) for v in test.values)
    return False


def _falsy_guards(test: ast.expr, receiver: ast.expr) -> bool:
    """True when *test* being FALSY implies *receiver* is truthy (so the
    else branch / the code after `if test: return` is safe)."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _same_expr(test.operand, receiver)
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and _same_expr(test.left, receiver)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return True
    # `a is None or b is None` falsy implies every operand falsy, so one
    # matching operand guards the receiver
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        return any(_falsy_guards(v, receiver) for v in test.values)
    return False


def _terminates(body: list) -> bool:
    return bool(body) and isinstance(body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _is_guarded(call: ast.Call, receiver: ast.expr, parents: dict) -> bool:
    node: ast.AST = call
    while node in parents:
        parent = parents[node]
        if isinstance(parent, ast.If):
            if node in parent.body and _truthy_guards(parent.test, receiver):
                return True
            if node in parent.orelse and _falsy_guards(parent.test, receiver):
                return True
        elif isinstance(parent, ast.IfExp):
            if node is parent.body and _truthy_guards(parent.test, receiver):
                return True
            if node is parent.orelse and _falsy_guards(parent.test, receiver):
                return True
        elif isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.And):
            idx = parent.values.index(node) if node in parent.values else 0
            if any(_truthy_guards(v, receiver) for v in parent.values[:idx]):
                return True
        # an earlier `if not recorder: return ...` in any enclosing
        # statement sequence guards everything after it
        for field in ("body", "orelse", "finalbody"):
            seq = getattr(parent, field, None)
            if isinstance(seq, list) and node in seq:
                for prev in seq[:seq.index(node)]:
                    if (isinstance(prev, ast.If) and not prev.orelse
                            and _falsy_guards(prev.test, receiver)
                            and _terminates(prev.body)):
                        return True
        node = parent
    return False


def _check_recorder_guard(rel: str, tree: ast.Module, parents: dict,
                          findings: list) -> None:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RECORDER_METHODS):
            continue
        receiver = node.func.value
        name = _receiver_name(receiver)
        if name is None or not _RECORDER_NAME.match(name):
            continue
        if not _is_guarded(node, receiver, parents):
            findings.append(Finding(
                "recorder-guard", rel, node.lineno,
                f"unguarded `{name}.{node.func.attr}(...)` — wrap in "
                f"`if {name}:` (or an early return) so the disabled "
                "telemetry path stays one falsy check",
            ))


# -- export-hygiene ----------------------------------------------------------

def _module_bindings(tree: ast.Module) -> set:
    bound = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                for n in ast.walk(t):
                    if isinstance(n, ast.Name):
                        bound.add(n.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
    return bound


def _declared_all(tree: ast.Module) -> tuple[list, int] | None:
    for node in tree.body:
        targets = node.targets if isinstance(node, ast.Assign) else []
        if any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            if isinstance(node.value, (ast.List, ast.Tuple)):
                names = [e.value for e in node.value.elts
                         if isinstance(e, ast.Constant) and isinstance(e.value, str)]
                return names, node.lineno
    return None


def _check_export_hygiene(path: Path, rel: str, tree: ast.Module,
                          findings: list) -> None:
    declared = _declared_all(tree)
    if declared is None:
        if path.name == "__init__.py":
            findings.append(Finding(
                "export-hygiene", rel, 1,
                "package __init__ declares no __all__",
            ))
        return
    names, line = declared
    bound = _module_bindings(tree)
    # PEP 562: a module-level __getattr__ can serve any export lazily
    # (repro/__init__ loads subpackages this way), so binding can't be
    # checked statically there
    lazy = any(isinstance(n, ast.FunctionDef) and n.name == "__getattr__"
               for n in tree.body)
    seen = set()
    for name in names:
        if name in seen:
            findings.append(Finding(
                "export-hygiene", rel, line, f"__all__ lists {name!r} twice"))
        seen.add(name)
        if name not in bound and not lazy:
            findings.append(Finding(
                "export-hygiene", rel, line,
                f"__all__ exports {name!r} but the module never binds it"))
    if path.name != "__init__.py":
        return
    for node in tree.body:
        if not (isinstance(node, ast.ImportFrom) and node.level == 1 and node.module):
            continue
        for alias in node.names:
            exported = alias.asname or alias.name
            if exported.startswith("_") or alias.name == "*":
                continue
            if exported not in seen:
                findings.append(Finding(
                    "export-hygiene", rel, node.lineno,
                    f"{exported!r} is re-exported from .{node.module} "
                    "but missing from __all__",
                ))


# -- no-deprecated-import ----------------------------------------------------

def _check_deprecated_import(path: Path, rel: str, tree: ast.Module,
                             findings: list) -> None:
    if path.name == "instrument.py" and path.parent.name == "sssp":
        return  # the alias module itself
    for node in ast.walk(tree):
        hit = None
        if isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod.endswith("sssp.instrument"):
                hit = mod
            elif mod == "instrument" and node.level >= 1 and path.parent.name == "sssp":
                hit = ".instrument"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.endswith("sssp.instrument"):
                    hit = alias.name
        if hit is not None:
            findings.append(Finding(
                "no-deprecated-import", rel, node.lineno,
                f"import of deprecated {hit!r} — use repro.obs.stage "
                "(StageTimer / NO_TIMER moved there)",
            ))


# -- registry-spec (imports the live registries) -----------------------------

_SPEC_IN_TEXT = re.compile(r"['\"]([A-Za-z0-9_\-]+\([^'\"]*\))['\"]")


def _spec_param_findings(rel: str, line: int, spec: str, params: dict,
                         kernels: dict, partitioners: dict, transports: dict,
                         findings: list) -> None:
    checks = (
        ("kernel", set(kernels) | {"auto"}),
        ("partitioner", set(partitioners)),
    )
    for key, known in checks:
        val = params.get(key)
        if val is not None and val not in known:
            findings.append(Finding(
                "registry-spec", rel, line,
                f"spec {spec!r} names unregistered {key} {val!r} "
                f"(known: {', '.join(sorted(known))})",
            ))
    tr = params.get("transport")
    if tr is not None and str(tr).partition(":")[0] not in transports:
        findings.append(Finding(
            "registry-spec", rel, line,
            f"spec {spec!r} names unregistered transport {tr!r} "
            f"(known: {', '.join(transports)})",
        ))


def _check_registry_spec(root: Path, pkg: Path, tests: Path, findings: list) -> None:
    from ..kernels import KERNELS
    from ..shard.exchange import TRANSPORTS
    from ..shard.partition import PARTITIONERS
    from ..stepping import DEFAULT_CANDIDATES, STEPPERS
    from ..stepping.base import parse_stepper_spec, resolve_stepper_spec

    def rel(p: Path) -> str:
        try:
            return str(p.relative_to(root))
        except ValueError:  # pragma: no cover - out-of-tree invocation
            return str(p)

    # 1. every registry key must survive the spec mini-language
    reg_file = {"stepper": pkg / "stepping" / "base.py",
                "kernel": pkg / "kernels" / "minby.py",
                "partitioner": pkg / "shard" / "partition.py"}
    for label, table in (("stepper", STEPPERS), ("kernel", KERNELS),
                         ("partitioner", PARTITIONERS)):
        for key in table:
            try:
                if label == "stepper":
                    name, params = parse_stepper_spec(key)
                    ok = name == key and not params
                else:
                    _, params = parse_stepper_spec(f"delta({label}={key})")
                    ok = params.get(label) == key
            except ValueError:
                ok = False
            if not ok:
                findings.append(Finding(
                    "registry-spec", rel(reg_file[label]), 1,
                    f"{label} registry key {key!r} is not expressible in "
                    "stepper-spec syntax (parse_stepper_spec would mangle it)",
                ))

    # 2. the auto-tuner's default portfolio resolves, knob values included
    tune_rel = rel(pkg / "stepping" / "autotune.py")
    for spec in DEFAULT_CANDIDATES:
        try:
            _, params = resolve_stepper_spec(spec)
        except ValueError as exc:
            findings.append(Finding(
                "registry-spec", tune_rel, 1,
                f"DEFAULT_CANDIDATES spec {spec!r} does not resolve: {exc}"))
            continue
        _spec_param_findings(tune_rel, 1, spec, params,
                             KERNELS, PARTITIONERS, TRANSPORTS, findings)

    # 3. spec-shaped strings in the CLI source (help text, defaults)
    cli_path = pkg / "cli.py"
    cli_rel = rel(cli_path)
    cli_src = cli_path.read_text()
    for i, text in enumerate(cli_src.splitlines(), start=1):
        for spec in _SPEC_IN_TEXT.findall(text):
            try:
                _, params = resolve_stepper_spec(spec)
            except ValueError as exc:
                findings.append(Finding(
                    "registry-spec", cli_rel, i,
                    f"CLI text names unresolvable spec {spec!r}: {exc}"))
                continue
            _spec_param_findings(cli_rel, i, spec, params,
                                 KERNELS, PARTITIONERS, TRANSPORTS, findings)

    # 4. every registry entry is referenced by at least one test
    test_text = "\n".join(
        p.read_text() for p in sorted(tests.rglob("*.py"))) if tests.is_dir() else ""
    for label, table in (("stepper", STEPPERS), ("kernel", KERNELS),
                         ("partitioner", PARTITIONERS)):
        for key in table:
            if not re.search(r"['\"]" + re.escape(key), test_text):
                findings.append(Finding(
                    "registry-spec", rel(reg_file[label]), 1,
                    f"{label} registry entry {key!r} has no test referencing "
                    "it (add one before shipping the entry)",
                ))


# -- driver ------------------------------------------------------------------

def _iter_source_files(pkg: Path):
    for path in sorted(pkg.rglob("*.py")):
        yield path


def run_lint(select=None, root: Path | None = None) -> list:
    """Run the selected rules (default: all) over ``src/repro``.

    Returns the findings sorted by path and line; an empty list means
    the tree is clean.  Unknown rule names raise ``ValueError``
    enumerating the registry (the ``DELTA_STRATEGIES`` contract).
    """
    selected = set(select) if select else set(RULES)
    unknown = selected - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {sorted(unknown)!r}; known: {', '.join(RULES)}"
        )
    repo_root, pkg, tests = repo_paths()
    if root is not None:
        repo_root = Path(root)
        pkg = repo_root / "src" / "repro"
        tests = repo_root / "tests"
    findings: list = []
    hot_marker_counts: dict = {}
    for path in _iter_source_files(pkg):
        rel = str(path.relative_to(repo_root))
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - repo parses
            findings.append(Finding("hot-loop-alloc", rel, exc.lineno or 1,
                                    f"syntax error: {exc.msg}"))
            continue
        parents = _parent_map(tree)
        if "hot-loop-alloc" in selected:
            before = len(findings)
            count = _check_hot_loop_alloc(path, rel, tree, source, findings)
            hot_marker_counts[path] = count
            # the arena is exempt: its whole job is owning the allocations
            findings[before:] = [
                f for f in findings[before:]
                if not _finding_in_workspace(f, tree, parents)
            ]
        if "recorder-guard" in selected and "obs" not in path.relative_to(pkg).parts:
            _check_recorder_guard(rel, tree, parents, findings)
        if "export-hygiene" in selected:
            _check_export_hygiene(path, rel, tree, findings)
        if "no-deprecated-import" in selected:
            _check_deprecated_import(path, rel, tree, findings)
    if "hot-loop-alloc" in selected:
        _check_hot_markers_present(repo_root, pkg, hot_marker_counts, findings)
    if "registry-spec" in selected:
        _check_registry_spec(repo_root, pkg, tests, findings)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def _finding_in_workspace(finding: Finding, tree: ast.Module, parents: dict) -> bool:
    """Whether a hot-loop-alloc finding lies inside ``RelaxWorkspace``."""
    for node in ast.walk(tree):
        if getattr(node, "lineno", None) == finding.line and _in_workspace_class(node, parents):
            return True
    return False


def _check_hot_markers_present(root: Path, pkg: Path, counts: dict,
                               findings: list) -> None:
    for spec in HOT_FILES:
        target = pkg / spec
        if target.is_dir():
            total = sum(c for p, c in counts.items() if target in p.parents)
        else:
            total = counts.get(target, 0)
        if total == 0:
            findings.append(Finding(
                "hot-loop-alloc", str(target.relative_to(root)), 1,
                "hot file carries no `# repro: hot` markers — the "
                "zero-allocation contract is unenforced here",
            ))


def format_findings(findings: list, fmt: str = "text") -> str:
    """Render findings as ``text`` (one line each) or ``json``."""
    if fmt == "json":
        return json.dumps({"findings": [f.as_dict() for f in findings],
                           "count": len(findings)}, indent=2)
    if fmt != "text":
        raise ValueError(f"unknown lint format {fmt!r}; known: text, json")
    if not findings:
        return "repro lint: clean (0 findings)"
    lines = [f.render() for f in findings]
    lines.append(f"repro lint: {len(findings)} finding(s)")
    return "\n".join(lines)

"""Write-set race checker for the sharded execution path.

PR 4's correctness story rests on one ownership contract: **between two
frontier exchanges, a shard writes only the tentative distances of the
vertices it owns**.  Cross-shard improvements must travel through the
outboxes and get min-combined at :meth:`FrontierExchange.flush` — never
scribbled into ``dist`` directly.  Today's transports make violations
hard to *observe* (inline runs are serial; the thread pool shares one
address space, so a stray foreign write still lands "correctly"), but a
future multiprocess or multi-machine transport turns every violation
into silent wrong answers: the foreign write happens in the wrong
process's copy and is lost, or worse, races the owner's own update.

This module checks the contract dynamically, by attribution rather than
interleaving:

- :class:`WriteTrackingTransport` wraps any real transport and runs the
  per-shard step functions **one at a time**, snapshotting the shared
  distance array around each.  The diff of each snapshot pair is that
  shard's write set for the superstep (the stepper issues exactly one
  ``Transport.run`` call per superstep, and the exchange's own writes
  happen outside ``run`` — so the diffs attribute cleanly).
- After each superstep it asserts (a) every write landed on a vertex the
  writing shard owns, and (b) the per-shard write sets are pairwise
  disjoint; failures become :class:`RaceViolation` rows naming the shard
  pair, the superstep, and the overlapping vertex ids.
- :func:`check_sharded_run` drives a full seeded resolve under the
  tracker and folds in the :meth:`RelaxWorkspace.check` steady-state
  invariant (all-inf requests / all-False touched after every wave), so
  the race harness exercises both PR 4's and PR 5's contracts at once.

Two honest limitations, both inherent to diff-based attribution: a write
that stores the value already present is invisible (benign for the
ownership contract — min-combining an equal value is a no-op), and
serializing the steps means genuine *timing* races between threads are
not explored — the checker validates the protocol's write discipline,
which is what makes thread timing irrelevant for a conforming stepper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph
from ..shard.exchange import Transport, make_transport
from ..shard.stepper import ShardedDeltaStepper, sharded_view
from ..sssp.result import INF

__all__ = [
    "RaceViolation",
    "RaceReport",
    "WriteTrackingTransport",
    "check_sharded_run",
]

#: how many offending vertex ids a violation row lists verbatim; the
#: full count is always reported alongside
_MAX_LISTED = 8


@dataclass(frozen=True)
class RaceViolation:
    """One broken-ownership observation: who wrote where, and when.

    ``kind`` is ``"foreign-write"`` (a shard wrote a vertex another
    shard owns; ``shards`` is ``(writer, owner)``) or ``"overlap"``
    (two shards wrote the same vertex in one superstep; ``shards`` is
    the pair, ascending).  ``vertices`` lists up to the first
    ``_MAX_LISTED`` offending global vertex ids; ``num_vertices`` is
    the full count.
    """

    kind: str
    superstep: int
    shards: tuple
    vertices: tuple
    num_vertices: int

    def describe(self) -> str:
        ids = ", ".join(str(v) for v in self.vertices)
        if self.num_vertices > len(self.vertices):
            ids += f", … ({self.num_vertices} total)"
        if self.kind == "foreign-write":
            return (
                f"superstep {self.superstep}: shard {self.shards[0]} wrote "
                f"{self.num_vertices} vertex(es) owned by shard "
                f"{self.shards[1]}: [{ids}]"
            )
        return (
            f"superstep {self.superstep}: shards {self.shards[0]} and "
            f"{self.shards[1]} both wrote {self.num_vertices} vertex(es): [{ids}]"
        )


@dataclass
class RaceReport:
    """The outcome of one tracked sharded run.

    Falsy-free reading: ``report.ok`` is True iff no violation was
    observed; ``render()`` is the human-facing summary the pytest
    harness prints on failure.
    """

    num_shards: int
    partitioner: str
    transport: str
    supersteps: int = 0
    writes_checked: int = 0
    violations: list = field(default_factory=list)
    #: the final distance vector of the tracked run, so harnesses can
    #: assert the tracker never perturbed the solve itself
    distances: np.ndarray | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        head = (
            f"racecheck[{self.num_shards} shards, {self.partitioner}, "
            f"{self.transport}]: {self.writes_checked} writes over "
            f"{self.supersteps} supersteps"
        )
        if self.ok:
            return head + " — ownership contract held"
        lines = [head + f" — {len(self.violations)} violation(s):"]
        lines.extend("  " + v.describe() for v in self.violations)
        return "\n".join(lines)


class WriteTrackingTransport(Transport):
    """A transport decorator attributing every distance write to a shard.

    Wraps *inner* and serializes its ``run`` batch: each step function
    executes alone between two snapshots of the shared *dist* array, so
    the changed indices are exactly that shard's writes for the
    superstep (value-identical stores excepted — see module docstring).
    Violations accumulate on :attr:`violations`; the run itself is never
    interrupted, so one report can name every broken superstep.
    """

    name = "tracking"

    def __init__(self, inner: Transport, dist: np.ndarray, owner: np.ndarray):
        self.inner = inner
        self.dist = dist
        self.owner = owner
        self.supersteps = 0
        self.writes_checked = 0
        self.violations: list = []
        #: per superstep: the per-shard arrays of written vertex ids
        self.write_sets: list = []

    def run(self, fns) -> list:
        step = self.supersteps
        self.supersteps += 1
        results: list = []
        per_shard: list = []
        for fn in fns:
            before = self.dist.copy()
            results.extend(self.inner.run([fn]))
            per_shard.append(np.flatnonzero(self.dist != before))
        self.write_sets.append(per_shard)
        self._check(step, per_shard)
        return results

    def _check(self, step: int, per_shard: list) -> None:
        for shard_id, wrote in enumerate(per_shard):
            self.writes_checked += len(wrote)
            foreign = wrote[self.owner[wrote] != shard_id]
            for owner_id in np.unique(self.owner[foreign]):
                hit = foreign[self.owner[foreign] == owner_id]
                self.violations.append(RaceViolation(
                    kind="foreign-write",
                    superstep=step,
                    shards=(shard_id, int(owner_id)),
                    vertices=tuple(int(v) for v in hit[:_MAX_LISTED]),
                    num_vertices=len(hit),
                ))
        for a in range(len(per_shard)):
            for b in range(a + 1, len(per_shard)):
                both = np.intersect1d(per_shard[a], per_shard[b])
                if len(both):
                    self.violations.append(RaceViolation(
                        kind="overlap",
                        superstep=step,
                        shards=(a, b),
                        vertices=tuple(int(v) for v in both[:_MAX_LISTED]),
                        num_vertices=len(both),
                    ))


def check_sharded_run(
    graph: Graph,
    source: int,
    num_shards: int = 2,
    partitioner: str = "contiguous",
    transport: str = "inline",
    delta: float | None = None,
    kernel: str = "auto",
    stepper: ShardedDeltaStepper | None = None,
) -> RaceReport:
    """Run one seeded sharded resolve under the write tracker.

    Returns the :class:`RaceReport`; ``report.ok`` means the ownership
    contract held on every superstep *and* every per-shard
    :class:`~repro.kernels.workspace.RelaxWorkspace` came back in its
    all-inf/all-False steady state (:meth:`RelaxWorkspace.check` —
    a corrupted arena poisons the *next* wave, which is exactly the
    cross-superstep leak this harness exists to catch).

    *stepper* defaults to the registered :class:`ShardedDeltaStepper`;
    the test harness passes an intentionally-broken subclass to prove
    the checker fires on real violations.
    """
    n = graph.num_vertices
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    active = np.zeros(n, dtype=bool)
    active[source] = True
    sg = sharded_view(graph, num_shards, partitioner)
    tracker = WriteTrackingTransport(make_transport(transport), dist, sg.owner)
    if stepper is None:
        stepper = ShardedDeltaStepper()
    stepper.resolve(
        graph, dist, active,
        delta=delta, num_shards=num_shards, partitioner=partitioner,
        transport=tracker, sharded=sg, kernel=kernel,
    )
    report = RaceReport(
        num_shards=sg.num_shards,
        partitioner=partitioner,
        transport=str(transport),
        supersteps=tracker.supersteps,
        writes_checked=tracker.writes_checked,
        violations=tracker.violations,
        distances=dist,
    )
    for ws in sg.meta.get("_relax_workspaces") or ():
        ws.check()
    return report

"""``repro.analysis`` — static analysis for the repo's performance conventions.

Five conventions carry this codebase's performance story, and none of
them is visible to a generic linter:

- the relaxation hot loops are **zero-allocation** by contract (PR 5's
  kernel core) — one stray ``np.zeros`` in a marked block silently
  un-does the win;
- telemetry is **one falsy branch** when disabled (PR 6's ``if
  recorder:`` guard idiom, CI-gated at <3%) — one unguarded
  ``recorder.span(...)`` in a solver loop breaks the gate;
- the ``STEPPERS``/``KERNELS``/``PARTITIONERS`` registries, the stepper
  *spec* mini-language, the CLI help, and the auto-tuner's candidate
  portfolio must all name the same world;
- package ``__init__`` exports (``__all__``) are the public surface the
  README and downstream importers rely on;
- the sharded stepper's shards may only write **their own** vertices
  between exchanges (PR 4's disjoint-write contract) — the invariant a
  future multiprocess transport depends on.

Module map
----------
==================================  =========================================
:mod:`~repro.analysis.lint`         AST lint rules (``hot-loop-alloc``,
                                    ``recorder-guard``, ``registry-spec``,
                                    ``export-hygiene``,
                                    ``no-deprecated-import``) behind one
                                    registry (:data:`~repro.analysis.lint.RULES`)
                                    and one driver (``repro lint``)
:mod:`~repro.analysis.racecheck`    write-set race checker for the sharded
                                    path: a tracking transport attributing
                                    every distance write to its shard, per
                                    superstep, plus the disjointness report
==================================  =========================================

Entry points::

    repro lint [--select RULE] [--format json|text]     # the CLI driver

    from repro.analysis import run_lint, check_sharded_run
    findings = run_lint()                               # [] when clean
    report = check_sharded_run(graph, source, num_shards=4)
    assert report.ok
"""

from __future__ import annotations

from .lint import Finding, RULES, format_findings, run_lint
from .racecheck import RaceReport, RaceViolation, WriteTrackingTransport, check_sharded_run

__all__ = [
    "Finding",
    "RULES",
    "format_findings",
    "run_lint",
    "RaceReport",
    "RaceViolation",
    "WriteTrackingTransport",
    "check_sharded_run",
]

"""The :class:`Recorder` facade: one handle threaded through the hot layers.

A recorder bundles the two observability surfaces —

- a :class:`~repro.obs.trace.TraceRecorder` (the timeline: spans and
  instants, Chrome-trace exportable), and
- a :class:`~repro.obs.metrics.MetricsRegistry` (the aggregates:
  counters, gauges, latency histograms)

— behind the small vocabulary the instrumented layers use: ``span``,
``instant``, ``inc``, ``observe``, ``set_gauge``.  Every choke point in
the repo takes ``recorder=None`` and guards with plain truthiness::

    if recorder:
        with recorder.span("relax-wave", kernel=kernel) as sp:
            ...

so the disabled path (``None`` *or* :data:`NO_RECORDER`) costs one falsy
check — the same contract the ``NO_TIMER`` null timer established, now
CI-gated at <3% on the KERNEL bench smoke (``repro trace
--overhead-smoke``).  :data:`NO_RECORDER` exists for call sites that
want an always-valid object to forward rather than a ``None`` sentinel;
it is falsy, and every method is a no-op.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, ContextManager, Iterator

from .metrics import MetricsRegistry
from .trace import _NULL_SPAN, Span, TraceRecorder, _NullSpan

__all__ = ["Recorder", "NullRecorder", "NO_RECORDER"]


class Recorder:
    """Unified tracing + metrics handle (see module docstring).

    Pass ``trace=``/``metrics=`` to share either half across recorders
    (e.g. one process-wide registry under several per-request traces);
    omitted halves are created fresh.
    """

    enabled = True

    def __init__(
        self, trace: TraceRecorder | None = None, metrics: MetricsRegistry | None = None
    ) -> None:
        self.trace = trace if trace is not None else TraceRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def flight(
        cls,
        capacity: int | None = None,
        metrics: MetricsRegistry | None = None,
        triggers: Any = (),
    ) -> "Recorder":
        """A recorder whose trace half is a bounded
        :class:`~repro.obs.flight.FlightRecorder` — the always-on
        production configuration (fixed memory, anomaly triggers)."""
        from .flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder

        cap = capacity if capacity is not None else DEFAULT_FLIGHT_CAPACITY
        return cls(trace=FlightRecorder(cap, triggers=triggers), metrics=metrics)

    def __bool__(self) -> bool:
        return True

    # -- tracing -------------------------------------------------------------

    def span(self, name: str, **args: Any) -> Span:
        return self.trace.span(name, **args)

    def instant(self, name: str, **args: Any) -> None:
        self.trace.instant(name, **args)

    def context(self, **args: Any) -> ContextManager[None]:
        """Ambient span args for a scope (request ids and the like):
        every span/instant recorded inside carries them.  See
        :meth:`TraceRecorder.context`."""
        return self.trace.context(**args)

    # -- metrics -------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.metrics.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    # -- reporting -----------------------------------------------------------

    def write_trace(
        self, path: str | os.PathLike[str], process_name: str = "repro"
    ) -> str:
        """Export the trace as Chrome trace-event JSON; returns the path."""
        return self.trace.write(path, process_name=process_name)

    def summary(self) -> dict[str, Any]:
        """The metrics snapshot (counters/gauges/histogram summaries)."""
        return self.metrics.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Recorder<{len(self.trace)} events, {len(self.metrics)} metrics>"


class NullRecorder:
    """Disabled recorder: falsy, every method a no-op.

    ``trace``/``metrics`` are ``None`` — instrumented code must gate on
    the recorder's truthiness before touching either, which is also what
    keeps the disabled path at one branch per choke point.
    """

    __slots__ = ()
    enabled = False
    trace = None
    metrics = None

    def __bool__(self) -> bool:
        return False

    def span(self, _name: str, **_args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, _name: str, **_args: Any) -> None:
        pass

    @contextmanager
    def context(self, **_args: Any) -> Iterator[None]:
        yield

    def inc(self, _name: str, _n: int = 1) -> None:
        pass

    def observe(self, _name: str, _value: float) -> None:
        pass

    def set_gauge(self, _name: str, _value: float) -> None:
        pass

    def write_trace(
        self, _path: str | os.PathLike[str], process_name: str = "repro"
    ) -> None:
        return None

    def summary(self) -> dict[str, Any]:
        return {}


#: shared disabled-recorder singleton
NO_RECORDER = NullRecorder()

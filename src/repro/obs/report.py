"""Self-contained run reports from a recorded run (markdown / HTML).

A Chrome trace opens in Perfetto; a metrics snapshot is a dict — neither
answers "what did this run *do*" in a form you can paste into a PR or
attach to a CI artifact.  This module renders a :class:`Recorder` (or a
saved Chrome trace JSON) into one document:

- **time attribution** — every span name with call count, total and
  *self* time (total minus child spans), and share of wall clock;
- **the span tree** — the nesting reconstructed per thread from the
  flat event list, so a sharded run reads as superstep → shard-step /
  exchange without opening a trace viewer;
- **the per-superstep exchange ledger** — the sharded stepper's
  ``exchange`` spans carry the posted/carried/applied/bytes deltas of
  each flush round; the report tabulates them in superstep order (the
  wire profile a real transport would have to absorb);
- **bucket occupancy and wave density** — the fused solver's ``bucket``
  spans (frontier size, phases, settled) and every stepper's
  ``relax-wave`` spans (wave sizes and relaxation counts per kernel);
- **metrics summaries** — counters, gauges, and the p50/p90/p99
  histogram trio from the registry snapshot.

Everything is computed from the span dicts
:meth:`~repro.obs.trace.TraceRecorder.spans` returns (or their Chrome
export, via :func:`spans_from_chrome` / :func:`load_trace`), so a saved
``trace.json`` renders the same report as a live recorder — minus the
metrics sections, which only the recorder carries.

Like the rest of :mod:`repro.obs` this module is stdlib-only and part
of the ``mypy --strict`` typing gate.  ``repro report`` is the CLI
front end.
"""

from __future__ import annotations

import html
import json
import os
from dataclasses import dataclass, field
from math import isnan
from typing import Any, Mapping, Sequence, Union

from .flight import SlowQueryLog
from .recorder import Recorder
from .trace import TraceRecorder

__all__ = [
    "SpanNode",
    "ReportSection",
    "RunReport",
    "spans_from_chrome",
    "load_trace",
    "load_slow_queries",
    "filter_spans_by_request",
    "build_span_tree",
    "stage_attribution",
    "build_report",
    "render_markdown",
    "render_html",
]

#: one flat span record: the dict shape ``TraceRecorder.spans()`` emits
SpanDict = dict[str, Any]

#: what :func:`build_report` accepts as its trace source
TraceSource = Union[
    Recorder, TraceRecorder, Mapping[str, Any], str, "os.PathLike[str]", Sequence[SpanDict]
]

#: row cap for the per-item tables (bucket / superstep / ledger); the
#: report is a summary, not a second trace file
MAX_TABLE_ROWS = 40

#: line cap for the rendered span tree
MAX_TREE_LINES = 80


@dataclass
class SpanNode:
    """One span with its children re-nested from the flat event list."""

    name: str
    ts_us: float
    dur_us: float
    tid: int
    args: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us

    @property
    def self_us(self) -> float:
        """Duration not covered by child spans (clamped at 0)."""
        return max(0.0, self.dur_us - sum(c.dur_us for c in self.children))


@dataclass
class ReportSection:
    """One rendered section: prose lines, an optional table, optional
    preformatted code lines.  Table cells are already strings — the
    renderers only lay them out."""

    title: str
    lines: list[str] = field(default_factory=list)
    table: list[dict[str, str]] | None = None
    code: list[str] | None = None


@dataclass
class RunReport:
    """The structured report :func:`build_report` produces; feed it to
    :func:`render_markdown` or :func:`render_html`."""

    title: str
    sections: list[ReportSection] = field(default_factory=list)
    span_count: int = 0
    wall_ms: float = 0.0


# --------------------------------------------------------------------------
# trace loading
# --------------------------------------------------------------------------


def spans_from_chrome(doc: Mapping[str, Any]) -> list[SpanDict]:
    """The complete (``"X"``) events of a Chrome trace document as the
    span dicts the report builder consumes."""
    spans: list[SpanDict] = []
    events = doc.get("traceEvents", [])
    for ev in events:
        if not isinstance(ev, Mapping) or ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        spans.append(
            {
                "name": str(ev.get("name", "?")),
                "ts_us": float(ev.get("ts", 0.0)),
                "dur_us": float(ev.get("dur", 0.0)),
                "tid": int(ev.get("tid", 0)),
                "args": dict(args) if isinstance(args, Mapping) else {},
            }
        )
    return spans


def load_trace(path: "str | os.PathLike[str]") -> list[SpanDict]:
    """Load a saved Chrome trace JSON (``Recorder.write_trace`` output)
    as span dicts."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path!s} is not a Chrome trace document")
    return spans_from_chrome(doc)


def _resolve_spans(source: TraceSource) -> list[SpanDict]:
    if isinstance(source, Recorder):
        return source.trace.spans()
    if isinstance(source, TraceRecorder):
        return source.spans()
    if isinstance(source, Mapping):
        return spans_from_chrome(source)
    if isinstance(source, (str, os.PathLike)):
        return load_trace(source)
    return [dict(s) for s in source]


def filter_spans_by_request(
    spans: Sequence[SpanDict], request_id: str
) -> list[SpanDict]:
    """The spans belonging to one request.

    The serving tier stamps every span of a drain round with the round's
    (comma-joined, when batched) request ids, so a span belongs to
    *request_id* when the id is a member of its ``request_id`` arg.
    Works identically on live recorder spans and reloaded Chrome traces
    — this is the round trip ``repro report --request`` rides on.
    """
    out: list[SpanDict] = []
    for s in spans:
        rid = dict(s.get("args", {})).get("request_id")
        if rid is not None and request_id in str(rid).split(","):
            out.append(s)
    return out


#: what :func:`build_report` accepts as its slow-query source: the live
#: log, already-loaded entries, or a saved JSONL path
SlowQuerySource = Union[
    SlowQueryLog, Sequence[Mapping[str, Any]], str, "os.PathLike[str]"
]


def load_slow_queries(path: "str | os.PathLike[str]") -> list[dict[str, Any]]:
    """Load a saved slow-query log (``SlowQueryLog.write`` JSONL)."""
    entries: list[dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def _resolve_slow_queries(source: SlowQuerySource) -> list[dict[str, Any]]:
    if isinstance(source, SlowQueryLog):
        return source.entries()
    if isinstance(source, (str, os.PathLike)):
        return load_slow_queries(source)
    return [dict(e) for e in source]


# --------------------------------------------------------------------------
# span tree + attribution
# --------------------------------------------------------------------------


def build_span_tree(spans: Sequence[SpanDict]) -> list[SpanNode]:
    """Re-nest flat spans into per-thread trees.

    Within one thread a span is a child of the most recent span whose
    interval still covers its start — the standard stack reconstruction
    for complete-event traces.  Roots come back ordered by (thread,
    start time).
    """
    by_tid: dict[int, list[SpanNode]] = {}
    for s in spans:
        node = SpanNode(
            name=str(s.get("name", "?")),
            ts_us=float(s.get("ts_us", 0.0)),
            dur_us=float(s.get("dur_us", 0.0)),
            tid=int(s.get("tid", 0)),
            args=dict(s.get("args", {})),
        )
        by_tid.setdefault(node.tid, []).append(node)
    roots: list[SpanNode] = []
    for tid in sorted(by_tid):
        # enclosing spans first: earlier start wins, longer duration
        # breaks ties (a parent that starts with its child sorts first)
        ordered = sorted(by_tid[tid], key=lambda n: (n.ts_us, -n.dur_us))
        stack: list[SpanNode] = []
        for node in ordered:
            while stack and node.ts_us >= stack[-1].end_us - 1e-9:
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
    return roots


def _walk(nodes: Sequence[SpanNode]) -> list[SpanNode]:
    out: list[SpanNode] = []
    todo = list(nodes)
    while todo:
        n = todo.pop()
        out.append(n)
        todo.extend(n.children)
    return out


def stage_attribution(roots: Sequence[SpanNode]) -> list[dict[str, Any]]:
    """Per span name: count, total/self/max time — the §VI.C question
    ("where does the time go?") answered from the timeline.

    ``self`` time excludes child spans, so summing the column over all
    names cannot double-count nested stages.
    """
    agg: dict[str, dict[str, float]] = {}
    for node in _walk(roots):
        row = agg.setdefault(
            node.name, {"count": 0.0, "total_us": 0.0, "self_us": 0.0, "max_us": 0.0}
        )
        row["count"] += 1
        row["total_us"] += node.dur_us
        row["self_us"] += node.self_us
        row["max_us"] = max(row["max_us"], node.dur_us)
    rows = [
        {
            "name": name,
            "count": int(r["count"]),
            "total_ms": r["total_us"] / 1e3,
            "self_ms": r["self_us"] / 1e3,
            "mean_ms": r["total_us"] / r["count"] / 1e3,
            "max_ms": r["max_us"] / 1e3,
        }
        for name, r in agg.items()
    ]
    rows.sort(key=lambda r: float(r["self_ms"]), reverse=True)
    return rows


# --------------------------------------------------------------------------
# formatting helpers
# --------------------------------------------------------------------------


def _f(value: float, digits: int = 3) -> str:
    if isnan(value):
        return "NaN"
    return f"{value:.{digits}f}"


def _arg_int(args: Mapping[str, Any], key: str, default: int = 0) -> int:
    value = args.get(key, default)
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def _pct(sorted_values: Sequence[float], q: float) -> float:
    """Exact percentile over an already-sorted sample (nearest-rank)."""
    if not sorted_values:
        return float("nan")
    rank = max(1, -(-int(q * len(sorted_values)) // 100))  # ceil(q*n/100)
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _tree_lines(roots: Sequence[SpanNode], limit: int = MAX_TREE_LINES) -> list[str]:
    lines: list[str] = []
    truncated = 0

    def emit(node: SpanNode, depth: int) -> None:
        nonlocal truncated
        if len(lines) >= limit:
            truncated += 1 + _count(node.children)
            return
        args = ", ".join(f"{k}={v}" for k, v in node.args.items())
        suffix = f"  [{args}]" if args else ""
        lines.append(f"{'  ' * depth}{node.name}  {node.dur_us / 1e3:.3f} ms{suffix}")
        for child in node.children:
            emit(child, depth + 1)

    def _count(nodes: Sequence[SpanNode]) -> int:
        return sum(1 + _count(n.children) for n in nodes)

    for root in roots:
        emit(root, 0)
    if truncated:
        lines.append(f"... ({truncated} more spans)")
    return lines


# --------------------------------------------------------------------------
# the report builder
# --------------------------------------------------------------------------


def build_report(
    source: TraceSource,
    metrics: Mapping[str, Any] | None = None,
    title: str = "repro run report",
    request_id: str | None = None,
    slow_queries: SlowQuerySource | None = None,
) -> RunReport:
    """Assemble the structured report.

    *source* is a :class:`Recorder`, a :class:`TraceRecorder`, a Chrome
    trace document (dict) or path, or an already-flat span list.  When a
    :class:`Recorder` is passed and *metrics* is omitted, its own
    registry snapshot fills the metrics sections.

    *request_id* narrows the whole report to one request's spans (see
    :func:`filter_spans_by_request`); *slow_queries* — a live
    :class:`~repro.obs.flight.SlowQueryLog`, loaded entries, or a saved
    JSONL path — adds the "Slow queries" section.
    """
    if metrics is None and isinstance(source, Recorder):
        metrics = source.summary()
    spans = _resolve_spans(source)
    if request_id is not None:
        spans = filter_spans_by_request(spans, request_id)
        title = f"{title} — request {request_id}"
    roots = build_span_tree(spans)
    report = RunReport(title=title, span_count=len(spans))

    if spans:
        t0 = min(float(s["ts_us"]) for s in spans)
        t1 = max(float(s["ts_us"]) + float(s["dur_us"]) for s in spans)
        report.wall_ms = (t1 - t0) / 1e3
    tids = sorted({int(s.get("tid", 0)) for s in spans})
    solves = [s for s in spans if str(s.get("name", "")).startswith("solve:")]
    overview = ReportSection("Overview")
    overview.lines.append(
        f"{len(spans)} spans over {_f(report.wall_ms)} ms of wall clock, "
        f"{len(tids)} thread lane(s)."
    )
    for s in solves:
        args = ", ".join(f"{k}={v}" for k, v in dict(s.get("args", {})).items())
        overview.lines.append(
            f"- `{s['name']}` ({args}): {float(s['dur_us']) / 1e3:.3f} ms"
        )
    if not spans:
        overview.lines.append("The trace is empty — nothing was recorded.")
    report.sections.append(overview)

    if spans:
        attribution = stage_attribution(roots)
        wall_us = max(report.wall_ms * 1e3, 1e-9)
        report.sections.append(
            ReportSection(
                "Time attribution",
                lines=[
                    "Per span name; `self` excludes child spans, so the column "
                    "sums to recorded time without double counting."
                ],
                table=[
                    {
                        "span": str(r["name"]),
                        "count": str(r["count"]),
                        "total ms": _f(float(r["total_ms"])),
                        "self ms": _f(float(r["self_ms"])),
                        "mean ms": _f(float(r["mean_ms"])),
                        "max ms": _f(float(r["max_ms"])),
                        "% wall": _f(float(r["total_ms"]) * 1e3 / wall_us * 100.0, 1),
                    }
                    for r in attribution
                ],
            )
        )
        report.sections.append(
            ReportSection("Span tree", code=_tree_lines(roots))
        )

    _superstep_section(spans, report)
    _exchange_section(spans, report)
    _bucket_section(spans, report)
    _wave_section(spans, report)
    if slow_queries is not None:
        _slow_query_section(_resolve_slow_queries(slow_queries), report)
    _metrics_sections(metrics, report)
    return report


def _sorted_named(spans: Sequence[SpanDict], name: str) -> list[SpanDict]:
    return sorted(
        (s for s in spans if s.get("name") == name),
        key=lambda s: float(s.get("ts_us", 0.0)),
    )


def _superstep_section(spans: Sequence[SpanDict], report: RunReport) -> None:
    steps = _sorted_named(spans, "superstep")
    if not steps:
        return
    rows: list[dict[str, str]] = []
    for s in steps[:MAX_TABLE_ROWS]:
        args = dict(s.get("args", {}))
        rows.append(
            {
                "step": str(_arg_int(args, "step")),
                "bound": _f(float(args.get("bound", float("nan")))),
                "phases": str(_arg_int(args, "phases")),
                "activated": str(_arg_int(args, "activated")),
                "ms": _f(float(s["dur_us"]) / 1e3),
            }
        )
    lines = [f"{len(steps)} sharded supersteps (global window rounds)."]
    if len(steps) > MAX_TABLE_ROWS:
        lines.append(f"Showing the first {MAX_TABLE_ROWS}.")
    report.sections.append(ReportSection("Sharded supersteps", lines=lines, table=rows))


def _exchange_section(spans: Sequence[SpanDict], report: RunReport) -> None:
    flushes = _sorted_named(spans, "exchange")
    if not flushes:
        return
    totals = {"entries_posted": 0, "entries_carried": 0, "entries_applied": 0,
              "bytes_carried": 0}
    rows: list[dict[str, str]] = []
    for idx, s in enumerate(flushes):
        args = dict(s.get("args", {}))
        for key in totals:
            totals[key] += _arg_int(args, key)
        if idx < MAX_TABLE_ROWS:
            rows.append(
                {
                    "superstep": str(_arg_int(args, "step", idx)),
                    "posted": str(_arg_int(args, "entries_posted")),
                    "carried": str(_arg_int(args, "entries_carried")),
                    "applied": str(_arg_int(args, "entries_applied")),
                    "bytes": str(_arg_int(args, "bytes_carried")),
                    "ms": _f(float(s["dur_us"]) / 1e3),
                }
            )
    posted = totals["entries_posted"]
    dedup = totals["entries_carried"] / posted if posted else 1.0
    lines = [
        f"{len(flushes)} exchange rounds: {totals['entries_posted']} posted → "
        f"{totals['entries_carried']} carried ({dedup:.0%} of posted) → "
        f"{totals['entries_applied']} applied, "
        f"{totals['bytes_carried']} bytes on the wire.",
    ]
    if len(flushes) > MAX_TABLE_ROWS:
        lines.append(f"Showing the first {MAX_TABLE_ROWS} rounds.")
    report.sections.append(
        ReportSection("Exchange ledger (per superstep)", lines=lines, table=rows)
    )


def _bucket_section(spans: Sequence[SpanDict], report: RunReport) -> None:
    buckets = _sorted_named(spans, "bucket")
    if not buckets:
        return
    frontiers = sorted(
        float(_arg_int(dict(s.get("args", {})), "frontier")) for s in buckets
    )
    settled_total = sum(_arg_int(dict(s.get("args", {})), "settled") for s in buckets)
    rows: list[dict[str, str]] = []
    for s in buckets[:MAX_TABLE_ROWS]:
        args = dict(s.get("args", {}))
        rows.append(
            {
                "bucket": str(_arg_int(args, "index")),
                "frontier": str(_arg_int(args, "frontier")),
                "phases": str(_arg_int(args, "phases")),
                "settled": str(_arg_int(args, "settled")),
                "ms": _f(float(s["dur_us"]) / 1e3),
            }
        )
    lines = [
        f"{len(buckets)} buckets processed, {settled_total} vertices settled; "
        f"frontier occupancy p50 {_f(_pct(frontiers, 50), 0)}, "
        f"p90 {_f(_pct(frontiers, 90), 0)}, max {_f(frontiers[-1], 0)}.",
    ]
    if len(buckets) > MAX_TABLE_ROWS:
        lines.append(f"Showing the first {MAX_TABLE_ROWS} buckets.")
    report.sections.append(ReportSection("Bucket occupancy", lines=lines, table=rows))


def _wave_section(spans: Sequence[SpanDict], report: RunReport) -> None:
    waves = _sorted_named(spans, "relax-wave")
    if not waves:
        return
    by_kernel: dict[str, dict[str, Any]] = {}
    for s in waves:
        args = dict(s.get("args", {}))
        kernel = str(args.get("kernel", "?"))
        agg = by_kernel.setdefault(
            kernel, {"waves": 0, "relaxations": 0, "touched": 0, "sizes": []}
        )
        agg["waves"] += 1
        agg["relaxations"] += _arg_int(args, "relaxations")
        agg["touched"] += _arg_int(args, "touched")
        agg["sizes"].append(float(_arg_int(args, "wave")))
    rows: list[dict[str, str]] = []
    for kernel in sorted(by_kernel):
        agg = by_kernel[kernel]
        sizes = sorted(agg["sizes"])
        waves_n = int(agg["waves"])
        relax = int(agg["relaxations"])
        rows.append(
            {
                "kernel": kernel,
                "waves": str(waves_n),
                "wave p50": _f(_pct(sizes, 50), 0),
                "wave p90": _f(_pct(sizes, 90), 0),
                "wave max": _f(sizes[-1], 0),
                "relaxations": str(relax),
                "relax/wave": _f(relax / waves_n, 1),
                "touched": str(int(agg["touched"])),
            }
        )
    report.sections.append(
        ReportSection(
            "Relaxation-wave density",
            lines=[
                "Wave size is the frontier handed to one gather→min→scatter "
                "pass; density (relax/wave) is what picks the scatter kernel "
                "over argsort."
            ],
            table=rows,
        )
    )


def _slow_query_section(
    entries: Sequence[Mapping[str, Any]], report: RunReport
) -> None:
    section = ReportSection("Slow queries")
    if not entries:
        section.lines.append("No queries crossed the slow-query threshold.")
        report.sections.append(section)
        return
    ordered = sorted(
        (dict(e) for e in entries),
        key=lambda e: float(e.get("latency_ms", 0.0)),
        reverse=True,
    )
    threshold = ordered[0].get("threshold_ms")
    over = f" (threshold {_f(float(threshold), 1)} ms)" if threshold is not None else ""
    section.lines.append(f"{len(ordered)} slow quer{'y' if len(ordered) == 1 else 'ies'}{over}, worst first.")
    if len(ordered) > MAX_TABLE_ROWS:
        section.lines.append(f"Showing the {MAX_TABLE_ROWS} slowest.")
    rows: list[dict[str, str]] = []
    for e in ordered[:MAX_TABLE_ROWS]:
        plan = dict(e.get("plan", {}))
        counters = dict(e.get("counters", {}))
        plan_s = (
            f"{plan.get('cached', 0)}c/{plan.get('exact_sources', 0)}x/"
            f"{plan.get('approximate', 0)}a"
            if plan
            else "-"
        )
        rows.append(
            {
                "request": str(e.get("request_id", "?")),
                "latency ms": _f(float(e.get("latency_ms", float("nan")))),
                "stepper": str(e.get("stepper", "-")),
                "cache": "hit" if e.get("cache_hit") else "miss",
                "plan (cached/exact/approx)": plan_s,
                "supersteps": str(counters.get("sharded.supersteps", "-")),
                "flight spans": str(len(e.get("flight", []) or [])),
            }
        )
    section.table = rows
    report.sections.append(section)


def _metrics_sections(metrics: Mapping[str, Any] | None, report: RunReport) -> None:
    if not metrics:
        return
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if counters or gauges:
        rows = [
            {"metric": str(k), "kind": "counter", "value": str(v)}
            for k, v in sorted(dict(counters).items())
        ] + [
            {"metric": str(k), "kind": "gauge", "value": _f(float(v))}
            for k, v in sorted(dict(gauges).items())
        ]
        report.sections.append(
            ReportSection("Metrics — counters & gauges", table=rows)
        )
    if histograms:
        rows = []
        for name, h in sorted(dict(histograms).items()):
            summary = dict(h)
            rows.append(
                {
                    "histogram": str(name),
                    "count": str(int(summary.get("count", 0))),
                    "mean": _f(float(summary.get("mean", float("nan")))),
                    "p50": _f(float(summary.get("p50", float("nan")))),
                    "p90": _f(float(summary.get("p90", float("nan")))),
                    "p99": _f(float(summary.get("p99", float("nan")))),
                    "max": _f(float(summary.get("max", float("nan")))),
                }
            )
        report.sections.append(
            ReportSection(
                "Metrics — latency histograms",
                lines=["Interpolated percentiles; `NaN` marks an empty histogram."],
                table=rows,
            )
        )


# --------------------------------------------------------------------------
# renderers
# --------------------------------------------------------------------------


def _md_table(rows: Sequence[Mapping[str, str]]) -> list[str]:
    if not rows:
        return ["(no rows)"]
    headers = list(rows[0].keys())
    out = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        out.append("| " + " | ".join(str(row.get(h, "")) for h in headers) + " |")
    return out


def render_markdown(report: RunReport) -> str:
    """The report as GitHub-flavored markdown."""
    out: list[str] = [f"# {report.title}", ""]
    for section in report.sections:
        out.append(f"## {section.title}")
        out.append("")
        for line in section.lines:
            out.append(line)
        if section.lines:
            out.append("")
        if section.table is not None:
            out.extend(_md_table(section.table))
            out.append("")
        if section.code is not None:
            out.append("```text")
            out.extend(section.code)
            out.append("```")
            out.append("")
    return "\n".join(out).rstrip() + "\n"


_HTML_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 70rem; padding: 0 1rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #e0e0e8; padding-bottom: .3rem; }
h2 { margin-top: 2rem; color: #30304d; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #d0d0dc; padding: .25rem .6rem; text-align: right; }
th { background: #f0f0f6; }
td:first-child, th:first-child { text-align: left; }
pre { background: #f6f6fa; border: 1px solid #e0e0e8; padding: .75rem;
      overflow-x: auto; }
""".strip()


def render_html(report: RunReport) -> str:
    """The report as one self-contained HTML document (inline CSS, no
    external assets — safe to attach as a CI artifact)."""
    esc = html.escape
    out: list[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{esc(report.title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{esc(report.title)}</h1>",
    ]
    for section in report.sections:
        out.append(f"<h2>{esc(section.title)}</h2>")
        for line in section.lines:
            out.append(f"<p>{esc(line)}</p>")
        if section.table is not None and section.table:
            headers = list(section.table[0].keys())
            out.append("<table><thead><tr>")
            out.extend(f"<th>{esc(h)}</th>" for h in headers)
            out.append("</tr></thead><tbody>")
            for row in section.table:
                out.append(
                    "<tr>"
                    + "".join(f"<td>{esc(str(row.get(h, '')))}</td>" for h in headers)
                    + "</tr>"
                )
            out.append("</tbody></table>")
        if section.code is not None:
            out.append("<pre>" + esc("\n".join(section.code)) + "</pre>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"

"""Process-wide metrics: counters, gauges, fixed-bucket latency histograms.

The serving-tier ROADMAP items (SLO-gated latency, exchange-volume
regressions, kernel-choice drift) all need *aggregates* that survive a
run, where the trace (:mod:`repro.obs.trace`) records the timeline.
:class:`MetricsRegistry` is the one named surface for those aggregates:

- :class:`Counter` — monotone event counts (cache hits, repairs run);
- :class:`Gauge` — last-written values (cache size);
- :class:`Histogram` — fixed-bucket distributions with p50/p90/p99
  summaries, sized for millisecond latencies by default (geometric
  buckets from 1 µs to ~10 min, so one relative-error bound covers both
  a cache hit and a cold sharded solve).

Instruments are plain-attribute hot paths (``inc`` is one integer add)
and the registry is get-or-create keyed by name, so call sites never
pre-declare.  ``snapshot``/``as_dict`` render everything to plain dicts
for the CLI summary table and the bench JSON; ``reset`` zeroes in place
(instrument handles stay valid).

Empty-distribution sentinel: a :class:`Histogram` with zero
observations reports ``NaN`` from :meth:`Histogram.percentile`,
:attr:`Histogram.mean`, and every value field of
:meth:`Histogram.summary` except ``count``/``sum`` — "no data" must not
be confusable with a real 0 ms latency.  ``count`` stays 0 and ``sum``
0.0 (they are exact), matching what an OpenMetrics scrape of the empty
histogram exposes.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from math import ceil, inf, nan
from typing import Any, Iterable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "LATENCY_MS_BUCKETS",
    "BUCKET_PRESETS",
]

#: default histogram bucket upper bounds, in milliseconds: geometric
#: ×2 ladder from 1 µs to ~9 minutes (30 buckets + overflow)
DEFAULT_LATENCY_BUCKETS_MS = tuple(1e-3 * 2**i for i in range(30))

#: millisecond-scale serving-latency ladder: sub-ms resolution where the
#: cache-hit / small-batch mass lives (50 µs steps up to 1 ms), then a
#: 1–2.5–5 decade ladder out to 10 s.  The SLO percentiles interpolate
#: inside one bucket, so resolution here bounds their error directly —
#: the coarse geometric default puts all of 0.5–1 ms in a single bucket.
LATENCY_MS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 0.75, 1.0,
    2.5, 5.0, 7.5, 10.0, 25.0, 50.0, 75.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: named bucket presets ``Histogram``/``MetricsRegistry.histogram``
#: accept in place of an explicit bound sequence
BUCKET_PRESETS: dict[str, tuple[float, ...]] = {
    "default": DEFAULT_LATENCY_BUCKETS_MS,
    "latency-ms": LATENCY_MS_BUCKETS,
}


class Counter:
    """A monotone event counter."""

    __slots__ = ("value",)

    value: int

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter<{self.value}>"


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("value",)

    value: float

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge<{self.value}>"


class Histogram:
    """Fixed-bucket distribution with interpolated percentile summaries.

    *buckets* are ascending upper bounds; observations above the last
    bound land in an overflow bucket.  Exact ``min``/``max``/``sum`` are
    tracked alongside, and percentile interpolation clamps into
    ``[min, max]`` — so an empty histogram reports the documented ``NaN``
    sentinel (no data is not a 0 ms latency), a single sample reports
    itself at every percentile, and all-same-bucket data never reports a
    value outside what was actually observed.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    bounds: tuple[float, ...]
    counts: list[int]
    count: int
    total: float
    min: float
    max: float

    def __init__(self, buckets: "Iterable[float] | str | None" = None) -> None:
        if isinstance(buckets, str):
            try:
                buckets = BUCKET_PRESETS[buckets]
            except KeyError:
                raise ValueError(
                    f"unknown bucket preset {buckets!r}; "
                    f"known: {', '.join(sorted(BUCKET_PRESETS))}"
                ) from None
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS_MS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be a non-empty ascending sequence")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow
        self.count = 0
        self.total = 0.0
        self.min = inf
        self.max = -inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """The interpolated *q*-th percentile (``NaN`` on an empty
        histogram — the documented no-observations sentinel)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return nan
        target = max(1, ceil(q / 100.0 * self.count))
        cum = 0
        for idx, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= target:
                lo = 0.0 if idx == 0 else self.bounds[idx - 1]
                hi = self.bounds[idx] if idx < len(self.bounds) else self.max
                frac = (target - cum) / c
                value = lo + frac * (hi - lo)
                return float(min(max(value, self.min), self.max))
            cum += c
        return float(self.max)  # pragma: no cover - unreachable (count > 0)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else nan

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus the p50/p90/p99 trio.

        With zero observations every value field is the ``NaN`` sentinel
        (``count`` 0 and ``sum`` 0.0 stay exact).
        """
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else nan,
            "max": self.max if self.count else nan,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = inf
        self.max = -inf

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram.

        Exact for every reported statistic (bucket counts, count, sum,
        min, max add/compare losslessly) — but only between histograms
        on the **same bucket ladder**; merging across different bounds
        would silently misbin, so it raises instead.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram<{self.count} obs, p50={self.percentile(50):.3g}>"


class MetricsRegistry:
    """Named get-or-create registry of counters, gauges, and histograms.

    Creation is locked (call sites race on first touch); the instrument
    hot paths themselves are single plain-attribute operations, which
    under the GIL is the same trade the rest of the repo makes for its
    counters.  One name maps to exactly one instrument kind — asking for
    a counter under an existing histogram name raises.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def _check_free(self, name: str, kind: dict[str, Any]) -> None:
        for store in (self._counters, self._gauges, self._histograms):
            if store is not kind and name in store:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.get(name)
                if c is None:
                    self._check_free(name, self._counters)
                    c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.get(name)
                if g is None:
                    self._check_free(name, self._gauges)
                    g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, buckets: "Iterable[float] | str | None" = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.get(name)
                if h is None:
                    self._check_free(name, self._histograms)
                    h = self._histograms[name] = Histogram(buckets)
        return h

    # -- convenience single-call forms --------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reporting -----------------------------------------------------------

    def items(self) -> Iterator[tuple[str, str, "Counter | Gauge | Histogram"]]:
        """Every instrument as ``(kind, name, instrument)``, sorted by
        name within each kind (counters, then gauges, then histograms).

        This is the exposition surface: :mod:`repro.obs.export` walks it
        to emit OpenMetrics text with the raw bucket counts the
        ``snapshot`` summaries deliberately collapse.  The name lists are
        copied under the creation lock, so a scrape iterating while other
        threads register fresh instruments never sees a mid-resize dict
        (the precondition for the async serving front end).
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        for name, c in counters:
            yield "counter", name, c
        for name, g in gauges:
            yield "gauge", name, g
        for name, h in histograms:
            yield "histogram", name, h

    def snapshot(self) -> dict[str, Any]:
        """Everything, as plain dicts: ``{"counters": {...}, "gauges":
        {...}, "histograms": {name: summary}}``.

        Like :meth:`items`, the instrument lists are copied under the
        creation lock before rendering — safe against concurrent
        registration (individual readings stay the GIL-granularity
        values the instruments themselves provide).
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {k: c.value for k, c in counters},
            "gauges": {k: g.value for k, g in gauges},
            "histograms": {k: h.summary() for k, h in histograms},
        }

    def as_dict(self) -> dict[str, Any]:
        """Alias of :meth:`snapshot` (the :class:`StageTimer` spelling)."""
        return self.snapshot()

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        with self._lock:
            for store in (self._counters, self._gauges, self._histograms):
                for inst in store.values():
                    inst.reset()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s instruments into this registry by name.

        Counters add, gauges take *other*'s value when it has one
        (last-writer-wins, matching the instrument's own semantics),
        histograms fold bucket-exactly via :meth:`Histogram.merge`
        (same-ladder requirement included).  Instruments only *other*
        has are created here.  The chaos harness uses this to aggregate
        per-cell recorder registries into one fleet-wide report.
        """
        with other._lock:
            counters = list(other._counters.items())
            gauges = list(other._gauges.items())
            histograms = list(other._histograms.items())
        for name, c in counters:
            self.counter(name).inc(c.value)
        for name, g in gauges:
            self.gauge(name).set(g.value)
        for name, h in histograms:
            self.histogram(name, h.bounds).merge(h)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry<{len(self._counters)}c/"
            f"{len(self._gauges)}g/{len(self._histograms)}h>"
        )

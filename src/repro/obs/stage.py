"""Stage-level timing instrumentation (migrated from ``repro.sssp.instrument``).

The paper's §VI.C argument ("the matrix filtering operations on A_H and
A_L were noted to consume 35-40% of the run time") needs a per-stage time
breakdown.  :class:`StageTimer` accumulates wall-clock by stage label with
negligible overhead when disabled (the null object pattern —
:data:`NO_TIMER` — costs one attribute lookup per stage).

The timer predates the unified observability substrate and remains the
solver-facing accounting surface (``profile=`` on
:class:`~repro.sssp.result.SSSPResult`); it now also *bridges* into it:
construct with a :class:`~repro.obs.recorder.Recorder` and every stage
occurrence additionally lands as a trace span under the same label — the
old totals and the new timeline agree by construction — and
:meth:`StageTimer.feed` pushes the accumulated totals into the
recorder's metrics registry.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager, nullcontext
from typing import Any, Iterator

__all__ = ["StageTimer", "NullTimer", "NO_TIMER"]


class StageTimer:
    """Accumulates seconds and hit counts per stage label.

    *recorder* (optional, any truthy :class:`~repro.obs.recorder.Recorder`)
    mirrors each stage occurrence as a trace span of the same name, so
    the stage totals equal the per-label span-duration sums.
    """

    __slots__ = ("totals", "counts", "_order", "_recorder")

    def __init__(self, recorder: Any = None) -> None:
        self.totals: dict[str, float] = defaultdict(float)
        self.counts: dict[str, int] = defaultdict(int)
        self._order: list[str] = []
        self._recorder = recorder if recorder else None

    @contextmanager
    def stage(self, label: str, **args: Any) -> Iterator[None]:
        """Context manager timing one stage occurrence.

        Extra keyword *args* are attached to the mirrored trace span
        (and ignored when no recorder is bound).
        """
        if label not in self.totals:
            self._order.append(label)
        span = self._recorder.span(label, **args) if self._recorder else None
        if span is not None:
            span.__enter__()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.totals[label] += dt
            self.counts[label] += 1
            if span is not None:
                span.__exit__(None, None, None)

    def add(self, label: str, seconds: float) -> None:
        """Record an externally-measured duration."""
        if label not in self.totals:
            self._order.append(label)
        self.totals[label] += seconds
        self.counts[label] += 1

    def feed(self, recorder: Any) -> None:
        """Push the accumulated stage totals into *recorder*'s metrics.

        Each label lands as a gauge ``stage.<label>.seconds`` (the
        total) and a counter ``stage.<label>.hits``; call once at the
        end of a run — the counter form accumulates across feeds.
        """
        if not recorder:
            return
        for label in self._order:
            recorder.set_gauge(f"stage.{label}.seconds", self.totals[label])
            recorder.inc(f"stage.{label}.hits", self.counts[label])

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fractions(self) -> dict[str, float]:
        """Stage → share of total time (the §VI.C percentages)."""
        total = self.total
        if total == 0:
            return {k: 0.0 for k in self._order}
        return {k: self.totals[k] / total for k in self._order}

    def as_dict(self) -> dict[str, float]:
        """Stage → accumulated seconds, in first-seen order."""
        return {k: self.totals[k] for k in self._order}

    def merged(self, groups: dict[str, list[str]]) -> dict[str, float]:
        """Re-bucket stages into coarser groups (missing stages count 0)."""
        return {
            gname: sum(self.totals.get(s, 0.0) for s in stages)
            for gname, stages in groups.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in self.as_dict().items())
        return f"StageTimer<{parts}>"


_NULL_CTX: nullcontext[None] = nullcontext()


class NullTimer:
    """Disabled timer: same interface, no accounting, ~zero overhead.

    ``stage`` hands back one shared :func:`~contextlib.nullcontext`
    (reentrant, stateless) instead of constructing a generator-backed
    context manager per call — in the fused hot loop the latter showed
    up as a measurable per-phase cost.
    """

    __slots__ = ()

    def stage(self, _label: str, **_args: Any) -> nullcontext[None]:
        return _NULL_CTX

    def add(self, _label: str, _seconds: float) -> None:
        pass

    def feed(self, _recorder: Any) -> None:
        pass

    @property
    def total(self) -> float:
        return 0.0

    def fractions(self) -> dict[str, float]:
        return {}

    def as_dict(self) -> dict[str, float]:
        return {}

    def merged(self, groups: dict[str, list[str]]) -> dict[str, float]:
        return {g: 0.0 for g in groups}


#: shared disabled-timer singleton
NO_TIMER = NullTimer()

"""``repro.obs`` — the unified tracing + metrics substrate.

One observability layer under every subsystem (steppers, kernels,
shards, service, dynamic repair), replacing the fragmented telemetry
that grew per PR (``StageTimer`` in the solvers, ``ExchangeStats`` in
the exchange, bench-only JSON):

=====================================  ====================================
:mod:`~repro.obs.trace`                :class:`TraceRecorder` — span/
                                       instant timeline on the monotonic
                                       clock, thread-id aware, exported
                                       as Chrome trace-event JSON
                                       (opens in Perfetto /
                                       ``chrome://tracing``)
:mod:`~repro.obs.metrics`              :class:`MetricsRegistry` —
                                       counters, gauges, fixed-bucket
                                       latency histograms with
                                       p50/p90/p99 summaries
:mod:`~repro.obs.recorder`             :class:`Recorder` — the facade
                                       threaded through the hot layers
                                       (``solve_with(recorder=)``,
                                       ``QueryService(recorder=)``,
                                       ``repro trace`` / ``--trace``);
                                       :data:`NO_RECORDER` is the falsy
                                       disabled path
:mod:`~repro.obs.stage`                :class:`StageTimer` — the original
                                       per-stage accounting (§VI.C),
                                       now bridging into the recorder;
                                       ``repro.sssp.instrument`` is a
                                       thin alias of this module
:mod:`~repro.obs.report`               :func:`build_report` /
                                       :func:`render_markdown` /
                                       :func:`render_html` — a recorded
                                       run (or saved trace JSON) as one
                                       self-contained run report
                                       (``repro report``)
:mod:`~repro.obs.export`               :func:`render_openmetrics` /
                                       :class:`MetricsServer` — the
                                       registry as OpenMetrics text and
                                       a scrape endpoint
                                       (``repro metrics``)
=====================================  ====================================

The package sits below every solver layer (stdlib only — it imports
nothing from the rest of the repo, not even NumPy), so anything may
depend on it without cycles.  Disabled-path cost is CI-gated at <3% on
the KERNEL bench smoke (``repro trace --overhead-smoke``).
"""

from __future__ import annotations

from .export import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsServer,
    render_openmetrics,
    sanitize_metric_name,
)
from .flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    FlightTrigger,
    SlowQueryLog,
)
from .metrics import (
    BUCKET_PRESETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    LATENCY_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .recorder import NO_RECORDER, NullRecorder, Recorder
from .report import (
    RunReport,
    build_report,
    filter_spans_by_request,
    load_slow_queries,
    load_trace,
    render_html,
    render_markdown,
)
from .slo import (
    AvailabilityObjective,
    BurnRateMonitor,
    CheckResult,
    LatencyTarget,
    SLOResult,
    SLOSpec,
    evaluate,
    evaluate_summary,
    export_slo_gauges,
    load_slo_path,
    parse_slo_data,
    render_slo_text,
)
from .stage import NO_TIMER, NullTimer, StageTimer
from .trace import NO_TRACE, NullTrace, Span, TraceRecorder

__all__ = [
    "Recorder",
    "NullRecorder",
    "NO_RECORDER",
    "TraceRecorder",
    "NullTrace",
    "NO_TRACE",
    "Span",
    "FlightRecorder",
    "FlightTrigger",
    "SlowQueryLog",
    "DEFAULT_FLIGHT_CAPACITY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "LATENCY_MS_BUCKETS",
    "BUCKET_PRESETS",
    "StageTimer",
    "NullTimer",
    "NO_TIMER",
    "RunReport",
    "build_report",
    "load_trace",
    "load_slow_queries",
    "filter_spans_by_request",
    "render_markdown",
    "render_html",
    "render_openmetrics",
    "sanitize_metric_name",
    "MetricsServer",
    "OPENMETRICS_CONTENT_TYPE",
    "SLOSpec",
    "LatencyTarget",
    "AvailabilityObjective",
    "CheckResult",
    "SLOResult",
    "BurnRateMonitor",
    "load_slo_path",
    "parse_slo_data",
    "evaluate",
    "evaluate_summary",
    "export_slo_gauges",
    "render_slo_text",
]

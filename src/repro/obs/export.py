"""OpenMetrics text exposition of a :class:`MetricsRegistry` snapshot.

The metrics half of :mod:`repro.obs` aggregates in process; this module
is how those aggregates leave the process in the format every scraping
stack (Prometheus, OpenTelemetry collectors, Grafana agent) ingests —
the `OpenMetrics text format
<https://github.com/OpenObservability/OpenMetrics>`_:

- :class:`~repro.obs.metrics.Counter` → a ``counter`` family with one
  ``_total`` sample;
- :class:`~repro.obs.metrics.Gauge` → a ``gauge`` family;
- :class:`~repro.obs.metrics.Histogram` → a ``histogram`` family with
  cumulative ``_bucket{le="..."}`` samples (the raw per-bucket counts,
  not the collapsed p50/p90/p99 summaries), ``_count``, and ``_sum`` —
  so the scraper's own quantile math sees exactly what the in-process
  interpolation saw.

Metric names are sanitized (``service.query_ms`` →
``repro_service_query_ms``) and the exposition ends with the mandatory
``# EOF`` terminator, so the output validates as OpenMetrics 1.0.

:class:`MetricsServer` is the matching scrape endpoint: a daemon-thread
HTTP server over a live registry, so a long-lived
``QueryService(recorder=...)`` can be scraped while it serves —
``repro metrics`` wires both onto the CLI.

Like the rest of :mod:`repro.obs` this module is stdlib-only and part
of the ``mypy --strict`` typing gate.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from math import isinf, isnan
from typing import Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import Recorder

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "sanitize_metric_name",
    "render_openmetrics",
    "MetricsServer",
]

#: the Content-Type an OpenMetrics scrape response must carry
OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: the sources :func:`render_openmetrics` accepts — a registry, or the
#: recorder facade wrapping one
MetricsSource = Union[MetricsRegistry, Recorder]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce *name* into the OpenMetrics name charset.

    Dots (the repo's metric-name separator) and every other character
    outside ``[a-zA-Z0-9_:]`` become underscores; a leading digit gains
    an underscore prefix.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """A float as OpenMetrics text: integers bare, specials spelled out."""
    if isnan(value):
        return "NaN"
    if isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _registry_of(metrics: MetricsSource) -> MetricsRegistry:
    if isinstance(metrics, Recorder):
        return metrics.metrics
    return metrics


def render_openmetrics(metrics: MetricsSource, prefix: str = "repro") -> str:
    """The full registry as OpenMetrics text (ending in ``# EOF``).

    *metrics* is a :class:`MetricsRegistry` or a :class:`Recorder`
    (whose registry half is used).  *prefix* namespaces every family
    (pass ``""`` for none).
    """
    lines: list[str] = []
    for kind, name, inst in _registry_of(metrics).items():
        family = sanitize_metric_name(f"{prefix}_{name}" if prefix else name)
        if isinstance(inst, Counter):
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{family}_total {_fmt(inst.value)}")
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"{family} {_fmt(inst.value)}")
        elif isinstance(inst, Histogram):
            lines.append(f"# TYPE {family} histogram")
            cumulative = 0
            for bound, count in zip(inst.bounds, inst.counts):
                cumulative += count
                lines.append(
                    f'{family}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{family}_bucket{{le="+Inf"}} {inst.count}')
            lines.append(f"{family}_count {inst.count}")
            lines.append(f"{family}_sum {_fmt(inst.total)}")
        else:  # pragma: no cover - items() yields exactly the three kinds
            raise TypeError(f"unknown instrument kind {kind!r} for {name!r}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class MetricsServer:
    """A daemon-thread ``/metrics`` scrape endpoint over a live registry.

    The handler renders the registry fresh on every GET, so a scrape
    always sees current values — hand it the same registry (or
    :class:`Recorder`) the serving tier writes into and it behaves like
    any other Prometheus target::

        rec = Recorder()
        svc = QueryService(g, recorder=rec)
        with MetricsServer(rec) as srv:
            print(srv.url)          # http://127.0.0.1:<port>/metrics
            ...                     # scrape while svc serves

    ``port=0`` (the default) binds an ephemeral port; :attr:`port` and
    :attr:`url` report what was bound.  ``close()`` (or the context
    exit) shuts the server down and joins its thread.

    Besides the scrape path the server answers ``/healthz`` — a liveness
    probe returning 200 with a small JSON body (status, uptime seconds,
    scrapes served) that never touches the registry, so an orchestrator
    health check stays cheap and cannot be slowed by a large exposition.
    """

    def __init__(
        self,
        metrics: MetricsSource,
        host: str = "127.0.0.1",
        port: int = 0,
        path: str = "/metrics",
        prefix: str = "repro",
    ) -> None:
        registry = _registry_of(metrics)
        endpoint = path
        started = time.monotonic()
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                route = self.path.partition("?")[0]
                if route == "/healthz":
                    payload = {
                        "status": "ok",
                        "uptime_s": round(time.monotonic() - started, 3),
                        "scrapes": server.scrapes,
                    }
                    body = json.dumps(payload).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if route not in (endpoint, "/"):
                    self.send_error(404, "scrape endpoint is %s" % endpoint)
                    return
                server.scrapes += 1
                body = render_openmetrics(registry, prefix=prefix).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                pass  # a scrape target must not spam the serving tier's stderr

        self.path = endpoint
        #: scrapes served since start (reported by ``/healthz``); a plain
        #: int increment — GIL-granular, same trade as the instruments
        self.scrapes = 0
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self.host = str(self._httpd.server_address[0])
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}{self.path}"

    def close(self) -> None:
        """Stop serving and join the server thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsServer<{self.url}>"

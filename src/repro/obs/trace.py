"""Low-overhead span tracing with Chrome trace-event export.

The paper's §VI.C argument ("where does phase time go?") was answered
with stage *totals* (:mod:`repro.obs.stage`); a production serving tier
needs the *timeline* — which shard step overlapped which exchange, how
long each superstep's barrier was, where a p99 query spent its budget.
:class:`TraceRecorder` is that timeline: begin/end spans and instant
events on the monotonic clock (``time.perf_counter_ns``), tagged with
the recording thread's id, appended to one in-memory list (an
``list.append`` per event — safe to call from pool-transport worker
threads under the GIL, which is exactly how the sharded stepper's
per-shard spans land on distinct ``tid`` lanes).

Export is the Chrome trace-event JSON format (``"X"`` complete events
plus ``"i"`` instants), so any recorded run opens directly in Perfetto
or ``chrome://tracing`` with no post-processing.

The disabled path follows the ``NO_TIMER`` null-object pattern:
:data:`NO_TRACE` hands back one shared no-op span, so code threaded with
a recorder but running without one costs a falsy check per choke point.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Protocol

__all__ = ["Span", "TraceRecorder", "NullTrace", "NO_TRACE"]

#: one recorded event: phase, name, t0 ns, duration ns, thread id, args
_Event = tuple[str, str, int, int, int, "dict[str, Any]"]


class _EventStore(Protocol):
    """What the recorder needs from its event storage — a plain list by
    default; :class:`repro.obs.flight.FlightRecorder` substitutes a
    bounded ring with the same surface."""

    def append(self, event: _Event) -> None: ...

    def clear(self) -> None: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[_Event]: ...


def _json_safe(value: Any) -> Any:
    """Coerce span-arg values into JSON-serializable scalars."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if item is not None:
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


class Span:
    """One in-flight span; records a complete (``"X"``) event on exit.

    ``args`` stays mutable until the span closes, so values only known
    at the end of the work (touched counts, per-round deltas) can be
    attached via :meth:`set` inside the ``with`` block.
    """

    __slots__ = ("_trace", "name", "args", "_t0")

    _trace: "TraceRecorder"
    name: str
    args: dict[str, Any]
    _t0: int

    def __init__(self, trace: "TraceRecorder", name: str, args: dict[str, Any]) -> None:
        self._trace = trace
        self.name = name
        self.args = args
        self._t0 = 0

    def set(self, **args: Any) -> "Span":
        """Attach (or overwrite) span args; chainable."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = time.perf_counter_ns()
        self._trace._record(
            ("X", self.name, self._t0, t1 - self._t0, threading.get_ident(), self.args)
        )
        return False


class TraceRecorder:
    """Accumulates span/instant events; exports Chrome trace JSON.

    Events are stored as plain tuples (no per-event object churn beyond
    the span itself); timestamps are monotonic nanoseconds rebased to
    the recorder's construction time at export.
    """

    enabled = True

    def __init__(self) -> None:
        self._events: _EventStore = []
        self._t0 = time.perf_counter_ns()
        #: ambient-arg stack (see :meth:`context`); empty = zero overhead
        self._context: list[dict[str, Any]] = []

    def span(self, name: str, **args: Any) -> Span:
        """A context-managed span: ``with trace.span("phase", wave=8):``."""
        if self._context:
            merged = dict(self._context[-1])
            merged.update(args)
            args = merged
        return Span(self, name, args)

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker event."""
        if self._context:
            merged = dict(self._context[-1])
            merged.update(args)
            args = merged
        self._record(
            ("i", name, time.perf_counter_ns(), 0, threading.get_ident(), args)
        )

    def _record(self, event: _Event) -> None:
        """Store one finished event (the flight recorder overrides this
        to write into its ring and run anomaly triggers)."""
        self._events.append(event)

    @contextmanager
    def context(self, **args: Any) -> Iterator[None]:
        """Attach ambient args to every span/instant recorded inside.

        Contexts nest (inner values win on key collision), and the stack
        is **recorder-scoped, not thread-scoped** on purpose: a sharded
        solve fans its shard steps out on pool threads, and those
        ``shard-step`` spans must still carry the enclosing request's
        ``request_id`` — which a thread-local could not deliver.  The
        repo's serving tier drains synchronously (one round in flight per
        recorder), which is what makes the recorder-scoped stack sound.
        Explicit span args always beat ambient ones.
        """
        merged = dict(self._context[-1]) if self._context else {}
        merged.update(args)
        self._context.append(merged)
        try:
            yield
        finally:
            self._context.pop()

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return True

    def clear(self) -> None:
        self._events.clear()

    def spans(self, name: str | None = None) -> list[dict[str, Any]]:
        """Recorded complete spans as dicts (optionally filtered by name).

        ``ts_us``/``dur_us`` are microseconds since the recorder was
        constructed — the same values the Chrome export carries.
        """
        out: list[dict[str, Any]] = []
        for ph, ev_name, t0, dur, tid, args in self._events:
            if ph != "X" or (name is not None and ev_name != name):
                continue
            out.append(
                {
                    "name": ev_name,
                    "ts_us": (t0 - self._t0) / 1e3,
                    "dur_us": dur / 1e3,
                    "tid": tid,
                    "args": args,
                }
            )
        return out

    def to_chrome(self, process_name: str = "repro") -> dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Every event carries the ``name``/``ph``/``ts``/``pid``/``tid``
        fields the Perfetto/trace-viewer schema requires; spans are
        ``"X"`` complete events with ``dur``, instants are ``"i"`` with
        thread scope.  Timestamps are microseconds (the format's unit).
        """
        pid = os.getpid()
        events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for ph, name, t0, dur, tid, args in self._events:
            ev: dict[str, Any] = {
                "name": name,
                "ph": ph,
                "pid": pid,
                "tid": tid,
                "ts": (t0 - self._t0) / 1e3,
                "args": {k: _json_safe(v) for k, v in args.items()},
            }
            if ph == "X":
                ev["dur"] = dur / 1e3
            elif ph == "i":
                ev["s"] = "t"
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | os.PathLike[str], process_name: str = "repro") -> str:
        """Write the Chrome trace JSON to *path*; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(process_name), fh)
        return str(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceRecorder<{len(self._events)} events>"


class _NullSpan:
    """Shared no-op span: reentrant, stateless, arg-swallowing."""

    __slots__ = ()

    def set(self, **_args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTrace:
    """Disabled trace: same surface, no events, ~zero overhead."""

    __slots__ = ()
    enabled = False

    def span(self, _name: str, **_args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, _name: str, **_args: Any) -> None:
        pass

    @contextmanager
    def context(self, **_args: Any) -> Iterator[None]:
        yield

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        return False

    def clear(self) -> None:
        pass

    def spans(self, name: str | None = None) -> list[dict[str, Any]]:
        return []


#: shared disabled-trace singleton (the ``NO_TIMER`` pattern)
NO_TRACE = NullTrace()
